// Regenerates paper Table III: the full endurance-management flow (minimum +
// maximum write strategies, Algorithm 2 rewriting, Algorithm 3 selection)
// under write caps of 10, 20, 50 and 100. A dash means the cap exceeds the
// benchmark's natural maximum write count, so the result is unchanged from
// the previous column (paper convention).
//
// Two flow::Runner phases share one rewrite cache: phase 1 compiles naive +
// uncapped full-endurance for every benchmark; phase 2 compiles only the
// caps that actually bind (cap < uncapped max), reusing the phase-1
// rewrites.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;
  using core::Strategy;

  const auto opts = flow::parse_driver_args(argc, argv);
  const auto suite = flow::suite();
  const auto sources = flow::suite_sources(suite);
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});

  // Phase 1: naive baseline + uncapped full endurance per benchmark.
  std::vector<flow::Job> phase1;
  for (const auto& source : sources) {
    phase1.push_back({source, core::make_config(Strategy::Naive), {}});
    phase1.push_back({source, core::make_config(Strategy::FullEndurance), {}});
  }
  const auto base = runner.run(phase1);
  flow::throw_on_error(base);

  // Phase 2: only the binding caps.
  static constexpr std::uint64_t kCaps[4] = {10, 20, 50, 100};
  std::vector<flow::Job> phase2;
  std::vector<std::size_t> capped_index(sources.size() * 4, SIZE_MAX);
  for (std::size_t b = 0; b < sources.size(); ++b) {
    const auto& uncapped = base[b * 2 + 1].report;
    for (int c = 0; c < 4; ++c) {
      if (kCaps[c] < uncapped.writes.max) {
        capped_index[b * 4 + c] = phase2.size();
        phase2.push_back({sources[b],
                          core::make_config(Strategy::FullEndurance, kCaps[c]),
                          {}});
      }
    }
  }
  const auto capped_results = runner.run(phase2);
  flow::throw_on_error(capped_results);

  flow::Report doc;
  doc.title = "Table III — full endurance management with maximum write caps (" +
              suite.label + ")";
  doc.columns = {"benchmark", "PI/PO", "#I@10", "#R@10", "STDEV@10",
                 "#I@20", "#R@20", "STDEV@20", "#I@50", "#R@50", "STDEV@50",
                 "#I@100", "#R@100", "STDEV@100"};

  double sum_instr[4] = {};
  double sum_rrams[4] = {};
  double sum_stdev[4] = {};
  double naive_rrams = 0.0;
  double sum_impr_cap10 = 0.0;
  double sum_impr_cap100 = 0.0;
  std::size_t count = 0;

  for (std::size_t b = 0; b < sources.size(); ++b) {
    const auto& naive = base[b * 2].report;
    const auto& uncapped = base[b * 2 + 1].report;

    std::vector<std::string> row{
        sources[b]->label(), std::to_string(sources[b]->pis()) + "/" +
                                 std::to_string(sources[b]->pos())};
    const core::EnduranceReport* capped[4] = {};
    for (int c = 0; c < 4; ++c) {
      const auto index = capped_index[b * 4 + c];
      const bool unchanged = index == SIZE_MAX;
      capped[c] = unchanged ? (c == 0 ? &uncapped : capped[c - 1])
                            : &capped_results[index].report;
      if (unchanged) {
        row.insert(row.end(), {"-", "-", "-"});
      } else {
        row.push_back(std::to_string(capped[c]->instructions));
        row.push_back(std::to_string(capped[c]->rrams));
        row.push_back(util::Table::fixed(capped[c]->writes.stdev));
      }
      sum_instr[c] += static_cast<double>(capped[c]->instructions);
      sum_rrams[c] += static_cast<double>(capped[c]->rrams);
      sum_stdev[c] += capped[c]->writes.stdev;
    }
    sum_impr_cap10 +=
        util::improvement_percent(naive.writes.stdev, capped[0]->writes.stdev);
    sum_impr_cap100 +=
        util::improvement_percent(naive.writes.stdev, capped[3]->writes.stdev);
    naive_rrams += static_cast<double>(naive.rrams);
    doc.add_row(std::move(row));
    ++count;
  }

  const auto denom = static_cast<double>(count);
  doc.add_separator();
  std::vector<std::string> avg{"AVG", ""};
  for (int c = 0; c < 4; ++c) {
    avg.push_back(util::Table::fixed(sum_instr[c] / denom));
    avg.push_back(util::Table::fixed(sum_rrams[c] / denom));
    avg.push_back(util::Table::fixed(sum_stdev[c] / denom));
  }
  doc.add_row(std::move(avg));

  doc.add_note("avg STDEV improvement vs naive: cap 10 " +
               util::Table::percent(sum_impr_cap10 / denom) + ", cap 100 " +
               util::Table::percent(sum_impr_cap100 / denom));
  doc.add_note("avg #R overhead vs naive at cap 10: " +
               util::Table::percent(100.0 * (sum_rrams[0] - naive_rrams) /
                                    naive_rrams));
  doc.add_note("paper reference: cap 10 improves STDEV by 96.8% at +50.59% #R; "
               "cap 100 improves 86.85% while still cutting #I/#R vs naive");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "table3_max_write: " << error.what() << '\n';
  return 1;
}
