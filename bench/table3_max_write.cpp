// Regenerates paper Table III: the full endurance-management flow (minimum +
// maximum write strategies, Algorithm 2 rewriting, Algorithm 3 selection)
// under write caps of 10, 20, 50 and 100. A dash means the cap exceeds the
// benchmark's natural maximum write count, so the result is unchanged from
// the previous column (paper convention).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rlim;
  using core::Strategy;

  std::cout << "Table III — full endurance management with maximum write "
               "caps ("
            << benchharness::suite_label() << ")\n\n";

  static constexpr std::uint64_t kCaps[4] = {10, 20, 50, 100};
  util::Table table({"benchmark", "PI/PO", "#I@10", "#R@10", "STDEV@10",
                     "#I@20", "#R@20", "STDEV@20", "#I@50", "#R@50", "STDEV@50",
                     "#I@100", "#R@100", "STDEV@100"});

  double sum_instr[4] = {};
  double sum_rrams[4] = {};
  double sum_stdev[4] = {};
  double naive_rrams = 0.0;
  double sum_impr_cap10 = 0.0;
  double sum_impr_cap100 = 0.0;
  std::size_t count = 0;

  for (const auto& spec : benchharness::selected_suite()) {
    const auto prepared = benchharness::prepare_benchmark(spec);
    const auto naive = benchharness::run(prepared, Strategy::Naive);
    const auto uncapped = benchharness::run(prepared, Strategy::FullEndurance);

    std::vector<std::string> row{
        spec.name, std::to_string(spec.pis) + "/" + std::to_string(spec.pos)};
    core::EnduranceReport capped[4];
    for (int c = 0; c < 4; ++c) {
      const bool unchanged = kCaps[c] >= uncapped.writes.max;
      capped[c] = unchanged
                      ? (c == 0 ? uncapped : capped[c - 1])
                      : benchharness::run(prepared, Strategy::FullEndurance,
                                          kCaps[c]);
      if (unchanged) {
        row.insert(row.end(), {"-", "-", "-"});
      } else {
        row.push_back(std::to_string(capped[c].instructions));
        row.push_back(std::to_string(capped[c].rrams));
        row.push_back(util::Table::fixed(capped[c].writes.stdev));
      }
      sum_instr[c] += static_cast<double>(capped[c].instructions);
      sum_rrams[c] += static_cast<double>(capped[c].rrams);
      sum_stdev[c] += capped[c].writes.stdev;
    }
    sum_impr_cap10 +=
        util::improvement_percent(naive.writes.stdev, capped[0].writes.stdev);
    sum_impr_cap100 +=
        util::improvement_percent(naive.writes.stdev, capped[3].writes.stdev);
    naive_rrams += static_cast<double>(naive.rrams);
    table.add_row(std::move(row));
    ++count;
  }

  const auto denom = static_cast<double>(count);
  table.add_separator();
  std::vector<std::string> avg{"AVG", ""};
  for (int c = 0; c < 4; ++c) {
    avg.push_back(util::Table::fixed(sum_instr[c] / denom));
    avg.push_back(util::Table::fixed(sum_rrams[c] / denom));
    avg.push_back(util::Table::fixed(sum_stdev[c] / denom));
  }
  table.add_row(std::move(avg));
  std::cout << table.to_string() << '\n';

  std::cout << "avg STDEV improvement vs naive: cap 10 "
            << util::Table::percent(sum_impr_cap10 / denom) << ", cap 100 "
            << util::Table::percent(sum_impr_cap100 / denom) << '\n'
            << "avg #R overhead vs naive at cap 10: "
            << util::Table::percent(100.0 * (sum_rrams[0] - naive_rrams) /
                                    naive_rrams)
            << '\n'
            << "paper reference: cap 10 improves STDEV by 96.8% at +50.59% #R; "
               "cap 100 improves 86.85% while still cutting #I/#R vs naive\n";
  return 0;
}
