// Paper Fig. 1 scenario: an MIG chain in which every node's only
// single-fanout child is the previous chain node, so the area-greedy
// compiler recycles ONE cell as the RM3 destination through the entire
// chain. This binary makes the phenomenon quantitative: it prints the
// per-cell write histogram under each strategy and shows how the maximum
// write strategy bounds the hot cell at the cost of extra cells. The five
// configurations compile one shared in-memory Source through flow::Runner.

#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

rlim::mig::Mig fig1_chain(int length) {
  using rlim::mig::Mig;
  Mig graph;
  std::vector<rlim::mig::Signal> pis;
  for (int i = 0; i < 2 * length + 1; ++i) {
    pis.push_back(graph.create_pi());
  }
  auto chain = pis[0];
  for (int i = 0; i < length; ++i) {
    const auto u = pis[1 + 2 * i];
    const auto v = pis[2 + 2 * i];
    chain = graph.create_maj(chain, !u, v);
    graph.create_po(graph.create_and(u, v));  // keep u, v multi-fanout
  }
  graph.create_po(chain);
  return graph;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);
  constexpr int kLength = 64;
  const auto source = flow::Source::graph(fig1_chain(kLength), "fig1");

  struct Case {
    std::string label;
    core::PipelineConfig config;
  };
  const Case cases[] = {
      {"naive", core::make_config(core::Strategy::Naive)},
      {"min-write", core::make_config(core::Strategy::MinWrite)},
      {"full endurance", core::make_config(core::Strategy::FullEndurance)},
      {"full endurance, cap 10",
       core::make_config(core::Strategy::FullEndurance, 10)},
      {"full endurance, cap 4",
       core::make_config(core::Strategy::FullEndurance, 4)},
  };
  std::vector<flow::Job> jobs;
  for (const auto& c : cases) {
    jobs.push_back({source, c.config, {}});
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "Fig. 1 scenario — single-fanout destination chain (length " +
              std::to_string(kLength) + ")";
  doc.add_note("Every chain node's only writable destination is the previous "
               "chain cell; without intervention one cell absorbs the whole "
               "chain's writes.");
  doc.columns = {"configuration", "#I", "#R", "min/max", "STDEV",
                 "hottest-cell share"};
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& report = results[i].report;
    const auto share =
        100.0 * static_cast<double>(report.writes.max) /
        static_cast<double>(report.writes.total == 0 ? 1 : report.writes.total);
    doc.add_row({cases[i].label, std::to_string(report.instructions),
                 std::to_string(report.rrams),
                 benchharness::min_max(report.writes),
                 util::Table::fixed(report.writes.stdev),
                 util::Table::percent(share)});
  }
  doc.add_note("expected shape: naive max ≈ chain length (" +
               std::to_string(kLength) + "); caps bound max at the cap while "
               "#R grows");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "fig1_unbalanced_fanout: " << error.what() << '\n';
  return 1;
}
