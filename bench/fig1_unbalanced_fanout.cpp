// Paper Fig. 1 scenario: an MIG chain in which every node's only
// single-fanout child is the previous chain node, so the area-greedy
// compiler recycles ONE cell as the RM3 destination through the entire
// chain. This binary makes the phenomenon quantitative: it prints the
// per-cell write histogram under each strategy and shows how the maximum
// write strategy bounds the hot cell at the cost of extra cells.

#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

rlim::mig::Mig fig1_chain(int length) {
  using rlim::mig::Mig;
  Mig graph;
  std::vector<rlim::mig::Signal> pis;
  for (int i = 0; i < 2 * length + 1; ++i) {
    pis.push_back(graph.create_pi());
  }
  auto chain = pis[0];
  for (int i = 0; i < length; ++i) {
    const auto u = pis[1 + 2 * i];
    const auto v = pis[2 + 2 * i];
    chain = graph.create_maj(chain, !u, v);
    graph.create_po(graph.create_and(u, v));  // keep u, v multi-fanout
  }
  graph.create_po(chain);
  return graph;
}

}  // namespace

int main() {
  using namespace rlim;
  constexpr int kLength = 64;
  const auto graph = fig1_chain(kLength);

  std::cout << "Fig. 1 scenario — single-fanout destination chain (length "
            << kLength << ")\n"
            << "Every chain node's only writable destination is the previous "
               "chain cell;\nwithout intervention one cell absorbs the whole "
               "chain's writes.\n\n";

  util::Table table({"configuration", "#I", "#R", "min/max", "STDEV",
                     "hottest-cell share"});
  struct Case {
    std::string label;
    core::PipelineConfig config;
  };
  const Case cases[] = {
      {"naive", core::make_config(core::Strategy::Naive)},
      {"min-write", core::make_config(core::Strategy::MinWrite)},
      {"full endurance", core::make_config(core::Strategy::FullEndurance)},
      {"full endurance, cap 10",
       core::make_config(core::Strategy::FullEndurance, 10)},
      {"full endurance, cap 4",
       core::make_config(core::Strategy::FullEndurance, 4)},
  };
  for (const auto& c : cases) {
    const auto report = core::run_pipeline(graph, c.config, "fig1");
    const auto share =
        100.0 * static_cast<double>(report.writes.max) /
        static_cast<double>(report.writes.total == 0 ? 1 : report.writes.total);
    table.add_row({c.label, std::to_string(report.instructions),
                   std::to_string(report.rrams),
                   benchharness::min_max(report.writes),
                   util::Table::fixed(report.writes.stdev),
                   util::Table::percent(share)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: naive max ≈ chain length (" << kLength
            << "); caps bound max at the cap while #R grows\n";
  return 0;
}
