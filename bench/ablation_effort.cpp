// Ablation: rewriting effort (the paper fixes effort = 5 for all
// experiments). Sweeps the cycle budget and reports convergence of gate
// count, complemented edges, and the compiled costs — justifying the paper's
// choice.

#include <iostream>

#include "bench_common.hpp"
#include "mig/rewriting.hpp"

int main() {
  using namespace rlim;

  std::cout << "Ablation — rewriting effort sweep (Algorithm 2, full "
               "endurance compilation)\n\n";

  const char* names[] = {"adder", "sin", "cavlc", "router"};
  for (const auto* name : names) {
    const auto& spec = bench::find_benchmark(name);
    const auto original = spec.build();
    util::Table table({"effort", "cycles run", "gates", "compl. edges", "#I",
                       "STDEV"});
    for (const int effort : {0, 1, 2, 3, 5, 8}) {
      mig::RewriteStats stats;
      const auto rewritten = mig::rewrite_endurance(original, effort, &stats);
      const auto report = core::compile_prepared(
          rewritten, core::make_config(core::Strategy::FullEndurance), spec.name);
      table.add_row({std::to_string(effort), std::to_string(stats.cycles_run),
                     std::to_string(rewritten.num_gates()),
                     std::to_string(rewritten.complement_edge_count()),
                     std::to_string(report.instructions),
                     util::Table::fixed(report.writes.stdev)});
    }
    std::cout << spec.name << ":\n" << table.to_string() << '\n';
  }
  std::cout << "expected shape: most of the reduction lands in the first 1-2 "
               "cycles; the early-exit fixpoint makes effort > 5 free — the "
               "paper's effort = 5 is safely converged\n";
  return 0;
}
