// Ablation: rewriting effort (the paper fixes effort = 5 for all
// experiments). Sweeps the cycle budget and reports convergence of gate
// count, complemented edges, and the compiled costs — justifying the paper's
// choice. The benchmark × effort grid runs as one flow::Runner batch; the
// rewrite telemetry (cycles actually run) comes from the cache entry.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);
  static constexpr int kEfforts[] = {0, 1, 2, 3, 5, 8};
  const char* names[] = {"adder", "sin", "cavlc", "router"};

  std::vector<flow::SourcePtr> sources;
  std::vector<flow::Job> jobs;
  for (const auto* name : names) {
    sources.push_back(flow::Source::benchmark(name));
    for (const int effort : kEfforts) {
      auto config = core::make_config(core::Strategy::FullEndurance);
      config.set_effort(effort);
      jobs.push_back({sources.back(), config, {}});
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  const auto sink = flow::make_sink(opts.format);
  std::cout << "Ablation — rewriting effort sweep (Algorithm 2, full "
               "endurance compilation)\n\n";
  constexpr std::size_t kPerSource = std::size(kEfforts);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    flow::Report doc;
    doc.title = sources[s]->label() + ":";
    doc.columns = {"effort", "cycles run", "gates", "compl. edges", "#I",
                   "STDEV"};
    for (std::size_t e = 0; e < kPerSource; ++e) {
      const auto& result = results[s * kPerSource + e];
      doc.add_row({std::to_string(kEfforts[e]),
                   std::to_string(result.rewrite_stats.cycles_run),
                   std::to_string(result.prepared->num_gates()),
                   std::to_string(result.prepared->complement_edge_count()),
                   std::to_string(result.report.instructions),
                   util::Table::fixed(result.report.writes.stdev)});
    }
    sink->write(doc, std::cout);
  }
  std::cout << "expected shape: most of the reduction lands in the first 1-2 "
               "cycles; the early-exit fixpoint makes effort > 5 free — the "
               "paper's effort = 5 is safely converged\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "ablation_effort: " << error.what() << '\n';
  return 1;
}
