// Ablation (extension beyond the paper): selection policy × allocation
// policy grid on a mid-size benchmark, isolating how much each dimension
// contributes to the write balance.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rlim;

  const auto& suite = benchharness::selected_suite();
  // A handful of representative functions keeps the grid readable.
  const char* names[] = {"adder", "sin", "priority", "voter", "cavlc"};

  std::cout << "Ablation — selection × allocation grid (rewriting fixed to "
               "Algorithm 2, no cap)\n\n";

  for (const auto* name : names) {
    const bench::BenchmarkSpec* spec = nullptr;
    for (const auto& candidate : suite) {
      if (candidate.name == name) {
        spec = &candidate;
      }
    }
    if (spec == nullptr) {
      continue;
    }
    const auto prepared = benchharness::prepare_benchmark(*spec);

    util::Table table({"selection \\ allocation", "lifo", "fifo", "round-robin",
                       "min-write"});
    for (const auto selection :
         {plim::SelectionPolicy::NaiveOrder, plim::SelectionPolicy::Plim21,
          plim::SelectionPolicy::EnduranceAware}) {
      std::vector<std::string> row{plim::to_string(selection)};
      for (const auto allocation :
           {plim::AllocPolicy::Lifo, plim::AllocPolicy::Fifo,
            plim::AllocPolicy::RoundRobin, plim::AllocPolicy::MinWrite}) {
        core::PipelineConfig config;
        config.rewrite = mig::RewriteKind::Endurance;
        config.selection = selection;
        config.allocation = allocation;
        const auto report = core::compile_prepared(
            prepared.rewritten_endurance, config, spec->name);
        row.push_back(util::Table::fixed(report.writes.stdev));
      }
      table.add_row(std::move(row));
    }
    std::cout << spec->name << " — STDEV of write counts:\n"
              << table.to_string() << '\n';
  }
  std::cout << "expected shape: min-write dominates every row; "
               "endurance-aware selection helps mostly under min-write\n";
  return 0;
}
