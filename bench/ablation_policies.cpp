// Ablation (extension beyond the paper): selection policy × allocation
// policy grid on a handful of representative benchmarks, isolating how much
// each dimension contributes to the write balance. All 12 grid cells per
// benchmark share one Algorithm-2 rewrite through the Runner's cache.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);
  const auto suite = flow::suite();
  // A handful of representative functions keeps the grid readable.
  const char* names[] = {"adder", "sin", "priority", "voter", "cavlc"};

  static constexpr plim::SelectionPolicy kSelections[] = {
      plim::SelectionPolicy::NaiveOrder, plim::SelectionPolicy::Plim21,
      plim::SelectionPolicy::EnduranceAware};
  static constexpr plim::AllocPolicy kAllocations[] = {
      plim::AllocPolicy::Lifo, plim::AllocPolicy::Fifo,
      plim::AllocPolicy::RoundRobin, plim::AllocPolicy::MinWrite};

  std::vector<flow::SourcePtr> sources;
  std::vector<flow::Job> jobs;
  for (const auto* name : names) {
    const bench::BenchmarkSpec* spec = nullptr;
    for (const auto& candidate : *suite.specs) {
      if (candidate.name == name) {
        spec = &candidate;
      }
    }
    if (spec == nullptr) {
      continue;
    }
    sources.push_back(flow::Source::benchmark(*spec));
    for (const auto selection : kSelections) {
      for (const auto allocation : kAllocations) {
        const auto config = core::PipelineConfig::parse(
            "rewrite=endurance,select=" +
            std::string(plim::selection_key(selection)) +
            ",alloc=" + std::string(plim::allocation_key(allocation)));
        jobs.push_back({sources.back(), config, {}});
      }
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  const auto sink = flow::make_sink(opts.format);
  std::cout << "Ablation — selection × allocation grid (rewriting fixed to "
               "Algorithm 2, no cap)\n\n";
  constexpr std::size_t kPerSource = std::size(kSelections) * std::size(kAllocations);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    flow::Report doc;
    doc.title = sources[s]->label() + " — STDEV of write counts:";
    doc.columns = {"selection \\ allocation", "lifo", "fifo", "round-robin",
                   "min-write"};
    for (std::size_t sel = 0; sel < std::size(kSelections); ++sel) {
      std::vector<std::string> row{plim::to_string(kSelections[sel])};
      for (std::size_t alloc = 0; alloc < std::size(kAllocations); ++alloc) {
        const auto& result =
            results[s * kPerSource + sel * std::size(kAllocations) + alloc];
        row.push_back(util::Table::fixed(result.report.writes.stdev));
      }
      doc.add_row(std::move(row));
    }
    sink->write(doc, std::cout);
  }
  std::cout << "expected shape: min-write dominates every row; "
               "endurance-aware selection helps mostly under min-write\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "ablation_policies: " << error.what() << '\n';
  return 1;
}
