// Paper Fig. 2 scenario: a node (A) whose value is consumed only by the root
// blocks its RRAM for the whole computation, while short-lived nodes recycle
// theirs quickly. The endurance-aware node selection (Algorithm 3) computes
// short-storage-duration nodes first. Besides the write spread, this binary
// reports the *cell occupancy* (average live cells per instruction slot,
// i.e. Σ value lifetimes / #I): postponing long-lived nodes shortens the
// time their cells sit blocked.

#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"

namespace {

/// Wide variant of Fig. 2: `width` long-lived "A" nodes feeding only the
/// root, plus a deep ladder of immediately-consumed nodes.
rlim::mig::Mig fig2_blocked(int width) {
  using rlim::mig::Mig;
  Mig graph;
  std::vector<rlim::mig::Signal> pis;
  for (int i = 0; i < 4 * width + 3; ++i) {
    pis.push_back(graph.create_pi());
  }
  std::vector<rlim::mig::Signal> blocked;
  for (int i = 0; i < width; ++i) {
    blocked.push_back(
        graph.create_maj(pis[3 * i], !pis[3 * i + 1], pis[3 * i + 2]));
  }
  auto ladder = pis[3 * width];
  for (int i = 0; i < 3 * width; ++i) {
    ladder = graph.create_maj(ladder, !pis[i], pis[i + 1]);
  }
  // Root consumes every blocked node at the very end.
  auto root = ladder;
  for (const auto a : blocked) {
    root = graph.create_maj(root, !a, pis[1]);
  }
  graph.create_po(root);
  return graph;
}

/// Average number of live *computed* values per instruction slot: a value is
/// live from its defining write to its last read (pre-resident PI data is
/// not counted — the paper's blocked-RRAM argument concerns computed values
/// waiting for their fanout).
double cell_occupancy(const rlim::plim::Program& program) {
  const auto instructions = program.instructions();
  const auto n = static_cast<long>(instructions.size());
  std::vector<std::optional<long>> birth(program.num_cells());
  std::vector<long> live_time(program.num_cells(), 0);
  const auto use = [&](rlim::plim::Operand operand, long time) {
    if (operand.is_constant()) {
      return;
    }
    const auto cell = operand.cell_index();
    if (birth[cell]) {
      live_time[cell] += time - *birth[cell];
      birth[cell] = time;  // still live; segments accumulate
    }
  };
  for (long t = 0; t < n; ++t) {
    use(instructions[t].a, t);
    use(instructions[t].b, t);
    birth[instructions[t].z] = t;
  }
  for (const auto cell : program.po_cells()) {
    if (birth[cell]) {
      live_time[cell] += n - *birth[cell];
    }
  }
  long total = 0;
  for (const auto time : live_time) {
    total += time;
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);
  constexpr int kWidth = 24;
  const auto source = flow::Source::graph(fig2_blocked(kWidth), "fig2");

  struct Case {
    std::string label;
    std::string selection;  // plim::selectors() registry key
  };
  const Case cases[] = {
      {"naive order", "naive"},
      {"plim21 [21]", "plim21"},
      {"endurance-aware (Alg. 3)", "endurance"},
  };
  std::vector<flow::Job> jobs;
  for (const auto& c : cases) {
    // rewrite=none isolates the selection effect.
    const auto config = core::PipelineConfig::parse(
        "rewrite=none,select=" + c.selection + ",alloc=min_write");
    jobs.push_back({source, config, {}});
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "Fig. 2 scenario — blocked RRAMs (" + std::to_string(kWidth) +
              " long-lived nodes + ladder)";
  doc.add_note("[21] selection computes releasing-heavy nodes first and leaves "
               "long-lived values blocking cells; Algorithm 3 computes "
               "short-storage nodes first.");
  doc.columns = {"selection policy", "#I", "#R", "min/max", "STDEV",
                 "occupancy"};
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& report = results[i].report;
    doc.add_row({cases[i].label, std::to_string(report.instructions),
                 std::to_string(report.rrams),
                 benchharness::min_max(report.writes),
                 util::Table::fixed(report.writes.stdev),
                 util::Table::fixed(cell_occupancy(report.program), 1)});
  }
  doc.add_note("expected shape: Algorithm 3 lowers the occupancy (long-lived "
               "nodes are computed as late as possible) and never worsens the "
               "spread; the blocked cells' wait cannot be eliminated (paper: "
               "only decreased)");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "fig2_blocked_rram: " << error.what() << '\n';
  return 1;
}
