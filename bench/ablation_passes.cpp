// Ablation: pass orderings inside the rewriting pipeline. The paper's
// endurance flow (Algorithm 2) interleaves reshaping axioms (Ω.M, Ω.D, Ω.A)
// with inverter optimisation (Ω.I); this driver sweeps alternative orderings
// expressed as `rewrite=seq:passes=...` specs through the same flow::Runner
// batch, then attributes the winning ordering's cost pass by pass from the
// per-pass telemetry the cache entry carries.

#include <iostream>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "pass/seq.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);

  // Orderings under test. "paper" is the endurance flow's own list (joined
  // from the enum flow, so it cannot drift); the others probe what the
  // interleaving buys: inverters first, reshaping only, inverters only, and
  // the full list without the Ω.A window.
  const std::string paper(pass::alias_passes(mig::RewriteKind::Endurance));
  const struct {
    const char* label;
    std::string passes;
  } orderings[] = {
      {"paper", paper},
      {"inv_first", "inv,inv3,maj,dist,assoc,inv,inv3,maj,dist,inv3"},
      {"reshape_only", "maj,dist,assoc"},
      {"inv_only", "inv,inv3"},
      {"no_assoc", "maj,dist,inv,inv3,inv,inv3,maj,dist,inv3"},
  };
  const char* names[] = {"adder", "sin", "cavlc", "router"};

  std::vector<flow::SourcePtr> sources;
  std::vector<flow::Job> jobs;
  for (const auto* name : names) {
    sources.push_back(flow::Source::benchmark(name));
    for (const auto& ordering : orderings) {
      auto config = core::PipelineConfig::parse(
          "rewrite=seq:passes=" + ordering.passes +
          ",select=endurance,alloc=min_write");
      jobs.push_back({sources.back(), config, {}});
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  const auto sink = flow::make_sink(opts.format);
  std::cout << "Ablation — pass orderings (rewrite=seq sweeps, endurance "
               "selection + min-write allocation)\n\n";
  constexpr std::size_t kPerSource = std::size(orderings);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    flow::Report doc;
    doc.title = sources[s]->label() + ":";
    doc.columns = {"ordering", "cycles run", "gates", "compl. edges", "#I",
                   "STDEV"};
    for (std::size_t o = 0; o < kPerSource; ++o) {
      const auto& result = results[s * kPerSource + o];
      doc.add_row({orderings[o].label,
                   std::to_string(result.rewrite_stats.cycles_run),
                   std::to_string(result.prepared->num_gates()),
                   std::to_string(result.prepared->complement_edge_count()),
                   std::to_string(result.report.instructions),
                   util::Table::fixed(result.report.writes.stdev)});
    }
    sink->write(doc, std::cout);
  }

  // Per-pass attribution of the paper ordering on the largest instance:
  // which pass does the work, and what does each application buy?
  const auto& attributed = results[(sources.size() - 1) * kPerSource];
  flow::Report breakdown;
  breakdown.title = sources.back()->label() + " — per-pass cost (paper "
                    "ordering):";
  breakdown.columns = {"pass", "runs", "applications", "gate delta",
                       "compl. delta", "depth delta"};
  for (const auto& pass : attributed.rewrite_stats.per_pass) {
    breakdown.add_row({pass.name, std::to_string(pass.runs),
                       std::to_string(pass.applications),
                       std::to_string(pass.gate_delta),
                       std::to_string(pass.complement_delta),
                       std::to_string(pass.depth_delta)});
  }
  sink->write(breakdown, std::cout);

  std::cout << "expected shape: reshape_only leaves complemented edges on the "
               "table and inv_only cannot shrink the graph; interleaving "
               "(paper) dominates both, and dropping Ω.A costs a few gates "
               "on the arithmetic-heavy instances\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "ablation_passes: " << error.what() << '\n';
  return 1;
}
