// Paper §II baseline: IMPLY-based NAND execution concentrates every write on
// a tiny work-device pool [16], [17], while PLiM's RM3 shares writes across
// operand cells. This binary quantifies that contrast per benchmark. The
// PLiM side runs as a flow::Runner batch; the IMP wear model reads the
// shared Sources' original graphs.

#include <iostream>

#include "bench_common.hpp"
#include "core/imp.hpp"
#include "core/lifetime.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;
  using core::Strategy;

  const auto opts = flow::parse_driver_args(argc, argv);
  const auto sources = flow::suite_sources();

  std::vector<flow::Job> jobs;
  for (const auto& source : sources) {
    jobs.push_back({source, core::make_config(Strategy::FullEndurance), {}});
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "§II baseline — IMP work-device wear vs PLiM RM3 traffic";
  doc.add_note("(IMP pool of 2 work devices per [17]; lifetime at endurance "
               "1e10, executions until first cell failure)");
  doc.columns = {"benchmark", "IMP ops", "IMP max-writes", "PLiM #I",
                 "PLiM max-writes", "IMP lifetime", "PLiM lifetime",
                 "lifetime ratio"};

  for (std::size_t b = 0; b < sources.size(); ++b) {
    const auto imp = core::imp_wear(sources[b]->original(), {2});
    const auto& plim = results[b].report;

    constexpr std::uint64_t kEndurance = 10'000'000'000ULL;
    const auto imp_life = core::estimate_lifetime(imp.writes, kEndurance);
    const auto plim_life = core::estimate_lifetime(plim.writes, kEndurance);
    const auto ratio =
        static_cast<double>(plim_life.executions_to_first_failure) /
        static_cast<double>(
            imp_life.executions_to_first_failure == 0
                ? 1
                : imp_life.executions_to_first_failure);

    doc.add_row({sources[b]->label(), std::to_string(imp.operations),
                 std::to_string(imp.writes.max),
                 std::to_string(plim.instructions),
                 std::to_string(plim.writes.max),
                 std::to_string(imp_life.executions_to_first_failure),
                 std::to_string(plim_life.executions_to_first_failure),
                 util::Table::fixed(ratio, 1)});
  }
  doc.add_note("expected shape: IMP's two work devices absorb ~half the "
               "netlist's writes each, so PLiM outlives IMP by orders of "
               "magnitude — the paper's §II motivation");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "imp_baseline: " << error.what() << '\n';
  return 1;
}
