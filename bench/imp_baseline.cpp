// Paper §II baseline: IMPLY-based NAND execution concentrates every write on
// a tiny work-device pool [16], [17], while PLiM's RM3 shares writes across
// operand cells. This binary quantifies that contrast per benchmark.

#include <iostream>

#include "bench_common.hpp"
#include "core/imp.hpp"
#include "core/lifetime.hpp"

int main() {
  using namespace rlim;
  using core::Strategy;

  std::cout << "§II baseline — IMP work-device wear vs PLiM RM3 traffic\n"
            << "(IMP pool of 2 work devices per [17]; lifetime at endurance "
               "1e10, executions until first cell failure)\n\n";

  util::Table table({"benchmark", "IMP ops", "IMP max-writes", "PLiM #I",
                     "PLiM max-writes", "IMP lifetime", "PLiM lifetime",
                     "lifetime ratio"});

  for (const auto& spec : benchharness::selected_suite()) {
    const auto prepared = benchharness::prepare_benchmark(spec);
    const auto imp = core::imp_wear(prepared.original, {2});
    const auto plim = benchharness::run(prepared, Strategy::FullEndurance);

    constexpr std::uint64_t kEndurance = 10'000'000'000ULL;
    const auto imp_life = core::estimate_lifetime(imp.writes, kEndurance);
    const auto plim_life = core::estimate_lifetime(plim.writes, kEndurance);
    const auto ratio =
        static_cast<double>(plim_life.executions_to_first_failure) /
        static_cast<double>(
            imp_life.executions_to_first_failure == 0
                ? 1
                : imp_life.executions_to_first_failure);

    table.add_row({spec.name, std::to_string(imp.operations),
                   std::to_string(imp.writes.max),
                   std::to_string(plim.instructions),
                   std::to_string(plim.writes.max),
                   std::to_string(imp_life.executions_to_first_failure),
                   std::to_string(plim_life.executions_to_first_failure),
                   util::Table::fixed(ratio, 1)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: IMP's two work devices absorb ~half the "
               "netlist's writes each, so PLiM outlives IMP by orders of "
               "magnitude — the paper's §II motivation\n";
  return 0;
}
