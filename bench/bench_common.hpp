#pragma once

// Thin compatibility shim over the rlim::flow batch API. The bench drivers
// build flow::Jobs and render flow::Reports through a ReportSink; the only
// harness-specific helper left here is the paper's "min/max" cell notation.
// (The old PreparedBenchmark / prepare_benchmark / run trio moved into
// flow::Runner's rewrite cache — see src/flow/runner.hpp.)

#include <string>
#include <vector>

#include "benchmarks/suite.hpp"
#include "flow/runner.hpp"
#include "flow/suite.hpp"
#include "util/table.hpp"

namespace rlim::benchharness {

/// Suite selection, forwarded to the flow layer (the single RLIM_SUITE
/// parser).
inline const std::vector<bench::BenchmarkSpec>& selected_suite() {
  return *flow::suite().specs;
}

inline std::string suite_label() { return flow::suite().label; }

/// "min/max" cell in the paper's notation.
inline std::string min_max(const util::WriteStats& stats) {
  return std::to_string(stats.min) + "/" + std::to_string(stats.max);
}

}  // namespace rlim::benchharness
