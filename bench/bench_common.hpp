#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "benchmarks/suite.hpp"
#include "core/endurance.hpp"
#include "util/table.hpp"

namespace rlim::benchharness {

/// Suite selection: the full paper-profile suite by default; set
/// RLIM_SUITE=mini for a fast smoke run over the scaled-down instances.
inline const std::vector<bench::BenchmarkSpec>& selected_suite() {
  const char* env = std::getenv("RLIM_SUITE");
  if (env != nullptr && std::string(env) == "mini") {
    return bench::mini_suite();
  }
  return bench::paper_suite();
}

inline std::string suite_label() {
  const char* env = std::getenv("RLIM_SUITE");
  return (env != nullptr && std::string(env) == "mini") ? "mini (RLIM_SUITE=mini)"
                                                        : "paper profile";
}

/// "min/max" cell in the paper's notation.
inline std::string min_max(const util::WriteStats& stats) {
  return std::to_string(stats.min) + "/" + std::to_string(stats.max);
}

/// Pre-built graph plus its rewritten variants, shared across configurations
/// so each flavour of rewriting runs exactly once per benchmark.
struct PreparedBenchmark {
  std::string name;
  unsigned pis = 0;
  unsigned pos = 0;
  mig::Mig original;
  mig::Mig rewritten_plim21;
  mig::Mig rewritten_endurance;

  const mig::Mig& for_config(const core::PipelineConfig& config) const {
    switch (config.rewrite) {
      case mig::RewriteKind::None: return original;
      case mig::RewriteKind::Plim21: return rewritten_plim21;
      case mig::RewriteKind::Endurance: return rewritten_endurance;
    }
    return original;
  }
};

inline PreparedBenchmark prepare_benchmark(const bench::BenchmarkSpec& spec,
                                           int effort = 5) {
  PreparedBenchmark prepared;
  prepared.name = spec.name;
  prepared.pis = spec.pis;
  prepared.pos = spec.pos;
  prepared.original = spec.build();
  prepared.rewritten_plim21 = mig::rewrite_plim21(prepared.original, effort);
  prepared.rewritten_endurance = mig::rewrite_endurance(prepared.original, effort);
  return prepared;
}

inline core::EnduranceReport run(const PreparedBenchmark& prepared,
                                 core::Strategy strategy,
                                 std::optional<std::uint64_t> cap = std::nullopt) {
  const auto config = core::make_config(strategy, cap);
  return core::compile_prepared(prepared.for_config(config), config, prepared.name,
                                prepared.original.num_gates());
}

}  // namespace rlim::benchharness
