// Regenerates paper Table II: number of RM3 instructions (#I) and RRAM
// devices (#R) for the naive flow, endurance-aware rewriting, and
// endurance-aware rewriting + compilation.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rlim;
  using core::Strategy;

  std::cout << "Table II — instructions and RRAMs for endurance-aware "
               "compilation ("
            << benchharness::suite_label() << ")\n\n";

  util::Table table({"benchmark", "PI/PO", "naive #I", "naive #R",
                     "rewriting #I", "rewriting #R", "rw+comp #I", "rw+comp #R"});

  double sums[6] = {};
  std::size_t count = 0;
  for (const auto& spec : benchharness::selected_suite()) {
    const auto prepared = benchharness::prepare_benchmark(spec);
    const auto naive = benchharness::run(prepared, Strategy::Naive);
    const auto rewriting =
        benchharness::run(prepared, Strategy::MinWriteEnduranceRewrite);
    const auto full = benchharness::run(prepared, Strategy::FullEndurance);

    table.add_row({spec.name,
                   std::to_string(spec.pis) + "/" + std::to_string(spec.pos),
                   std::to_string(naive.instructions), std::to_string(naive.rrams),
                   std::to_string(rewriting.instructions),
                   std::to_string(rewriting.rrams),
                   std::to_string(full.instructions), std::to_string(full.rrams)});
    const double values[6] = {
        static_cast<double>(naive.instructions), static_cast<double>(naive.rrams),
        static_cast<double>(rewriting.instructions),
        static_cast<double>(rewriting.rrams),
        static_cast<double>(full.instructions), static_cast<double>(full.rrams)};
    for (int i = 0; i < 6; ++i) {
      sums[i] += values[i];
    }
    ++count;
  }

  const auto denom = static_cast<double>(count);
  table.add_separator();
  table.add_row({"AVG", "", util::Table::fixed(sums[0] / denom),
                 util::Table::fixed(sums[1] / denom),
                 util::Table::fixed(sums[2] / denom),
                 util::Table::fixed(sums[3] / denom),
                 util::Table::fixed(sums[4] / denom),
                 util::Table::fixed(sums[5] / denom)});
  std::cout << table.to_string() << '\n';

  const auto reduction = [](double baseline, double ours) {
    return util::improvement_percent(baseline, ours);
  };
  std::cout << "avg #I reduction vs naive: rewriting "
            << util::Table::percent(reduction(sums[0], sums[2]))
            << ", rewriting+compilation "
            << util::Table::percent(reduction(sums[0], sums[4])) << '\n'
            << "avg #R reduction vs naive: rewriting "
            << util::Table::percent(reduction(sums[1], sums[3]))
            << ", rewriting+compilation "
            << util::Table::percent(reduction(sums[1], sums[5])) << '\n'
            << "paper reference: #I -36.48%, #R -18.18% (rewriting); "
               "compilation costs ~8% extra #R over rewriting alone\n";
  return 0;
}
