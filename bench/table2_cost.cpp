// Regenerates paper Table II: number of RM3 instructions (#I) and RRAM
// devices (#R) for the naive flow, endurance-aware rewriting, and
// endurance-aware rewriting + compilation. One flow::Runner batch over the
// suite × 3 configurations.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;
  using core::Strategy;

  const auto opts = flow::parse_driver_args(argc, argv);
  const auto suite = flow::suite();
  const auto sources = flow::suite_sources(suite);

  static constexpr Strategy kStrategies[3] = {
      Strategy::Naive, Strategy::MinWriteEnduranceRewrite,
      Strategy::FullEndurance};

  std::vector<flow::Job> jobs;
  for (const auto& source : sources) {
    for (const auto strategy : kStrategies) {
      jobs.push_back({source, core::make_config(strategy), {}});
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title =
      "Table II — instructions and RRAMs for endurance-aware compilation (" +
      suite.label + ")";
  doc.columns = {"benchmark", "PI/PO", "naive #I", "naive #R",
                 "rewriting #I", "rewriting #R", "rw+comp #I", "rw+comp #R"};

  double sums[6] = {};
  std::size_t count = 0;
  for (std::size_t b = 0; b < sources.size(); ++b) {
    const auto& naive = results[b * 3].report;
    const auto& rewriting = results[b * 3 + 1].report;
    const auto& full = results[b * 3 + 2].report;

    doc.add_row({sources[b]->label(),
                 std::to_string(sources[b]->pis()) + "/" +
                     std::to_string(sources[b]->pos()),
                 std::to_string(naive.instructions), std::to_string(naive.rrams),
                 std::to_string(rewriting.instructions),
                 std::to_string(rewriting.rrams),
                 std::to_string(full.instructions), std::to_string(full.rrams)});
    const double values[6] = {
        static_cast<double>(naive.instructions), static_cast<double>(naive.rrams),
        static_cast<double>(rewriting.instructions),
        static_cast<double>(rewriting.rrams),
        static_cast<double>(full.instructions), static_cast<double>(full.rrams)};
    for (int i = 0; i < 6; ++i) {
      sums[i] += values[i];
    }
    ++count;
  }

  const auto denom = static_cast<double>(count);
  doc.add_separator();
  doc.add_row({"AVG", "", util::Table::fixed(sums[0] / denom),
               util::Table::fixed(sums[1] / denom),
               util::Table::fixed(sums[2] / denom),
               util::Table::fixed(sums[3] / denom),
               util::Table::fixed(sums[4] / denom),
               util::Table::fixed(sums[5] / denom)});

  const auto reduction = [](double baseline, double ours) {
    return util::improvement_percent(baseline, ours);
  };
  doc.add_note("avg #I reduction vs naive: rewriting " +
               util::Table::percent(reduction(sums[0], sums[2])) +
               ", rewriting+compilation " +
               util::Table::percent(reduction(sums[0], sums[4])));
  doc.add_note("avg #R reduction vs naive: rewriting " +
               util::Table::percent(reduction(sums[1], sums[3])) +
               ", rewriting+compilation " +
               util::Table::percent(reduction(sums[1], sums[5])));
  doc.add_note("paper reference: #I -36.48%, #R -18.18% (rewriting); "
               "compilation costs ~8% extra #R over rewriting alone");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "table2_cost: " << error.what() << '\n';
  return 1;
}
