// Shard-load generator: replays a randomized job stream through 1→N
// loopback net::Server shards behind a ShardRouter. Reports cluster
// throughput (items_per_second == jobs/sec, pipelined batches) and the
// p50/p99 of sequential single-job round-trips (microseconds) — the
// transport-plus-cache-path latency once the shards are warm. Compiled
// into the perf_micro binary so the numbers land in the committed
// BENCH_perf_micro.json baseline alongside the pipeline-stage benchmarks.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "flow/wire.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlim;

// A deterministic pseudo-random stream over a few small benchmarks × a cap
// sweep: enough cell diversity that consistent hashing has keys to spread,
// repeated cells so the shard caches see realistic hit traffic.
std::vector<flow::wire::JobSpec> random_stream(std::size_t count) {
  static const char* const kRefs[] = {"bench:ctrl", "bench:int2float",
                                      "bench:dec", "bench:cavlc"};
  util::Xoshiro256 rng(0x5eedbeef);
  std::vector<flow::wire::JobSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto* ref = kRefs[rng.below(std::size(kRefs))];
    const auto cap = 10 + 10 * static_cast<unsigned>(rng.below(8));
    specs.push_back(flow::wire::JobSpec::reference(
        ref, core::make_config(core::Strategy::FullEndurance, cap)));
  }
  return specs;
}

void BM_ShardLoad(benchmark::State& state) {
  const auto shard_count = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<net::Server>> shards;
  std::vector<net::Endpoint> endpoints;
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards.push_back(std::make_unique<net::Server>(
        net::Endpoint{"127.0.0.1", 0}, net::ServerOptions{.jobs = 1}));
    endpoints.push_back(shards.back()->endpoint());
  }
  net::ShardRouter router(endpoints, {});
  const auto stream = random_stream(64);

  // Warm pass outside the timed loop: first contact compiles every unique
  // cell, the measured iterations exercise the steady transport+cache path.
  benchmark::DoNotOptimize(router.run(stream));

  for (auto _ : state) {
    benchmark::DoNotOptimize(router.run(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));

  // Sequential round-trip latency percentiles over the same stream.
  std::vector<double> micros;
  micros.reserve(stream.size());
  for (const auto& spec : stream) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(router.run({spec}));
    micros.push_back(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count());
  }
  std::sort(micros.begin(), micros.end());
  state.counters["p50_us"] = micros[micros.size() / 2];
  state.counters["p99_us"] = micros[(micros.size() * 99) / 100];
}
BENCHMARK(BM_ShardLoad)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // jobs/sec must count wall clock, not this thread's CPU

}  // namespace
