// google-benchmark microbenchmarks: throughput of the three pipeline stages
// (MIG rewriting, RM3 compilation, crossbar execution) plus the simulation
// substrate. Sizes are kept small so the whole binary finishes in seconds.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "benchmarks/arithmetic.hpp"
#include "core/endurance.hpp"
#include "fault/fault.hpp"
#include "flow/runner.hpp"
#include "flow/suite.hpp"
#include "mig/rewriting.hpp"
#include "mig/simulate.hpp"
#include "pass/manager.hpp"
#include "pass/pass.hpp"
#include "pass/seq.hpp"
#include "plim/compiler.hpp"
#include "plim/controller.hpp"
#include "store/disk_store.hpp"
#include "store/serialize.hpp"
#include "util/codec.hpp"
#include "util/mmap_file.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlim;

const mig::Mig& adder_graph(unsigned bits) {
  static std::map<unsigned, mig::Mig> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    it = cache.emplace(bits, bench::make_adder(bits)).first;
  }
  return it->second;
}

void BM_RewritePlim21(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mig::rewrite_plim21(graph, 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_RewritePlim21)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_RewriteEndurance(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mig::rewrite_endurance(graph, 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_RewriteEndurance)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Same pass list as BM_RewriteEndurance, driven through the pass manager —
// the delta between the two is the per-pass telemetry + dispatch overhead.
void BM_PassPipeline(benchmark::State& state) {
  pass::ensure_registered();
  const auto manager =
      pass::make_manager(pass::alias_passes(mig::RewriteKind::Endurance));
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.run(graph, 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_PassPipeline)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Compile(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  const plim::PlimCompiler compiler(
      {plim::SelectionPolicy::EnduranceAware, plim::AllocPolicy::MinWrite, {}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(graph));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_Compile)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_CompileNaive(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  const plim::PlimCompiler compiler(
      {plim::SelectionPolicy::NaiveOrder, plim::AllocPolicy::Lifo, {}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(graph));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_CompileNaive)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CrossbarExecute(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  const auto compiled =
      plim::PlimCompiler(plim::CompilerOptions{}).compile(graph);
  util::Xoshiro256 rng(1);
  std::vector<std::uint64_t> pi_values(graph.num_pis());
  for (auto& word : pi_values) {
    word = rng();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(plim::evaluate(compiled.program, pi_values));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(compiled.num_instructions()));
}
BENCHMARK(BM_CrossbarExecute)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_MigSimulate(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  util::Xoshiro256 rng(2);
  std::vector<std::uint64_t> pi_values(graph.num_pis());
  for (auto& word : pi_values) {
    word = rng();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mig::simulate(graph, pi_values));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_MigSimulate)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto& graph = adder_graph(32);
  const auto config = core::make_config(core::Strategy::FullEndurance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pipeline(graph, config, "adder32"));
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

// Cost of the Monte-Carlo fault engine itself: K seeded trials over a
// precompiled program, each replaying random inputs on a fresh FaultArray
// until the first wrong output (the work a `fault=` config adds per job).
void BM_FaultSweep(benchmark::State& state) {
  const auto graph = adder_graph(16).cleanup();
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto report = core::run_pipeline(graph, config, "adder16");
  const auto sweep = fault::make_sweep(util::PolicySpec{
      "stuck",
      {{"rate", "0.001"}, {"endurance", "400"}, {"sigma", "0.3"},
       {"trials", std::to_string(state.range(0))}, {"runs", "300"}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_sweep(report.program, graph, sweep));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FaultSweep)->Arg(3)->Arg(9)->Unit(benchmark::kMillisecond);

void BM_MigFingerprint(benchmark::State& state) {
  const auto& graph = adder_graph(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.fingerprint());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
}
BENCHMARK(BM_MigFingerprint)->Unit(benchmark::kMicrosecond);

// The shared workload of every BM_FlowBatch* benchmark below: 3 adders ×
// the 5 paper strategies. One definition so the cold / warm-memory /
// cold-disk / warm-disk numbers stay comparable.
std::vector<flow::Job> adder_strategy_jobs() {
  std::vector<flow::SourcePtr> sources;
  for (const unsigned bits : {16u, 24u, 32u}) {
    sources.push_back(flow::Source::graph(
        bench::make_adder(bits), "adder" + std::to_string(bits)));
  }
  std::vector<flow::Job> jobs;
  for (const auto& source : sources) {
    for (const auto strategy : flow::paper_strategies()) {
      jobs.push_back({source, core::make_config(strategy), {}});
    }
  }
  return jobs;
}

// Batch throughput of the flow job-runner with a cold rewrite cache per
// iteration. The thread-count argument shows the --jobs scaling of the
// sweep drivers.
void BM_FlowBatch(benchmark::State& state) {
  const auto jobs = adder_strategy_jobs();
  for (auto _ : state) {
    flow::Runner runner({.jobs = static_cast<unsigned>(state.range(0))});
    benchmark::DoNotOptimize(runner.run(jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_FlowBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The same batch against a persistent Runner whose program cache is already
// warm: every job is a (fingerprint, canonical config key) hit, so the
// pipeline work collapses to cache lookups + report copies. The gap to
// BM_FlowBatch/1 is the compile-cache win for repeated sweeps.
void BM_FlowBatchWarmProgramCache(benchmark::State& state) {
  const auto jobs = adder_strategy_jobs();
  flow::Runner runner({.jobs = 1});
  benchmark::DoNotOptimize(runner.run(jobs));  // cold fill
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_FlowBatchWarmProgramCache)->Unit(benchmark::kMillisecond);

std::string perf_store_dir() {
  return (std::filesystem::temp_directory_path() / "rlim_perf_store")
      .string();
}

// Cold disk store: every iteration starts from an empty store, so the
// pipeline work runs in full *plus* the write-through serialization. The
// delta to BM_FlowBatch/1 is the price of persisting a sweep.
void BM_FlowBatchColdDiskStore(benchmark::State& state) {
  const auto jobs = adder_strategy_jobs();
  const auto dir = perf_store_dir();
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    flow::Runner runner({.jobs = 1, .cache_dir = dir});
    benchmark::DoNotOptimize(runner.run(jobs));
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_FlowBatchColdDiskStore)->Unit(benchmark::kMillisecond);

// Warm disk store, cold process: a fresh Runner per iteration (its
// in-memory cache empty, as a new invocation would be) against a
// pre-populated store — every job is a program-level disk hit. Compare
// with BM_FlowBatch/1 (no cache at all, cold) and
// BM_FlowBatchWarmProgramCache (in-memory hit, the upper bound).
void BM_FlowBatchWarmDiskStore(benchmark::State& state) {
  const auto jobs = adder_strategy_jobs();
  const auto dir = perf_store_dir();
  std::filesystem::remove_all(dir);
  {
    flow::Runner seeder({.jobs = 1, .cache_dir = dir});
    benchmark::DoNotOptimize(seeder.run(jobs));
  }
  for (auto _ : state) {
    flow::Runner runner({.jobs = 1, .cache_dir = dir});
    benchmark::DoNotOptimize(runner.run(jobs));
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_FlowBatchWarmDiskStore)->Unit(benchmark::kMillisecond);

// Decode throughput of the store's bulk MIG payload: bytes → validated
// arena graph (adopt_raw), the dominant work of a disk hit after the frame
// is mapped. Items = gates decoded.
void BM_StoreDeserializeMig(benchmark::State& state) {
  const auto& graph = adder_graph(static_cast<unsigned>(state.range(0)));
  util::ByteWriter out;
  store::encode(out, graph);
  const auto bytes = out.take();
  for (auto _ : state) {
    util::ByteReader in(bytes);
    benchmark::DoNotOptimize(store::decode_mig(in));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          graph.num_gates());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_StoreDeserializeMig)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

// Map + authenticate one on-disk entry: mmap (or fallback read), magic /
// version / whole-frame FNV check, zero-copy key+payload views. This is the
// fixed per-entry cost a disk hit pays before any decoding.
void BM_StoreMapValidate(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "rlim_perf_entry";
  std::filesystem::remove_all(dir);
  const auto& graph = adder_graph(64);
  store::IoScratch scratch;
  {
    store::DiskStore disk(dir.string());
    disk.store_rewrite(graph.fingerprint(), "bench-key", graph,
                       mig::RewriteStats{}, &scratch);
  }
  const auto name =
      store::entry_file_name(store::EntryKind::Rewrite, graph.fingerprint(),
                             "bench-key");
  const auto path = store::objects_dir(dir) / name.substr(0, 2) / name;
  std::uint64_t frame_bytes = 0;
  for (auto _ : state) {
    util::MmapFile file;
    store::EntryView view;
    const auto status = store::read_entry_view(path, file, view,
                                               &scratch.read_buffer);
    if (status != store::EntryStatus::Ok) {
      state.SkipWithError("entry failed validation");
      break;
    }
    frame_bytes = file.bytes().size();
    benchmark::DoNotOptimize(view.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame_bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreMapValidate)->Unit(benchmark::kMicrosecond);

// Cost of the config front-end itself: spec parse (registry validation
// included) + canonical key rendering — the per-job key path of the cache.
void BM_ConfigParseCanonicalKey(benchmark::State& state) {
  for (auto _ : state) {
    const auto config = core::PipelineConfig::parse(
        "rewrite=endurance:effort=5,select=wear_quota:quota=4,"
        "alloc=start_gap:interval=8,cap=100");
    benchmark::DoNotOptimize(config.canonical_key());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConfigParseCanonicalKey)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
