// Ablation of the paper's §III-B.4 future-work idea: rewriting that keeps
// level differences between connected nodes low (shorter storage durations
// for blocked RRAMs) versus the paper's Algorithm 2. The paper predicts the
// level-balanced MIGs "might not be favorable w.r.t. the length of
// instructions" — this binary measures that trade-off. Both flows are
// expressed as RewriteKinds of one flow::Runner batch.

#include <iostream>

#include "bench_common.hpp"

namespace {

/// Mean over non-PI nodes of (fanout level index − own level): the storage
/// duration proxy the paper reasons with in Fig. 2.
double mean_level_gap(const rlim::mig::Mig& graph) {
  const auto levels = graph.levels();
  const auto reachable = graph.reachable_from_pos();
  std::vector<std::uint32_t> consumer_level(graph.num_nodes(), 0);
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes(); ++gate) {
    if (!reachable[gate]) {
      continue;
    }
    for (const auto fanin : graph.fanins(gate)) {
      consumer_level[fanin.index()] =
          std::max(consumer_level[fanin.index()], levels[gate]);
    }
  }
  double total = 0.0;
  std::size_t count = 0;
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes(); ++gate) {
    if (!reachable[gate] || consumer_level[gate] == 0) {
      continue;
    }
    total += static_cast<double>(consumer_level[gate] - levels[gate]);
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);

  struct Flow {
    std::string label;
    std::string key;  // mig::rewrites() registry key
  };
  const Flow flows[] = {
      {"Algorithm 2", "endurance"},
      {"level-balanced", "level_balanced"},
  };
  const char* names[] = {"adder", "sin", "priority", "router", "cavlc", "voter"};

  std::vector<flow::SourcePtr> sources;
  std::vector<flow::Job> jobs;
  for (const auto* name : names) {
    sources.push_back(flow::Source::benchmark(name));
    for (const auto& flow_case : flows) {
      // The full-endurance preset with its rewrite flow swapped out.
      jobs.push_back({sources.back(),
                      core::PipelineConfig::parse("full,rewrite=" + flow_case.key),
                      {}});
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "Ablation — §III-B.4: level-balancing rewriting vs Algorithm 2\n"
              "(both compiled with Algorithm 3 selection + min-write)";
  doc.columns = {"benchmark", "flow", "gates", "depth", "level gap", "#I",
                 "#R", "STDEV"};
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (std::size_t f = 0; f < std::size(flows); ++f) {
      const auto& result = results[s * std::size(flows) + f];
      const auto& rewritten = *result.prepared;
      doc.add_row({sources[s]->label(), flows[f].label,
                   std::to_string(rewritten.num_gates()),
                   std::to_string(rewritten.depth()),
                   util::Table::fixed(mean_level_gap(rewritten), 2),
                   std::to_string(result.report.instructions),
                   std::to_string(result.report.rrams),
                   util::Table::fixed(result.report.writes.stdev)});
    }
    doc.add_separator();
  }
  doc.add_note("expected shape: the level-balanced flow shrinks the mean "
               "level gap (shorter storage durations); the paper predicts a "
               "possible instruction-count price for it");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "ablation_level_rewriting: " << error.what() << '\n';
  return 1;
}
