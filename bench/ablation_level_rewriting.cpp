// Ablation of the paper's §III-B.4 future-work idea: rewriting that keeps
// level differences between connected nodes low (shorter storage durations
// for blocked RRAMs) versus the paper's Algorithm 2. The paper predicts the
// level-balanced MIGs "might not be favorable w.r.t. the length of
// instructions" — this binary measures that trade-off.

#include <iostream>

#include "bench_common.hpp"
#include "mig/rewriting.hpp"

namespace {

/// Mean over non-PI nodes of (fanout level index − own level): the storage
/// duration proxy the paper reasons with in Fig. 2.
double mean_level_gap(const rlim::mig::Mig& graph) {
  const auto levels = graph.levels();
  const auto reachable = graph.reachable_from_pos();
  std::vector<std::uint32_t> consumer_level(graph.num_nodes(), 0);
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes(); ++gate) {
    if (!reachable[gate]) {
      continue;
    }
    for (const auto fanin : graph.fanins(gate)) {
      consumer_level[fanin.index()] =
          std::max(consumer_level[fanin.index()], levels[gate]);
    }
  }
  double total = 0.0;
  std::size_t count = 0;
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes(); ++gate) {
    if (!reachable[gate] || consumer_level[gate] == 0) {
      continue;
    }
    total += static_cast<double>(consumer_level[gate] - levels[gate]);
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace

int main() {
  using namespace rlim;

  std::cout << "Ablation — §III-B.4: level-balancing rewriting vs Algorithm 2\n"
            << "(both compiled with Algorithm 3 selection + min-write)\n\n";

  util::Table table({"benchmark", "flow", "gates", "depth", "level gap", "#I",
                     "#R", "STDEV"});

  const char* names[] = {"adder", "sin", "priority", "router", "cavlc", "voter"};
  for (const auto* name : names) {
    const auto& spec = bench::find_benchmark(name);
    const auto original = spec.build();
    struct Flow {
      std::string label;
      mig::Mig rewritten;
    };
    const Flow flows[] = {
        {"Algorithm 2", mig::rewrite_endurance(original, 5)},
        {"level-balanced", mig::rewrite_level_balanced(original, 5)},
    };
    for (const auto& flow : flows) {
      core::PipelineConfig config = core::make_config(core::Strategy::FullEndurance);
      const auto report =
          core::compile_prepared(flow.rewritten, config, spec.name);
      table.add_row({spec.name, flow.label,
                     std::to_string(flow.rewritten.num_gates()),
                     std::to_string(flow.rewritten.depth()),
                     util::Table::fixed(mean_level_gap(flow.rewritten), 2),
                     std::to_string(report.instructions),
                     std::to_string(report.rrams),
                     util::Table::fixed(report.writes.stdev)});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: the level-balanced flow shrinks the mean "
               "level gap (shorter storage durations); the paper predicts a "
               "possible instruction-count price for it\n";
  return 0;
}
