// Serve-load generator: replays a seeded mixed-priority job stream through
// an in-process flow::Service and compares the work-stealing scheduler
// (Arg(1)) against the single-shared-queue baseline (Arg(0)) on identical
// bytes. Reports batch throughput (items_per_second == jobs/sec) and the
// p50/p99/p999 of open-loop submit→completion latency (microseconds, from
// on_finished timestamps) — the queueing delay the scheduler exists to
// shape. Compiled into the perf_micro binary so both shapes land in the
// committed BENCH_perf_micro.json baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "benchmarks/suite.hpp"
#include "core/config.hpp"
#include "flow/service.hpp"
#include "sched/deque.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlim;
using Clock = std::chrono::steady_clock;

/// Timestamps completions by ticket via the Service's on_finished hook.
/// Armed only for the latency pass so the timed throughput loop stays free
/// of map traffic.
struct Recorder {
  std::mutex mutex;
  bool enabled = false;
  std::unordered_map<flow::Ticket, Clock::time_point> finish;

  void mark(flow::Ticket ticket) {
    const auto now = Clock::now();
    const std::scoped_lock lock(mutex);
    if (enabled) {
      finish.emplace(ticket, now);
    }
  }
};

/// One request of the replayed stream: a mini-suite graph (mixed sizes), a
/// cap (cache-key diversity), a randomized priority, an occasional soft
/// deadline. ~25% of requests re-issue an earlier one verbatim so duplicate
/// coalescing sees realistic traffic.
struct LoadItem {
  std::size_t bench = 0;
  unsigned cap = 0;
  sched::Priority priority = sched::Priority::Normal;
  std::optional<std::chrono::milliseconds> deadline;
};

std::vector<LoadItem> mixed_stream(std::size_t count, std::size_t benches) {
  util::Xoshiro256 rng(0x10adf00d);
  std::vector<LoadItem> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    LoadItem item;
    if (!stream.empty() && rng.below(100) < 25) {
      item = stream[rng.below(stream.size())];
    } else {
      item.bench = rng.below(benches);
      item.cap = 10 + 10 * static_cast<unsigned>(rng.below(8));
      item.priority =
          static_cast<sched::Priority>(rng.below(sched::kPriorityBands));
      if (rng.below(4) == 0) {
        item.deadline = std::chrono::milliseconds(20 + rng.below(200));
      }
    }
    stream.push_back(item);
  }
  return stream;
}

flow::Job make_job(const LoadItem& item,
                   const std::vector<flow::SourcePtr>& sources,
                   const std::vector<bench::BenchmarkSpec>& specs) {
  flow::Job job;
  job.source = sources[item.bench];
  job.config = core::make_config(core::Strategy::FullEndurance, item.cap);
  job.label = specs[item.bench].name;
  job.priority = item.priority;
  job.deadline = item.deadline;
  return job;
}

void BM_ServeLoad(benchmark::State& state) {
  const bool stealing = state.range(0) != 0;
  auto recorder = std::make_shared<Recorder>();
  flow::ServiceOptions options;
  options.jobs = 4;  // fixed: the A/B must not depend on the host's cores
  options.single_queue = !stealing;
  options.on_finished = [recorder](flow::Ticket ticket) {
    recorder->mark(ticket);
  };
  flow::Service service(options);

  const auto& specs = bench::mini_suite();
  std::vector<flow::SourcePtr> sources;
  sources.reserve(specs.size());
  for (const auto& spec : specs) {
    sources.push_back(flow::Source::benchmark(spec));
  }
  const auto stream = mixed_stream(64, specs.size());
  const auto submit_all = [&] {
    std::vector<flow::Job> jobs;
    jobs.reserve(stream.size());
    for (const auto& item : stream) {
      jobs.push_back(make_job(item, sources, specs));
    }
    return service.submit_batch(std::move(jobs));
  };

  // Warm pass outside the timed loop: first contact compiles every unique
  // cell, the measured iterations exercise scheduling + cache traffic.
  (void)service.collect(submit_all());

  for (auto _ : state) {
    benchmark::DoNotOptimize(service.collect(submit_all()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));

  // Latency pass: one open-loop burst, submit timestamps here, completion
  // timestamps from the hook. This is where queue discipline shows up —
  // the burst is deeper than the worker pool by construction.
  {
    const std::scoped_lock lock(recorder->mutex);
    recorder->enabled = true;
  }
  std::vector<std::pair<flow::Ticket, Clock::time_point>> submits;
  submits.reserve(stream.size());
  for (const auto& item : stream) {
    const auto start = Clock::now();
    submits.emplace_back(service.submit(make_job(item, sources, specs)),
                         start);
  }
  for (const auto& [ticket, start] : submits) {
    (void)service.wait(ticket);
  }
  // wait() returns on the result condition variable; the on_finished hook
  // runs just after, outside the service lock. Rendezvous with the last
  // stragglers before reading the map — by ticket presence, not map size:
  // hooks from the final timed-loop batch may land after the recorder is
  // armed and would otherwise pad the count.
  for (bool all = false; !all; std::this_thread::yield()) {
    const std::scoped_lock lock(recorder->mutex);
    all = std::all_of(submits.begin(), submits.end(), [&](const auto& entry) {
      return recorder->finish.count(entry.first) != 0;
    });
  }
  std::vector<double> micros;
  micros.reserve(submits.size());
  {
    const std::scoped_lock lock(recorder->mutex);
    recorder->enabled = false;
    for (const auto& [ticket, start] : submits) {
      micros.push_back(std::chrono::duration<double, std::micro>(
                           recorder->finish.at(ticket) - start)
                           .count());
    }
  }
  std::sort(micros.begin(), micros.end());
  const auto permille = [&](std::size_t p) {
    return micros[(p * (micros.size() - 1) + 500) / 1000];
  };
  state.counters["p50_us"] = permille(500);
  state.counters["p99_us"] = permille(990);
  state.counters["p999_us"] = permille(999);
}
BENCHMARK(BM_ServeLoad)
    ->Arg(0)  // single shared queue (pre-scheduler convoy shape)
    ->Arg(1)  // per-worker deques + stealing
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // jobs/sec must count wall clock, not this thread's CPU

}  // namespace
