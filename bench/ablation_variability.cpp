// Ablation (extension beyond the paper): cell-to-cell endurance variability.
// Real RRAM endurance is distributed, not uniform — the weakest cell under
// the heaviest traffic dies first, which punishes unbalanced write traffic
// even harder than the paper's uniform-endurance analysis suggests. This
// binary Monte-Carlos arrays with log-normal per-cell endurance and measures
// executions until the first wrong output, naive flow vs full endurance
// management. The two compilations per benchmark run as one Runner batch;
// the Monte-Carlo replay stays on the main thread.

#include <iostream>

#include "bench_common.hpp"
#include "core/lifetime.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;
  using core::Strategy;

  const auto opts = flow::parse_driver_args(argc, argv);

  constexpr std::uint64_t kEndurance = 400;  // scaled-down for simulation
  constexpr unsigned kTrials = 15;
  constexpr std::uint64_t kMaxRuns = 500;

  const char* names[] = {"int2float", "router", "ctrl"};
  std::vector<flow::SourcePtr> sources;
  std::vector<flow::Job> jobs;
  for (const auto* name : names) {
    sources.push_back(flow::Source::benchmark(name));
    jobs.push_back({sources.back(), core::make_config(Strategy::Naive), {}});
    jobs.push_back(
        {sources.back(), core::make_config(Strategy::FullEndurance, 20), {}});
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "Endurance variability study — log-normal per-cell limits "
              "(median " + std::to_string(kEndurance) + " writes, " +
              std::to_string(kTrials) +
              " Monte-Carlo arrays, executions until first wrong output, "
              "capped at " + std::to_string(kMaxRuns) + ")";
  doc.columns = {"benchmark", "sigma", "naive min/median", "full min/median",
                 "median gain"};

  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto& naive = results[s * 2];
    const auto& full = results[s * 2 + 1];

    for (const double sigma : {0.0, 0.3, 0.6}) {
      const auto naive_study = core::lifetime_under_variability(
          naive.report.program, sources[s]->original(), kEndurance, sigma,
          kTrials, kMaxRuns, 11);
      const auto full_study = core::lifetime_under_variability(
          full.report.program, *full.prepared, kEndurance, sigma, kTrials,
          kMaxRuns, 11);
      const auto gain = static_cast<double>(full_study.median) /
                        static_cast<double>(std::max<std::uint64_t>(
                            1, naive_study.median));
      doc.add_row({sources[s]->label(), util::Table::fixed(sigma, 1),
                   std::to_string(naive_study.min) + "/" +
                       std::to_string(naive_study.median),
                   std::to_string(full_study.min) + "/" +
                       std::to_string(full_study.median),
                   util::Table::fixed(gain, 1) + "x"});
    }
    doc.add_separator();
  }
  doc.add_note("expected shape: variability shortens everyone's life, but "
               "balanced traffic keeps its relative advantage (or grows it): "
               "hotspots and weak cells compound");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "ablation_variability: " << error.what() << '\n';
  return 1;
}
