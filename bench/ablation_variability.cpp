// Ablation (extension beyond the paper): cell-to-cell endurance variability.
// Real RRAM endurance is distributed, not uniform — the weakest cell under
// the heaviest traffic dies first, which punishes unbalanced write traffic
// even harder than the paper's uniform-endurance analysis suggests. This
// binary Monte-Carlos arrays with log-normal per-cell endurance and measures
// executions until the first wrong output, naive flow vs full endurance
// management.

#include <iostream>

#include "bench_common.hpp"
#include "core/lifetime.hpp"

int main() {
  using namespace rlim;
  using core::Strategy;

  constexpr std::uint64_t kEndurance = 400;  // scaled-down for simulation
  constexpr unsigned kTrials = 15;
  constexpr std::uint64_t kMaxRuns = 500;

  std::cout << "Endurance variability study — log-normal per-cell limits "
               "(median " << kEndurance << " writes, " << kTrials
            << " Monte-Carlo arrays, executions until first wrong output, "
               "capped at " << kMaxRuns << ")\n\n";

  util::Table table({"benchmark", "sigma", "naive min/median", "full min/median",
                     "median gain"});

  for (const auto* name : {"int2float", "router", "ctrl"}) {
    const auto& spec = bench::find_benchmark(name);
    const auto prepared = benchharness::prepare_benchmark(spec);
    const auto naive = benchharness::run(prepared, Strategy::Naive);
    const auto full = benchharness::run(prepared, Strategy::FullEndurance, 20);

    for (const double sigma : {0.0, 0.3, 0.6}) {
      const auto naive_study = core::lifetime_under_variability(
          naive.program, prepared.original, kEndurance, sigma, kTrials, kMaxRuns,
          11);
      const auto full_study = core::lifetime_under_variability(
          full.program, prepared.rewritten_endurance, kEndurance, sigma, kTrials,
          kMaxRuns, 11);
      const auto gain = static_cast<double>(full_study.median) /
                        static_cast<double>(std::max<std::uint64_t>(
                            1, naive_study.median));
      table.add_row({spec.name, util::Table::fixed(sigma, 1),
                     std::to_string(naive_study.min) + "/" +
                         std::to_string(naive_study.median),
                     std::to_string(full_study.min) + "/" +
                         std::to_string(full_study.median),
                     util::Table::fixed(gain, 1) + "x"});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: variability shortens everyone's life, but "
               "balanced traffic keeps its relative advantage (or grows it): "
               "hotspots and weak cells compound\n";
  return 0;
}
