// Regenerates paper Table I: min/max/STDEV of per-cell write counts for the
// five incremental endurance-management configurations, with the improvement
// of each configuration's STDEV over the naive baseline.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rlim;
  using benchharness::min_max;
  using core::Strategy;

  std::cout << "Table I — write balance across endurance configurations ("
            << benchharness::suite_label() << ")\n"
            << "columns: naive | PLiM compiler [21] | + min-write | "
               "+ endurance rewriting | + endurance compilation\n\n";

  util::Table table({"benchmark", "PI/PO",
                     "min/max", "STDEV",                      // naive
                     "min/max", "STDEV", "impr.",             // [21]
                     "min/max", "STDEV", "impr.",             // min write
                     "min/max", "STDEV", "impr.",             // + rewriting
                     "min/max", "STDEV", "impr."});           // + compilation

  double sum_stdev[5] = {};
  double sum_impr[4] = {};
  std::size_t count = 0;

  for (const auto& spec : benchharness::selected_suite()) {
    const auto prepared = benchharness::prepare_benchmark(spec);
    const core::EnduranceReport reports[5] = {
        benchharness::run(prepared, Strategy::Naive),
        benchharness::run(prepared, Strategy::Plim21),
        benchharness::run(prepared, Strategy::MinWrite),
        benchharness::run(prepared, Strategy::MinWriteEnduranceRewrite),
        benchharness::run(prepared, Strategy::FullEndurance),
    };

    std::vector<std::string> row{
        spec.name, std::to_string(spec.pis) + "/" + std::to_string(spec.pos)};
    for (int i = 0; i < 5; ++i) {
      row.push_back(min_max(reports[i].writes));
      row.push_back(util::Table::fixed(reports[i].writes.stdev));
      if (i > 0) {
        const auto impr = core::stdev_improvement(reports[0], reports[i]);
        row.push_back(util::Table::percent(impr));
        sum_impr[i - 1] += impr;
      }
      sum_stdev[i] += reports[i].writes.stdev;
    }
    table.add_row(std::move(row));
    ++count;
  }

  const auto denom = static_cast<double>(count);
  table.add_separator();
  table.add_row({"AVG", "",
                 "", util::Table::fixed(sum_stdev[0] / denom),
                 "", util::Table::fixed(sum_stdev[1] / denom),
                 util::Table::percent(sum_impr[0] / denom),
                 "", util::Table::fixed(sum_stdev[2] / denom),
                 util::Table::percent(sum_impr[1] / denom),
                 "", util::Table::fixed(sum_stdev[3] / denom),
                 util::Table::percent(sum_impr[2] / denom),
                 "", util::Table::fixed(sum_stdev[4] / denom),
                 util::Table::percent(sum_impr[3] / denom)});

  std::cout << table.to_string() << '\n';
  std::cout << "paper reference (avg impr. vs naive): [21] 30.95%  "
               "min-write 57.07%  +rewriting 64.42%  +compilation 72.17%\n";
  return 0;
}
