// Regenerates paper Table I: min/max/STDEV of per-cell write counts for the
// five incremental endurance-management configurations, with the improvement
// of each configuration's STDEV over the naive baseline. Runs the whole
// benchmark × strategy sweep as one flow::Runner batch: the rewrite cache
// runs each rewriting flavour once per benchmark, and --jobs N parallelizes
// the grid.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;
  using benchharness::min_max;
  using core::Strategy;

  const auto opts = flow::parse_driver_args(argc, argv);
  const auto suite = flow::suite();
  const auto sources = flow::suite_sources(suite);

  std::vector<flow::Job> jobs;
  for (const auto& source : sources) {
    for (const auto strategy : flow::paper_strategies()) {
      jobs.push_back({source, core::make_config(strategy), {}});
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "Table I — write balance across endurance configurations (" +
              suite.label + ")";
  doc.columns = {"benchmark", "PI/PO",
                 "min/max", "STDEV",                      // naive
                 "min/max", "STDEV", "impr.",             // [21]
                 "min/max", "STDEV", "impr.",             // min write
                 "min/max", "STDEV", "impr.",             // + rewriting
                 "min/max", "STDEV", "impr."};            // + compilation
  doc.add_note("columns: naive | PLiM compiler [21] | + min-write | "
               "+ endurance rewriting | + endurance compilation");

  double sum_stdev[5] = {};
  double sum_impr[4] = {};
  std::size_t count = 0;

  for (std::size_t b = 0; b < sources.size(); ++b) {
    const auto* reports = &results[b * 5];
    std::vector<std::string> row{
        sources[b]->label(), std::to_string(sources[b]->pis()) + "/" +
                                 std::to_string(sources[b]->pos())};
    for (int i = 0; i < 5; ++i) {
      row.push_back(min_max(reports[i].report.writes));
      row.push_back(util::Table::fixed(reports[i].report.writes.stdev));
      if (i > 0) {
        const auto impr =
            core::stdev_improvement(reports[0].report, reports[i].report);
        row.push_back(util::Table::percent(impr));
        sum_impr[i - 1] += impr;
      }
      sum_stdev[i] += reports[i].report.writes.stdev;
    }
    doc.add_row(std::move(row));
    ++count;
  }

  const auto denom = static_cast<double>(count);
  doc.add_separator();
  doc.add_row({"AVG", "",
               "", util::Table::fixed(sum_stdev[0] / denom),
               "", util::Table::fixed(sum_stdev[1] / denom),
               util::Table::percent(sum_impr[0] / denom),
               "", util::Table::fixed(sum_stdev[2] / denom),
               util::Table::percent(sum_impr[1] / denom),
               "", util::Table::fixed(sum_stdev[3] / denom),
               util::Table::percent(sum_impr[2] / denom),
               "", util::Table::fixed(sum_stdev[4] / denom),
               util::Table::percent(sum_impr[3] / denom)});
  doc.add_note("paper reference (avg impr. vs naive): [21] 30.95%  "
               "min-write 57.07%  +rewriting 64.42%  +compilation 72.17%");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "table1_write_balance: " << error.what() << '\n';
  return 1;
}
