// Ablation (extension beyond the paper): compile-time write balancing vs
// Start-Gap [8], the memory-level runtime wear-leveling the paper cites from
// the PCM literature. Start-Gap rotates the logical-to-physical mapping
// underneath the write trace; we replay each compiled program's trace
// through it and compare the resulting distributions.

#include <iostream>

#include "bench_common.hpp"
#include "core/startgap.hpp"

int main() {
  using namespace rlim;
  using core::Strategy;

  std::cout << "Start-Gap [8] vs compile-time endurance management\n"
            << "(gap interval 16; Start-Gap counts include gap-move "
               "overhead writes)\n\n";

  util::Table table({"benchmark", "naive STDEV", "naive+start-gap",
                     "full-endurance STDEV", "full+start-gap"});

  double sums[4] = {};
  std::size_t count = 0;
  for (const auto& spec : benchharness::selected_suite()) {
    const auto prepared = benchharness::prepare_benchmark(spec);
    const auto naive = benchharness::run(prepared, Strategy::Naive);
    const auto full = benchharness::run(prepared, Strategy::FullEndurance);

    const auto replay = [](const core::EnduranceReport& report) {
      const auto trace = core::write_trace(report.program);
      const auto counts =
          core::replay_with_start_gap(trace, report.program.num_cells(), 16);
      return util::compute_stats(counts).stdev;
    };
    const double values[4] = {naive.writes.stdev, replay(naive),
                              full.writes.stdev, replay(full)};
    table.add_row({spec.name, util::Table::fixed(values[0]),
                   util::Table::fixed(values[1]), util::Table::fixed(values[2]),
                   util::Table::fixed(values[3])});
    for (int i = 0; i < 4; ++i) {
      sums[i] += values[i];
    }
    ++count;
  }

  const auto denom = static_cast<double>(count);
  table.add_separator();
  table.add_row({"AVG", util::Table::fixed(sums[0] / denom),
                 util::Table::fixed(sums[1] / denom),
                 util::Table::fixed(sums[2] / denom),
                 util::Table::fixed(sums[3] / denom)});
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: Start-Gap softens the naive flow's hotspots "
               "but a single program execution is too short for full "
               "rotation; compile-time balancing wins, and combining both "
               "helps little once traffic is already balanced\n";
  return 0;
}
