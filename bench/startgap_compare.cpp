// Ablation (extension beyond the paper): compile-time write balancing vs
// Start-Gap [8], the memory-level runtime wear-leveling the paper cites from
// the PCM literature. Start-Gap rotates the logical-to-physical mapping
// underneath the write trace; we replay each compiled program's trace
// through it and compare the resulting distributions. Both compilations per
// benchmark run as one flow::Runner batch.

#include <iostream>

#include "bench_common.hpp"
#include "core/startgap.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;
  using core::Strategy;

  const auto opts = flow::parse_driver_args(argc, argv);
  const auto sources = flow::suite_sources();

  std::vector<flow::Job> jobs;
  for (const auto& source : sources) {
    jobs.push_back({source, core::make_config(Strategy::Naive), {}});
    jobs.push_back({source, core::make_config(Strategy::FullEndurance), {}});
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title = "Start-Gap [8] vs compile-time endurance management";
  doc.add_note("(gap interval 16; Start-Gap counts include gap-move "
               "overhead writes)");
  doc.columns = {"benchmark", "naive STDEV", "naive+start-gap",
                 "full-endurance STDEV", "full+start-gap"};

  double sums[4] = {};
  std::size_t count = 0;
  for (std::size_t b = 0; b < sources.size(); ++b) {
    const auto& naive = results[b * 2].report;
    const auto& full = results[b * 2 + 1].report;

    const auto replay = [](const core::EnduranceReport& report) {
      const auto trace = core::write_trace(report.program);
      const auto counts =
          core::replay_with_start_gap(trace, report.program.num_cells(), 16);
      return util::compute_stats(counts).stdev;
    };
    const double values[4] = {naive.writes.stdev, replay(naive),
                              full.writes.stdev, replay(full)};
    doc.add_row({sources[b]->label(), util::Table::fixed(values[0]),
                 util::Table::fixed(values[1]), util::Table::fixed(values[2]),
                 util::Table::fixed(values[3])});
    for (int i = 0; i < 4; ++i) {
      sums[i] += values[i];
    }
    ++count;
  }

  const auto denom = static_cast<double>(count);
  doc.add_separator();
  doc.add_row({"AVG", util::Table::fixed(sums[0] / denom),
               util::Table::fixed(sums[1] / denom),
               util::Table::fixed(sums[2] / denom),
               util::Table::fixed(sums[3] / denom)});
  doc.add_note("expected shape: Start-Gap softens the naive flow's hotspots "
               "but a single program execution is too short for full "
               "rotation; compile-time balancing wins, and combining both "
               "helps little once traffic is already balanced");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "startgap_compare: " << error.what() << '\n';
  return 1;
}
