// Monte-Carlo fault-injection lifetime sweep (extension beyond the paper).
// Compiles each benchmark under the full endurance flow and runs seeded
// fault scenarios through the `fault=` config dimension: stuck-at defects,
// stuck-at + spare-cell remapping, resistance drift, and mixed-mode region
// partitioning. Because the scenario lives in the PipelineConfig, the sweep
// itself executes inside the Runner's compile step (and lands in the
// pipeline cache); this driver only renders the distributions.
//
// The driver also replays the first scenario twice and verifies the
// distributions are identical — the determinism contract the CI replay step
// checks end-to-end over CSV bytes.

#include <iostream>
#include <iterator>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace rlim;

  const auto opts = flow::parse_driver_args(argc, argv);

  const char* scenarios[] = {
      "full,fault=stuck:rate=0.001:endurance=400:sigma=0.3:trials=9:runs=300:seed=7",
      "full,fault=stuck:rate=0.001:endurance=400:sigma=0.3:trials=9:runs=300:seed=7"
      ":repair=remap:spares=16",
      "full,fault=drift:rate=0.0005:endurance=400:sigma=0.3:trials=9:runs=300:seed=7",
      "full,fault=mixed:logic_rate=0.002:mem_rate=0.0001:logic_wear=2"
      ":endurance=400:sigma=0.3:trials=9:runs=300:seed=7",
  };
  const char* names[] = {"int2float", "router", "ctrl"};

  std::vector<flow::SourcePtr> sources;
  std::vector<flow::Job> jobs;
  for (const auto* name : names) {
    sources.push_back(flow::Source::benchmark(name));
    for (const auto* scenario : scenarios) {
      jobs.push_back(
          {sources.back(), core::PipelineConfig::parse(scenario), {}});
    }
  }
  flow::Runner runner({.jobs = opts.jobs, .cache_dir = opts.cache_dir});
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  flow::Report doc;
  doc.title =
      "Fault-injection lifetime sweep — full endurance flow, 9 seeded "
      "trials per scenario, executions until first wrong output (cap 300)";
  doc.columns = {"benchmark", "scenario", "life min/p50/p99/max",
                 "failed cells", "remap/drop", "censored"};

  const char* labels[] = {"stuck", "stuck+remap", "drift", "mixed"};
  constexpr std::size_t kScenarios = std::size(scenarios);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (std::size_t v = 0; v < kScenarios; ++v) {
      const auto& result = results[s * kScenarios + v];
      const auto& dist = result.report.fault_sweep;
      if (!dist) {
        throw Error("fault_sweep: report missing the lifetime distribution");
      }
      doc.add_row({sources[s]->label(), labels[v],
                   std::to_string(dist->lifetime_min) + "/" +
                       std::to_string(dist->lifetime_p50) + "/" +
                       std::to_string(dist->lifetime_p99) + "/" +
                       std::to_string(dist->lifetime_max),
                   std::to_string(dist->failed_cells_min) + ".." +
                       std::to_string(dist->failed_cells_max),
                   std::to_string(dist->remapped_total) + "/" +
                       std::to_string(dist->dropped_writes),
                   std::to_string(dist->censored)});
    }
    doc.add_separator();
  }

  // Determinism self-check: recompiling the first scenario must reproduce
  // the distribution bit-exactly (seeded trials, decorrelated streams).
  {
    flow::Runner replay({.jobs = opts.jobs, .cache_dir = ""});
    const auto again = replay.run({jobs.front()});
    flow::throw_on_error(again);
    if (!(again.front().report.fault_sweep == results.front().report.fault_sweep)) {
      throw Error("fault_sweep: replay of the same seed diverged");
    }
  }

  doc.add_note("expected shape: remapping stretches the stuck-at tail; "
               "drift fails gently and mostly censors; mixed-mode logic wear "
               "dominates once stuck cells are rare");
  doc.add_note("determinism: same-seed replay reproduced the first scenario "
               "bit-exactly");

  flow::make_sink(opts.format)->write(doc, std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "fault_sweep: " << error.what() << '\n';
  return 1;
}
