// Mixed policy sweep (registry-era extension beyond the paper): crosses the
// five paper presets with registry-only policies the old enums could not
// express (wear_quota selection, start_gap allocation), repeats the whole
// grid to exercise the program cache, and self-checks the two contracts the
// flow layer guarantees:
//
//   1. repeated (fingerprint, canonical config key) pairs hit the program
//      cache — compilation runs once per distinct pair, under any --jobs N;
//   2. the rendered report is byte-identical between --jobs 1 and the
//      requested worker count.
//
// Exits non-zero if either check fails, so the bench smoke run enforces the
// cache semantics end-to-end.

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/lifetime.hpp"

namespace {

using namespace rlim;

std::vector<flow::Job> build_jobs(const std::vector<flow::SourcePtr>& sources) {
  // The five presets plus two registry-only configurations, twice over —
  // the second round must be answered entirely from the program cache.
  std::vector<std::string> specs;
  for (const auto& [alias, strategy] : core::strategy_aliases()) {
    (void)strategy;
    specs.emplace_back(alias);
  }
  specs.emplace_back("rewrite=endurance,select=wear_quota:quota=4,alloc=min_write");
  specs.emplace_back("full,alloc=start_gap:interval=8");

  std::vector<flow::Job> jobs;
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const auto& source : sources) {
      for (const auto& spec : specs) {
        jobs.push_back({source, core::PipelineConfig::parse(spec), {}});
      }
    }
  }
  return jobs;
}

std::string render(const std::vector<flow::Job>& jobs,
                   const std::vector<flow::JobResult>& results,
                   const std::string& suite_label, flow::ReportFormat format) {
  flow::Report doc;
  doc.title = "Mixed policy sweep — presets x registry-only policies (" +
              suite_label + ")";
  doc.columns = {"benchmark", "config", "#I", "#R", "min/max", "STDEV",
                 "executions@1e10"};
  // Report only the first round; the repeat exists to exercise the cache.
  const auto first_round = results.size() / 2;
  for (std::size_t i = 0; i < first_round; ++i) {
    const auto& report = results[i].report;
    doc.add_row({report.benchmark, jobs[i].config.canonical_key(),
                 std::to_string(report.instructions),
                 std::to_string(report.rrams),
                 rlim::benchharness::min_max(report.writes),
                 util::Table::fixed(report.writes.stdev),
                 std::to_string(core::estimate_lifetime(report.writes)
                                    .executions_to_first_failure)});
  }
  doc.add_note("wear_quota / start_gap are registry-only policies — "
               "inexpressible in the pre-registry enum API");
  std::ostringstream os;
  flow::make_sink(format)->write(doc, os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) try {
  const auto opts = flow::parse_driver_args(argc, argv);
  const auto suite = flow::suite();
  const auto sources = flow::suite_sources(suite);
  const auto jobs = build_jobs(sources);
  const auto distinct = jobs.size() / 2;

  // Both runners may share one persistent store: the serial run seeds it
  // and the parallel run answers from disk — program_misses still counts
  // per distinct (fingerprint, key) pair, so the self-checks below hold
  // with or without --cache-dir.
  flow::Runner serial({.jobs = 1, .cache_dir = opts.cache_dir});
  flow::Runner parallel(
      {.jobs = opts.jobs == 0 ? 8 : opts.jobs, .cache_dir = opts.cache_dir});
  const auto serial_results = serial.run(jobs);
  const auto parallel_results = parallel.run(jobs);
  flow::throw_on_error(serial_results);
  flow::throw_on_error(parallel_results);

  const auto serial_text = render(jobs, serial_results, suite.label, opts.format);
  const auto parallel_text =
      render(jobs, parallel_results, suite.label, opts.format);
  std::cout << parallel_text << "program cache: "
            << parallel.cache().program_misses() << " compiles, "
            << parallel.cache().program_hits() << " hits over " << jobs.size()
            << " jobs\n";

  int failures = 0;
  if (parallel.cache().program_misses() != distinct ||
      parallel.cache().program_hits() != jobs.size() - distinct) {
    std::cerr << "FAIL: expected " << distinct << " compiles and "
              << jobs.size() - distinct << " program-cache hits\n";
    ++failures;
  }
  if (serial_text != parallel_text) {
    std::cerr << "FAIL: report bytes differ between --jobs 1 and parallel run\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
} catch (const std::exception& error) {
  std::cerr << "mixed_policy_sweep: " << error.what() << '\n';
  return 1;
}
