#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlim::cli {

/// Entry point of the `rlim_cli` tool, separated from main() for testing.
///
/// Commands:
///   info    <netlist>                     — PI/PO/gate/depth statistics
///   rewrite <in> <out> [options]          — run a rewriting flow
///   compile <netlist|bench:NAME> [opts]   — compile to RM3, print the report
///   suite                                 — list the built-in benchmarks
///
/// Options:
///   --strategy naive|plim21|min-write|endurance-rewrite|full   (compile)
///   --cap N        maximum write count strategy                (compile)
///   --flow plim21|endurance|level                              (rewrite)
///   --effort N     rewriting cycles (default 5)
///   --disasm       print the RM3 program                       (compile)
///   --verify       cross-check the program on the crossbar     (compile)
///
/// Netlist files are selected by extension: `.mig` (text format) or `.blif`.
/// `bench:NAME` compiles a generator from the built-in suite.
///
/// Returns a process exit code; all output goes to `out` / `err`.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace rlim::cli
