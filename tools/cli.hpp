#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlim::cli {

/// Entry point of the `rlim_cli` tool, separated from main() for testing.
///
/// Commands:
///   info    <netlist>                     — PI/PO/gate/depth statistics
///   rewrite <in> <out> [options]          — run a rewriting flow
///   compile <netlist|bench:NAME>... [opts]— compile to RM3, print report(s)
///   suite                                 — list the built-in benchmarks;
///                                           with --config/--strategy:
///                                           compile the whole suite
///   serve   --stdin-jobs [opts]           — async job server over
///                                           flow::Service: reads newline-
///                                           delimited job specs from stdin,
///                                           executes them as they arrive,
///                                           streams one CSV result row per
///                                           job (see below)
///   policies                              — list the registered rewrite /
///                                           selection / allocation policies
///   cache   stats|gc|clear|verify         — maintain the persistent
///                                           pipeline store (see --cache-dir)
///   version (or --version)                — project + store format version
///
/// Options:
///   --strategy naive|plim21|min-write|endurance-rewrite|full (compile, suite)
///   --cap N        maximum write count strategy              (compile, suite)
///   --config SPEC  registry-keyed pipeline spec, e.g.        (compile, suite)
///                  "rewrite=endurance:effort=5,select=wear_quota:quota=4,
///                   alloc=start_gap,cap=100" or "full,cap=100"
///                  (replaces --strategy/--cap; see `rlim policies`)
///   --flow plim21|endurance|level                              (rewrite)
///   --effort N     rewriting cycles (default 5)
///   --jobs N       worker threads for batch compiles     (compile, serve)
///                  (default: hardware concurrency)
///   --stdin-jobs   read `NETLIST [CONFIG-SPEC]` lines from stdin   (serve)
///   --format table|csv|json   report serialization   (compile, suite, policies)
///   --disasm       print the RM3 program (single netlist only) (compile)
///   --verify       cross-check the program on the crossbar     (compile)
///   --cache-dir D  persistent pipeline store directory (compile, suite, cache);
///                  overrides the RLIM_CACHE_DIR environment variable. When
///                  neither is set, compile/suite keep the disk tier off and
///                  `cache` commands fail. A second identical sweep against
///                  the same store recompiles nothing and prints a cache
///                  summary line on stderr (stdout stays byte-identical).
///   --max-bytes N  size cap for `cache gc` (evicts oldest-first)
///   --max-age-days N  age cap for `cache gc`
///
/// `compile` accepts any number of netlists and runs them as one
/// flow::Runner batch: rewriting results are shared through the content-
/// addressed cache and the batch is executed on `--jobs` worker threads.
/// A single netlist in `table` format keeps the verbose key/value report;
/// everything else renders one summary row per netlist through the selected
/// ReportSink.
///
/// `serve --stdin-jobs` runs an asynchronous job loop over flow::Service:
/// each input line is `NETLIST [CONFIG-SPEC]` (blank lines and `#` comments
/// skipped; lines without a config use --config/--strategy, default `full`).
/// Jobs are submitted — and start executing on `--jobs` workers — as their
/// lines arrive; duplicate submissions coalesce on (fingerprint, canonical
/// config key). Results stream to stdout as CSV rows in submission order
/// (the only order that keeps output byte-stable for any worker count), one
/// header row first; per-job failures become `error:` rows and flip the exit
/// code to 1 after the stream drains. Telemetry goes to stderr.
///
/// Netlist files are selected by extension: `.mig` (text format) or `.blif`.
/// `bench:NAME` compiles a generator from the built-in suite.
///
/// Returns a process exit code; all output goes to `out` / `err`, and
/// `serve` reads its job stream from `in` (std::cin for the 3-argument
/// overload).
int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err);
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace rlim::cli
