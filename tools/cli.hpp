#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlim::cli {

/// Entry point of the `rlim_cli` tool, separated from main() for testing.
///
/// Commands:
///   info    <netlist>                     — PI/PO/gate/depth statistics
///   rewrite <in> <out> [options]          — run a rewriting flow
///   compile <netlist|bench:NAME>... [opts]— compile to RM3, print report(s)
///   suite                                 — list the built-in benchmarks;
///                                           with --config/--strategy:
///                                           compile the whole suite
///   serve   --stdin-jobs [opts]           — async job server over
///                                           flow::Service: reads newline-
///                                           delimited job specs from stdin,
///                                           executes them as they arrive,
///                                           streams one CSV result row per
///                                           job (see below)
///   serve   --listen HOST:PORT [opts]     — socket shard: accepts TCP
///                                           connections speaking length-
///                                           delimited flow::wire frames,
///                                           executes JobSpecs on an owned
///                                           flow::Service, streams results
///                                           back; SIGINT/SIGTERM shuts down
///   submit  --connect EP[,EP...] [opts]   — reads the same job-spec lines
///                                           as `serve --stdin-jobs`, ships
///                                           them to serving shards via
///                                           consistent hashing with retry +
///                                           failover, prints the same CSV
///   stats   --connect EP[,EP...]          — ping every shard, render its
///                                           service/cache/store/scheduler
///                                           counters (scheduler rows render
///                                           only once any gauge is nonzero)
///   loadgen [--connect EP[,EP...]] [opts] — closed-loop load generator:
///                                           replays a seeded stream of
///                                           mini-suite compiles (mixed
///                                           sizes, randomized priorities and
///                                           deadlines, duplicate ratio)
///                                           through --streams concurrent
///                                           clients against an in-process
///                                           service (default) or a shard
///                                           fleet; reports jobs/sec and
///                                           p50/p99/p999 latency
///   policies                              — list the registered rewrite /
///                                           pass / selection / allocation
///                                           policies
///   cache   stats|gc|clear|verify         — maintain the persistent
///                                           pipeline store (see --cache-dir)
///   version (or --version)                — project + store format version
///
/// Options:
///   --strategy naive|plim21|min-write|endurance-rewrite|full (compile, suite)
///   --cap N        maximum write count strategy              (compile, suite)
///   --config SPEC  registry-keyed pipeline spec, e.g.        (compile, suite)
///                  "rewrite=endurance:effort=5,select=wear_quota:quota=4,
///                   alloc=start_gap,cap=100" or "full,cap=100"
///                  (replaces --strategy/--cap; see `rlim policies`).
///                  `rewrite=seq:passes=maj,dist,...` runs an explicit pass
///                  sequence (see the `pass` kind in `rlim policies`)
///   --flow plim21|endurance|level|seq                          (rewrite)
///   --passes P,P,...  pass list for --flow seq                 (rewrite)
///   --until PASS   stop each cycle after the named pass        (rewrite)
///   --dump-after DIR|-  dump the MIG after every pass run to
///                  one file per snapshot in DIR, or to stderr  (rewrite)
///   --effort N     rewriting cycles (default 5)
///   --jobs N       worker threads for batch compiles     (compile, serve)
///                  (default: hardware concurrency)
///   --stdin-jobs   read `NETLIST [CONFIG-SPEC]` lines from stdin   (serve)
///   --listen HOST:PORT        bind the socket front-end            (serve)
///                  (port 0 binds an ephemeral port, printed on stderr)
///   --connect EP[,EP...]      shard endpoints              (submit, stats)
///   --retries N    reconnect-and-resend rounds per shard (default 3)
///                                                        (submit, stats)
///   --connect-timeout-ms N    TCP connect ceiling (default 2000)
///   --request-timeout-ms N    per-connection inactivity ceiling while
///                  responses are outstanding (default 30000)
///   --max-frame-bytes N       wire-frame ceiling, enforced before any
///                  allocation (default 64 MiB)      (serve, submit, stats)
///   --format table|csv|json   report serialization   (compile, suite, policies)
///   --disasm       print the RM3 program (single netlist only) (compile)
///   --verify       cross-check the program on the crossbar     (compile)
///   --cache-dir D  persistent pipeline store directory (compile, suite, cache);
///                  overrides the RLIM_CACHE_DIR environment variable. When
///                  neither is set, compile/suite keep the disk tier off and
///                  `cache` commands fail. A second identical sweep against
///                  the same store recompiles nothing and prints a cache
///                  summary line on stderr (stdout stays byte-identical).
///   --max-bytes N  size cap for `cache gc` (evicts oldest-first)
///   --max-age-days N  age cap for `cache gc`
///   --priority low|normal|high  default scheduling priority for jobs whose
///                  line carries no `@` token (serve, submit); pins the whole
///                  stream's priority for loadgen
///   --deadline-ms N  default soft deadline, milliseconds relative to arrival
///                  at the executing shard (serve, submit, loadgen)
///   --count N      total jobs to replay (loadgen, default 100)
///   --streams N    concurrent closed-loop clients (loadgen, default 2)
///   --seed N       job-stream seed (loadgen; the stream is a pure
///                  function of it)
///   --duplicate-pct N  percentage of jobs that re-issue an earlier job
///                  verbatim, exercising coalescing and caches (default 25)
///   --single-queue route every job through one shared queue instead of the
///                  work-stealing scheduler (loadgen baseline A/B)
///
/// `compile` accepts any number of netlists and runs them as one
/// flow::Runner batch: rewriting results are shared through the content-
/// addressed cache and the batch is executed on `--jobs` worker threads.
/// A single netlist in `table` format keeps the verbose key/value report;
/// everything else renders one summary row per netlist through the selected
/// ReportSink.
///
/// `serve --stdin-jobs` runs an asynchronous job loop over flow::Service:
/// each input line is `NETLIST [CONFIG-SPEC] [@PRIO[:DEADLINE_MS]]` (blank
/// lines and `#` comments skipped; lines without a config use
/// --config/--strategy, default `full`; the optional trailing `@` token —
/// e.g. `@high` or `@low:250` — selects the job's scheduling priority and
/// soft deadline, defaulting to --priority/--deadline-ms, else normal).
/// Jobs are submitted — and start executing on `--jobs` workers — as their
/// lines arrive; duplicate submissions coalesce on (fingerprint, canonical
/// config key). Results stream to stdout as CSV rows in submission order
/// (the only order that keeps output byte-stable for any worker count), one
/// header row first; per-job failures become `error:` rows and flip the exit
/// code to 1 after the stream drains. Telemetry goes to stderr.
///
/// `serve --listen HOST:PORT` binds the same execution loop behind a TCP
/// socket (net::Server): clients ship flow::wire JobSpec frames and receive
/// JobResult frames in completion order, tagged with their own ticket ids.
/// `submit --connect` is the matching client: it reads the identical job-
/// stream syntax, routes each job to a shard by consistent hashing on
/// (graph identity, canonical config key) — so repeated cells always hit
/// the same shard's cache — retries transport failures, fails over to the
/// surviving shards when one dies, and emits CSV rows in input order that
/// are byte-identical to a local `serve --stdin-jobs` run of the same
/// stream. `stats --connect` pings each shard and renders one column per
/// endpoint from its Stats reply.
///
/// Netlist files are selected by extension: `.mig` (text format) or `.blif`.
/// `bench:NAME` compiles a generator from the built-in suite.
///
/// Returns a process exit code; all output goes to `out` / `err`, and
/// `serve` reads its job stream from `in` (std::cin for the 3-argument
/// overload).
int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err);
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace rlim::cli
