#include "cli.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <iostream>
#include <optional>
#include <thread>
#include <utility>

#include <signal.h>

#include "benchmarks/suite.hpp"
#include "core/lifetime.hpp"
#include "fault/fault.hpp"
#include "core/registry.hpp"
#include "flow/runner.hpp"
#include "flow/service.hpp"
#include "flow/suite.hpp"
#include "flow/wire.hpp"
#include "mig/io.hpp"
#include "mig/rewriting.hpp"
#include "pass/dump.hpp"
#include "pass/seq.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "store/disk_store.hpp"
#include "store/format.hpp"
#include "store/gc.hpp"
#include "plim/controller.hpp"
#include "plim/cost_model.hpp"
#include "sched/deque.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace rlim::cli {

namespace {

struct Options {
  std::string command;
  std::vector<std::string> positional;
  std::optional<std::string> strategy;
  std::optional<std::uint64_t> cap;
  std::string config_spec;  // --config: the registry-keyed spec grammar
  std::string flow = "endurance";
  std::string passes;      // rewrite: explicit pass list for --flow seq
  std::string until;       // rewrite: stop each cycle after this pass
  std::string dump_after;  // rewrite: dump directory, or "-" for stderr
  std::optional<int> effort;
  unsigned jobs = 0;  // 0 = hardware concurrency
  // --format when given; most commands default to Table (format_of), serve
  // accepts only csv and must distinguish "unset" from an explicit ask.
  std::optional<flow::ReportFormat> format;
  bool disasm = false;
  bool verify = false;
  bool stdin_jobs = false;  // serve: read job specs from the input stream
  std::string listen;       // serve: HOST:PORT socket front-end
  std::string connect;      // submit/stats: shard endpoint list
  std::optional<unsigned> retries;                   // submit: per-shard
  std::optional<std::uint64_t> connect_timeout_ms;   // submit/stats
  std::optional<std::uint64_t> request_timeout_ms;   // submit/stats
  std::optional<std::uint64_t> max_frame_bytes;      // serve/submit/stats
  std::string cache_dir;  // --cache-dir: overrides RLIM_CACHE_DIR
  std::optional<std::uint64_t> max_bytes;     // cache gc
  std::optional<std::uint64_t> max_age_days;  // cache gc
  std::optional<std::string> priority;        // serve/submit/loadgen default
  std::optional<std::uint64_t> deadline_ms;   // serve/submit/loadgen default
  std::optional<std::uint64_t> count;         // loadgen: total jobs
  std::optional<unsigned> streams;            // loadgen: closed-loop streams
  std::optional<std::uint64_t> seed;          // loadgen: stream seed
  std::optional<unsigned> duplicate_pct;      // loadgen: duplicate ratio
  bool single_queue = false;  // loadgen: scheduler-off baseline
};

/// Strict unsigned parse: digits only, fully consumed. std::stoull would
/// accept "-1" (wrapping) and "10MB" (as 10) — both typos a size/age cap
/// should reject loudly instead of mis-evicting.
std::uint64_t parse_u64(const std::string& option, const std::string& text) {
  require(!text.empty() &&
              text.find_first_not_of("0123456789") == std::string::npos,
          option + " needs a non-negative integer, got '" + text + "'");
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    throw Error(option + " value '" + text + "' is out of range");
  }
}

Options parse(const std::vector<std::string>& args) {
  Options options;
  require(!args.empty(),
          "missing command (info, rewrite, compile, suite, serve, submit, "
          "stats, loadgen, policies, cache, version)");
  options.command = args[0] == "--version" ? "version" : args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto next = [&]() -> const std::string& {
      require(i + 1 < args.size(), "option " + arg + " needs a value");
      return args[++i];
    };
    if (arg == "--strategy") {
      options.strategy = next();
    } else if (arg == "--cap") {
      options.cap = std::stoull(next());
    } else if (arg == "--config") {
      options.config_spec = next();
    } else if (arg == "--flow") {
      options.flow = next();
    } else if (arg == "--passes") {
      options.passes = next();
      require(!options.passes.empty(), "--passes needs a pass list");
    } else if (arg == "--until") {
      options.until = next();
      require(!options.until.empty(), "--until needs a pass name");
    } else if (arg == "--dump-after") {
      options.dump_after = next();
      require(!options.dump_after.empty(),
              "--dump-after needs a directory (or - for stderr)");
    } else if (arg == "--effort") {
      options.effort = std::stoi(next());
    } else if (arg == "--jobs") {
      options.jobs = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--format") {
      options.format = flow::parse_format(next());
    } else if (arg == "--disasm") {
      options.disasm = true;
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg == "--stdin-jobs") {
      options.stdin_jobs = true;
    } else if (arg == "--listen") {
      options.listen = next();
      require(!options.listen.empty(), "--listen needs HOST:PORT");
    } else if (arg == "--connect") {
      options.connect = next();
      require(!options.connect.empty(),
              "--connect needs HOST:PORT[,HOST:PORT...]");
    } else if (arg == "--retries") {
      options.retries = static_cast<unsigned>(parse_u64(arg, next()));
    } else if (arg == "--connect-timeout-ms") {
      options.connect_timeout_ms = parse_u64(arg, next());
    } else if (arg == "--request-timeout-ms") {
      options.request_timeout_ms = parse_u64(arg, next());
    } else if (arg == "--max-frame-bytes") {
      options.max_frame_bytes = parse_u64(arg, next());
      require(*options.max_frame_bytes > 0, "--max-frame-bytes must be > 0");
    } else if (arg == "--cache-dir") {
      options.cache_dir = next();
      require(!options.cache_dir.empty(), "--cache-dir needs a directory");
    } else if (arg == "--max-bytes") {
      options.max_bytes = parse_u64(arg, next());
    } else if (arg == "--max-age-days") {
      options.max_age_days = parse_u64(arg, next());
    } else if (arg == "--priority") {
      options.priority = next();
    } else if (arg == "--deadline-ms") {
      options.deadline_ms = parse_u64(arg, next());
      require(*options.deadline_ms > 0, "--deadline-ms must be > 0");
    } else if (arg == "--count") {
      options.count = parse_u64(arg, next());
    } else if (arg == "--streams") {
      options.streams = static_cast<unsigned>(parse_u64(arg, next()));
    } else if (arg == "--seed") {
      options.seed = parse_u64(arg, next());
    } else if (arg == "--duplicate-pct") {
      options.duplicate_pct = static_cast<unsigned>(parse_u64(arg, next()));
    } else if (arg == "--single-queue") {
      options.single_queue = true;
    } else if (arg.rfind("--", 0) == 0) {
      throw Error("unknown option " + arg);
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

flow::ReportFormat format_of(const Options& options) {
  return options.format.value_or(flow::ReportFormat::Table);
}

/// The job configuration selected by --config / --strategy / --cap /
/// --effort (default: the full-endurance preset).
core::PipelineConfig config_from(const Options& options) {
  core::PipelineConfig config;
  if (!options.config_spec.empty()) {
    require(!options.strategy && !options.cap,
            "--config replaces --strategy/--cap (append ,cap=N to the spec)");
    config = core::PipelineConfig::parse(options.config_spec);
  } else {
    config = core::make_config(
        core::parse_strategy(options.strategy.value_or("full")), options.cap);
  }
  if (options.effort) {
    config.set_effort(*options.effort);
    // set_effort bypasses parse()'s eager validation — re-check so a bad
    // --effort fails here instead of per-job deep inside the batch.
    (void)mig::make_rewrite(config.rewrite);
  }
  return config;
}

/// Label of the selected configuration for report titles: the legacy
/// "strategy NAME (cap N)" wording for --strategy (kept byte-stable), the
/// canonical key for --config.
std::string config_label(const Options& options,
                         const core::PipelineConfig& config) {
  if (!options.config_spec.empty()) {
    return "config " + config.canonical_key();
  }
  return "strategy " + options.strategy.value_or("full") +
         (options.cap ? " (cap " + std::to_string(*options.cap) + ")" : "");
}

/// Resolved persistent-store directory: --cache-dir beats RLIM_CACHE_DIR;
/// empty means the disk tier stays off.
std::string resolve_cache_dir(const Options& options) {
  return options.cache_dir.empty() ? store::env_cache_dir()
                                   : options.cache_dir;
}

/// One telemetry line per invocation when a store is attached. Goes to
/// stderr: report output on stdout must stay byte-identical between a cold
/// and a warm run against the same store.
void print_store_summary(const flow::PipelineCache& cache, std::ostream& err) {
  const auto& disk = cache.disk_store();
  if (disk == nullptr) {
    return;
  }
  const auto counters = disk->counters();
  err << "rlim: cache " << disk->root().string() << ": program loads "
      << counters.program_loads << ", rewrite loads "
      << counters.rewrite_loads << ", stores " << counters.stores
      << ", write failures " << counters.store_failures
      << ", corrupt evicted " << counters.evicted_corrupt
      << ", version evicted " << counters.evicted_version << '\n';
}

mig::Mig load_netlist(const std::string& source) {
  return flow::Source::netlist(source)->original();
}

void save_netlist(const mig::Mig& graph, const std::string& path) {
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".blif") {
    mig::write_blif_file(graph, path);
    return;
  }
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".mig") {
    mig::write_mig_file(graph, path);
    return;
  }
  throw Error("output must end in .mig or .blif");
}

int cmd_info(const Options& options, std::ostream& out) {
  require(options.positional.size() == 1, "info needs exactly one netlist");
  const auto graph = load_netlist(options.positional[0]);
  const auto reachable = graph.reachable_from_pos();
  std::size_t dead = 0;
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes(); ++gate) {
    if (!reachable[gate]) {
      ++dead;
    }
  }
  out << "pis:              " << graph.num_pis() << '\n'
      << "pos:              " << graph.num_pos() << '\n'
      << "gates:            " << graph.num_gates() << " (" << dead << " dead)\n"
      << "depth:            " << graph.depth() << '\n'
      << "complement edges: " << graph.complement_edge_count() << '\n';
  return 0;
}

/// One human-readable line per pipeline position of a per-pass breakdown.
/// Wall time is deliberately omitted from `compile` verbose output (it must
/// stay byte-identical between cold and warm cache runs) but shown by
/// `rewrite`, which always executes the flow.
void print_pass_breakdown(const std::vector<mig::PassStats>& per_pass,
                          std::ostream& out, bool wall) {
  for (const auto& pass : per_pass) {
    out << "  " << pass.name << std::string(pass.name.size() < 8
                                                ? 8 - pass.name.size()
                                                : 1,
                                            ' ')
        << "runs " << pass.runs << ", applications " << pass.applications
        << ", gates " << (pass.gate_delta > 0 ? "+" : "") << pass.gate_delta
        << ", complement edges " << (pass.complement_delta > 0 ? "+" : "")
        << pass.complement_delta << ", depth "
        << (pass.depth_delta > 0 ? "+" : "") << pass.depth_delta;
    if (wall) {
      out << ", " << pass.wall_ns / 1000 << " us";
    }
    out << '\n';
  }
}

int cmd_rewrite(const Options& options, std::ostream& out, std::ostream& err) {
  require(options.positional.size() == 2, "rewrite needs <input> <output>");
  pass::ensure_registered();
  const auto graph = load_netlist(options.positional[0]);

  // Resolve --flow (+ --passes for seq) to a pass list, so every flow runs
  // through the same PassManager and supports --until / --dump-after. The
  // named flows use their alias sequences — byte-identical to the enum-era
  // mig::rewrite_* entry points (the test suite pins this down).
  std::string list;
  if (options.flow == "seq") {
    require(!options.passes.empty(), "--flow seq needs --passes");
    list = options.passes;
  } else {
    require(options.passes.empty(), "--passes needs --flow seq");
    if (options.flow == "plim21") {
      list = pass::alias_passes(mig::RewriteKind::Plim21);
    } else if (options.flow == "endurance") {
      list = pass::alias_passes(mig::RewriteKind::Endurance);
    } else if (options.flow == "level") {
      list = pass::alias_passes(mig::RewriteKind::LevelBalanced);
    } else {
      throw Error("unknown flow '" + options.flow +
                  "' (expected plim21, endurance, level, seq)");
    }
  }
  auto manager = pass::make_manager(list, options.until);
  if (options.dump_after == "-") {
    manager.on_dump(pass::dump_to_stream(err));
  } else if (!options.dump_after.empty()) {
    manager.on_dump(pass::dump_to_directory(options.dump_after));
  }

  mig::RewriteStats stats;
  const auto rewritten =
      manager.run(graph, options.effort.value_or(5), &stats);
  save_netlist(rewritten, options.positional[1]);
  out << "gates: " << stats.initial_gates << " -> " << stats.final_gates << '\n'
      << "complement edges: " << stats.initial_complement_edges << " -> "
      << stats.final_complement_edges << '\n'
      << "cycles run: " << stats.cycles_run << '\n'
      << "passes:\n";
  print_pass_breakdown(stats.per_pass, out, /*wall=*/true);
  return 0;
}

/// The verbose single-netlist report (the historical `compile` output).
int print_compile_details(const Options& options, const flow::JobResult& result,
                          std::ostream& out) {
  const auto& report = result.report;
  const auto lifetime = core::estimate_lifetime(report.writes);

  if (!options.config_spec.empty()) {
    out << "config:          " << report.config.canonical_key();
  } else {
    out << "strategy:        " << options.strategy.value_or("full");
    if (options.cap) {
      out << " (cap " << *options.cap << ")";
    }
  }
  out << '\n'
      << "gates:           " << report.gates_before_rewrite << " -> "
      << report.gates_after_rewrite << '\n';
  if (!result.rewrite_stats.per_pass.empty()) {
    // Deterministic per-pass attribution (wall time excluded): a warm run
    // decoding the stats from the store prints the same bytes as the cold
    // run that computed them.
    out << "rewrite passes (" << result.rewrite_stats.cycles_run
        << " cycles):\n";
    print_pass_breakdown(result.rewrite_stats.per_pass, out, /*wall=*/false);
  }
  out << "instructions:    " << report.instructions << '\n'
      << "rram cells:      " << report.rrams << '\n'
      << "writes min/max:  " << report.writes.min << "/" << report.writes.max
      << '\n'
      << "writes stdev:    " << report.writes.stdev << '\n'
      << "executions@1e10: " << lifetime.executions_to_first_failure << '\n';
  const auto cost = plim::estimate_cost(report.program);
  out << "latency:         " << cost.cycles << " cycles (" << cost.latency_ns
      << " ns @10ns)\n"
      << "energy:          " << cost.energy_pj << " pJ (" << cost.cell_reads
      << " reads, " << cost.cell_writes << " writes)\n";

  if (const auto& sweep = report.fault_sweep) {
    out << "fault model:     " << report.config.fault.canonical() << '\n'
        << "lifetime (" << sweep->trials
        << " trials): min/p50/p99/max " << sweep->lifetime_min << "/"
        << sweep->lifetime_p50 << "/" << sweep->lifetime_p99 << "/"
        << sweep->lifetime_max << " of " << sweep->runs_cap << " runs ("
        << sweep->censored << " censored)\n"
        << "failed cells:    " << sweep->failed_cells_min << ".."
        << sweep->failed_cells_max << " (mean "
        << util::Table::fixed(sweep->failed_cells_mean) << ")\n"
        << "remap/dropped:   " << sweep->remapped_total << "/"
        << sweep->dropped_writes << '\n';
  }

  if (options.verify) {
    const bool ok =
        plim::program_matches_mig(report.program, *result.prepared, 16, 1);
    out << "verification:    " << (ok ? "passed" : "FAILED") << '\n';
    if (!ok) {
      return 2;
    }
  }
  if (options.disasm) {
    out << '\n' << report.program.disassemble();
  }
  return 0;
}

/// The batch-row column set shared by compile, suite, and serve.
const std::vector<std::string>& summary_columns() {
  static const std::vector<std::string> columns = {
      "benchmark", "gates", "#I", "#R", "min/max", "STDEV",
      "executions@1e10"};
  return columns;
}

/// Extra columns for batches whose config requests a fault sweep. Kept out
/// of summary_columns() so serve/submit job streams (which mix per-line
/// configs) and fault-free batches stay byte-identical to previous releases.
const std::vector<std::string>& fault_columns() {
  static const std::vector<std::string> columns = {
      "trials", "life min/p50/p99/max", "failed cells", "remap/drop"};
  return columns;
}

void append_fault_cells(std::vector<std::string>& row,
                        const flow::JobResult& result) {
  const auto& sweep = result.report.fault_sweep;
  if (!sweep) {
    row.insert(row.end(), fault_columns().size(), "-");
    return;
  }
  std::string trials = std::to_string(sweep->trials);
  if (sweep->censored != 0) {
    trials += " (" + std::to_string(sweep->censored) + " cens)";
  }
  row.push_back(std::move(trials));
  row.push_back(std::to_string(sweep->lifetime_min) + "/" +
                std::to_string(sweep->lifetime_p50) + "/" +
                std::to_string(sweep->lifetime_p99) + "/" +
                std::to_string(sweep->lifetime_max));
  row.push_back(std::to_string(sweep->failed_cells_min) + ".." +
                std::to_string(sweep->failed_cells_max) + " (" +
                util::Table::fixed(sweep->failed_cells_mean) + ")");
  row.push_back(std::to_string(sweep->remapped_total) + "/" +
                std::to_string(sweep->dropped_writes));
}

/// One summary row for a job outcome. Failed jobs keep their row — error in
/// the gates column, dashes out to `width` — so the rest of a batch or
/// stream still reports.
std::vector<std::string> result_cells(const std::string& label,
                                      const flow::JobResult& result,
                                      std::size_t width) {
  if (!result.ok()) {
    std::vector<std::string> row{label, "error: " + result.error};
    row.resize(width, "-");
    return row;
  }
  const auto& report = result.report;
  return {report.benchmark,
          std::to_string(report.gates_before_rewrite) + " -> " +
              std::to_string(report.gates_after_rewrite),
          std::to_string(report.instructions), std::to_string(report.rrams),
          std::to_string(report.writes.min) + "/" +
              std::to_string(report.writes.max),
          util::Table::fixed(report.writes.stdev),
          std::to_string(core::estimate_lifetime(report.writes)
                             .executions_to_first_failure)};
}

/// Renders one row per job into `doc` (the shared compile/suite batch
/// table). Returns {any_failed, all_verified}.
std::pair<bool, bool> batch_rows(const Options& options,
                                 const std::vector<flow::Job>& jobs,
                                 const std::vector<flow::JobResult>& results,
                                 flow::Report& doc) {
  doc.columns = summary_columns();
  const bool with_fault =
      !jobs.empty() && fault::active(jobs.front().config.fault);
  if (with_fault) {
    doc.columns.insert(doc.columns.end(), fault_columns().begin(),
                       fault_columns().end());
  }
  if (options.verify) {
    doc.columns.push_back("verified");
  }
  bool all_verified = true;
  bool any_failed = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    auto row =
        result_cells(jobs[i].display_label(), result, doc.columns.size());
    if (!result.ok()) {
      any_failed = true;
    } else {
      if (with_fault) {
        append_fault_cells(row, result);
      }
      if (options.verify) {
        const bool ok = plim::program_matches_mig(result.report.program,
                                                  *result.prepared, 16, 1);
        all_verified &= ok;
        row.push_back(ok ? "passed" : "FAILED");
      }
    }
    doc.add_row(std::move(row));
  }
  return {any_failed, all_verified};
}

int cmd_compile(const Options& options, std::ostream& out,
                std::ostream& err) {
  require(!options.positional.empty(),
          "compile needs at least one netlist or bench:NAME");
  require(!options.disasm || options.positional.size() == 1,
          "--disasm requires a single netlist");

  const auto config = config_from(options);

  std::vector<flow::Job> jobs;
  jobs.reserve(options.positional.size());
  for (const auto& spec : options.positional) {
    jobs.push_back({flow::Source::netlist(spec), config, spec});
  }
  flow::Runner runner(
      {.jobs = options.jobs, .cache_dir = resolve_cache_dir(options)});
  const auto results = runner.run(jobs);
  print_store_summary(runner.cache(), err);

  if (options.positional.size() == 1 &&
      format_of(options) == flow::ReportFormat::Table) {
    flow::throw_on_error(results);
    return print_compile_details(options, results.front(), out);
  }

  flow::Report doc;
  doc.title = "compile — " + config_label(options, config);
  const auto [any_failed, all_verified] =
      batch_rows(options, jobs, results, doc);
  flow::make_sink(format_of(options))->write(doc, out);
  if (any_failed) {
    return 1;
  }
  return all_verified ? 0 : 2;
}

int cmd_suite(const Options& options, std::ostream& out, std::ostream& err) {
  if (options.config_spec.empty() && !options.strategy) {
    // Without a configuration, list the built-in benchmarks (the historical
    // behavior). Flags that only make sense for a sweep are rejected rather
    // than silently dropped.
    require(!options.cap && !options.effort && !options.verify &&
                options.jobs == 0,
            "suite: --cap/--effort/--verify/--jobs need --strategy or "
            "--config (without one, suite only lists the benchmarks)");
    flow::Report doc;
    doc.title = "built-in benchmarks (compile with bench:NAME):";
    doc.columns = {"benchmark", "PI/PO", "class"};
    for (const auto& spec : bench::paper_suite()) {
      doc.add_row({spec.name,
                   std::to_string(spec.pis) + "/" + std::to_string(spec.pos),
                   spec.arithmetic ? "arithmetic" : "control"});
    }
    flow::make_sink(format_of(options))->write(doc, out);
    return 0;
  }

  // With --config/--strategy: compile the whole evaluation suite under that
  // configuration as one batch.
  const auto config = config_from(options);
  const auto suite = flow::suite();
  std::vector<flow::Job> jobs;
  for (const auto& source : flow::suite_sources(suite)) {
    jobs.push_back({source, config, {}});
  }
  flow::Runner runner(
      {.jobs = options.jobs, .cache_dir = resolve_cache_dir(options)});
  const auto results = runner.run(jobs);
  print_store_summary(runner.cache(), err);

  flow::Report doc;
  doc.title = "suite (" + suite.label + ") — " + config_label(options, config);
  const auto [any_failed, all_verified] =
      batch_rows(options, jobs, results, doc);
  flow::make_sink(format_of(options))->write(doc, out);
  if (any_failed) {
    return 1;
  }
  return all_verified ? 0 : 2;
}

/// One parsed job-stream line: `NETLIST [CONFIG-SPEC] [@PRIO[:DEADLINE_MS]]`.
/// The trailing scheduling token stays raw text ('@' stripped) so parse
/// failures surface inside the per-line error handling of serve/submit —
/// an error row in stream position — instead of killing the stream.
struct JobLine {
  std::string label;
  std::optional<std::string> config;
  std::optional<std::string> sched;
};

/// Splits one job-stream line into its parts; nullopt for blank and `#`
/// comment lines. Shared by `serve --stdin-jobs` and `submit` so the two
/// transports accept byte-identical streams.
std::optional<JobLine> split_job_line(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') {
    return std::nullopt;
  }
  const auto last = line.find_last_not_of(" \t\r");
  auto text = line.substr(first, last - first + 1);

  JobLine item;
  // Peel the optional trailing `@...` scheduling token. Only the last
  // whitespace-separated token qualifies, so config specs stay free to
  // contain '@' should a policy ever want one.
  const auto tail = text.find_last_of(" \t");
  if (tail != std::string::npos && text[tail + 1] == '@') {
    item.sched = text.substr(tail + 2);
    text = text.substr(0, text.find_last_not_of(" \t", tail) + 1);
  }
  const auto space = text.find_first_of(" \t");
  if (space == std::string::npos) {
    item.label = std::move(text);
  } else {
    item.label = text.substr(0, space);
    item.config = text.substr(text.find_first_not_of(" \t", space));
  }
  return item;
}

/// Parses the body of a job line's `@PRIO[:DEADLINE_MS]` token. Throws
/// rlim::Error for unknown priorities and malformed deadlines.
std::pair<sched::Priority, std::optional<std::uint64_t>> parse_sched_token(
    const std::string& body) {
  const auto colon = body.find(':');
  const auto priority = sched::parse_priority(body.substr(0, colon));
  std::optional<std::uint64_t> deadline;
  if (colon != std::string::npos) {
    deadline = parse_u64("@" + body.substr(0, colon) + " deadline",
                         body.substr(colon + 1));
    require(*deadline > 0, "@" + body.substr(0, colon) +
                               " deadline must be > 0 milliseconds");
  }
  return {priority, deadline};
}

/// The --priority flag resolved to a default (Normal when absent).
sched::Priority default_priority(const Options& options) {
  return options.priority ? sched::parse_priority(*options.priority)
                          : sched::Priority::Normal;
}

/// Client/router knobs from the command line (defaults from ClientOptions).
net::ClientOptions client_options_from(const Options& options) {
  net::ClientOptions client;
  if (options.retries) {
    client.max_retries = *options.retries;
  }
  if (options.connect_timeout_ms) {
    client.connect_timeout = std::chrono::milliseconds(
        static_cast<std::int64_t>(*options.connect_timeout_ms));
  }
  if (options.request_timeout_ms) {
    client.request_timeout = std::chrono::milliseconds(
        static_cast<std::int64_t>(*options.request_timeout_ms));
  }
  if (options.max_frame_bytes) {
    client.max_frame_bytes = *options.max_frame_bytes;
  }
  return client;
}

/// `rlim serve --listen HOST:PORT`: the socket front-end. Binds a
/// net::Server (epoll loop + owned flow::Service) and parks this thread in
/// sigwait until SIGINT/SIGTERM asks for shutdown — jobs arrive as
/// flow::wire frames from `rlim submit`, not from stdin, and configs travel
/// inside the specs.
int cmd_serve_listen(const Options& options, std::ostream& err) {
  require(options.positional.empty(),
          "serve reads jobs from the socket, not the command line");
  require(!options.disasm && !options.verify,
          "serve: --disasm/--verify are compile-only");
  require(!options.format,
          "serve --listen speaks flow::wire frames; --format belongs to "
          "submit");
  require(options.config_spec.empty() && !options.strategy && !options.cap &&
              !options.effort,
          "serve --listen: configs travel inside the submitted job specs "
          "(pass --config/--strategy to `rlim submit`)");

  // Block the shutdown signals before the server spawns its threads so they
  // inherit the mask and sigwait() below is their only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  net::ServerOptions server_options;
  server_options.jobs = options.jobs;
  server_options.cache_dir = resolve_cache_dir(options);
  if (options.max_frame_bytes) {
    server_options.max_frame_bytes = *options.max_frame_bytes;
  }
  net::Server server(net::parse_endpoint(options.listen),
                     std::move(server_options));
  err << "rlim: serve: listening on " << server.endpoint().to_string()
      << " (" << server.stats_reply().workers << " workers)\n";
  err.flush();

  int received = 0;
  sigwait(&mask, &received);
  server.stop();

  const auto stats = server.service_stats();
  const auto counters = server.counters();
  err << "rlim: serve: " << stats.submitted << " jobs over "
      << counters.accepted << " connections, " << stats.executed
      << " executed, " << stats.coalesced << " coalesced, "
      << counters.frames_out << " frames out, " << counters.decode_errors
      << " decode errors, " << counters.dropped_connections
      << " connections dropped\n";
  print_store_summary(server.cache(), err);
  return 0;
}

/// `rlim submit --connect EP[,EP...]`: the client side of the socket
/// transport. Reads the same `NETLIST [CONFIG-SPEC]` lines as
/// `serve --stdin-jobs`, ships them as by-reference flow::wire JobSpecs
/// through a net::ShardRouter (consistent hashing + failover), and prints
/// the same CSV rows in input order — a cluster run is byte-identical to a
/// local one.
int cmd_submit(const Options& options, std::istream& in, std::ostream& out,
               std::ostream& err) {
  require(!options.connect.empty(),
          "submit needs --connect HOST:PORT[,HOST:PORT...]");
  require(options.positional.empty(),
          "submit reads jobs from stdin, not the command line");
  require(!options.disasm && !options.verify,
          "submit: --disasm/--verify are compile-only");
  require(!options.format || *options.format == flow::ReportFormat::Csv,
          "submit streams CSV rows; --format " +
              flow::to_string(format_of(options)) + " cannot stream");
  const auto default_config = config_from(options);

  /// One input line: an index into `specs`, or the parse failure pinned to
  /// the line's stream position.
  struct Line {
    std::string label;
    std::optional<std::size_t> spec;
    std::string error;
  };
  std::vector<Line> lines;
  std::vector<flow::wire::JobSpec> specs;
  std::string line;
  while (std::getline(in, line)) {
    const auto split = split_job_line(line);
    if (!split) {
      continue;
    }
    Line item;
    item.label = split->label;
    try {
      const auto config = split->config
                              ? core::PipelineConfig::parse(*split->config)
                              : default_config;
      auto spec = flow::wire::JobSpec::reference(item.label, config, item.label);
      spec.priority = default_priority(options);
      spec.deadline_ms = options.deadline_ms;
      if (split->sched) {
        const auto [priority, deadline] = parse_sched_token(*split->sched);
        spec.priority = priority;
        if (deadline) {
          spec.deadline_ms = deadline;
        }
      }
      item.spec = specs.size();
      specs.push_back(std::move(spec));
    } catch (const std::exception& error) {
      item.error = error.what();
    }
    lines.push_back(std::move(item));
  }

  net::ShardRouter router(net::parse_endpoints(options.connect),
                          client_options_from(options));
  const auto results = router.run(specs);

  flow::write_csv_row(summary_columns(), out);
  std::size_t failures = 0;
  for (const auto& item : lines) {
    flow::JobResult parse_failed;
    const flow::JobResult* result = &parse_failed;
    if (item.spec) {
      result = &results[*item.spec];
    } else {
      parse_failed.error = item.error;
    }
    if (!result->ok()) {
      ++failures;
    }
    flow::write_csv_row(
        result_cells(item.label, *result, summary_columns().size()), out);
  }
  out.flush();

  err << "rlim: submit: " << specs.size() << " jobs across "
      << router.shard_count() << " shards, "
      << router.telemetry().failovers << " failovers, "
      << router.telemetry().rerouted << " jobs rerouted, " << failures
      << " failed\n";
  for (std::size_t shard = 0; shard < router.shard_count(); ++shard) {
    const auto& telemetry = router.telemetry(shard);
    err << "rlim: shard " << router.endpoint(shard).to_string() << ": "
        << (router.alive(shard) ? "alive" : "dead") << ", "
        << telemetry.connects << " connects, " << telemetry.retries
        << " retries, " << telemetry.frames_out << " out, "
        << telemetry.frames_in << " in\n";
  }
  return failures == 0 ? 0 : 1;
}

/// `rlim stats --connect EP[,EP...]`: pings every shard and renders one
/// column per endpoint. An unreachable shard keeps its column (dashes) and
/// flips the exit code, so a fleet check reads as one table either way.
int cmd_stats(const Options& options, std::ostream& out) {
  require(!options.connect.empty(),
          "stats needs --connect HOST:PORT[,HOST:PORT...]");
  require(options.positional.empty(), "stats takes no positional arguments");
  const auto endpoints = net::parse_endpoints(options.connect);

  flow::Report doc;
  doc.title = "shard stats";
  doc.columns = {"metric"};
  std::vector<std::optional<flow::wire::StatsReply>> replies;
  bool any_unreachable = false;
  for (const auto& endpoint : endpoints) {
    doc.columns.push_back(endpoint.to_string());
    net::Client client(endpoint, client_options_from(options));
    try {
      replies.push_back(client.ping());
    } catch (const std::exception& error) {
      replies.emplace_back();
      doc.add_note(endpoint.to_string() + ": " + error.what());
      any_unreachable = true;
    }
  }

  using Field = std::uint64_t (*)(const flow::wire::StatsReply&);
  const std::pair<const char*, Field> metrics[] = {
      {"workers", [](const flow::wire::StatsReply& r) {
         return std::uint64_t{r.workers}; }},
      {"submitted", [](const flow::wire::StatsReply& r) { return r.submitted; }},
      {"completed", [](const flow::wire::StatsReply& r) { return r.completed; }},
      {"executed", [](const flow::wire::StatsReply& r) { return r.executed; }},
      {"coalesced", [](const flow::wire::StatsReply& r) { return r.coalesced; }},
      {"cancelled", [](const flow::wire::StatsReply& r) { return r.cancelled; }},
      {"rewrite hits", [](const flow::wire::StatsReply& r) {
         return r.rewrite_hits; }},
      {"rewrite misses", [](const flow::wire::StatsReply& r) {
         return r.rewrite_misses; }},
      {"program hits", [](const flow::wire::StatsReply& r) {
         return r.program_hits; }},
      {"program misses", [](const flow::wire::StatsReply& r) {
         return r.program_misses; }},
  };
  for (const auto& [name, field] : metrics) {
    std::vector<std::string> row{name};
    for (const auto& reply : replies) {
      row.push_back(reply ? std::to_string(field(*reply)) : "-");
    }
    doc.add_row(std::move(row));
  }
  // The store block renders only when some shard has a disk tier — a
  // storeless fleet's table stays short.
  const std::pair<const char*, Field> store_metrics[] = {
      {"store rewrite loads", [](const flow::wire::StatsReply& r) {
         return r.store_rewrite_loads; }},
      {"store program loads", [](const flow::wire::StatsReply& r) {
         return r.store_program_loads; }},
      {"store load misses", [](const flow::wire::StatsReply& r) {
         return r.store_load_misses; }},
      {"store stores", [](const flow::wire::StatsReply& r) {
         return r.store_stores; }},
      {"store failures", [](const flow::wire::StatsReply& r) {
         return r.store_failures; }},
  };
  bool any_store = false;
  for (const auto& reply : replies) {
    any_store |= reply && reply->has_store;
  }
  if (any_store) {
    for (const auto& [name, field] : store_metrics) {
      std::vector<std::string> row{name};
      for (const auto& reply : replies) {
        row.push_back(reply && reply->has_store
                          ? std::to_string(field(*reply))
                          : "-");
      }
      doc.add_row(std::move(row));
    }
  }
  // Scheduler gauges follow the same rule: a freshly started fleet whose
  // shards have never queued, stolen, or parked renders the exact table of
  // previous releases (all-zero gauges stay omitted).
  const std::pair<const char*, Field> sched_metrics[] = {
      {"sched queue depth", [](const flow::wire::StatsReply& r) {
         return r.sched_queue_depth; }},
      {"sched stolen", [](const flow::wire::StatsReply& r) {
         return r.sched_stolen; }},
      {"sched parks", [](const flow::wire::StatsReply& r) {
         return r.sched_parks; }},
      {"sched overflows", [](const flow::wire::StatsReply& r) {
         return r.sched_overflows; }},
      {"sched forked", [](const flow::wire::StatsReply& r) {
         return r.sched_forked; }},
      {"sched jobs low", [](const flow::wire::StatsReply& r) {
         return r.sched_low; }},
      {"sched jobs normal", [](const flow::wire::StatsReply& r) {
         return r.sched_normal; }},
      {"sched jobs high", [](const flow::wire::StatsReply& r) {
         return r.sched_high; }},
  };
  bool any_sched = false;
  for (const auto& reply : replies) {
    if (!reply) {
      continue;
    }
    for (const auto& [name, field] : sched_metrics) {
      any_sched |= field(*reply) != 0;
    }
  }
  if (any_sched) {
    for (const auto& [name, field] : sched_metrics) {
      std::vector<std::string> row{name};
      for (const auto& reply : replies) {
        row.push_back(reply ? std::to_string(field(*reply)) : "-");
      }
      doc.add_row(std::move(row));
    }
  }
  flow::make_sink(format_of(options))->write(doc, out);
  return any_unreachable ? 1 : 0;
}

/// `rlim serve --stdin-jobs`: the async execution path end-to-end. Lines
/// (`NETLIST [CONFIG-SPEC]`) are submitted to a flow::Service as they
/// arrive — execution starts immediately, duplicates coalesce — and results
/// stream back as CSV rows in submission order, the only order that keeps
/// the stream byte-stable for any worker count. A line that cannot even be
/// submitted (bad netlist spec, bad config) becomes an `error:` row in the
/// same position instead of killing the stream.
int cmd_serve(const Options& options, std::istream& in, std::ostream& out,
              std::ostream& err) {
  require(options.stdin_jobs != !options.listen.empty(),
          "serve needs exactly one transport: --stdin-jobs (newline-delimited "
          "specs on stdin) or --listen HOST:PORT (flow::wire frames over TCP "
          "from `rlim submit`)");
  if (!options.listen.empty()) {
    return cmd_serve_listen(options, err);
  }
  require(options.positional.empty(),
          "serve reads jobs from stdin, not the command line");
  require(!options.disasm && !options.verify,
          "serve: --disasm/--verify are compile-only");
  require(!options.format || *options.format == flow::ReportFormat::Csv,
          "serve streams CSV rows; --format " +
              flow::to_string(format_of(options)) + " cannot stream");
  const auto default_config = config_from(options);

  flow::Service service(
      {.jobs = options.jobs, .cache_dir = resolve_cache_dir(options)});
  flow::write_csv_row(summary_columns(), out);

  /// One input line: a submitted ticket, or the submission failure pinned
  /// to the line's stream position.
  struct Pending {
    std::string label;
    std::optional<flow::Ticket> ticket;
    std::string submit_error;
  };
  std::deque<Pending> pending;
  std::size_t accepted = 0;
  std::size_t failures = 0;

  const auto emit = [&](const Pending& item, const flow::JobResult& result) {
    if (!result.ok()) {
      ++failures;
    }
    flow::write_csv_row(
        result_cells(item.label, result, summary_columns().size()), out);
    out.flush();
  };
  // Streams every result that is ready at the front of the queue; with
  // `block` set, drains the whole queue in order.
  const auto flush_ready = [&](bool block) {
    while (!pending.empty()) {
      const auto& front = pending.front();
      if (!front.ticket) {
        flow::JobResult failed;
        failed.error = front.submit_error;
        emit(front, failed);
      } else if (block) {
        emit(front, service.wait(*front.ticket));
      } else if (auto result = service.try_get(*front.ticket)) {
        emit(front, *result);
      } else {
        return;
      }
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    const auto split = split_job_line(line);
    if (!split) {
      continue;
    }
    Pending item;
    item.label = split->label;
    try {
      flow::Job job;
      job.source = flow::Source::netlist(item.label);
      job.label = item.label;
      job.config = split->config ? core::PipelineConfig::parse(*split->config)
                                 : default_config;
      job.priority = default_priority(options);
      if (options.deadline_ms) {
        job.deadline = std::chrono::milliseconds(
            static_cast<std::int64_t>(*options.deadline_ms));
      }
      if (split->sched) {
        const auto [priority, deadline] = parse_sched_token(*split->sched);
        job.priority = priority;
        if (deadline) {
          job.deadline = std::chrono::milliseconds(
              static_cast<std::int64_t>(*deadline));
        }
      }
      item.ticket = service.submit(std::move(job));
      ++accepted;
    } catch (const std::exception& error) {
      item.submit_error = error.what();
    }
    pending.push_back(std::move(item));
    flush_ready(/*block=*/false);
  }
  flush_ready(/*block=*/true);

  const auto stats = service.stats();
  err << "rlim: serve: " << accepted << " jobs on " << service.workers()
      << " workers, " << stats.executed << " executed, " << stats.coalesced
      << " coalesced, " << failures << " failed\n";
  print_store_summary(service.cache(), err);
  return failures == 0 ? 0 : 1;
}

/// `rlim loadgen`: closed-loop load generator over the serve path. Replays a
/// seeded stream of mini-suite compiles — mixed graph sizes, randomized
/// priorities, occasional soft deadlines, a configurable duplicate ratio —
/// through `--streams` concurrent closed-loop clients, then reports
/// throughput and nearest-rank latency percentiles. Default target: an
/// in-process flow::Service on `--jobs` workers (`--single-queue` flips the
/// scheduler baseline for A/B runs); with --connect, every stream ships
/// inline-graph JobSpecs to the shard fleet through its own router — the
/// same bytes `rlim submit` would send. The job stream is a pure function
/// of --seed; the measured latencies of course are not.
int cmd_loadgen(const Options& options, std::ostream& out, std::ostream& err) {
  require(options.positional.empty(), "loadgen takes no positional arguments");
  require(!options.disasm && !options.verify,
          "loadgen: --disasm/--verify are compile-only");
  const auto count = options.count.value_or(100);
  require(count > 0, "--count must be > 0");
  const auto streams = std::max(1u, options.streams.value_or(2));
  const auto duplicate_pct = options.duplicate_pct.value_or(25);
  require(duplicate_pct <= 100, "--duplicate-pct is a percentage (0..100)");
  const auto config = config_from(options);

  // The generators are cheap; build each graph once so the per-job cost the
  // rig measures is the compile, not graph construction.
  const auto& benchmarks = bench::mini_suite();
  std::vector<mig::Mig> graphs;
  graphs.reserve(benchmarks.size());
  for (const auto& spec : benchmarks) {
    graphs.push_back(spec.build());
  }

  /// One generated request of the replayed stream.
  struct LoadJob {
    std::size_t bench = 0;
    sched::Priority priority = sched::Priority::Normal;
    std::optional<std::uint64_t> deadline_ms;
  };
  util::Xoshiro256 rng(options.seed.value_or(0x10adull));
  std::vector<LoadJob> stream;
  stream.reserve(count);
  std::uint64_t duplicates = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    LoadJob job;
    if (!stream.empty() && rng.below(100) < duplicate_pct) {
      // Re-issue an earlier request verbatim: in flight it coalesces, later
      // it exercises the result caches — both paths the rig should cover.
      job = stream[rng.below(stream.size())];
      ++duplicates;
    } else {
      job.bench = rng.below(graphs.size());
      job.priority = static_cast<sched::Priority>(
          rng.below(sched::kPriorityBands));
      if (rng.below(4) == 0) {
        job.deadline_ms = 20 + rng.below(200);
      }
    }
    // Flags pin the whole stream to one priority/deadline (for measuring a
    // uniform load) instead of the randomized mix.
    if (options.priority) {
      job.priority = default_priority(options);
    }
    if (options.deadline_ms) {
      job.deadline_ms = *options.deadline_ms;
    }
    stream.push_back(job);
  }

  using Clock = std::chrono::steady_clock;
  std::vector<double> latency_ms(count, 0.0);
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> failed{0};
  // Closed loop: each stream issues its next request only after the
  // previous one completed, so per-request latency is directly observable.
  const auto drive = [&](const std::function<bool(const LoadJob&)>& execute) {
    while (true) {
      const auto index = next.fetch_add(1);
      if (index >= count) {
        return;
      }
      const auto start = Clock::now();
      bool ok = false;
      try {
        ok = execute(stream[index]);
      } catch (const std::exception&) {
        ok = false;  // transport exhausted its retries; count and move on
      }
      latency_ms[index] =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (!ok) {
        failed.fetch_add(1);
      }
    }
  };
  const auto run_streams = [&](const std::function<void()>& stream_body) {
    std::vector<std::thread> threads;
    threads.reserve(streams);
    for (unsigned i = 0; i < streams; ++i) {
      threads.emplace_back(stream_body);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  };

  std::string target;
  double wall_ms = 0.0;
  if (options.connect.empty()) {
    flow::ServiceOptions service_options;
    service_options.jobs = options.jobs;
    service_options.single_queue = options.single_queue;
    service_options.cache_dir = resolve_cache_dir(options);
    flow::Service service(service_options);
    std::vector<flow::SourcePtr> sources;
    sources.reserve(benchmarks.size());
    for (const auto& spec : benchmarks) {
      sources.push_back(flow::Source::benchmark(spec));
    }
    const auto begin = Clock::now();
    run_streams([&] {
      drive([&](const LoadJob& item) {
        flow::Job job;
        job.source = sources[item.bench];
        job.config = config;
        job.label = benchmarks[item.bench].name;
        job.priority = item.priority;
        if (item.deadline_ms) {
          job.deadline = std::chrono::milliseconds(
              static_cast<std::int64_t>(*item.deadline_ms));
        }
        return service.wait(service.submit(std::move(job))).ok();
      });
    });
    wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - begin)
                  .count();
    const auto stats = service.stats();
    const auto sched_stats = service.scheduler_stats();
    target = "service (" + std::to_string(service.workers()) + " workers" +
             (options.single_queue ? ", single queue)" : ")");
    err << "rlim: loadgen: " << stats.executed << " executed, "
        << stats.coalesced << " coalesced, " << sched_stats.stolen
        << " steals, " << sched_stats.parks << " parks, "
        << sched_stats.forked << " forked\n";
  } else {
    require(!options.single_queue,
            "--single-queue tunes the in-process service; the remote shards "
            "own their schedulers");
    const auto endpoints = net::parse_endpoints(options.connect);
    const auto begin = Clock::now();
    run_streams([&] {
      // One router (own connections) per stream: streams model independent
      // clients, so they must not serialize on a shared socket.
      net::ShardRouter router(endpoints, client_options_from(options));
      drive([&](const LoadJob& item) {
        auto spec = flow::wire::JobSpec::inline_graph(
            graphs[item.bench], benchmarks[item.bench].name, config,
            benchmarks[item.bench].name);
        spec.priority = item.priority;
        spec.deadline_ms = item.deadline_ms;
        return router.run({std::move(spec)}).front().ok();
      });
    });
    wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - begin)
                  .count();
    target = options.connect;
  }

  std::sort(latency_ms.begin(), latency_ms.end());
  const auto permille = [&](unsigned p) {
    return latency_ms[(p * (latency_ms.size() - 1) + 500) / 1000];
  };
  flow::Report doc;
  doc.title = "loadgen — " + std::to_string(count) + " jobs, " +
              std::to_string(streams) + " streams, " +
              config_label(options, config) + " -> " + target;
  doc.columns = {"metric", "value"};
  doc.add_row({"jobs", std::to_string(count)});
  doc.add_row({"streams", std::to_string(streams)});
  doc.add_row({"duplicates", std::to_string(duplicates)});
  doc.add_row({"failed", std::to_string(failed.load())});
  doc.add_row({"wall_ms", util::Table::fixed(wall_ms)});
  doc.add_row({"jobs_per_sec",
               util::Table::fixed(wall_ms > 0.0
                                      ? static_cast<double>(count) * 1000.0 /
                                            wall_ms
                                      : 0.0)});
  doc.add_row({"p50_ms", util::Table::fixed(permille(500))});
  doc.add_row({"p99_ms", util::Table::fixed(permille(990))});
  doc.add_row({"p999_ms", util::Table::fixed(permille(999))});
  flow::make_sink(format_of(options))->write(doc, out);
  return failed.load() == 0 ? 0 : 1;
}

int cmd_policies(const Options& options, std::ostream& out) {
  flow::Report doc;
  doc.title = "registered policies (compose with --config):";
  doc.columns = {"kind", "key", "parameters", "summary"};
  for (const auto kind : registry::kinds()) {
    for (const auto& info : registry::list(kind)) {
      std::string params;
      for (const auto& param : info.params) {
        if (!params.empty()) {
          params += ", ";
        }
        params += param.name + "=" + param.default_value;
      }
      doc.add_row({std::string(kind), info.key, params.empty() ? "-" : params,
                   info.summary});
    }
  }
  doc.add_note(
      "spec grammar: rewrite=KEY[:param=value...],select=KEY,alloc=KEY"
      "[,fault=KEY][,cap=N]");
  doc.add_note(
      "pass sequences: rewrite=seq:passes=PASS,PASS,...[:until=PASS] runs "
      "`pass`-kind entries in order");
  doc.add_note(
      "seq aliases: plim21 = " +
      std::string(pass::alias_passes(mig::RewriteKind::Plim21)) +
      "; endurance = " +
      std::string(pass::alias_passes(mig::RewriteKind::Endurance)) +
      "; level_balanced = " +
      std::string(pass::alias_passes(mig::RewriteKind::LevelBalanced)));
  std::string presets;
  for (const auto& [alias, strategy] : core::strategy_aliases()) {
    if (!presets.empty()) {
      presets += ", ";
    }
    presets += std::string(alias) + " = " +
               core::make_config(strategy).canonical_key();
  }
  doc.add_note("presets: " + presets);
  flow::make_sink(format_of(options))->write(doc, out);
  return 0;
}

/// Maintenance over the persistent store (`rlim cache stats|gc|clear|verify`).
/// `verify` exits 2 when it had to evict anything, so scripted health checks
/// can tell a repaired store from a clean one.
int cmd_cache(const Options& options, std::ostream& out) {
  require(options.positional.size() == 1,
          "cache needs exactly one subcommand (stats, gc, clear, verify)");
  const auto& sub = options.positional[0];
  const auto dir = resolve_cache_dir(options);
  require(!dir.empty(),
          "cache: no store directory (pass --cache-dir or set RLIM_CACHE_DIR)");
  require(std::filesystem::exists(dir),
          "cache: store directory '" + dir + "' does not exist");
  store::Gc gc{std::filesystem::path(dir)};

  flow::Report doc;
  doc.columns = {"metric", "value"};
  const auto kv = [&doc](std::string name, std::uint64_t value) {
    doc.add_row({std::move(name), std::to_string(value)});
  };
  int code = 0;
  if (sub == "stats") {
    const auto summary = gc.summarize();
    doc.title = "cache store " + dir + " (format " +
                std::to_string(store::kFormatVersion) + ")";
    kv("entries", summary.entries);
    kv("bytes", summary.bytes);
    kv("rewrite entries", summary.rewrite_entries);
    kv("program entries", summary.program_entries);
    kv("stale-version entries", summary.stale_version);
    kv("unreadable entries", summary.unreadable);
  } else if (sub == "gc") {
    require(options.max_bytes.has_value() || options.max_age_days.has_value(),
            "cache gc needs --max-bytes and/or --max-age-days");
    store::GcOptions gc_options;
    gc_options.max_bytes = options.max_bytes;
    if (options.max_age_days) {
      // ~274 years; anything larger overflows the nanosecond file-time
      // arithmetic of the age check and is certainly a typo.
      require(*options.max_age_days <= 100000,
              "--max-age-days must be at most 100000");
      gc_options.max_age = std::chrono::seconds(*options.max_age_days * 86400);
    }
    const auto result = gc.collect(gc_options);
    doc.title = "cache gc " + dir;
    kv("scanned", result.scanned);
    kv("evicted", result.evicted);
    kv("bytes before", result.bytes_before);
    kv("bytes after", result.bytes_after);
  } else if (sub == "verify") {
    const auto result = gc.verify();
    doc.title = "cache verify " + dir;
    kv("scanned", result.scanned);
    kv("ok", result.ok);
    kv("ok bytes", result.ok_bytes);
    // Distinct failure classes: map-validation (framing) failures and
    // whole-frame hash mismatches are not the same diagnosis — the former is
    // a foreign/truncated file, the latter bit rot under intact framing —
    // and neither is a payload that merely stopped decoding in this build.
    kv("evicted map-validation", result.evicted_map);
    kv("evicted hash-mismatch", result.evicted_hash);
    kv("evicted undecodable", result.evicted_decode);
    kv("evicted version-mismatch", result.evicted_version);
    kv("evicted bytes", result.evicted_bytes);
    if (result.evicted_corrupt() > 0 || result.evicted_version > 0) {
      code = 2;
    }
  } else if (sub == "clear") {
    doc.title = "cache clear " + dir;
    kv("removed", gc.clear());
  } else {
    throw Error("unknown cache subcommand '" + sub + "'");
  }
  flow::make_sink(format_of(options))->write(doc, out);
  return code;
}

#ifndef RLIM_VERSION
#define RLIM_VERSION "unknown"
#endif

/// Project + on-disk format version, so a mismatching store ("why does my
/// CI sweep recompile everything?") is diagnosable from the field.
int cmd_version(std::ostream& out) {
  out << "rlim " << RLIM_VERSION << " (store format "
      << store::kFormatVersion << ")\n";
  return 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err) {
  try {
    const auto options = parse(args);
    if (options.command == "info") {
      return cmd_info(options, out);
    }
    if (options.command == "rewrite") {
      return cmd_rewrite(options, out, err);
    }
    if (options.command == "compile") {
      return cmd_compile(options, out, err);
    }
    if (options.command == "suite") {
      return cmd_suite(options, out, err);
    }
    if (options.command == "serve") {
      return cmd_serve(options, in, out, err);
    }
    if (options.command == "submit") {
      return cmd_submit(options, in, out, err);
    }
    if (options.command == "stats") {
      return cmd_stats(options, out);
    }
    if (options.command == "loadgen") {
      return cmd_loadgen(options, out, err);
    }
    if (options.command == "policies") {
      return cmd_policies(options, out);
    }
    if (options.command == "cache") {
      return cmd_cache(options, out);
    }
    if (options.command == "version") {
      return cmd_version(out);
    }
    throw Error("unknown command '" + options.command + "'");
  } catch (const std::exception& error) {
    err << "rlim_cli: " << error.what() << '\n'
        << "usage: rlim_cli info|rewrite|compile|suite|serve|submit|stats|"
           "loadgen|policies|cache|version ... (see tools/cli.hpp)\n";
    return 1;
  }
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  return run(args, std::cin, out, err);
}

}  // namespace rlim::cli
