#include <iostream>
#include <string>
#include <vector>

#include "cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return rlim::cli::run(args, std::cout, std::cerr);
}
