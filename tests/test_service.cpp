#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "benchmarks/arithmetic.hpp"
#include "benchmarks/suite.hpp"
#include "flow/runner.hpp"
#include "flow/service.hpp"
#include "flow/suite.hpp"
#include "sched/deque.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::flow {
namespace {

/// Controllable choke point: a Source whose graph construction blocks until
/// the test opens the gate. Lets the tests pin a worker mid-execution
/// deterministically (the only way to distinguish "pending" from "running"
/// without sleeps).
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void release() {
    {
      const std::scoped_lock lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  /// Blocks until `count` builders are inside the gate.
  void await_entered(int count = 1) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return entered >= count; });
  }
  void pass() {
    std::unique_lock lock(mutex);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
};

SourcePtr gated_source(const std::shared_ptr<Gate>& gate,
                       const std::string& name = "gated") {
  bench::BenchmarkSpec spec;
  spec.name = name;
  spec.pis = 8;
  spec.pos = 5;
  spec.build = [gate] {
    gate->pass();
    return bench::make_adder(4);
  };
  return Source::benchmark(spec);
}

std::vector<Job> strategy_sweep(const std::vector<SourcePtr>& sources) {
  std::vector<Job> jobs;
  for (const auto& source : sources) {
    for (const auto strategy : paper_strategies()) {
      jobs.push_back({source, core::make_config(strategy), {}});
    }
  }
  return jobs;
}

std::string render(const std::vector<JobResult>& results, ReportFormat format) {
  Report doc;
  doc.title = "sweep";
  doc.columns = {"benchmark", "#I", "#R", "min", "max", "STDEV"};
  for (const auto& result : results) {
    doc.add_row({result.report.benchmark,
                 std::to_string(result.report.instructions),
                 std::to_string(result.report.rrams),
                 std::to_string(result.report.writes.min),
                 std::to_string(result.report.writes.max),
                 std::to_string(result.report.writes.stdev)});
  }
  std::ostringstream os;
  make_sink(format)->write(doc, os);
  return os.str();
}

// ---- submission and collection ---------------------------------------------

TEST(FlowService, SubmitWaitMatchesRunJob) {
  const Job job{Source::graph(bench::make_adder(6), "adder6"),
                core::make_config(core::Strategy::FullEndurance),
                {}};
  const auto direct = run_job(job);
  Service service({.jobs = 2});
  const auto result = service.wait(service.submit(job));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.report.benchmark, direct.report.benchmark);
  EXPECT_EQ(result.report.instructions, direct.report.instructions);
  EXPECT_EQ(result.report.rrams, direct.report.rrams);
  EXPECT_EQ(result.report.writes.stdev, direct.report.writes.stdev);
}

TEST(FlowService, TicketsCollectableInAnyOrder) {
  Service service({.jobs = 2});
  std::vector<Ticket> tickets;
  for (const unsigned bits : {2u, 3u, 4u, 5u}) {
    tickets.push_back(service.submit({Source::graph(bench::make_adder(bits),
                                                    "adder" +
                                                        std::to_string(bits)),
                                      core::make_config(core::Strategy::Naive),
                                      {}}));
  }
  // Collect back to front: completion order must not constrain wait order.
  for (std::size_t i = tickets.size(); i-- > 0;) {
    const auto result = service.wait(tickets[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.report.benchmark, "adder" + std::to_string(i + 2));
  }
}

TEST(FlowService, CollectedReportsByteIdenticalAcrossWorkerCounts) {
  // The acceptance property of the redesign: a mini-suite sweep through the
  // async Service yields byte-identical collected reports for any worker
  // count — and matches the synchronous Runner façade bit for bit.
  const auto& specs = bench::mini_suite();
  std::vector<SourcePtr> sources;
  for (std::size_t i = 0; i < 3; ++i) {
    sources.push_back(Source::benchmark(specs[i]));
  }
  const auto jobs = strategy_sweep(sources);

  Service serial({.jobs = 1});
  Service parallel({.jobs = 8});
  const auto serial_results = serial.collect(serial.submit_batch(jobs));
  const auto parallel_results = parallel.collect(parallel.submit_batch(jobs));
  throw_on_error(serial_results);
  throw_on_error(parallel_results);

  Runner runner({.jobs = 4});
  const auto runner_results = runner.run(jobs);
  throw_on_error(runner_results);

  for (const auto format :
       {ReportFormat::Table, ReportFormat::Csv, ReportFormat::Json}) {
    EXPECT_EQ(render(serial_results, format), render(parallel_results, format))
        << to_string(format);
    EXPECT_EQ(render(serial_results, format), render(runner_results, format))
        << to_string(format);
  }
}

TEST(FlowService, ByteIdenticalAcrossWorkerCountsUnderRandomPriorities) {
  // Scheduling hints shape execution order, never results: the same sweep
  // with randomized priorities and deadlines must stay byte-identical
  // between one worker and eight.
  const auto& specs = bench::mini_suite();
  std::vector<SourcePtr> sources;
  for (std::size_t i = 0; i < 3; ++i) {
    sources.push_back(Source::benchmark(specs[i]));
  }
  auto jobs = strategy_sweep(sources);
  util::Xoshiro256 rng(2026);
  for (auto& job : jobs) {
    job.priority =
        static_cast<sched::Priority>(rng.below(sched::kPriorityBands));
    if (rng.below(3) == 0) {
      job.deadline = std::chrono::milliseconds(5 + rng.below(100));
    }
  }

  Service serial({.jobs = 1});
  Service parallel({.jobs = 8});
  const auto serial_results = serial.collect(serial.submit_batch(jobs));
  const auto parallel_results = parallel.collect(parallel.submit_batch(jobs));
  throw_on_error(serial_results);
  throw_on_error(parallel_results);

  for (const auto format :
       {ReportFormat::Table, ReportFormat::Csv, ReportFormat::Json}) {
    EXPECT_EQ(render(serial_results, format), render(parallel_results, format))
        << to_string(format);
  }
}

TEST(FlowService, TryGetIsNonBlocking) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto ticket =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();
  EXPECT_EQ(service.try_get(ticket), std::nullopt);
  gate->release();
  const auto result = service.wait(ticket);
  EXPECT_TRUE(result.ok()) << result.error;
}

TEST(FlowService, ResultsAreCollectOnce) {
  Service service({.jobs = 1});
  const auto ticket = service.submit({Source::graph(bench::make_adder(4), "a"),
                                      core::make_config(core::Strategy::Naive),
                                      {}});
  EXPECT_TRUE(service.wait(ticket).ok());
  EXPECT_THROW(static_cast<void>(service.wait(ticket)), Error);
  EXPECT_THROW(static_cast<void>(service.try_get(ticket)), Error);
  EXPECT_THROW(static_cast<void>(service.wait(9999)), Error);
}

TEST(FlowService, ErrorsAreCapturedPerTicket) {
  Service service({.jobs = 2});
  const auto bad = service.submit({Source::netlist("/nonexistent/x.mig"),
                                   core::make_config(core::Strategy::Naive),
                                   {}});
  const auto good = service.submit({Source::graph(bench::make_adder(4), "ok"),
                                    core::make_config(core::Strategy::Naive),
                                    {}});
  EXPECT_FALSE(service.wait(bad).ok());
  EXPECT_TRUE(service.wait(good).ok());
}

// ---- batch handles ----------------------------------------------------------

TEST(FlowService, BatchHandleTracksProgress) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  std::vector<Job> jobs;
  jobs.push_back(
      {gated_source(gate), core::make_config(core::Strategy::Naive), {}});
  for (const unsigned bits : {3u, 4u}) {
    jobs.push_back({Source::graph(bench::make_adder(bits),
                                  "adder" + std::to_string(bits)),
                    core::make_config(core::Strategy::Naive),
                    {}});
  }
  const auto batch = service.submit_batch(jobs);
  EXPECT_EQ(batch.size(), 3u);
  gate->await_entered();
  // The single worker is pinned inside job 0: nothing can have finished.
  EXPECT_EQ(batch.completed(), 0u);
  EXPECT_FALSE(batch.done());
  gate->release();
  batch.wait();
  EXPECT_EQ(batch.completed(), 3u);
  EXPECT_TRUE(batch.done());
  const auto results = service.collect(batch);
  ASSERT_EQ(results.size(), 3u);
  throw_on_error(results);
  EXPECT_EQ(results[1].report.benchmark, "adder3");
}

TEST(FlowService, DefaultBatchHandleIsDone) {
  const BatchHandle handle;
  EXPECT_EQ(handle.size(), 0u);
  EXPECT_TRUE(handle.done());
  handle.wait();  // must not block
}

// ---- cancellation -----------------------------------------------------------

TEST(FlowService, CancelBeforeExecutionSucceeds) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto running =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();
  const auto victim = service.submit({Source::graph(bench::make_adder(4), "v"),
                                      core::make_config(core::Strategy::Naive),
                                      {}});
  EXPECT_TRUE(service.cancel(victim));
  EXPECT_FALSE(service.cancel(victim)) << "already finished (cancelled)";
  gate->release();
  const auto cancelled = service.wait(victim);
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.error, "cancelled before execution");
  EXPECT_TRUE(service.wait(running).ok());
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(FlowService, CancelMidExecutionFailsAndJobCompletes) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto ticket =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();  // the worker is provably inside the job now
  EXPECT_FALSE(service.cancel(ticket));
  gate->release();
  const auto result = service.wait(ticket);
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(service.stats().cancelled, 0u);
}

TEST(FlowService, CancelPendingDrainsTheQueue) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto running =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();
  std::vector<Job> jobs;
  for (const unsigned bits : {3u, 4u, 5u}) {
    jobs.push_back({Source::graph(bench::make_adder(bits),
                                  "adder" + std::to_string(bits)),
                    core::make_config(core::Strategy::Naive),
                    {}});
  }
  const auto batch = service.submit_batch(jobs);
  EXPECT_EQ(service.cancel_pending(), 3u);
  EXPECT_TRUE(batch.done()) << "cancellation completes the batch";
  gate->release();
  EXPECT_TRUE(service.wait(running).ok());
  for (const auto& result : service.collect(batch)) {
    EXPECT_EQ(result.error, "cancelled before execution");
  }
  EXPECT_EQ(service.stats().cancelled, 3u);
}

TEST(FlowService, ShutdownCancelsPendingAndKeepsResults) {
  const auto gate = std::make_shared<Gate>();
  auto service = std::make_unique<Service>(ServiceOptions{.jobs = 1});
  const auto running =
      service->submit({gated_source(gate),
                       core::make_config(core::Strategy::Naive),
                       {}});
  gate->await_entered();
  const auto pending =
      service->submit({Source::graph(bench::make_adder(4), "p"),
                       core::make_config(core::Strategy::Naive),
                       {}});
  std::thread stopper([&] { service->shutdown(); });
  // shutdown() cancels pending work immediately (before joining), so this
  // wait returns while the gated job is still running.
  const auto cancelled = service->wait(pending);
  EXPECT_EQ(cancelled.error, "cancelled before execution");
  gate->release();
  stopper.join();
  // The running job finished normally and stays collectable after shutdown.
  EXPECT_TRUE(service->wait(running).ok());
  EXPECT_THROW(static_cast<void>(service->submit(
                   {Source::graph(bench::make_adder(4), "late"),
                    core::make_config(core::Strategy::Naive),
                    {}})),
               Error);
  service->shutdown();  // idempotent
}

// ---- duplicate coalescing ----------------------------------------------------

TEST(FlowService, DuplicateSubmissionsCoalesceWhilePending) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto blocker =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();

  // Same graph instance + same config = same (fingerprint, canonical key):
  // the second submission attaches to the first instead of queueing.
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto primary = service.submit({source, config, "first"});
  const auto duplicate = service.submit({source, config, "second"});
  EXPECT_EQ(service.stats().coalesced, 1u)
      << "the duplicate must coalesce at submit time";

  gate->release();
  const auto first = service.wait(primary);
  const auto second = service.wait(duplicate);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Shared artifacts, per-job labels — the program-cache-hit contract.
  EXPECT_EQ(first.prepared, second.prepared);
  EXPECT_EQ(first.report.instructions, second.report.instructions);
  EXPECT_EQ(first.report.benchmark, "first");
  EXPECT_EQ(second.report.benchmark, "second");
  // The duplicate never reached the cache: one compile, zero cache hits.
  EXPECT_EQ(service.cache().program_misses(), 2u);  // blocker + primary
  EXPECT_EQ(service.cache().program_hits(), 0u);
  EXPECT_TRUE(service.wait(blocker).ok());
  EXPECT_EQ(service.stats().executed, 2u);
}

TEST(FlowService, CoalescingEscalatesPrimaryPriority) {
  // A High-priority duplicate attaching to a Low-priority pending primary
  // must drag the primary up with it: after escalation the primary runs
  // ahead of Normal work that was queued between them.
  const auto gate = std::make_shared<Gate>();
  std::mutex order_mutex;
  std::vector<Ticket> finish_order;
  ServiceOptions options;
  options.jobs = 1;
  options.on_finished = [&](Ticket ticket) {
    const std::scoped_lock lock(order_mutex);
    finish_order.push_back(ticket);
  };
  Service service(options);
  const auto blocker =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();  // the lone worker is pinned; queue order decides

  const auto source = Source::graph(bench::make_adder(8), "adder8");
  const auto config = core::make_config(core::Strategy::FullEndurance);
  Job slow{source, config, "slow-lane"};
  slow.priority = sched::Priority::Low;
  const auto primary = service.submit(slow);

  const auto filler =
      service.submit({Source::graph(bench::make_adder(6), "adder6"),
                      core::make_config(core::Strategy::Naive),
                      "mid"});  // Normal: beats Low until escalation

  Job urgent{source, config, "urgent"};
  urgent.priority = sched::Priority::High;
  const auto duplicate = service.submit(urgent);
  EXPECT_EQ(service.stats().coalesced, 1u)
      << "the urgent twin must coalesce, not queue";

  gate->release();
  ASSERT_TRUE(service.wait(primary).ok());
  ASSERT_TRUE(service.wait(duplicate).ok());
  ASSERT_TRUE(service.wait(filler).ok());
  ASSERT_TRUE(service.wait(blocker).ok());

  const std::scoped_lock lock(order_mutex);
  const auto position = [&](Ticket ticket) {
    return std::find(finish_order.begin(), finish_order.end(), ticket) -
           finish_order.begin();
  };
  EXPECT_LT(position(primary), position(filler))
      << "escalated primary must finish before the Normal-priority filler";
  EXPECT_EQ(service.stats().executed, 3u);  // blocker + primary + filler
}

TEST(FlowService, CancellingThePrimaryRequeuesItsFollowers) {
  const auto gate = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto blocker =
      service.submit({gated_source(gate),
                      core::make_config(core::Strategy::Naive),
                      {}});
  gate->await_entered();

  const auto source = Source::graph(bench::make_adder(8), "adder8");
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto primary = service.submit({source, config, "first"});
  const auto follower = service.submit({source, config, "second"});
  EXPECT_EQ(service.stats().coalesced, 1u);

  // Cancelling the primary must not take its followers down with it.
  EXPECT_TRUE(service.cancel(primary));
  gate->release();
  EXPECT_EQ(service.wait(primary).error, "cancelled before execution");
  const auto result = service.wait(follower);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.report.benchmark, "second");
  EXPECT_TRUE(service.wait(blocker).ok());
}

TEST(FlowService, CancellingPrimaryRequeuesDequeueTimeFollowers) {
  // The harder variant of the test above: the follower attaches at dequeue
  // time (its fingerprint is unknown at submit), so it carries state
  // Running when the primary is cancelled — it must still be re-queued and
  // executed, not dropped by the queue's tombstone check.
  const auto gate1 = std::make_shared<Gate>();
  const auto gate2 = std::make_shared<Gate>();
  Service service({.jobs = 1});
  const auto naive = core::make_config(core::Strategy::Naive);
  const auto config = core::make_config(core::Strategy::FullEndurance);

  const auto blocker1 = service.submit({gated_source(gate1, "b1"), naive, {}});
  gate1->await_entered();

  // Follower-to-be: same graph as the primary, but generator-built, so its
  // key is only computable on a worker.
  bench::BenchmarkSpec generated;
  generated.name = "generated";
  generated.build = [] { return bench::make_adder(8); };
  const auto follower =
      service.submit({Source::benchmark(generated), config, "follower"});
  const auto blocker2 = service.submit({gated_source(gate2, "b2"), naive, {}});
  const auto primary = service.submit(
      {Source::graph(bench::make_adder(8), "adder8"), config, "primary"});
  EXPECT_EQ(service.stats().coalesced, 0u)
      << "the generator source must not be coalescable at submit time";

  // Let the single worker process the follower (which attaches to the
  // still-pending primary) and pin itself inside blocker2.
  gate1->release();
  gate2->await_entered();
  EXPECT_EQ(service.stats().coalesced, 1u);

  EXPECT_TRUE(service.cancel(primary));
  gate2->release();
  EXPECT_EQ(service.wait(primary).error, "cancelled before execution");
  const auto result = service.wait(follower);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.report.benchmark, "follower");
  EXPECT_TRUE(service.wait(blocker1).ok());
  EXPECT_TRUE(service.wait(blocker2).ok());
}

TEST(FlowService, CoalescingStressKeepsAccountsConsistent) {
  // Many duplicates of two (source, config) pairs under real concurrency:
  // whatever interleaving happens, every ticket resolves with the right
  // label and executed + coalesced adds up.
  constexpr std::size_t kJobs = 48;
  Service service({.jobs = 4});
  const auto a = Source::graph(bench::make_adder(8), "a");
  const auto b = Source::graph(bench::make_adder(9), "b");
  const auto config = core::make_config(core::Strategy::FullEndurance);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < kJobs; ++i) {
    tickets.push_back(service.submit(
        {i % 2 == 0 ? a : b, config, "job" + std::to_string(i)}));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto result = service.wait(tickets[i]);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.report.benchmark, "job" + std::to_string(i));
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed, kJobs);
  EXPECT_EQ(stats.executed + stats.coalesced, kJobs);
  EXPECT_EQ(service.cache().program_misses(), 2u);
}

TEST(FlowService, RunnerFacadeKeepsCoalescingOff) {
  // The façade's contract: duplicate jobs keep flowing through the cache so
  // the historical hit/miss counters stay observable.
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  const auto config = core::make_config(core::Strategy::FullEndurance);
  Runner runner({.jobs = 2});
  throw_on_error(runner.run({{source, config, {}}, {source, config, {}}}));
  EXPECT_EQ(runner.cache().program_misses(), 1u);
  EXPECT_EQ(runner.cache().program_hits(), 1u);
}

// ---- configuration -----------------------------------------------------------

TEST(FlowService, WorkerCountDefaultsToHardwareConcurrency) {
  Service defaulted;
  EXPECT_GE(defaulted.workers(), 1u);
  Service fixed({.jobs = 3});
  EXPECT_EQ(fixed.workers(), 3u);
}

TEST(FlowService, CacheDirRequiresCaching) {
  EXPECT_THROW(Service({.cache_rewrites = false, .cache_dir = "/tmp/x"}),
               Error);
}

TEST(FlowService, OnFinishedFiresOncePerTicketAndAllowsCollection) {
  std::mutex mutex;
  std::vector<Ticket> notified;
  ServiceOptions options;
  options.jobs = 2;
  options.on_finished = [&](Ticket ticket) {
    const std::scoped_lock lock(mutex);
    notified.push_back(ticket);
  };
  Service service(std::move(options));
  std::vector<Ticket> tickets;
  for (unsigned bits = 2; bits <= 5; ++bits) {
    tickets.push_back(service.submit({Source::graph(bench::make_adder(bits),
                                                    "a" + std::to_string(bits)),
                                      core::make_config(core::Strategy::Naive),
                                      {}}));
  }
  for (const auto ticket : tickets) {
    // The hook's contract: by the time a wait() returns, the result was
    // collectable — so the notification must not be lost either.
    ASSERT_TRUE(service.wait(ticket).ok());
  }
  service.shutdown();
  const std::scoped_lock lock(mutex);
  auto sorted_notified = notified;
  std::sort(sorted_notified.begin(), sorted_notified.end());
  EXPECT_EQ(sorted_notified, tickets);
}

TEST(FlowService, OnFinishedFiresForCancelledTickets) {
  const auto gate = std::make_shared<Gate>();
  std::mutex mutex;
  std::vector<Ticket> notified;
  ServiceOptions options;
  options.jobs = 1;
  options.on_finished = [&](Ticket ticket) {
    const std::scoped_lock lock(mutex);
    notified.push_back(ticket);
  };
  Service service(std::move(options));
  const auto running = service.submit(
      {gated_source(gate), core::make_config(core::Strategy::Naive), {}});
  gate->await_entered();  // the single worker is stuck inside the gated build
  const auto pending = service.submit({Source::graph(bench::make_adder(4), "p"),
                                       core::make_config(core::Strategy::Naive),
                                       {}});
  EXPECT_TRUE(service.cancel(pending));  // never ran — cancellation completes it
  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(notified, std::vector<Ticket>{pending});
  }
  gate->release();
  ASSERT_TRUE(service.wait(running).ok());
  service.shutdown();
  const std::scoped_lock lock(mutex);
  EXPECT_EQ(notified.size(), 2u);
}

}  // namespace
}  // namespace rlim::flow
