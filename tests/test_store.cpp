#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <random>

#include "benchmarks/arithmetic.hpp"
#include "core/endurance.hpp"
#include "mig/rewriting.hpp"
#include "store/disk_store.hpp"
#include "store/format.hpp"
#include "store/gc.hpp"
#include "store/serialize.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::store {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the test temp root, wiped at entry so reruns see a
/// clean store.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("store_" + name);
  fs::remove_all(dir);
  return dir;
}

/// The store's sharded entry path for (kind, fingerprint, key) — the one
/// place the tests encode the production layout formula.
fs::path path_of(const fs::path& root, EntryKind kind,
                 std::uint64_t fingerprint, const std::string& key) {
  const auto name = entry_file_name(kind, fingerprint, key);
  return objects_dir(root) / name.substr(0, 2) / name;
}

mig::Mig sample_graph() { return bench::make_adder(6); }

mig::RewriteStats sample_stats() {
  mig::RewriteStats stats;
  stats.initial_gates = 41;
  stats.final_gates = 37;
  stats.initial_complement_edges = 12;
  stats.final_complement_edges = 7;
  stats.cycles_run = 3;
  stats.total_applications = 19;
  // Negative deltas exercise the signed u64 cast in the codec.
  stats.per_pass.push_back({"maj", 3, 12, -4, -5, -1, 1234});
  stats.per_pass.push_back({"dist", 3, 7, 0, 2, 0, 567});
  return stats;
}

core::EnduranceReport sample_report() {
  // Label-agnostic, the way PipelineCache stores it.
  return core::run_pipeline(sample_graph(),
                            core::make_config(core::Strategy::FullEndurance),
                            {});
}

void expect_same_graph(const mig::Mig& a, const mig::Mig& b) {
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  EXPECT_EQ(a.num_gates(), b.num_gates());
  EXPECT_EQ(a.complement_edge_count(), b.complement_edge_count());
  for (std::uint32_t pi = 0; pi < a.num_pis(); ++pi) {
    EXPECT_EQ(a.pi_name(pi), b.pi_name(pi));
  }
  for (std::uint32_t po = 0; po < a.num_pos(); ++po) {
    EXPECT_EQ(a.po_at(po), b.po_at(po));
    EXPECT_EQ(a.po_name(po), b.po_name(po));
  }
}

void expect_same_program(const plim::Program& a, const plim::Program& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instructions()[i], b.instructions()[i]) << "instruction " << i;
  }
  EXPECT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.pi_cells().size(), b.pi_cells().size());
  ASSERT_EQ(a.po_cells().size(), b.po_cells().size());
  for (std::size_t i = 0; i < a.pi_cells().size(); ++i) {
    EXPECT_EQ(a.pi_cells()[i], b.pi_cells()[i]);
  }
  for (std::size_t i = 0; i < a.po_cells().size(); ++i) {
    EXPECT_EQ(a.po_cells()[i], b.po_cells()[i]);
  }
}

// ---- serialization round-trips ---------------------------------------------

TEST(StoreSerialize, MigRoundTripsExactly) {
  const auto graph = mig::rewrite_endurance(sample_graph(), 2);
  util::ByteWriter out;
  encode(out, graph);
  util::ByteReader in(out.bytes());
  const auto decoded = decode_mig(in);
  in.expect_end();
  expect_same_graph(graph, decoded);
}

TEST(StoreSerialize, RewriteStatsRoundTrip) {
  const auto stats = sample_stats();
  util::ByteWriter out;
  encode(out, stats);
  util::ByteReader in(out.bytes());
  const auto decoded = decode_rewrite_stats(in);
  EXPECT_EQ(decoded.initial_gates, stats.initial_gates);
  EXPECT_EQ(decoded.final_gates, stats.final_gates);
  EXPECT_EQ(decoded.initial_complement_edges, stats.initial_complement_edges);
  EXPECT_EQ(decoded.final_complement_edges, stats.final_complement_edges);
  EXPECT_EQ(decoded.cycles_run, stats.cycles_run);
  EXPECT_EQ(decoded.total_applications, stats.total_applications);
  EXPECT_EQ(decoded.per_pass, stats.per_pass);  // incl. signed deltas + wall
}

TEST(StoreSerialize, ReportRoundTripsBitExactly) {
  const auto report = sample_report();
  util::ByteWriter out;
  encode(out, report);
  util::ByteReader in(out.bytes());
  const auto decoded = decode_report(in);
  EXPECT_EQ(decoded.benchmark, report.benchmark);
  EXPECT_EQ(decoded.config, report.config);
  EXPECT_EQ(decoded.instructions, report.instructions);
  EXPECT_EQ(decoded.rrams, report.rrams);
  EXPECT_EQ(decoded.gates_before_rewrite, report.gates_before_rewrite);
  EXPECT_EQ(decoded.gates_after_rewrite, report.gates_after_rewrite);
  EXPECT_EQ(decoded.writes.count, report.writes.count);
  EXPECT_EQ(decoded.writes.min, report.writes.min);
  EXPECT_EQ(decoded.writes.max, report.writes.max);
  EXPECT_EQ(decoded.writes.total, report.writes.total);
  // Doubles travel as IEEE-754 bit patterns: equality must be exact, or
  // warm-store reports would not be byte-identical to cold ones.
  EXPECT_EQ(decoded.writes.mean, report.writes.mean);
  EXPECT_EQ(decoded.writes.stdev, report.writes.stdev);
  expect_same_program(report.program, decoded.program);
  EXPECT_FALSE(decoded.fault_sweep.has_value());
}

TEST(StoreSerialize, FaultSweepBlockRoundTripsExactly) {
  // A report compiled under a fault config carries the distribution through
  // the store (and therefore the pipeline cache and the wire) unchanged.
  auto report = sample_report();
  report.config = core::PipelineConfig::parse(
      "full,fault=stuck:rate=0.02:endurance=60:trials=4:runs=30");
  fault::LifetimeDistribution dist;
  dist.trials = 4;
  dist.runs_cap = 30;
  dist.censored = 1;
  dist.lifetime_min = 3;
  dist.lifetime_p50 = 11;
  dist.lifetime_p99 = 29;
  dist.lifetime_max = 30;
  dist.lifetime_mean = 18.25;
  dist.failed_cells_min = 1;
  dist.failed_cells_max = 6;
  dist.failed_cells_mean = 3.5;
  dist.remapped_total = 2;
  dist.dropped_writes = 17;
  report.fault_sweep = dist;

  util::ByteWriter out;
  encode(out, report);
  util::ByteReader in(out.bytes());
  const auto decoded = decode_report(in);
  EXPECT_EQ(decoded.config, report.config);
  ASSERT_TRUE(decoded.fault_sweep.has_value());
  EXPECT_EQ(*decoded.fault_sweep, dist);
}

TEST(StoreSerialize, TruncatedPayloadThrowsInsteadOfMisdecoding) {
  RewritePayload payload{sample_graph(), sample_stats()};
  const auto bytes = encode_payload(payload);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
                                 bytes.size() - 1}) {
    EXPECT_THROW(
        static_cast<void>(decode_rewrite_payload(bytes.substr(0, keep))),
        Error)
        << "kept " << keep << " bytes";
  }
  EXPECT_THROW(static_cast<void>(decode_rewrite_payload(bytes + "x")), Error)
      << "trailing garbage must be rejected";
}

TEST(StoreSerialize, RandomizedTruncationNeverReadsPastTheEnd) {
  // Every prefix of a valid payload must throw rlim::Error from the
  // bounds-checked reader — never crash, hang, or decode. A fixed seed keeps
  // failures reproducible.
  ProgramPayload payload{mig::rewrite_endurance(sample_graph(), 2),
                         sample_stats(), sample_report()};
  const auto bytes = encode_payload(payload);
  ASSERT_GT(bytes.size(), 64u);
  std::mt19937 rng(0x51f0u);
  for (int i = 0; i < 200; ++i) {
    const auto keep = rng() % bytes.size();
    EXPECT_THROW(
        static_cast<void>(decode_program_payload(bytes.substr(0, keep))),
        Error)
        << "kept " << keep << " bytes";
  }
}

TEST(StoreSerialize, RejectsInconsistentSectionTable) {
  const auto graph = sample_graph();
  util::ByteWriter out;
  encode(out, graph);
  auto bytes = out.take();
  // Offset 20 holds sections_bytes (after the five u32 counts); nudging it
  // must be caught by the header/section cross-check, not by a misread.
  ASSERT_GT(bytes.size(), 24u);
  bytes[20] = static_cast<char>(static_cast<unsigned char>(bytes[20]) + 1);
  util::ByteReader in(bytes);
  EXPECT_THROW(static_cast<void>(decode_mig(in)), Error);
}

TEST(StoreSerialize, RejectsTamperedFaninSection) {
  // Flip a bit inside the bulk fanin section: the result either violates the
  // canonical-form validation or no longer matches the embedded fingerprint
  // — either way decode must throw rather than return a different graph.
  const auto graph = sample_graph();
  util::ByteWriter out;
  encode(out, graph);
  auto bytes = out.take();
  const auto num_pis = graph.num_pis();
  const auto num_pos = graph.num_pos();
  const std::size_t fanin_offset = 24 + 4ull * num_pis +
                                   graph.pi_names().pool().size() +
                                   4ull * num_pos +
                                   graph.po_names().pool().size();
  ASSERT_GT(graph.num_gates(), 2u);
  ASSERT_LT(fanin_offset + 12ull * graph.num_gates(), bytes.size());
  bytes[fanin_offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[fanin_offset]) ^ 0x01);
  util::ByteReader in(bytes);
  EXPECT_THROW(static_cast<void>(decode_mig(in)), Error);
}

// ---- disk store ------------------------------------------------------------

TEST(DiskStore, RewriteEntryRoundTripsThroughDisk) {
  DiskStore disk(fresh_dir("rewrite_roundtrip"));
  const auto graph = mig::rewrite_endurance(sample_graph(), 2);
  const auto fingerprint = sample_graph().fingerprint();
  EXPECT_FALSE(disk.load_rewrite(fingerprint, "endurance:effort=2"));
  ASSERT_TRUE(
      disk.store_rewrite(fingerprint, "endurance:effort=2", graph,
                         sample_stats()));
  const auto loaded = disk.load_rewrite(fingerprint, "endurance:effort=2");
  ASSERT_TRUE(loaded.has_value());
  expect_same_graph(graph, loaded->graph);
  EXPECT_EQ(loaded->stats.final_gates, sample_stats().final_gates);
  const auto counters = disk.counters();
  EXPECT_EQ(counters.rewrite_loads, 1u);
  EXPECT_EQ(counters.load_misses, 1u);
  EXPECT_EQ(counters.stores, 1u);
}

TEST(DiskStore, ProgramEntryRoundTripsThroughDisk) {
  DiskStore disk(fresh_dir("program_roundtrip"));
  const auto report = sample_report();
  const auto prepared = mig::rewrite_endurance(sample_graph(), 2);
  const auto fingerprint = sample_graph().fingerprint();
  const auto key = report.config.canonical_key();
  ASSERT_TRUE(disk.store_program(fingerprint, key, prepared, sample_stats(),
                                 report));
  const auto loaded = disk.load_program(fingerprint, key);
  ASSERT_TRUE(loaded.has_value());
  expect_same_graph(prepared, loaded->prepared);
  EXPECT_EQ(loaded->report.instructions, report.instructions);
  EXPECT_EQ(loaded->report.writes.stdev, report.writes.stdev);
  // Kind is part of the content address: a program entry never answers a
  // rewrite lookup for the same (fingerprint, key).
  EXPECT_FALSE(disk.load_rewrite(fingerprint, key));
}

TEST(DiskStore, TruncatedEntryIsEvictedAndFallsBackToMiss) {
  const auto root = fresh_dir("truncated");
  DiskStore disk(root);
  const auto graph = sample_graph();
  ASSERT_TRUE(disk.store_rewrite(1, "k", graph, sample_stats()));
  const auto path = path_of(root, EntryKind::Rewrite, 1, "k");
  ASSERT_TRUE(fs::exists(path));
  fs::resize_file(path, fs::file_size(path) / 2);

  EXPECT_FALSE(disk.load_rewrite(1, "k"));
  EXPECT_FALSE(fs::exists(path)) << "damaged entry must be evicted";
  EXPECT_EQ(disk.counters().evicted_corrupt, 1u);
  // The store heals: a fresh write-through restores service.
  ASSERT_TRUE(disk.store_rewrite(1, "k", graph, sample_stats()));
  EXPECT_TRUE(disk.load_rewrite(1, "k").has_value());
}

TEST(DiskStore, BitFlippedEntryIsRejectedByIntegrityHash) {
  const auto root = fresh_dir("bitflip");
  DiskStore disk(root);
  ASSERT_TRUE(disk.store_rewrite(2, "k", sample_graph(), sample_stats()));
  const auto path = path_of(root, EntryKind::Rewrite, 2, "k");

  // Flip one bit somewhere in the middle of the frame.
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  EXPECT_FALSE(disk.load_rewrite(2, "k"));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(disk.counters().evicted_corrupt, 1u);
}

TEST(DiskStore, VersionMismatchedEntryIsEvictedNotDecoded) {
  const auto root = fresh_dir("version");
  DiskStore disk(root);
  // Hand-craft an otherwise perfectly authenticated entry from a future
  // format version: integrity hash valid, version field one ahead.
  util::ByteWriter out;
  out.raw(kMagic)
      .u32(kFormatVersion + 1)
      .u8(static_cast<std::uint8_t>(EntryKind::Rewrite))
      .u64(3)
      .str("k");
  out.u32(4).raw("past");
  out.u64(util::fnv1a64_lanes(out.bytes()));
  const auto path = path_of(root, EntryKind::Rewrite, 3, "k");
  fs::create_directories(path.parent_path());
  {
    std::ofstream os(path, std::ios::binary);
    os.write(out.bytes().data(),
             static_cast<std::streamsize>(out.bytes().size()));
  }

  // Before any load touches it, stats classify the entry as stale.
  EXPECT_EQ(Gc(root).summarize().stale_version, 1u);

  EXPECT_FALSE(disk.load_rewrite(3, "k"));
  EXPECT_FALSE(fs::exists(path));
  const auto counters = disk.counters();
  EXPECT_EQ(counters.evicted_version, 1u);
  EXPECT_EQ(counters.evicted_corrupt, 0u);
}

TEST(DiskStore, AuthenticatedGarbagePayloadIsEvicted) {
  const auto root = fresh_dir("garbage_payload");
  DiskStore disk(root);
  // Valid frame (current version, matching hash) around an undecodable
  // payload — the decode layer must reject it, not crash or mis-table.
  util::ByteWriter out;
  out.raw(kMagic)
      .u32(kFormatVersion)
      .u8(static_cast<std::uint8_t>(EntryKind::Program))
      .u64(4)
      .str("k");
  out.u32(7).raw("garbage");
  out.u64(util::fnv1a64_lanes(out.bytes()));
  const auto path = path_of(root, EntryKind::Program, 4, "k");
  fs::create_directories(path.parent_path());
  {
    std::ofstream os(path, std::ios::binary);
    os.write(out.bytes().data(),
             static_cast<std::streamsize>(out.bytes().size()));
  }

  EXPECT_FALSE(disk.load_program(4, "k"));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(disk.counters().evicted_corrupt, 1u);
}

TEST(DiskStore, HashCollisionSurfacesAsPlainMiss) {
  const auto root = fresh_dir("collision");
  DiskStore disk(root);
  ASSERT_TRUE(disk.store_rewrite(5, "key_a", sample_graph(), sample_stats()));
  const auto collided = path_of(root, EntryKind::Rewrite, 5, "key_a");
  // A real 64-bit collision cannot be provoked through the API, so emulate
  // one by moving key_a's file to where key_b's entry would live.
  const auto target = path_of(root, EntryKind::Rewrite, 5, "key_b");
  fs::create_directories(target.parent_path());
  fs::rename(collided, target);

  EXPECT_FALSE(disk.load_rewrite(5, "key_b"));
  EXPECT_TRUE(fs::exists(target)) << "a foreign entry must not be evicted";
  EXPECT_EQ(disk.counters().evicted_corrupt, 0u);
}

// ---- garbage collection ----------------------------------------------------

/// Seeds `count` rewrite entries with strictly increasing mtimes, oldest
/// first, and returns their paths in that order.
std::vector<fs::path> seed_entries(DiskStore& disk, const fs::path& root,
                                   std::size_t count) {
  std::vector<fs::path> paths;
  const auto graph = sample_graph();
  const auto base = fs::file_time_type::clock::now() - std::chrono::hours(24);
  for (std::size_t i = 0; i < count; ++i) {
    const auto key = "k" + std::to_string(i);
    EXPECT_TRUE(disk.store_rewrite(i, key, graph, sample_stats()));
    auto path = path_of(root, EntryKind::Rewrite, i, key);
    fs::last_write_time(path, base + std::chrono::minutes(i));
    paths.push_back(std::move(path));
  }
  return paths;
}

TEST(StoreGc, MaxBytesEvictsOldestFirst) {
  const auto root = fresh_dir("gc_bytes");
  DiskStore disk(root);
  const auto paths = seed_entries(disk, root, 4);
  std::uint64_t total = 0;
  for (const auto& path : paths) {
    total += fs::file_size(path);
  }
  // Leave room for all but ~1.5 entries: exactly the two oldest must go.
  const auto entry_size = fs::file_size(paths[0]);
  Gc gc(root);
  const auto result = gc.collect({.max_bytes = total - entry_size * 3 / 2});

  EXPECT_EQ(result.scanned, 4u);
  EXPECT_EQ(result.evicted, 2u);
  EXPECT_FALSE(fs::exists(paths[0]));
  EXPECT_FALSE(fs::exists(paths[1]));
  EXPECT_TRUE(fs::exists(paths[2]));
  EXPECT_TRUE(fs::exists(paths[3]));
  EXPECT_LE(result.bytes_after, total - entry_size * 3 / 2);
}

TEST(StoreGc, MaxAgeEvictsOnlyStaleEntries) {
  const auto root = fresh_dir("gc_age");
  DiskStore disk(root);
  const auto paths = seed_entries(disk, root, 3);
  // Entries sit 24h in the past (minutes apart); a 48h horizon keeps all,
  // a 23h horizon drops all three.
  Gc gc(root);
  const auto none = gc.collect({.max_age = std::chrono::hours(48)});
  EXPECT_EQ(none.evicted, 0u);
  const auto all = gc.collect({.max_age = std::chrono::hours(23)});
  EXPECT_EQ(all.evicted, 3u);
  for (const auto& path : paths) {
    EXPECT_FALSE(fs::exists(path));
  }
}

TEST(StoreGc, ManifestListsSurvivorsAfterCollect) {
  const auto root = fresh_dir("gc_manifest");
  DiskStore disk(root);
  const auto paths = seed_entries(disk, root, 3);
  Gc gc(root);
  (void)gc.collect({.max_bytes = fs::file_size(paths[0]) * 2});
  ASSERT_TRUE(fs::exists(gc.manifest_path()));
  std::ifstream is(gc.manifest_path());
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("rlim-store-manifest"), std::string::npos);
  std::size_t lines = 0;
  for (std::string line; std::getline(is, line);) {
    ++lines;
  }
  // Survivors only (the two newest fit under the cap of two entry sizes).
  EXPECT_EQ(lines, 2u);
}

TEST(StoreGc, VerifyEvictsDamageAndKeepsHealth) {
  const auto root = fresh_dir("gc_verify");
  DiskStore disk(root);
  const auto paths = seed_entries(disk, root, 3);
  fs::resize_file(paths[1], 10);
  Gc gc(root);
  const auto result = gc.verify();
  EXPECT_EQ(result.scanned, 3u);
  EXPECT_EQ(result.ok, 2u);
  EXPECT_EQ(result.evicted_corrupt(), 1u);
  // A 10-byte stump cannot hold even the frame prefix: that is a
  // map-validation failure, not a hash mismatch or decode failure.
  EXPECT_EQ(result.evicted_map, 1u);
  EXPECT_EQ(result.evicted_hash, 0u);
  EXPECT_EQ(result.evicted_decode, 0u);
  EXPECT_GT(result.ok_bytes, 0u);
  EXPECT_EQ(result.evicted_bytes, 10u);
  EXPECT_FALSE(fs::exists(paths[1]));
  EXPECT_TRUE(fs::exists(paths[0]));
  EXPECT_TRUE(fs::exists(paths[2]));
}

TEST(StoreGc, VerifyDistinguishesHashMismatchFromMisframing) {
  const auto root = fresh_dir("gc_verify_classes");
  DiskStore disk(root);
  const auto paths = seed_entries(disk, root, 3);
  // paths[0]: flip a bit mid-frame — framing stays intact, the whole-frame
  // hash disagrees.
  {
    std::string bytes;
    std::ifstream is(paths[0], std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
    is.close();
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    std::ofstream os(paths[0], std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  // paths[1]: replace with a foreign file — map validation fails at magic.
  {
    std::ofstream os(paths[1], std::ios::binary | std::ios::trunc);
    os << "this is not an rlim entry but it is long enough to read";
  }
  const auto result = Gc(root).verify();
  EXPECT_EQ(result.scanned, 3u);
  EXPECT_EQ(result.ok, 1u);
  EXPECT_EQ(result.evicted_hash, 1u);
  EXPECT_EQ(result.evicted_map, 1u);
  EXPECT_EQ(result.evicted_decode, 0u);
  EXPECT_EQ(result.evicted_corrupt(), 2u);
}

TEST(StoreGc, ClearRemovesEverything) {
  const auto root = fresh_dir("gc_clear");
  DiskStore disk(root);
  (void)seed_entries(disk, root, 3);
  Gc gc(root);
  EXPECT_EQ(gc.clear(), 3u);
  EXPECT_EQ(gc.scan().size(), 0u);
  EXPECT_EQ(gc.summarize().entries, 0u);
}

TEST(StoreGc, SummarizeCountsKinds) {
  const auto root = fresh_dir("gc_summary");
  DiskStore disk(root);
  const auto report = sample_report();
  ASSERT_TRUE(disk.store_rewrite(1, "a", sample_graph(), sample_stats()));
  ASSERT_TRUE(disk.store_program(1, "b", sample_graph(), sample_stats(),
                                 report));
  const auto summary = Gc(root).summarize();
  EXPECT_EQ(summary.entries, 2u);
  EXPECT_EQ(summary.rewrite_entries, 1u);
  EXPECT_EQ(summary.program_entries, 1u);
  EXPECT_EQ(summary.stale_version, 0u);
  EXPECT_EQ(summary.unreadable, 0u);
  EXPECT_GT(summary.bytes, 0u);
}

}  // namespace
}  // namespace rlim::store
