// Standalone truth-table lemmas for every Boolean-algebra identity the
// rewriting engine relies on (paper §III-A.1). Each lemma builds both sides
// of the identity as independent graphs and checks exhaustive equivalence —
// these pin the *specification*, independent of the pass implementations.

#include <gtest/gtest.h>

#include <functional>

#include "mig/mig.hpp"
#include "mig/simulate.hpp"

namespace rlim::mig {
namespace {

using Builder = std::function<Signal(Mig&, std::vector<Signal>&)>;

void expect_identity(unsigned vars, const Builder& lhs, const Builder& rhs) {
  Mig left;
  Mig right;
  std::vector<Signal> lv;
  std::vector<Signal> rv;
  for (unsigned i = 0; i < vars; ++i) {
    lv.push_back(left.create_pi());
    rv.push_back(right.create_pi());
  }
  left.create_po(lhs(left, lv));
  right.create_po(rhs(right, rv));
  EXPECT_TRUE(equivalent_exhaustive(left, right));
}

TEST(AxiomLemma, CommutativityAllOrders) {
  // Ω.C — ⟨xyz⟩ = ⟨yxz⟩ = ⟨zyx⟩ (handled by fanin sorting; spec checked).
  for (int perm = 0; perm < 6; ++perm) {
    expect_identity(
        3,
        [](Mig& m, std::vector<Signal>& v) { return m.create_maj(v[0], v[1], v[2]); },
        [perm](Mig& m, std::vector<Signal>& v) {
          static constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                               {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
          return m.create_maj(v[kPerms[perm][0]], v[kPerms[perm][1]],
                              v[kPerms[perm][2]]);
        });
  }
}

TEST(AxiomLemma, MajorityEqual) {
  // Ω.M — ⟨xxz⟩ = x
  expect_identity(
      2, [](Mig& m, std::vector<Signal>& v) { return m.create_maj(v[0], v[0], v[1]); },
      [](Mig&, std::vector<Signal>& v) { return v[0]; });
}

TEST(AxiomLemma, MajorityComplement) {
  // Ω.M — ⟨xx̄z⟩ = z
  expect_identity(
      2, [](Mig& m, std::vector<Signal>& v) { return m.create_maj(v[0], !v[0], v[1]); },
      [](Mig&, std::vector<Signal>& v) { return v[1]; });
}

TEST(AxiomLemma, Associativity) {
  // Ω.A — ⟨xu⟨yuz⟩⟩ = ⟨zu⟨yux⟩⟩
  expect_identity(
      4,
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(v[0], v[1], m.create_maj(v[2], v[1], v[3]));
      },
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(v[3], v[1], m.create_maj(v[2], v[1], v[0]));
      });
}

TEST(AxiomLemma, Distributivity) {
  // Ω.D — ⟨xy⟨uvz⟩⟩ = ⟨⟨xyu⟩⟨xyv⟩z⟩
  expect_identity(
      5,
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(v[0], v[1], m.create_maj(v[2], v[3], v[4]));
      },
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(m.create_maj(v[0], v[1], v[2]),
                            m.create_maj(v[0], v[1], v[3]), v[4]);
      });
}

TEST(AxiomLemma, InverterPropagation) {
  // Ω.I — ⟨x̄ȳz̄⟩ = ¬⟨xyz⟩
  expect_identity(
      3,
      [](Mig& m, std::vector<Signal>& v) { return m.create_maj(!v[0], !v[1], !v[2]); },
      [](Mig& m, std::vector<Signal>& v) { return !m.create_maj(v[0], v[1], v[2]); });
}

TEST(AxiomLemma, InverterPropagationTwoComplements) {
  // Ω.I(R→L) corollary — ⟨x̄ȳz⟩ = ¬⟨xyz̄⟩
  expect_identity(
      3,
      [](Mig& m, std::vector<Signal>& v) { return m.create_maj(!v[0], !v[1], v[2]); },
      [](Mig& m, std::vector<Signal>& v) { return !m.create_maj(v[0], v[1], !v[2]); });
}

TEST(AxiomLemma, ComplementaryAssociativity) {
  // Ψ.C — ⟨x u ⟨y x̄ z⟩⟩ = ⟨x u ⟨y u z⟩⟩ (the paper's OCR garbles this
  // identity; this lemma pins the corrected [18] form used in the code).
  expect_identity(
      4,
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(v[0], v[1], m.create_maj(v[2], !v[0], v[3]));
      },
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(v[0], v[1], m.create_maj(v[2], v[1], v[3]));
      });
}

TEST(AxiomLemma, PaperPsiCTranscriptionIsWrong) {
  // The identity as literally printed in the paper's text,
  // ⟨x,u,⟨y,x̄,z⟩⟩ = ⟨x,u,⟨y,x,z⟩⟩, is NOT a tautology — documenting why we
  // use the [18] form instead.
  Mig left;
  Mig right;
  std::vector<Signal> lv;
  std::vector<Signal> rv;
  for (unsigned i = 0; i < 4; ++i) {
    lv.push_back(left.create_pi());
    rv.push_back(right.create_pi());
  }
  left.create_po(left.create_maj(lv[0], lv[1], left.create_maj(lv[2], !lv[0], lv[3])));
  right.create_po(
      right.create_maj(rv[0], rv[1], right.create_maj(rv[2], rv[0], rv[3])));
  EXPECT_FALSE(equivalent_exhaustive(left, right));
}

TEST(AxiomLemma, RelevanceOfRm3Decomposition) {
  // RM3 semantics used by every idiom: ⟨v v̄ z⟩ = v (constant write),
  // ⟨x 1̄ 0⟩ = x (copy), ⟨0 x̄ 1⟩ = x̄ (complement copy).
  expect_identity(
      2, [](Mig& m, std::vector<Signal>& v) { return m.create_maj(v[0], !v[0], v[1]); },
      [](Mig&, std::vector<Signal>& v) { return v[1]; });
  expect_identity(
      1,
      [](Mig& m, std::vector<Signal>& v) {
        // RM3(x, B=0, Z=0): the controller applies ¬B, so the gate is ⟨x 1 0⟩.
        return m.create_maj(v[0], Mig::get_constant(true), Mig::get_constant(false));
      },
      [](Mig&, std::vector<Signal>& v) { return v[0]; });
  expect_identity(
      1,
      [](Mig& m, std::vector<Signal>& v) {
        return m.create_maj(Mig::get_constant(false), !v[0], Mig::get_constant(true));
      },
      [](Mig&, std::vector<Signal>& v) { return !v[0]; });
}

TEST(AxiomLemma, MajorityDecomposesAndOr) {
  // ⟨xyz⟩ = (x ∨ y)(y ∨ z)(x ∨ z) = xy ∨ yz ∨ xz — §II's definition.
  expect_identity(
      3,
      [](Mig& m, std::vector<Signal>& v) { return m.create_maj(v[0], v[1], v[2]); },
      [](Mig& m, std::vector<Signal>& v) {
        const auto xy = m.create_and(v[0], v[1]);
        const auto yz = m.create_and(v[1], v[2]);
        const auto xz = m.create_and(v[0], v[2]);
        return m.create_or(m.create_or(xy, yz), xz);
      });
}

}  // namespace
}  // namespace rlim::mig
