// Randomized model-checking of CellAllocator: a straightforward reference
// model (linear scans, no incremental structures) must agree with the real
// allocator on every decision across long random operation sequences, for
// every policy and cap setting.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "plim/allocator.hpp"
#include "util/rng.hpp"

namespace rlim::plim {
namespace {

/// Reference allocator: same contract, naive data structures.
class ModelAllocator {
public:
  ModelAllocator(AllocPolicy policy, std::optional<std::uint64_t> cap)
      : policy_(policy), cap_(cap) {}

  Cell add_live_cell() {
    writes_.push_back(0);
    return static_cast<Cell>(writes_.size() - 1);
  }

  Cell acquire(std::uint64_t headroom) {
    // Pop per policy, skipping cells with insufficient headroom (they stay).
    std::vector<Cell> rejected;
    std::optional<Cell> found;
    while (!free_order_.empty()) {
      const auto cell = pop_candidate();
      if (!cap_ || writes_[cell] + headroom <= *cap_) {
        found = cell;
        break;
      }
      rejected.push_back(cell);
    }
    for (const auto cell : rejected) {
      push_candidate(cell);
    }
    if (found) {
      return *found;
    }
    return add_live_cell();
  }

  void release(Cell cell) {
    if (cap_ && writes_[cell] >= *cap_) {
      return;  // quarantined
    }
    push_candidate(cell);
  }

  void note_write(Cell cell) { ++writes_[cell]; }

  [[nodiscard]] std::uint64_t write_count(Cell cell) const { return writes_[cell]; }
  [[nodiscard]] std::size_t num_cells() const { return writes_.size(); }
  [[nodiscard]] std::size_t free_count() const { return free_order_.size(); }

private:
  void push_candidate(Cell cell) { free_order_.push_back(cell); }

  Cell pop_candidate() {
    std::size_t pick = 0;
    switch (policy_) {
      case AllocPolicy::Lifo:
        pick = free_order_.size() - 1;
        break;
      case AllocPolicy::Fifo:
        pick = 0;
        break;
      case AllocPolicy::RoundRobin: {
        // Smallest index >= cursor, else smallest overall.
        std::optional<std::size_t> best;
        for (std::size_t i = 0; i < free_order_.size(); ++i) {
          const auto candidate = free_order_[i];
          const bool candidate_ge = candidate >= cursor_;
          const bool best_ge = best && free_order_[*best] >= cursor_;
          if (!best) {
            best = i;
          } else if (candidate_ge != best_ge) {
            if (candidate_ge) {
              best = i;
            }
          } else if (candidate < free_order_[*best]) {
            best = i;
          }
        }
        pick = *best;
        cursor_ = free_order_[pick] + 1;
        break;
      }
      case AllocPolicy::MinWrite: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < free_order_.size(); ++i) {
          const auto a = free_order_[i];
          const auto b = free_order_[best];
          if (writes_[a] < writes_[b] || (writes_[a] == writes_[b] && a < b)) {
            best = i;
          }
        }
        pick = best;
        break;
      }
    }
    const auto cell = free_order_[pick];
    free_order_.erase(free_order_.begin() + static_cast<long>(pick));
    return cell;
  }

  AllocPolicy policy_;
  std::optional<std::uint64_t> cap_;
  std::vector<std::uint64_t> writes_;
  std::deque<Cell> free_order_;
  Cell cursor_ = 0;
};

class AllocatorModelCheck
    : public ::testing::TestWithParam<std::tuple<AllocPolicy, int, std::uint64_t>> {};

TEST_P(AllocatorModelCheck, AgreesWithReferenceOnRandomSequences) {
  const auto [policy, cap_value, seed] = GetParam();
  const std::optional<std::uint64_t> cap =
      cap_value == 0 ? std::nullopt : std::optional<std::uint64_t>(cap_value);

  CellAllocator real({policy, cap});
  ModelAllocator model(policy, cap);
  util::Xoshiro256 rng(seed);

  std::vector<Cell> in_use;
  for (int pi = 0; pi < 4; ++pi) {
    const auto a = real.add_live_cell();
    const auto b = model.add_live_cell();
    ASSERT_EQ(a, b);
    in_use.push_back(a);
  }

  for (int step = 0; step < 600; ++step) {
    const auto action = rng.below(100);
    if (action < 40 || in_use.empty()) {
      const auto headroom = 1 + rng.below(3);
      const auto a = real.acquire(headroom);
      const auto b = model.acquire(headroom);
      ASSERT_EQ(a, b) << "acquire mismatch at step " << step;
      in_use.push_back(a);
    } else if (action < 75) {
      const auto index = rng.below(in_use.size());
      const auto cell = in_use[index];
      if (real.writable(cell)) {
        real.note_write(cell);
        model.note_write(cell);
      }
    } else {
      const auto index = rng.below(in_use.size());
      const auto cell = in_use[index];
      in_use.erase(in_use.begin() + static_cast<long>(index));
      real.release(cell);
      model.release(cell);
    }
    ASSERT_EQ(real.num_cells(), model.num_cells()) << "step " << step;
    ASSERT_EQ(real.free_count(), model.free_count()) << "step " << step;
  }
  for (Cell cell = 0; cell < real.num_cells(); ++cell) {
    EXPECT_EQ(real.write_count(cell), model.write_count(cell));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesCapsSeeds, AllocatorModelCheck,
    ::testing::Combine(::testing::Values(AllocPolicy::Lifo, AllocPolicy::Fifo,
                                         AllocPolicy::RoundRobin,
                                         AllocPolicy::MinWrite),
                       ::testing::Values(0, 5, 12),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      auto name = to_string(std::get<0>(info.param)) + "_cap" +
                  std::to_string(std::get<1>(info.param)) + "_seed" +
                  std::to_string(std::get<2>(info.param));
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace rlim::plim
