#include <gtest/gtest.h>

#include "core/endurance.hpp"
#include "core/lifetime.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim::core {
namespace {

TEST(Lifetime, EstimateFormulas) {
  util::WriteStats writes;
  writes.count = 4;
  writes.min = 0;
  writes.max = 10;
  writes.total = 20;
  writes.mean = 5.0;
  const auto estimate = estimate_lifetime(writes, 1000);
  EXPECT_EQ(estimate.executions_to_first_failure, 100u);
  EXPECT_DOUBLE_EQ(estimate.ideal_executions, 200.0);
  EXPECT_DOUBLE_EQ(estimate.balance_efficiency, 0.5);
}

TEST(Lifetime, PerfectBalanceHasEfficiencyOne) {
  util::WriteStats writes;
  writes.count = 8;
  writes.min = writes.max = 5;
  writes.total = 40;
  writes.mean = 5.0;
  const auto estimate = estimate_lifetime(writes, 100);
  EXPECT_EQ(estimate.executions_to_first_failure, 20u);
  EXPECT_DOUBLE_EQ(estimate.balance_efficiency, 1.0);
}

TEST(Lifetime, ZeroWriteProgramIsUnbounded) {
  util::WriteStats writes;
  writes.count = 3;
  const auto estimate = estimate_lifetime(writes, 500);
  EXPECT_EQ(estimate.executions_to_first_failure, 500u);
  EXPECT_DOUBLE_EQ(estimate.balance_efficiency, 1.0);
}

TEST(Lifetime, ZeroEnduranceThrows) {
  EXPECT_THROW(static_cast<void>(estimate_lifetime(util::WriteStats{}, 0)), Error);
}

TEST(Lifetime, MeasuredFailureRespectsTheEstimate) {
  // Compile a small graph, run it on an array with a tiny endurance limit,
  // and check the guaranteed-safe execution count is indeed safe.
  const auto graph = test::random_mig(12, 8, 60, 4);
  const auto report = run_pipeline(graph, make_config(Strategy::MinWrite), "t");
  ASSERT_GT(report.writes.max, 0u);

  const std::uint64_t endurance = 6 * report.writes.max;
  const auto estimate = estimate_lifetime(report.writes, endurance);
  EXPECT_GE(estimate.executions_to_first_failure, 6u);

  const auto measured = measured_executions_until_failure(
      report.program, prepare(graph, make_config(Strategy::MinWrite)), endurance,
      estimate.executions_to_first_failure + 32, 99);
  // A stuck cell can only fail *after* the guaranteed-safe window.
  EXPECT_GE(measured, estimate.executions_to_first_failure);
}

TEST(Lifetime, FailureEventuallyObservedUnderTinyEndurance) {
  const auto graph = test::random_mig(13, 8, 80, 4);
  const auto config = make_config(Strategy::Naive);
  const auto prepared = prepare(graph, config);
  const auto report = compile_prepared(prepared, config, "t");
  ASSERT_GT(report.writes.max, 2u);
  const auto measured = measured_executions_until_failure(report.program, prepared,
                                                          /*cell_endurance=*/report.writes.max,
                                                          /*max_runs=*/64, 7);
  // With endurance == one run's max writes, cells start sticking during run 2
  // at the latest; random vectors should expose it quickly.
  EXPECT_LT(measured, 64u);
}

TEST(Lifetime, BetterBalanceExtendsGuaranteedLifetime) {
  const auto graph = test::random_mig(14, 10, 150, 6);
  const auto naive = run_pipeline(graph, make_config(Strategy::Naive), "t");
  const auto full = run_pipeline(graph, make_config(Strategy::FullEndurance, 10), "t");
  const std::uint64_t endurance = 1'000'000;
  const auto naive_life = estimate_lifetime(naive.writes, endurance);
  const auto full_life = estimate_lifetime(full.writes, endurance);
  EXPECT_GT(full_life.executions_to_first_failure,
            naive_life.executions_to_first_failure);
}

TEST(Lifetime, VariabilityZeroSigmaMatchesUniform) {
  const auto graph = test::random_mig(17, 8, 60, 4);
  const auto config = make_config(Strategy::MinWrite);
  const auto prepared = prepare(graph, config);
  const auto report = compile_prepared(prepared, config, "t");
  const std::uint64_t endurance = 5 * report.writes.max;
  const auto uniform = measured_executions_until_failure(report.program, prepared,
                                                         endurance, 64, 3);
  const auto study = lifetime_under_variability(report.program, prepared,
                                                endurance, 0.0, 3, 64, 3);
  for (const auto lifetime : study.lifetimes) {
    EXPECT_EQ(lifetime, uniform);
  }
}

TEST(Lifetime, VariabilitySpreadsLifetimes) {
  const auto graph = test::random_mig(18, 8, 80, 4);
  const auto config = make_config(Strategy::Naive);
  const auto prepared = prepare(graph, config);
  const auto report = compile_prepared(prepared, config, "t");
  const std::uint64_t endurance = 4 * report.writes.max;
  const auto study = lifetime_under_variability(report.program, prepared,
                                                endurance, 0.8, 8, 256, 5);
  EXPECT_EQ(study.lifetimes.size(), 8u);
  EXPECT_LE(study.min, study.median);
  // With sigma 0.8 the weakest arrays should die visibly earlier than the
  // strongest (spread across trials).
  EXPECT_LT(study.lifetimes.front(), study.lifetimes.back());
  EXPECT_GE(study.mean, static_cast<double>(study.min));
}

TEST(Lifetime, VariabilityNeedsTrials) {
  const auto graph = test::random_mig(19, 6, 30, 3);
  const auto report = run_pipeline(graph, make_config(Strategy::Naive), "t");
  EXPECT_THROW(static_cast<void>(lifetime_under_variability(
                   report.program, graph.cleanup(), 10, 0.5, 0, 10, 1)),
               Error);
}

TEST(Lifetime, ProfileMismatchThrows) {
  const auto graph = test::random_mig(15, 6, 30, 3);
  const auto report = run_pipeline(graph, make_config(Strategy::Naive), "t");
  const auto other = test::random_mig(16, 7, 30, 3);
  EXPECT_THROW(static_cast<void>(measured_executions_until_failure(
                   report.program, other, 100, 10, 1)),
               Error);
}

}  // namespace
}  // namespace rlim::core
