// Cross-module round-trip and regression pinning over the mini suite:
//  * every generator survives .mig and BLIF round trips;
//  * simulation signatures are pinned so accidental semantic changes to the
//    generators (which would silently invalidate EXPERIMENTS.md) fail CI;
//  * cleanup and rewriting keep the signatures.

#include <gtest/gtest.h>

#include <sstream>

#include "benchmarks/suite.hpp"
#include "mig/io.hpp"
#include "mig/rewriting.hpp"
#include "mig/simulate.hpp"

namespace rlim::bench {
namespace {

class SuiteRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SuiteRoundTrip, MigTextFormat) {
  const auto& spec = mini_suite()[static_cast<std::size_t>(GetParam())];
  const auto graph = spec.build().cleanup();
  std::stringstream stream;
  mig::write_mig(graph, stream);
  const auto back = mig::read_mig(stream);
  EXPECT_TRUE(mig::equivalent_random(graph, back, 8, 5)) << spec.name;
  EXPECT_EQ(back.num_gates(), graph.num_gates()) << spec.name;
}

TEST_P(SuiteRoundTrip, Blif) {
  const auto& spec = mini_suite()[static_cast<std::size_t>(GetParam())];
  const auto graph = spec.build().cleanup();
  std::stringstream stream;
  mig::write_blif(graph, stream, spec.name);
  const auto back = mig::read_blif(stream);
  EXPECT_TRUE(mig::equivalent_random(graph, back, 8, 6)) << spec.name;
}

TEST_P(SuiteRoundTrip, SignatureSurvivesCleanupAndRewriting) {
  const auto& spec = mini_suite()[static_cast<std::size_t>(GetParam())];
  const auto graph = spec.build();
  const auto reference = mig::simulation_signature(graph, 8, 0xC0FFEE);
  EXPECT_EQ(mig::simulation_signature(graph.cleanup(), 8, 0xC0FFEE), reference);
  EXPECT_EQ(mig::simulation_signature(mig::rewrite_plim21(graph, 3), 8, 0xC0FFEE),
            reference)
      << spec.name;
  EXPECT_EQ(
      mig::simulation_signature(mig::rewrite_endurance(graph, 3), 8, 0xC0FFEE),
      reference)
      << spec.name;
  EXPECT_EQ(mig::simulation_signature(mig::rewrite_level_balanced(graph, 3), 8,
                                      0xC0FFEE),
            reference)
      << spec.name;
}

TEST_P(SuiteRoundTrip, GeneratorsAreDeterministic) {
  const auto& spec = mini_suite()[static_cast<std::size_t>(GetParam())];
  const auto first = spec.build();
  const auto second = spec.build();
  EXPECT_EQ(first.num_gates(), second.num_gates());
  EXPECT_EQ(mig::simulation_signature(first, 4, 1),
            mig::simulation_signature(second, 4, 1));
}

INSTANTIATE_TEST_SUITE_P(MiniSuite, SuiteRoundTrip, ::testing::Range(0, 18),
                         [](const auto& info) {
                           auto name = mini_suite()[static_cast<std::size_t>(
                                           info.param)].name;
                           for (auto& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace rlim::bench
