#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/arithmetic.hpp"
#include "core/config.hpp"
#include "core/endurance.hpp"
#include "core/registry.hpp"
#include "mig/io.hpp"
#include "mig/rewriting.hpp"
#include "mig/simulate.hpp"
#include "pass/dump.hpp"
#include "pass/pass.hpp"
#include "pass/seq.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim {
namespace {

using core::PipelineConfig;

/// Canonical text of a graph — the byte-identity oracle of this suite.
std::string graph_text(const mig::Mig& graph) {
  std::ostringstream os;
  mig::write_mig(graph, os);
  return os.str();
}

/// The deterministic slice of a per-pass breakdown (wall time zeroed), so
/// enum-flow and PassManager telemetry can be compared exactly.
std::vector<mig::PassStats> without_wall(std::vector<mig::PassStats> per_pass) {
  for (auto& pass : per_pass) {
    pass.wall_ns = 0;
  }
  return per_pass;
}

class PassEnv : public ::testing::Test {
protected:
  void SetUp() override { pass::ensure_registered(); }
};

// ---- registry ---------------------------------------------------------------

TEST_F(PassEnv, BuiltinPassesConstructAndSelfDescribe) {
  for (const auto& info : pass::passes().list()) {
    const auto built = pass::make_pass({info.key, {}});
    ASSERT_NE(built, nullptr) << info.key;
    EXPECT_EQ(built->name(), info.key);
    EXPECT_EQ(built->params().size(), info.params.size()) << info.key;
  }
  EXPECT_THROW(static_cast<void>(pass::make_pass({"warp", {}})), Error);
}

TEST_F(PassEnv, EveryBuiltinPassPreservesFunction) {
  const auto graph = test::random_mig(91, 6, 60, 4);
  mig::RewriteStats stats;
  for (const auto& info : pass::passes().list()) {
    pass::PassManager manager;
    manager.add(pass::make_pass({info.key, {}}));
    const auto out = manager.run(graph, 2, &stats);
    EXPECT_TRUE(equivalent_exhaustive(graph, out)) << info.key;
  }
}

TEST_F(PassEnv, SplitPassListValidates) {
  EXPECT_EQ(pass::split_pass_list("maj"), (std::vector<std::string>{"maj"}));
  EXPECT_EQ(pass::split_pass_list("maj,dist,inv3"),
            (std::vector<std::string>{"maj", "dist", "inv3"}));
  EXPECT_THROW(static_cast<void>(pass::split_pass_list("")), Error);
  EXPECT_THROW(static_cast<void>(pass::split_pass_list("maj,,dist")), Error);
  EXPECT_THROW(static_cast<void>(pass::split_pass_list("maj,")), Error);
  EXPECT_THROW(static_cast<void>(pass::make_manager("maj,bogus")), Error);
  EXPECT_THROW(static_cast<void>(pass::make_manager("maj,dist", "inv")),
               Error);
}

// ---- alias byte-identity ----------------------------------------------------

TEST_F(PassEnv, AliasSequencesMatchEnumFlowsByteForByte) {
  // The acceptance criterion: running an enum flow's alias pass list through
  // the PassManager reproduces the enum-era graph exactly, for every flow,
  // effort, and a spread of graphs.
  const auto graphs = {test::random_mig(3, 8, 120, 6),
                       test::random_mig(77, 5, 40, 3),
                       bench::make_adder(16)};
  for (const auto& graph : graphs) {
    for (const auto kind :
         {mig::RewriteKind::Plim21, mig::RewriteKind::Endurance,
          mig::RewriteKind::LevelBalanced}) {
      for (const int effort : {0, 1, 5}) {
        mig::RewriteStats enum_stats;
        const auto golden = mig::rewrite(graph, kind, effort, &enum_stats);
        mig::RewriteStats seq_stats;
        const auto manager =
            pass::make_manager(pass::alias_passes(kind));
        const auto rebuilt = manager.run(graph, effort, &seq_stats);
        EXPECT_EQ(graph_text(golden), graph_text(rebuilt))
            << to_string(kind) << " effort " << effort;
        // Telemetry matches too (modulo wall time): same pass names, runs,
        // applications, and deltas in the same order.
        EXPECT_EQ(without_wall(enum_stats.per_pass),
                  without_wall(seq_stats.per_pass))
            << to_string(kind) << " effort " << effort;
        EXPECT_EQ(enum_stats.cycles_run, seq_stats.cycles_run);
        EXPECT_EQ(enum_stats.total_applications, seq_stats.total_applications);
      }
    }
  }
}

TEST_F(PassEnv, PerPassBreakdownIsConsistentWithTotals) {
  const auto graph = bench::make_adder(16);
  mig::RewriteStats stats;
  const auto out = mig::rewrite_endurance(graph, 5, &stats);
  const auto keys = mig::flow_pass_keys(mig::RewriteKind::Endurance);
  ASSERT_EQ(stats.per_pass.size(), keys.size());
  std::size_t applications = 0;
  std::int64_t gate_delta = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(stats.per_pass[i].name, keys[i]);
    EXPECT_EQ(stats.per_pass[i].runs,
              static_cast<std::uint64_t>(stats.cycles_run));
    applications += stats.per_pass[i].applications;
    gate_delta += stats.per_pass[i].gate_delta;
  }
  EXPECT_EQ(applications, stats.total_applications);
  // The pass deltas account for everything the cycles changed; the initial
  // cleanup happens before the first pass, so compare against the cleaned
  // gate count.
  EXPECT_EQ(static_cast<std::int64_t>(graph.cleanup().num_gates()) +
                gate_delta,
            static_cast<std::int64_t>(out.num_gates()));
}

// ---- until ------------------------------------------------------------------

TEST_F(PassEnv, UntilEqualsPrefixSequence) {
  const auto graph = test::random_mig(13, 7, 90, 5);
  const auto full = pass::split_pass_list(
      pass::alias_passes(mig::RewriteKind::Endurance));
  // Running until pass k must equal running the k-prefix sequence, for every
  // prefix cut at the *first* occurrence of the pass name.
  std::set<std::string> seen;
  for (std::size_t k = 0; k < full.size(); ++k) {
    if (!seen.insert(full[k]).second) {
      continue;  // until stops at the first occurrence — later cuts differ
    }
    std::string prefix;
    for (std::size_t i = 0; i <= k; ++i) {
      prefix += (i != 0 ? "," : "") + full[i];
    }
    mig::RewriteStats until_stats;
    const auto via_until =
        pass::make_manager(pass::alias_passes(mig::RewriteKind::Endurance),
                           full[k])
            .run(graph, 3, &until_stats);
    mig::RewriteStats prefix_stats;
    const auto via_prefix =
        pass::make_manager(prefix).run(graph, 3, &prefix_stats);
    EXPECT_EQ(graph_text(via_until), graph_text(via_prefix)) << full[k];
    EXPECT_EQ(without_wall(until_stats.per_pass),
              without_wall(prefix_stats.per_pass))
        << full[k];
  }
}

TEST_F(PassEnv, UntilValidatesAtRunTime) {
  pass::PassManager manager;
  manager.add(pass::make_pass({"maj", {}})).until("dist");
  EXPECT_THROW(static_cast<void>(manager.run(test::random_mig(1, 4, 10, 2), 1)),
               Error);
  EXPECT_THROW(static_cast<void>(manager.run(test::random_mig(1, 4, 10, 2),
                                             -1)),
               Error);
}

// ---- dumps ------------------------------------------------------------------

TEST_F(PassEnv, DumpAfterPassIsDeterministic) {
  const auto graph = test::random_mig(29, 6, 50, 4);
  const auto run_with_dump = [&] {
    std::ostringstream dumps;
    auto manager = pass::make_manager("maj,dist,inv");
    manager.on_dump(pass::dump_to_stream(dumps));
    static_cast<void>(manager.run(graph, 2));
    return dumps.str();
  };
  const auto first = run_with_dump();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_with_dump());  // byte-identical across runs
  EXPECT_NE(first.find("== cycle 0 step 0: maj =="), std::string::npos);
  EXPECT_NE(first.find("# MIG: "), std::string::npos);
}

TEST_F(PassEnv, DumpToDirectoryWritesOneDeterministicFilePerPass) {
  const auto graph = test::random_mig(31, 5, 30, 3);
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "rlim_pass_dumps";
  std::filesystem::remove_all(dir);
  auto manager = pass::make_manager("maj,dist");
  manager.on_dump(pass::dump_to_directory(dir.string()));
  static_cast<void>(manager.run(graph, 1));

  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names, (std::vector<std::string>{"cycle00_step00_maj.txt",
                                             "cycle00_step01_dist.txt"}));
  // The final dump equals a direct dump of the final graph.
  std::ostringstream expected;
  pass::dump_graph(manager.run(graph, 1), expected);
  std::ifstream last(dir / "cycle00_step01_dist.txt");
  std::stringstream actual;
  actual << last.rdbuf();
  EXPECT_EQ(actual.str(), expected.str());
  std::filesystem::remove_all(dir);
}

// ---- seq specs through the config grammar -----------------------------------

TEST_F(PassEnv, SeqSpecCanonicalKeyRoundTrips) {
  const auto config = PipelineConfig::parse(
      "rewrite=seq:passes=maj,dist,inv,inv3:effort=3:until=inv,"
      "select=endurance,alloc=min_write,cap=64");
  EXPECT_EQ(config.rewrite.key, "seq");
  EXPECT_EQ(config.rewrite.params.at("passes"), "maj,dist,inv,inv3");
  EXPECT_EQ(config.rewrite.params.at("until"), "inv");
  EXPECT_EQ(config.effort(), 3);
  const auto key = config.canonical_key();
  EXPECT_EQ(key,
            "rewrite=seq:effort=3:passes=maj,dist,inv,inv3:until=inv,"
            "select=endurance,alloc=min_write,cap=64");
  EXPECT_EQ(PipelineConfig::parse(key), config);
  EXPECT_EQ(PipelineConfig::parse(key).canonical_key(), key);
}

TEST_F(PassEnv, SeqSpecRejectsInvalidPassLists) {
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse(
                   "rewrite=seq:passes=maj,warp,select=naive,alloc=lifo")),
               Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse(
                   "rewrite=seq:passes=maj:until=dist,select=naive,"
                   "alloc=lifo")),
               Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse(
                   "rewrite=seq:passes=maj:effort=-2,select=naive,"
                   "alloc=lifo")),
               Error);
}

TEST_F(PassEnv, SeqFlowMatchesEnumFlowThroughTheFullPipeline) {
  // End to end through core::run_pipeline: a seq spec spelled as the
  // endurance alias produces the identical report.
  const auto graph = test::random_mig(41, 8, 80, 5);
  const auto via_enum = core::run_pipeline(
      graph,
      PipelineConfig::parse("rewrite=endurance,select=endurance,"
                            "alloc=min_write"),
      "x");
  const auto via_seq = core::run_pipeline(
      graph,
      PipelineConfig::parse(
          "rewrite=seq:passes=" +
          std::string(pass::alias_passes(mig::RewriteKind::Endurance)) +
          ",select=endurance,alloc=min_write"),
      "x");
  EXPECT_EQ(via_enum.instructions, via_seq.instructions);
  EXPECT_EQ(via_enum.rrams, via_seq.rrams);
  EXPECT_DOUBLE_EQ(via_enum.writes.stdev, via_seq.writes.stdev);
  EXPECT_EQ(via_enum.gates_after_rewrite, via_seq.gates_after_rewrite);
}

// ---- downstream registration ------------------------------------------------

TEST_F(PassEnv, DownstreamPassesComposeWithSeqSpecs) {
  // Register a custom pass once and drive it through the config grammar —
  // the same pluggability contract as the selector/allocator registries.
  static bool registered = false;
  if (!registered) {
    pass::passes().add(
        {"test_noop", "does nothing (test-only)", {}},
        [](const util::Params& params) -> pass::PassPtr {
          class NoopPass final : public pass::Pass {
          public:
            explicit NoopPass(util::Params params)
                : params_(std::move(params)) {}
            std::string_view name() const override { return "test_noop"; }
            const util::Params& params() const override { return params_; }
            void run(mig::Mig&, pass::PassStats&) const override {}

          private:
            util::Params params_;
          };
          return std::make_shared<NoopPass>(params);
        });
    registered = true;
  }
  const auto graph = test::random_mig(59, 6, 40, 3);
  const auto config = PipelineConfig::parse(
      "rewrite=seq:passes=test_noop,maj,test_noop,select=naive,alloc=lifo");
  EXPECT_EQ(PipelineConfig::parse(config.canonical_key()), config);
  const auto report = core::run_pipeline(graph, config, "noop");
  EXPECT_EQ(report.gates_before_rewrite, graph.num_gates());
}

}  // namespace
}  // namespace rlim
