#include <gtest/gtest.h>

#include "plim/allocator.hpp"
#include "util/error.hpp"

namespace rlim::plim {
namespace {

TEST(Allocator, GrowsWhenFreeSetEmpty) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  EXPECT_EQ(alloc.acquire(), 0u);
  EXPECT_EQ(alloc.acquire(), 1u);
  EXPECT_EQ(alloc.num_cells(), 2u);
  EXPECT_EQ(alloc.free_count(), 0u);
}

TEST(Allocator, LifoReturnsMostRecentlyFreed) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  const auto a = alloc.acquire();
  const auto b = alloc.acquire();
  const auto c = alloc.acquire();
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
  EXPECT_EQ(alloc.acquire(), c);
  EXPECT_EQ(alloc.acquire(), b);
  EXPECT_EQ(alloc.acquire(), a);
}

TEST(Allocator, FifoReturnsOldestFreed) {
  CellAllocator alloc({AllocPolicy::Fifo, std::nullopt});
  const auto a = alloc.acquire();
  const auto b = alloc.acquire();
  alloc.release(b);
  alloc.release(a);
  EXPECT_EQ(alloc.acquire(), b);
  EXPECT_EQ(alloc.acquire(), a);
}

TEST(Allocator, RoundRobinCyclesThroughIndices) {
  CellAllocator alloc({AllocPolicy::RoundRobin, std::nullopt});
  const auto a = alloc.acquire();  // 0
  const auto b = alloc.acquire();  // 1
  const auto c = alloc.acquire();  // 2
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
  EXPECT_EQ(alloc.acquire(), a);  // cursor at 0
  alloc.release(a);
  // Cursor moved past 0: next pick is 1, then 2, then wraps to 0.
  EXPECT_EQ(alloc.acquire(), b);
  EXPECT_EQ(alloc.acquire(), c);
  EXPECT_EQ(alloc.acquire(), a);
}

TEST(Allocator, MinWritePicksLeastWrittenCell) {
  CellAllocator alloc({AllocPolicy::MinWrite, std::nullopt});
  const auto a = alloc.acquire();
  const auto b = alloc.acquire();
  const auto c = alloc.acquire();
  alloc.note_write(a);
  alloc.note_write(a);
  alloc.note_write(b);
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
  EXPECT_EQ(alloc.acquire(), c);  // 0 writes
  EXPECT_EQ(alloc.acquire(), b);  // 1 write
  EXPECT_EQ(alloc.acquire(), a);  // 2 writes
}

TEST(Allocator, MinWriteTieBreaksDeterministically) {
  CellAllocator alloc({AllocPolicy::MinWrite, std::nullopt});
  const auto a = alloc.acquire();
  const auto b = alloc.acquire();
  alloc.release(b);
  alloc.release(a);
  EXPECT_EQ(alloc.acquire(), a);  // equal writes → lower index
  EXPECT_EQ(alloc.acquire(), b);
}

TEST(Allocator, AddLiveCellStartsInUse) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  const auto pi = alloc.add_live_cell();
  EXPECT_EQ(alloc.num_cells(), 1u);
  EXPECT_EQ(alloc.free_count(), 0u);
  EXPECT_EQ(alloc.write_count(pi), 0u);
  alloc.release(pi);
  EXPECT_EQ(alloc.acquire(), pi);
}

TEST(Allocator, WriteAccounting) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  const auto a = alloc.acquire();
  alloc.note_write(a);
  alloc.note_write(a);
  EXPECT_EQ(alloc.write_count(a), 2u);
  EXPECT_EQ(alloc.write_counts(), (std::vector<std::uint64_t>{2}));
}

TEST(Allocator, CapBelowThreeThrows) {
  EXPECT_THROW(CellAllocator({AllocPolicy::Lifo, 2}), Error);
  EXPECT_NO_THROW(CellAllocator({AllocPolicy::Lifo, 3}));
}

TEST(Allocator, QuarantineAtCapRetiresCell) {
  CellAllocator alloc({AllocPolicy::Lifo, 3});
  const auto a = alloc.acquire();
  alloc.note_write(a);
  alloc.note_write(a);
  EXPECT_TRUE(alloc.writable(a));
  alloc.note_write(a);  // reaches cap 3
  EXPECT_FALSE(alloc.writable(a));
  EXPECT_EQ(alloc.quarantined_count(), 1u);
  alloc.release(a);  // retired, not freed
  EXPECT_EQ(alloc.free_count(), 0u);
  EXPECT_NE(alloc.acquire(), a);  // a never comes back
}

TEST(Allocator, HeadroomSkipsNearCapCells) {
  CellAllocator alloc({AllocPolicy::MinWrite, 4});
  const auto a = alloc.acquire();
  alloc.note_write(a);
  alloc.note_write(a);  // 2 writes; headroom left = 2
  alloc.release(a);
  // Needs 3 writes: a (headroom 2) is skipped, a fresh cell appears...
  const auto b = alloc.acquire(3);
  EXPECT_NE(b, a);
  // ...but a stays in the free set for smaller requests.
  EXPECT_EQ(alloc.acquire(2), a);
}

TEST(Allocator, WritableWithoutCapAlwaysTrue) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  const auto a = alloc.acquire();
  for (int i = 0; i < 100; ++i) {
    alloc.note_write(a);
  }
  EXPECT_TRUE(alloc.writable(a));
  EXPECT_EQ(alloc.quarantined_count(), 0u);
}

TEST(Allocator, UnknownCellThrows) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  EXPECT_THROW(alloc.release(3), Error);
  EXPECT_THROW(alloc.note_write(3), Error);
  EXPECT_THROW(static_cast<void>(alloc.write_count(3)), Error);
  EXPECT_THROW(static_cast<void>(alloc.writable(3)), Error);
}

TEST(Allocator, PolicyNames) {
  EXPECT_EQ(to_string(AllocPolicy::Lifo), "lifo");
  EXPECT_EQ(to_string(AllocPolicy::Fifo), "fifo");
  EXPECT_EQ(to_string(AllocPolicy::RoundRobin), "round-robin");
  EXPECT_EQ(to_string(AllocPolicy::MinWrite), "min-write");
}

TEST(Allocator, MoveSemantics) {
  CellAllocator alloc({AllocPolicy::Lifo, std::nullopt});
  const auto a = alloc.acquire();
  alloc.note_write(a);
  CellAllocator moved = std::move(alloc);
  EXPECT_EQ(moved.write_count(a), 1u);
  EXPECT_EQ(moved.num_cells(), 1u);
}

// ---- quarantine under the rotating policies --------------------------------

TEST(Allocator, RoundRobinSkipsQuarantinedCellsMidRotation) {
  // Cap reached mid-rotation: the quarantined cell drops out of the cycle
  // while the rest keep rotating in index order.
  CellAllocator alloc({AllocPolicy::RoundRobin, 3});
  const auto a = alloc.acquire();  // 0
  const auto b = alloc.acquire();  // 1
  const auto c = alloc.acquire();  // 2
  // b hits the cap while in use.
  alloc.note_write(b);
  alloc.note_write(b);
  alloc.note_write(b);
  EXPECT_FALSE(alloc.writable(b));
  alloc.release(a);
  alloc.release(b);  // retired — never re-enters the rotation
  alloc.release(c);
  EXPECT_EQ(alloc.free_count(), 2u);
  EXPECT_EQ(alloc.quarantined_count(), 1u);
  EXPECT_EQ(alloc.acquire(), a);
  EXPECT_EQ(alloc.acquire(), c);  // b skipped
  // Free set exhausted: the next acquire grows the array past b.
  const auto d = alloc.acquire();
  EXPECT_EQ(d, 3u);
  EXPECT_EQ(alloc.num_cells(), 4u);
}

TEST(Allocator, FifoDropsQuarantinedCellsFromTheQueue) {
  CellAllocator alloc({AllocPolicy::Fifo, 3});
  const auto a = alloc.acquire();
  const auto b = alloc.acquire();
  alloc.note_write(a);
  alloc.note_write(a);
  alloc.note_write(a);  // a saturates while in use
  alloc.release(a);     // retired
  alloc.release(b);
  EXPECT_EQ(alloc.free_count(), 1u);
  EXPECT_EQ(alloc.quarantined_count(), 1u);
  EXPECT_EQ(alloc.acquire(), b);  // oldest *surviving* entry
  const auto c = alloc.acquire();
  EXPECT_EQ(c, 2u);  // growth, not resurrection of a
}

// ---- the registry-only start_gap policy ------------------------------------

TEST(Allocator, StartGapServesFromRovingStart) {
  // interval=2: the start pointer advances after every 2nd allocation,
  // detaching the service order from the allocation stream (unlike
  // round-robin, whose cursor follows every allocation).
  CellAllocator alloc(make_allocator(util::PolicySpec{"start_gap",
                                                      {{"interval", "2"}}}),
                      std::nullopt);
  const auto a = alloc.acquire();  // 0
  const auto b = alloc.acquire();  // 1
  const auto c = alloc.acquire();  // 2
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
  EXPECT_EQ(alloc.acquire(), a);  // start=0 → cell 0 (1st alloc)
  alloc.release(a);
  EXPECT_EQ(alloc.acquire(), a);  // still start=0 (2nd alloc) → start moves
  EXPECT_EQ(alloc.acquire(), b);  // start=1 → cell 1
  EXPECT_EQ(alloc.acquire(), c);
}

TEST(Allocator, StartGapIntervalMustBePositive) {
  EXPECT_THROW(
      static_cast<void>(make_allocator(
          util::PolicySpec{"start_gap", {{"interval", "0"}}})),
      Error);
}

TEST(Allocator, NullPolicyRejected) {
  EXPECT_THROW(CellAllocator(AllocatorPtr{}, std::nullopt), Error);
}

}  // namespace
}  // namespace rlim::plim
