#include <gtest/gtest.h>

#include "mig/mig.hpp"
#include "mig/simulate.hpp"
#include "util/error.hpp"

namespace rlim::mig {
namespace {

TEST(Signal, ConstantsAndComplement) {
  const auto zero = Signal::constant(false);
  const auto one = Signal::constant(true);
  EXPECT_TRUE(zero.is_constant());
  EXPECT_TRUE(one.is_constant());
  EXPECT_FALSE(zero.constant_value());
  EXPECT_TRUE(one.constant_value());
  EXPECT_EQ(!zero, one);
  EXPECT_EQ(!!zero, zero);
  EXPECT_EQ(zero ^ true, one);
  EXPECT_EQ(zero ^ false, zero);
}

TEST(Signal, EncodingRoundTrip) {
  const auto s = Signal::from_node(17, true);
  EXPECT_EQ(s.index(), 17u);
  EXPECT_TRUE(s.is_complemented());
  EXPECT_EQ(s.raw(), 35u);
  EXPECT_EQ(Signal::from_raw(35).index(), 17u);
  EXPECT_EQ((!s).index(), 17u);
  EXPECT_FALSE((!s).is_complemented());
}

TEST(Mig, FreshGraphHasOnlyConstant) {
  const Mig mig;
  EXPECT_EQ(mig.num_nodes(), 1u);
  EXPECT_EQ(mig.num_pis(), 0u);
  EXPECT_EQ(mig.num_gates(), 0u);
  EXPECT_TRUE(mig.is_constant(0));
}

TEST(Mig, PiCreationAndNames) {
  Mig mig;
  const auto a = mig.create_pi("alpha");
  const auto b = mig.create_pi();
  EXPECT_EQ(mig.num_pis(), 2u);
  EXPECT_TRUE(mig.is_pi(a.index()));
  EXPECT_TRUE(mig.is_pi(b.index()));
  EXPECT_EQ(mig.pi_name(0), "alpha");
  EXPECT_EQ(mig.pi_name(1), "x1");
}

TEST(Mig, PiAfterGateThrows) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  mig.create_and(a, b);
  EXPECT_THROW(mig.create_pi(), Error);
}

TEST(Mig, TrivialMajorityRules) {
  Mig mig;
  const auto x = mig.create_pi();
  const auto y = mig.create_pi();
  // ⟨xxy⟩ = x, ⟨xx̄y⟩ = y — all argument positions.
  EXPECT_EQ(mig.create_maj(x, x, y), x);
  EXPECT_EQ(mig.create_maj(x, y, x), x);
  EXPECT_EQ(mig.create_maj(y, x, x), x);
  EXPECT_EQ(mig.create_maj(x, !x, y), y);
  EXPECT_EQ(mig.create_maj(x, y, !x), y);
  EXPECT_EQ(mig.create_maj(y, x, !x), y);
  EXPECT_EQ(mig.num_gates(), 0u);
}

TEST(Mig, ConstantFoldingThroughTrivialRules) {
  Mig mig;
  const auto x = mig.create_pi();
  const auto zero = Mig::get_constant(false);
  const auto one = Mig::get_constant(true);
  EXPECT_EQ(mig.create_maj(zero, one, x), x);   // ⟨01x⟩ = x
  EXPECT_EQ(mig.create_maj(zero, zero, x), zero);
  EXPECT_EQ(mig.create_maj(one, one, x), one);
  EXPECT_EQ(mig.num_gates(), 0u);
}

TEST(Mig, StrashingMergesCommutativeVariants) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto g1 = mig.create_maj(a, b, c);
  const auto g2 = mig.create_maj(c, a, b);
  const auto g3 = mig.create_maj(b, c, a);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(g2, g3);
  EXPECT_EQ(mig.num_gates(), 1u);
}

TEST(Mig, ComplementVariantsAreDistinctNodes) {
  // No complement canonicalization: ⟨abc⟩ and ⟨āb̄c⟩ must coexist.
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto plain = mig.create_maj(a, b, c);
  const auto flipped = mig.create_maj(!a, !b, c);
  EXPECT_NE(plain.index(), flipped.index());
  EXPECT_EQ(mig.num_gates(), 2u);
}

TEST(Mig, FindMajLooksUpWithoutCreating) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  EXPECT_FALSE(mig.find_maj(a, b, c).has_value());
  const auto g = mig.create_maj(a, b, c);
  ASSERT_TRUE(mig.find_maj(c, b, a).has_value());
  EXPECT_EQ(*mig.find_maj(c, b, a), g);
  // Trivial lookups resolve without a node.
  EXPECT_EQ(*mig.find_maj(a, a, b), a);
  EXPECT_EQ(mig.num_gates(), 1u);
}

TEST(Mig, XorTruthTable) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  mig.create_po(mig.create_xor(a, b));
  EXPECT_EQ(truth_table(mig, 0), 0b0110u);
}

TEST(Mig, MuxTruthTable) {
  Mig mig;
  const auto s = mig.create_pi();
  const auto t = mig.create_pi();
  const auto e = mig.create_pi();
  mig.create_po(mig.create_mux(s, t, e));
  // Rows ordered s,t,e (s is bit 0): out = s ? t : e.
  std::uint64_t expected = 0;
  for (unsigned row = 0; row < 8; ++row) {
    const bool sv = row & 1;
    const bool tv = row & 2;
    const bool ev = row & 4;
    if (sv ? tv : ev) {
      expected |= 1u << row;
    }
  }
  EXPECT_EQ(truth_table(mig, 0), expected);
}

TEST(Mig, AndOrTruthTables) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  mig.create_po(mig.create_and(a, b));
  mig.create_po(mig.create_or(a, b));
  EXPECT_EQ(truth_table(mig, 0), 0b1000u);
  EXPECT_EQ(truth_table(mig, 1), 0b1110u);
}

TEST(Mig, FanoutCountsIncludePoReferences) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto g = mig.create_maj(a, b, c);
  const auto h = mig.create_maj(g, a, b);
  mig.create_po(g);
  mig.create_po(h);
  const auto counts = mig.fanout_counts();
  EXPECT_EQ(counts[g.index()], 2u);  // fanin of h + PO
  EXPECT_EQ(counts[h.index()], 1u);  // PO only
  EXPECT_EQ(counts[a.index()], 2u);  // g and h
}

TEST(Mig, FanoutListsContainParents) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto g = mig.create_maj(a, b, c);
  const auto h = mig.create_maj(g, !a, b);
  const auto lists = mig.fanout_lists();
  ASSERT_EQ(lists[g.index()].size(), 1u);
  EXPECT_EQ(lists[g.index()][0], h.index());
  EXPECT_EQ(lists[a.index()].size(), 2u);
}

TEST(Mig, LevelsAndDepth) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto g1 = mig.create_maj(a, b, c);
  const auto g2 = mig.create_maj(g1, a, b);
  const auto g3 = mig.create_maj(g2, g1, c);
  mig.create_po(g3);
  const auto level = mig.levels();
  EXPECT_EQ(level[a.index()], 0u);
  EXPECT_EQ(level[g1.index()], 1u);
  EXPECT_EQ(level[g2.index()], 2u);
  EXPECT_EQ(level[g3.index()], 3u);
  EXPECT_EQ(mig.depth(), 3u);
}

TEST(Mig, ComplementCountIgnoresConstants) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto g = mig.create_maj(Mig::get_constant(true), !a, b);
  EXPECT_EQ(mig.complement_count(g.index()), 1);
  const auto h = mig.create_maj(!a, !b, g);
  EXPECT_EQ(mig.complement_count(h.index()), 2);
  EXPECT_EQ(mig.complement_edge_count(), 3u);
}

TEST(Mig, CleanupRemovesDeadGates) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto used = mig.create_maj(a, b, c);
  mig.create_maj(a, !b, c);  // dead
  mig.create_maj(!a, b, !c);  // dead
  mig.create_po(used);
  EXPECT_EQ(mig.num_gates(), 3u);
  const auto cleaned = mig.cleanup();
  EXPECT_EQ(cleaned.num_gates(), 1u);
  EXPECT_EQ(cleaned.num_pis(), 3u);
  EXPECT_EQ(cleaned.num_pos(), 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, cleaned));
}

TEST(Mig, CleanupPreservesNames) {
  Mig mig;
  const auto a = mig.create_pi("in_a");
  const auto b = mig.create_pi("in_b");
  mig.create_po(mig.create_and(a, b), "out");
  const auto cleaned = mig.cleanup();
  EXPECT_EQ(cleaned.pi_name(0), "in_a");
  EXPECT_EQ(cleaned.pi_name(1), "in_b");
  EXPECT_EQ(cleaned.po_name(0), "out");
}

TEST(Mig, CleanupPreservesComplementedAndConstantPos) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  mig.create_po(!mig.create_and(a, b));
  mig.create_po(Mig::get_constant(true));
  mig.create_po(a);
  const auto cleaned = mig.cleanup();
  EXPECT_TRUE(equivalent_exhaustive(mig, cleaned));
}

TEST(Mig, ReachabilityMarksConeOnly) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto used = mig.create_and(a, b);
  const auto dead = mig.create_or(b, c);
  mig.create_po(used);
  const auto reachable = mig.reachable_from_pos();
  EXPECT_TRUE(reachable[used.index()]);
  EXPECT_FALSE(reachable[dead.index()]);
  EXPECT_TRUE(reachable[a.index()]);
}

TEST(Mig, FaninsOfNonGateThrows) {
  Mig mig;
  const auto a = mig.create_pi();
  EXPECT_THROW(static_cast<void>(mig.fanins(a.index())), Error);
  EXPECT_THROW(static_cast<void>(mig.fanins(0)), Error);
}

TEST(Mig, CreateMajRejectsUnknownNodes) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto bogus = Signal::from_node(99);
  EXPECT_THROW(mig.create_maj(a, bogus, a), Error);
  EXPECT_THROW(mig.create_po(bogus), Error);
}

TEST(Mig, FingerprintIsStableAndNameBlind) {
  const auto build = [](const char* pi_name) {
    Mig mig;
    const auto a = mig.create_pi(pi_name);
    const auto b = mig.create_pi();
    const auto c = mig.create_pi();
    mig.create_po(mig.create_maj(a, !b, c), "out");
    return mig;
  };
  // Same structure hashes equal, independent of names and across instances.
  EXPECT_EQ(build("x").fingerprint(), build("y").fingerprint());
  const auto graph = build("x");
  EXPECT_EQ(graph.fingerprint(), graph.fingerprint());
}

TEST(Mig, FingerprintSeparatesStructures) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto and_ = mig.create_and(a, b);
  Mig other;
  const auto c = other.create_pi();
  const auto d = other.create_pi();
  const auto or_ = other.create_or(c, d);
  mig.create_po(and_);
  other.create_po(or_);
  EXPECT_NE(mig.fingerprint(), other.fingerprint());

  // Complement placement is part of the identity (it drives RM3 cost).
  Mig inverted;
  const auto e = inverted.create_pi();
  const auto f = inverted.create_pi();
  inverted.create_po(!inverted.create_and(e, f));
  EXPECT_NE(mig.fingerprint(), inverted.fingerprint());
}

// ---- degenerate graphs -----------------------------------------------------

TEST(MigDegenerate, EmptyGraphStructuralQueries) {
  Mig mig;
  EXPECT_EQ(mig.num_nodes(), 1u);
  EXPECT_EQ(mig.num_pis(), 0u);
  EXPECT_EQ(mig.num_gates(), 0u);
  EXPECT_EQ(mig.num_pos(), 0u);
  EXPECT_EQ(mig.depth(), 0u);
  EXPECT_EQ(mig.complement_edge_count(), 0u);
  const auto levels = mig.levels();
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], 0u);
  const auto fanouts = mig.fanout_counts();
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_EQ(fanouts[0], 0u);
  EXPECT_TRUE(mig.gate_fanins().empty());
  EXPECT_EQ(mig.reachable_from_pos().size(), 1u);
  EXPECT_EQ(mig.fingerprint(), Mig().fingerprint());
}

TEST(MigDegenerate, PiOnlyGraph) {
  Mig mig;
  const auto a = mig.create_pi("a");
  const auto b = mig.create_pi("b");
  mig.create_po(a, "pass");
  mig.create_po(!b);
  EXPECT_EQ(mig.num_gates(), 0u);
  EXPECT_EQ(mig.depth(), 0u);
  // Inverter accounting covers gate fanins only; the complemented PO edge is
  // not a memory write in the RM3 model.
  EXPECT_EQ(mig.complement_edge_count(), 0u);
  const auto fanouts = mig.fanout_counts();
  EXPECT_EQ(fanouts[a.index()], 1u);
  EXPECT_EQ(fanouts[b.index()], 1u);
  const auto reachable = mig.reachable_from_pos();
  EXPECT_TRUE(reachable[a.index()]);
  EXPECT_TRUE(reachable[b.index()]);
  // Cleanup on a gate-free graph is the identity (names included).
  const auto cleaned = mig.cleanup();
  EXPECT_EQ(cleaned.fingerprint(), mig.fingerprint());
  EXPECT_EQ(cleaned.num_pis(), 2u);
  EXPECT_EQ(cleaned.pi_name(0), "a");
  EXPECT_EQ(cleaned.po_name(0), "pass");
}

TEST(MigDegenerate, ConstantOnlyPo) {
  Mig mig;
  mig.create_po(Mig::get_constant(true), "one");
  mig.create_po(Mig::get_constant(false));
  EXPECT_EQ(mig.num_nodes(), 1u);
  EXPECT_EQ(mig.num_pos(), 2u);
  EXPECT_EQ(mig.depth(), 0u);
  // Constant-1 is node 0 complemented; constant edges are excluded from the
  // inverter count just like complement_count ignores constant fanins.
  EXPECT_EQ(mig.complement_edge_count(), 0u);
  const auto fanouts = mig.fanout_counts();
  EXPECT_EQ(fanouts[0], 2u);
  EXPECT_TRUE(mig.reachable_from_pos()[0]);
  const auto cleaned = mig.cleanup();
  EXPECT_EQ(cleaned.num_pos(), 2u);
  EXPECT_TRUE(simulate(cleaned, {})[0]);
  EXPECT_FALSE(simulate(cleaned, {})[1]);
}

// ---- adopt_raw validation --------------------------------------------------

namespace {

/// Extracts the raw sections of a graph, the same way the store's decoder
/// produces them.
Mig::RawGraph raw_of(const Mig& mig) {
  Mig::RawGraph raw;
  raw.num_pis = mig.num_pis();
  raw.fanins.assign(mig.gate_fanins().begin(), mig.gate_fanins().end());
  raw.pos.assign(mig.pos().begin(), mig.pos().end());
  raw.pi_names = mig.pi_names();
  raw.po_names = mig.po_names();
  return raw;
}

Mig small_graph() {
  Mig mig;
  const auto a = mig.create_pi("a");
  const auto b = mig.create_pi("b");
  const auto c = mig.create_pi("c");
  const auto g = mig.create_maj(a, !b, c);
  mig.create_po(mig.create_maj(a, g, !c), "out");
  return mig;
}

}  // namespace

TEST(MigAdoptRaw, RoundTripsStructureNamesAndMetadata) {
  const auto original = small_graph();
  auto adopted = Mig::adopt_raw(raw_of(original));
  EXPECT_EQ(adopted.fingerprint(), original.fingerprint());
  EXPECT_EQ(adopted.levels(), original.levels());
  EXPECT_EQ(adopted.fanout_counts(), original.fanout_counts());
  EXPECT_EQ(adopted.complement_edge_count(), original.complement_edge_count());
  EXPECT_EQ(adopted.pi_name(0), "a");
  EXPECT_EQ(adopted.po_name(0), "out");
  // The strash table is rebuilt: an adopted gate is found, not duplicated.
  const auto a = Signal::from_node(1);
  const auto b = Signal::from_node(2);
  const auto c = Signal::from_node(3);
  EXPECT_TRUE(adopted.find_maj(a, !b, c).has_value());
  const auto before = adopted.num_gates();
  static_cast<void>(adopted.create_maj(a, !b, c));
  EXPECT_EQ(adopted.num_gates(), before);
}

TEST(MigAdoptRaw, RejectsUnsortedOrTrivialFanins) {
  // Unsorted fanin order violates the Ω.C canonical form.
  auto raw = raw_of(small_graph());
  std::swap(raw.fanins[0][0], raw.fanins[0][1]);
  EXPECT_THROW(static_cast<void>(Mig::adopt_raw(std::move(raw))), Error);
  // A repeated fanin index is a trivial Ω.M gate that create_maj would have
  // folded away.
  raw = raw_of(small_graph());
  raw.fanins[0][1] = raw.fanins[0][0];
  EXPECT_THROW(static_cast<void>(Mig::adopt_raw(std::move(raw))), Error);
}

TEST(MigAdoptRaw, RejectsForwardAndOutOfRangeReferences) {
  auto raw = raw_of(small_graph());
  // A gate referencing itself (or any later node) breaks topological order.
  raw.fanins[0][2] = Signal::from_node(4);
  EXPECT_THROW(static_cast<void>(Mig::adopt_raw(std::move(raw))), Error);
  raw = raw_of(small_graph());
  raw.pos[0] = Signal::from_node(99);
  EXPECT_THROW(static_cast<void>(Mig::adopt_raw(std::move(raw))), Error);
}

TEST(MigAdoptRaw, RejectsDuplicateGates) {
  auto raw = raw_of(small_graph());
  ASSERT_GE(raw.fanins.size(), 2u);
  raw.fanins[1] = raw.fanins[0];
  EXPECT_THROW(static_cast<void>(Mig::adopt_raw(std::move(raw))), Error);
}

TEST(MigAdoptRaw, RejectsNameCountMismatch) {
  auto raw = raw_of(small_graph());
  raw.pi_names = NamePool();
  raw.pi_names.append("only-one");
  EXPECT_THROW(static_cast<void>(Mig::adopt_raw(std::move(raw))), Error);
}

}  // namespace
}  // namespace rlim::mig
