#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "benchmarks/arithmetic.hpp"
#include "benchmarks/suite.hpp"
#include "flow/runner.hpp"
#include "flow/suite.hpp"
#include "store/disk_store.hpp"
#include "util/error.hpp"

namespace rlim::flow {
namespace {

std::vector<Job> strategy_sweep(const std::vector<SourcePtr>& sources) {
  std::vector<Job> jobs;
  for (const auto& source : sources) {
    for (const auto strategy : paper_strategies()) {
      jobs.push_back({source, core::make_config(strategy), {}});
    }
  }
  return jobs;
}

/// Renders a batch's results the way the table drivers do — used to compare
/// runs byte-for-byte.
std::string render(const std::vector<JobResult>& results, ReportFormat format) {
  Report doc;
  doc.title = "sweep";
  doc.columns = {"benchmark", "#I", "#R", "min", "max", "STDEV"};
  for (const auto& result : results) {
    doc.add_row({result.report.benchmark,
                 std::to_string(result.report.instructions),
                 std::to_string(result.report.rrams),
                 std::to_string(result.report.writes.min),
                 std::to_string(result.report.writes.max),
                 std::to_string(result.report.writes.stdev)});
  }
  std::ostringstream os;
  make_sink(format)->write(doc, os);
  return os.str();
}

// ---- sources ---------------------------------------------------------------

TEST(FlowSource, BenchmarkCarriesSpecProfile) {
  const auto source = Source::benchmark("adder");
  EXPECT_EQ(source->label(), "adder");
  EXPECT_EQ(source->pis(), 256u);
  EXPECT_EQ(source->pos(), 129u);
}

TEST(FlowSource, GraphSourceIsImmediatelyAvailable) {
  auto graph = bench::make_adder(4);
  const auto fingerprint = graph.fingerprint();
  const auto source = Source::graph(std::move(graph), "adder4");
  EXPECT_EQ(source->label(), "adder4");
  EXPECT_EQ(source->pis(), 8u);
  EXPECT_EQ(source->fingerprint(), fingerprint);
}

TEST(FlowSource, NetlistRejectsUnknownExtension) {
  EXPECT_THROW(Source::netlist("whatever.v"), Error);
}

TEST(FlowSource, NetlistBenchPrefixResolvesSuite) {
  const auto source = Source::netlist("bench:ctrl");
  EXPECT_EQ(source->label(), "bench:ctrl");
  EXPECT_GT(source->original().num_gates(), 0u);
}

TEST(FlowSource, MissingFileFailsAsJobError) {
  const auto result = run_job({Source::netlist("/nonexistent/x.mig"),
                               core::make_config(core::Strategy::Naive),
                               {}});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
}

// ---- rewrite cache ---------------------------------------------------------

TEST(FlowCache, FullSuiteSweepRewritesEachBenchmarkExactlyOnce) {
  // The acceptance property of the redesign: a full-suite × all-strategies
  // sweep runs rewrite_plim21 and rewrite_endurance exactly once per
  // benchmark, however many configurations consume them.
  const auto& specs = bench::mini_suite();
  std::vector<SourcePtr> sources;
  for (const auto& spec : specs) {
    sources.push_back(Source::benchmark(spec));
  }
  Runner runner({.jobs = 4});
  const auto results = runner.run(strategy_sweep(sources));
  throw_on_error(results);

  const auto n = specs.size();
  EXPECT_EQ(runner.cache().rewrites("plim21"), n);
  EXPECT_EQ(runner.cache().rewrites("endurance"), n);
  // Naive jobs bypass the rewrite level entirely (they compile the original
  // graph), so the 5 strategies per benchmark touch 2 distinct rewrite keys.
  EXPECT_EQ(runner.cache().rewrites("none"), 0u);
  EXPECT_EQ(runner.cache().misses(), 2 * n);
  EXPECT_EQ(runner.cache().hits(), 5 * n - n - 2 * n);
  // All 5 configs per benchmark are distinct, so the program level compiles
  // each exactly once.
  EXPECT_EQ(runner.cache().program_misses(), 5 * n);
  EXPECT_EQ(runner.cache().program_hits(), 0u);

  // Jobs sharing a cache entry share the rewritten graph instance.
  for (std::size_t b = 0; b < n; ++b) {
    EXPECT_EQ(results[b * 5 + 1].prepared, results[b * 5 + 2].prepared)
        << specs[b].name;  // Plim21 + MinWrite both use RewriteKind::Plim21
    EXPECT_EQ(results[b * 5 + 3].prepared, results[b * 5 + 4].prepared)
        << specs[b].name;  // both endurance flavours
  }
}

TEST(FlowRunner, NaiveJobsCompileTheOriginalGraph) {
  // The paper's naive baseline is "node translation only": RewriteKind::None
  // must compile the graph exactly as constructed — no cleanup pass — and
  // share the Source's graph instance instead of a cache copy.
  const auto source = Source::benchmark(bench::mini_suite().front());
  const auto result =
      run_job({source, core::make_config(core::Strategy::Naive), {}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.prepared.get(), &source->original());
  EXPECT_EQ(result.report.gates_after_rewrite, source->original().num_gates());
  EXPECT_EQ(result.rewrite_stats.initial_gates,
            result.rewrite_stats.final_gates);
}

TEST(FlowCache, CachePersistsAcrossRunnerBatches) {
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  Runner runner({.jobs = 2});
  const auto first =
      runner.run({{source, core::make_config(core::Strategy::FullEndurance), {}}});
  const auto second = runner.run(
      {{source, core::make_config(core::Strategy::FullEndurance, 10), {}}});
  throw_on_error(first);
  throw_on_error(second);
  EXPECT_EQ(runner.cache().rewrites("endurance"), 1u);
  EXPECT_EQ(first.front().prepared, second.front().prepared);
}

TEST(FlowCache, EffortIsPartOfTheKey) {
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  auto low = core::make_config(core::Strategy::FullEndurance);
  low.set_effort(1);
  auto high = core::make_config(core::Strategy::FullEndurance);
  high.set_effort(5);
  Runner runner;
  throw_on_error(runner.run({{source, low, {}}, {source, high, {}}}));
  EXPECT_EQ(runner.cache().rewrites("endurance"), 2u);
}

TEST(FlowCache, IdenticalGraphsShareEntriesAcrossSources) {
  // Content addressing: two distinct Sources with equal graphs hit the same
  // program-cache entry — the second job skips rewrite and compile alike,
  // but still reports under its own label.
  const auto a = Source::graph(bench::make_adder(8), "a");
  const auto b = Source::graph(bench::make_adder(8), "b");
  Runner runner;
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto results = runner.run({{a, config, {}}, {b, config, {}}});
  throw_on_error(results);
  EXPECT_EQ(runner.cache().rewrites("endurance"), 1u);
  EXPECT_EQ(runner.cache().program_misses(), 1u);
  EXPECT_EQ(runner.cache().program_hits(), 1u);
  EXPECT_EQ(results[0].prepared, results[1].prepared);
  EXPECT_EQ(results[0].report.benchmark, "a");
  EXPECT_EQ(results[1].report.benchmark, "b");
  EXPECT_EQ(results[0].report.instructions, results[1].report.instructions);
}

TEST(FlowCache, RepeatedConfigsSkipCompilation) {
  // The program level of the two-level cache: repeated (fingerprint,
  // canonical_key) pairs compile once, under any worker count, and the
  // rendered reports stay byte-identical between serial and parallel runs.
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  std::vector<Job> jobs;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const auto strategy : paper_strategies()) {
      jobs.push_back({source, core::make_config(strategy), {}});
    }
  }
  Runner serial({.jobs = 1});
  Runner parallel({.jobs = 8});
  const auto serial_results = serial.run(jobs);
  const auto parallel_results = parallel.run(jobs);
  throw_on_error(serial_results);
  throw_on_error(parallel_results);

  for (const auto* runner : {&serial, &parallel}) {
    EXPECT_EQ(runner->cache().program_misses(), 5u);   // distinct configs
    EXPECT_EQ(runner->cache().program_hits(), 15u);    // 3 repeats x 5
    EXPECT_EQ(runner->cache().rewrites("plim21"), 1u);
    EXPECT_EQ(runner->cache().rewrites("endurance"), 1u);
  }
  EXPECT_EQ(render(serial_results, ReportFormat::Csv),
            render(parallel_results, ReportFormat::Csv));
}

TEST(FlowCache, HandAssembledConfigsShareEntriesAfterNormalization) {
  // The program level normalizes before keying: a hand-assembled config
  // that omits defaulted parameters lands on the same entry as the
  // make_config preset with equal behavior.
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  core::PipelineConfig hand;
  hand.rewrite = {"endurance", {}};  // effort default not materialized
  hand.selection = {"endurance", {}};
  hand.allocation = {"min_write", {}};
  Runner runner;
  const auto results = runner.run(
      {{source, hand, {}},
       {source, core::make_config(core::Strategy::FullEndurance), {}}});
  throw_on_error(results);
  EXPECT_EQ(runner.cache().program_misses(), 1u);
  EXPECT_EQ(runner.cache().program_hits(), 1u);
  EXPECT_EQ(results[0].prepared, results[1].prepared);
}

TEST(FlowCache, ProgramCacheCanBeDisabled) {
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  Runner runner({.jobs = 2, .cache_rewrites = true, .cache_programs = false});
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto results = runner.run({{source, config, {}}, {source, config, {}}});
  throw_on_error(results);
  // Rewrites still shared, but each job compiled on its own.
  EXPECT_EQ(runner.cache().rewrites("endurance"), 1u);
  EXPECT_EQ(runner.cache().hits(), 1u);
  EXPECT_EQ(runner.cache().program_misses(), 0u);
  EXPECT_EQ(results[0].report.instructions, results[1].report.instructions);
}

TEST(FlowCache, DisablingTheCacheRewritesPerJob) {
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  Runner runner({.jobs = 2, .cache_rewrites = false});
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto results = runner.run({{source, config, {}}, {source, config, {}}});
  throw_on_error(results);
  EXPECT_EQ(runner.cache().misses(), 0u);
  // Independent rewrites of the same graph still agree structurally.
  EXPECT_EQ(results[0].prepared->fingerprint(),
            results[1].prepared->fingerprint());
}

// ---- persistent disk tier --------------------------------------------------

std::string fresh_store_dir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("flow_store_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(FlowDiskStore, SecondInvocationServesProgramsFromDisk) {
  // The cross-invocation acceptance property: a fresh Runner (fresh
  // in-memory cache — a new process, as far as the cache can tell) against
  // the same store recompiles nothing and renders byte-identical reports.
  const auto dir = fresh_store_dir("programs");
  const auto jobs = strategy_sweep({Source::graph(bench::make_adder(8),
                                                  "adder8")});
  Runner cold({.jobs = 2, .cache_dir = dir});
  const auto cold_results = cold.run(jobs);
  throw_on_error(cold_results);
  ASSERT_NE(cold.cache().disk_store(), nullptr);
  EXPECT_EQ(cold.cache().disk_store()->counters().program_loads, 0u);
  EXPECT_GT(cold.cache().disk_store()->counters().stores, 0u);

  Runner warm({.jobs = 2, .cache_dir = dir});
  const auto warm_results = warm.run(jobs);
  throw_on_error(warm_results);
  const auto counters = warm.cache().disk_store()->counters();
  EXPECT_EQ(counters.program_loads, jobs.size());
  EXPECT_EQ(counters.stores, 0u);
  // Nothing was rewritten or compiled in the warm run...
  EXPECT_EQ(warm.cache().rewrites("plim21"), 0u);
  EXPECT_EQ(warm.cache().rewrites("endurance"), 0u);
  // ...and the output is indistinguishable from the cold run's.
  for (const auto format :
       {ReportFormat::Table, ReportFormat::Csv, ReportFormat::Json}) {
    EXPECT_EQ(render(cold_results, format), render(warm_results, format));
  }
}

TEST(FlowDiskStore, RewriteTierPersistsWhenProgramCachingIsOff) {
  const auto dir = fresh_store_dir("rewrites");
  const auto source = Source::graph(bench::make_adder(8), "adder8");
  const auto config = core::make_config(core::Strategy::FullEndurance);
  Runner cold({.jobs = 1, .cache_programs = false, .cache_dir = dir});
  throw_on_error(cold.run({{source, config, {}}}));
  EXPECT_EQ(cold.cache().rewrites("endurance"), 1u);

  Runner warm({.jobs = 1, .cache_programs = false, .cache_dir = dir});
  throw_on_error(warm.run({{source, config, {}}}));
  EXPECT_EQ(warm.cache().rewrites("endurance"), 0u)
      << "the rewrite must come from disk, not run again";
  EXPECT_EQ(warm.cache().disk_store()->counters().rewrite_loads, 1u);
}

TEST(FlowDiskStore, CorruptedStoreFallsBackToRecomputeAndHeals) {
  const auto dir = fresh_store_dir("corrupt");
  const auto jobs = strategy_sweep({Source::graph(bench::make_adder(8),
                                                  "adder8")});
  Runner cold({.jobs = 2, .cache_dir = dir});
  const auto clean_results = cold.run(jobs);
  throw_on_error(clean_results);

  // Damage every entry in the store (truncation — the frame hash check
  // catches bit-flips the same way, covered in test_store.cpp).
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           store::objects_dir(dir))) {
    if (entry.is_regular_file()) {
      std::filesystem::resize_file(entry.path(), 5);
    }
  }

  Runner recover({.jobs = 2, .cache_dir = dir});
  const auto recovered_results = recover.run(jobs);
  throw_on_error(recovered_results);
  const auto counters = recover.cache().disk_store()->counters();
  EXPECT_EQ(counters.program_loads, 0u);
  EXPECT_GT(counters.evicted_corrupt, 0u);
  EXPECT_GT(counters.stores, 0u) << "recomputed entries are written back";
  EXPECT_EQ(render(clean_results, ReportFormat::Csv),
            render(recovered_results, ReportFormat::Csv));

  // After healing, a third runner is served from disk again.
  Runner warm({.jobs = 2, .cache_dir = dir});
  throw_on_error(warm.run(jobs));
  EXPECT_EQ(warm.cache().disk_store()->counters().program_loads, jobs.size());
}

TEST(FlowDiskStore, RunnerIgnoresAmbientEnvironment) {
  // RLIM_CACHE_DIR is a front-end contract (the CLI resolves it into
  // RunnerOptions::cache_dir); the library Runner itself must stay
  // hermetic so tests and benchmarks cannot be skewed — or a user's real
  // store polluted — by an ambient shell variable.
  ::setenv("RLIM_CACHE_DIR", "/tmp/rlim_must_never_be_touched", 1);
  Runner plain({.jobs = 1});
  ::unsetenv("RLIM_CACHE_DIR");
  EXPECT_EQ(plain.cache().disk_store(), nullptr);
}

TEST(FlowDiskStore, UnusableCacheDirThrowsAtConstruction) {
  EXPECT_THROW(Runner({.cache_dir = "/proc/definitely/not/writable"}), Error);
}

TEST(FlowDiskStore, CacheDirRequiresCaching) {
  // With caching off the jobs never touch the cache, so a disk tier would
  // be a silent no-op — reject the combination instead.
  EXPECT_THROW(Runner({.cache_rewrites = false,
                       .cache_dir = fresh_store_dir("inert")}),
               Error);
}

// ---- determinism -----------------------------------------------------------

TEST(FlowRunner, ReportsAreByteIdenticalForAnyWorkerCount) {
  const auto& specs = bench::mini_suite();
  std::vector<SourcePtr> serial_sources;
  std::vector<SourcePtr> parallel_sources;
  for (std::size_t i = 0; i < 4; ++i) {
    serial_sources.push_back(Source::benchmark(specs[i]));
    parallel_sources.push_back(Source::benchmark(specs[i]));
  }
  Runner serial({.jobs = 1});
  Runner parallel({.jobs = 8});
  const auto serial_results = serial.run(strategy_sweep(serial_sources));
  const auto parallel_results = parallel.run(strategy_sweep(parallel_sources));
  throw_on_error(serial_results);
  throw_on_error(parallel_results);

  for (const auto format :
       {ReportFormat::Table, ReportFormat::Csv, ReportFormat::Json}) {
    EXPECT_EQ(render(serial_results, format), render(parallel_results, format))
        << to_string(format);
  }
}

TEST(FlowRunner, ResultsArriveInJobOrder) {
  std::vector<Job> jobs;
  for (const unsigned bits : {2u, 3u, 4u, 5u}) {
    jobs.push_back({Source::graph(bench::make_adder(bits),
                                  "adder" + std::to_string(bits)),
                    core::make_config(core::Strategy::Naive),
                    {}});
  }
  Runner runner({.jobs = 4});
  const auto results = runner.run(jobs);
  throw_on_error(results);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].report.benchmark, jobs[i].display_label());
  }
}

TEST(FlowRunner, ErrorsAreCapturedPerJob) {
  std::vector<Job> jobs = {
      {Source::netlist("/nonexistent/a.mig"),
       core::make_config(core::Strategy::Naive),
       {}},
      {Source::graph(bench::make_adder(4), "ok"),
       core::make_config(core::Strategy::Naive),
       {}},
  };
  Runner runner({.jobs = 2});
  const auto results = runner.run(jobs);
  EXPECT_FALSE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_THROW(throw_on_error(results), Error);
}

TEST(FlowRunner, MatchesRunPipeline) {
  const auto graph = bench::make_adder(6);
  const auto config = core::make_config(core::Strategy::FullEndurance);
  const auto direct = core::run_pipeline(graph, config, "adder6");
  const auto result =
      run_job({Source::graph(graph, "adder6"), config, {}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.report.instructions, direct.instructions);
  EXPECT_EQ(result.report.rrams, direct.rrams);
  EXPECT_EQ(result.report.writes.stdev, direct.writes.stdev);
}

// ---- report sinks ----------------------------------------------------------

Report sample_report() {
  Report doc;
  doc.title = "sample";
  doc.columns = {"name", "value"};
  doc.add_row({"plain", "1"});
  doc.add_separator();
  doc.add_row({"with,comma", "quote\"inside"});
  doc.add_note("a note");
  return doc;
}

TEST(ReportSinks, TableSinkAlignsAndKeepsSeparators) {
  std::ostringstream os;
  TableSink().write(sample_report(), os);
  const auto text = os.str();
  EXPECT_NE(text.find("sample\n\n"), std::string::npos);
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("plain"), std::string::npos);
  EXPECT_NE(text.find("a note\n"), std::string::npos);
  // header rule + separator + closing rule = at least 4 '+--' lines.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = text.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(ReportSinks, CsvSinkQuotesAndComments) {
  std::ostringstream os;
  CsvSink().write(sample_report(), os);
  EXPECT_EQ(os.str(),
            "# sample\n"
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"quote\"\"inside\"\n"
            "# a note\n");
}

TEST(ReportSinks, JsonSinkEscapesAndSkipsSeparators) {
  std::ostringstream os;
  JsonSink().write(sample_report(), os);
  EXPECT_EQ(os.str(),
            "{\"title\":\"sample\",\"columns\":[\"name\",\"value\"],"
            "\"rows\":[[\"plain\",\"1\"],"
            "[\"with,comma\",\"quote\\\"inside\"]],"
            "\"notes\":[\"a note\"]}\n");
}

TEST(ReportSinks, FormatParsingRoundTrips) {
  for (const auto format :
       {ReportFormat::Table, ReportFormat::Csv, ReportFormat::Json}) {
    EXPECT_EQ(parse_format(to_string(format)), format);
  }
  EXPECT_THROW(static_cast<void>(parse_format("xml")), Error);
}

// ---- suite selection -------------------------------------------------------

TEST(FlowSuite, SourcesMatchSelection) {
  const auto selection = suite();
  const auto sources = suite_sources(selection);
  ASSERT_EQ(sources.size(), selection.specs->size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(sources[i]->label(), (*selection.specs)[i].name);
  }
}

}  // namespace
}  // namespace rlim::flow
