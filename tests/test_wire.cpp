#include <gtest/gtest.h>

#include <string>

#include "benchmarks/arithmetic.hpp"
#include "flow/runner.hpp"
#include "flow/wire.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::flow::wire {
namespace {

core::PipelineConfig sample_config() {
  return core::make_config(core::Strategy::FullEndurance, 100);
}

void expect_reports_equal(const core::EnduranceReport& a,
                          const core::EnduranceReport& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.config.canonical_key(), b.config.canonical_key());
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.rrams, b.rrams);
  EXPECT_EQ(a.writes.min, b.writes.min);
  EXPECT_EQ(a.writes.max, b.writes.max);
  EXPECT_EQ(a.writes.stdev, b.writes.stdev);  // bit-exact (f64 round-trip)
  EXPECT_EQ(a.gates_before_rewrite, b.gates_before_rewrite);
  EXPECT_EQ(a.gates_after_rewrite, b.gates_after_rewrite);
  EXPECT_EQ(a.program.disassemble(), b.program.disassemble());
}

// ---- JobSpec ----------------------------------------------------------------

TEST(FlowWire, ReferenceJobSpecRoundTrips) {
  const auto spec =
      JobSpec::reference("bench:ctrl", sample_config(), "my-label");
  const auto decoded = decode_job_spec(encode(spec));
  EXPECT_EQ(decoded.source_ref, "bench:ctrl");
  EXPECT_FALSE(decoded.graph.has_value());
  EXPECT_EQ(decoded.config_spec, sample_config().canonical_key());
  EXPECT_EQ(decoded.label, "my-label");

  // encode ∘ decode is the identity on frames.
  EXPECT_EQ(encode(decoded), encode(spec));

  const auto job = decoded.to_job();
  EXPECT_EQ(job.display_label(), "my-label");
  EXPECT_EQ(job.config, sample_config());
}

TEST(FlowWire, InlineGraphJobSpecRoundTrips) {
  auto graph = bench::make_adder(6);
  const auto fingerprint = graph.fingerprint();
  const auto spec =
      JobSpec::inline_graph(std::move(graph), "adder6", sample_config());
  const auto decoded = decode_job_spec(encode(spec));
  ASSERT_TRUE(decoded.graph.has_value());
  EXPECT_EQ(decoded.graph->fingerprint(), fingerprint);
  EXPECT_EQ(decoded.graph_label, "adder6");
  EXPECT_EQ(encode(decoded), encode(spec));

  // The decoded spec is executable and matches a direct run bit for bit.
  const auto via_wire = run_job(decoded.to_job());
  const auto direct = run_job(
      {Source::graph(bench::make_adder(6), "adder6"), sample_config(), {}});
  ASSERT_TRUE(via_wire.ok()) << via_wire.error;
  ASSERT_TRUE(direct.ok());
  expect_reports_equal(via_wire.report, direct.report);
}

TEST(FlowWire, JobSpecSchedulingFieldsRoundTrip) {
  // v5 additions: priority band plus an optional soft deadline.
  auto spec = JobSpec::reference("bench:ctrl", sample_config(), "hot");
  spec.priority = sched::Priority::High;
  spec.deadline_ms = 250;
  const auto decoded = decode_job_spec(encode(spec));
  EXPECT_EQ(decoded.priority, sched::Priority::High);
  ASSERT_TRUE(decoded.deadline_ms.has_value());
  EXPECT_EQ(*decoded.deadline_ms, 250u);
  EXPECT_EQ(encode(decoded), encode(spec));

  const auto job = decoded.to_job();
  EXPECT_EQ(job.priority, sched::Priority::High);
  ASSERT_TRUE(job.deadline.has_value());
  EXPECT_EQ(job.deadline->count(), 250);
}

TEST(FlowWire, JobSpecDefaultSchedulingFieldsRoundTrip) {
  // A spec that never touches the scheduling fields must arrive with the
  // defaults intact: Normal priority, no deadline.
  const auto spec = JobSpec::reference("bench:ctrl", sample_config());
  const auto decoded = decode_job_spec(encode(spec));
  EXPECT_EQ(decoded.priority, sched::Priority::Normal);
  EXPECT_FALSE(decoded.deadline_ms.has_value());
  EXPECT_EQ(encode(decoded), encode(spec));
  EXPECT_FALSE(decoded.to_job().deadline.has_value());
}

TEST(FlowWire, EveryPriorityBandRoundTrips) {
  for (const auto priority : {sched::Priority::Low, sched::Priority::Normal,
                              sched::Priority::High}) {
    auto spec = JobSpec::reference("bench:ctrl", sample_config());
    spec.priority = priority;
    EXPECT_EQ(decode_job_spec(encode(spec)).priority, priority);
  }
}

TEST(FlowWire, JobSpecValidatesConfigAtDecode) {
  auto spec = JobSpec::reference("bench:ctrl", sample_config());
  spec.config_spec = "select=unregistered";
  EXPECT_THROW(static_cast<void>(decode_job_spec(encode(spec))), Error);
}

TEST(FlowWire, JobSpecWithoutSourceIsRejected) {
  JobSpec empty;
  empty.config_spec = "full";
  EXPECT_THROW(static_cast<void>(decode_job_spec(encode(empty))), Error);
}

// ---- JobResult --------------------------------------------------------------

TEST(FlowWire, SuccessfulResultRoundTrips) {
  const auto result = run_job(
      {Source::graph(bench::make_adder(6), "adder6"), sample_config(), {}});
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.prepared, nullptr);

  const auto decoded = decode_job_result(encode(result));
  ASSERT_TRUE(decoded.ok());
  expect_reports_equal(decoded.report, result.report);
  EXPECT_EQ(decoded.rewrite_stats.initial_gates,
            result.rewrite_stats.initial_gates);
  EXPECT_EQ(decoded.rewrite_stats.final_gates,
            result.rewrite_stats.final_gates);
  EXPECT_EQ(decoded.rewrite_stats.cycles_run, result.rewrite_stats.cycles_run);
  ASSERT_NE(decoded.prepared, nullptr);
  EXPECT_EQ(decoded.prepared->fingerprint(), result.prepared->fingerprint());
  EXPECT_EQ(encode(decoded), encode(result));
}

TEST(FlowWire, FailedResultRoundTrips) {
  const auto result = run_job({Source::netlist("/nonexistent/x.mig"),
                               core::make_config(core::Strategy::Naive),
                               {}});
  ASSERT_FALSE(result.ok());
  const auto decoded = decode_job_result(encode(result));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, result.error);
  EXPECT_EQ(decoded.prepared, nullptr);
  EXPECT_EQ(encode(decoded), encode(result));
}

TEST(FlowWire, ResultWithoutPreparedGraphRoundTrips) {
  auto result = run_job(
      {Source::graph(bench::make_adder(4), "adder4"), sample_config(), {}});
  ASSERT_TRUE(result.ok());
  result.prepared = nullptr;  // a sender may strip the graph to save bytes
  const auto decoded = decode_job_result(encode(result));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.prepared, nullptr);
  expect_reports_equal(decoded.report, result.report);
}

// ---- ping / stats -----------------------------------------------------------

TEST(FlowWire, PingRoundTrips) {
  const auto frame = encode_ping();
  EXPECT_EQ(peek_kind(frame), MessageKind::Ping);
  EXPECT_NO_THROW(decode_ping(frame));
  // Ping authenticates like everything else: a damaged frame is rejected.
  auto corrupt = frame;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);
  EXPECT_THROW(decode_ping(corrupt), Error);
}

StatsReply sample_stats() {
  StatsReply stats;
  stats.submitted = 101;
  stats.completed = 100;
  stats.executed = 73;
  stats.coalesced = 21;
  stats.cancelled = 1;
  stats.rewrite_hits = 50;
  stats.rewrite_misses = 23;
  stats.program_hits = 40;
  stats.program_misses = 33;
  stats.has_store = true;
  stats.store_rewrite_loads = 7;
  stats.store_program_loads = 8;
  stats.store_load_misses = 9;
  stats.store_stores = 10;
  stats.store_failures = 1;
  stats.store_evicted_corrupt = 2;
  stats.store_evicted_version = 3;
  stats.workers = 16;
  stats.sched_queue_depth = 4;
  stats.sched_stolen = 12;
  stats.sched_parks = 5;
  stats.sched_overflows = 2;
  stats.sched_forked = 48;
  stats.sched_low = 11;
  stats.sched_normal = 70;
  stats.sched_high = 20;
  return stats;
}

TEST(FlowWire, StatsReplyRoundTrips) {
  const auto stats = sample_stats();
  const auto frame = encode(stats);
  EXPECT_EQ(peek_kind(frame), MessageKind::Stats);
  EXPECT_EQ(decode_stats(frame), stats);

  // The storeless variant drops the store block entirely.
  StatsReply storeless = stats;
  storeless.has_store = false;
  storeless.store_rewrite_loads = 0;
  storeless.store_program_loads = 0;
  storeless.store_load_misses = 0;
  storeless.store_stores = 0;
  storeless.store_failures = 0;
  storeless.store_evicted_corrupt = 0;
  storeless.store_evicted_version = 0;
  const auto short_frame = encode(storeless);
  EXPECT_LT(short_frame.size(), frame.size());
  EXPECT_EQ(decode_stats(short_frame), storeless);
}

TEST(FlowWire, StatsKindIsChecked) {
  EXPECT_THROW(static_cast<void>(decode_stats(encode_ping())), Error);
  EXPECT_THROW(decode_ping(encode(sample_stats())), Error);
  EXPECT_THROW(static_cast<void>(decode_job_spec(encode(sample_stats()))),
               Error);
}

TEST(FlowWire, StatsBitFlipsAreRejected) {
  const auto frame = encode(sample_stats());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_THROW(static_cast<void>(decode_stats(corrupt)), Error)
        << "flip at byte " << i << " must not decode";
  }
}

// ---- framing ----------------------------------------------------------------

TEST(FlowWire, PeekKindDispatches) {
  const auto spec_frame =
      encode(JobSpec::reference("bench:ctrl", sample_config()));
  EXPECT_EQ(peek_kind(spec_frame), MessageKind::JobSpec);
  const auto result = run_job(
      {Source::graph(bench::make_adder(4), "adder4"), sample_config(), {}});
  EXPECT_EQ(peek_kind(encode(result)), MessageKind::JobResult);
}

TEST(FlowWire, KindMismatchIsRejected) {
  const auto spec_frame =
      encode(JobSpec::reference("bench:ctrl", sample_config()));
  EXPECT_THROW(static_cast<void>(decode_job_result(spec_frame)), Error);
}

TEST(FlowWire, EveryTruncationIsRejected) {
  const auto frame = encode(JobSpec::reference("bench:ctrl", sample_config()));
  for (std::size_t length = 0; length < frame.size(); ++length) {
    EXPECT_THROW(
        static_cast<void>(decode_job_spec({frame.data(), length})), Error)
        << "prefix of " << length << " bytes must not decode";
  }
}

TEST(FlowWire, EveryBitFlipIsRejected) {
  // The integrity hash covers the entire frame: any single corrupted byte —
  // header, payload, or the hash itself — must throw, never mis-decode.
  const auto frame = encode(JobSpec::reference("bench:ctrl", sample_config()));
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    EXPECT_THROW(static_cast<void>(decode_job_spec(corrupt)), Error)
        << "flip at byte " << i << " must not decode";
  }
}

TEST(FlowWire, DeadlineFrameTruncationsAndBitFlipsAreRejected) {
  // The v5 scheduling tail (priority byte + optional deadline) is covered by
  // the same frame hash as everything else: damage anywhere in a
  // deadline-bearing frame must throw, never decode to a different deadline.
  auto spec = JobSpec::reference("bench:ctrl", sample_config());
  spec.priority = sched::Priority::Low;
  spec.deadline_ms = 1234;
  const auto frame = encode(spec);
  for (std::size_t length = 0; length < frame.size(); ++length) {
    EXPECT_THROW(
        static_cast<void>(decode_job_spec({frame.data(), length})), Error)
        << "prefix of " << length << " bytes must not decode";
  }
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x08);
    EXPECT_THROW(static_cast<void>(decode_job_spec(corrupt)), Error)
        << "flip at byte " << i << " must not decode";
  }
}

TEST(FlowWire, ForeignVersionIsRejectedLoudly) {
  auto frame = encode(JobSpec::reference("bench:ctrl", sample_config()));
  // Patch the version field (right after the 4-byte magic) and re-sign the
  // frame, simulating an otherwise-intact message from a newer build.
  util::ByteWriter version;
  version.u32(kWireVersion + 1);
  frame.replace(4, 4, version.bytes());
  util::ByteWriter hash;
  hash.u64(util::fnv1a64({frame.data(), frame.size() - 8}));
  frame.replace(frame.size() - 8, 8, hash.bytes());
  try {
    static_cast<void>(decode_job_spec(frame));
    FAIL() << "foreign version must not decode";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("version mismatch"),
              std::string::npos)
        << error.what();
  }
}

TEST(FlowWire, ForeignMagicIsRejected) {
  auto frame = encode(JobSpec::reference("bench:ctrl", sample_config()));
  frame[0] = 'X';
  EXPECT_THROW(static_cast<void>(peek_kind(frame)), Error);
}

}  // namespace
}  // namespace rlim::flow::wire
