#include <gtest/gtest.h>

#include <sstream>

#include "mig/io.hpp"
#include "mig/mig.hpp"
#include "mig/simulate.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim::mig {
namespace {

Mig sample_graph() {
  Mig mig;
  const auto a = mig.create_pi("a");
  const auto b = mig.create_pi("b");
  const auto c = mig.create_pi("c");
  const auto g1 = mig.create_maj(a, !b, c);
  const auto g2 = mig.create_and(g1, a);
  mig.create_po(g2, "f");
  mig.create_po(!g1, "g");
  mig.create_po(Mig::get_constant(true), "one");
  return mig;
}

TEST(MigFormat, RoundTripPreservesEverything) {
  const auto mig = sample_graph();
  std::stringstream ss;
  write_mig(mig, ss);
  const auto back = read_mig(ss);
  EXPECT_EQ(back.num_pis(), mig.num_pis());
  EXPECT_EQ(back.num_pos(), mig.num_pos());
  EXPECT_EQ(back.num_gates(), mig.num_gates());
  EXPECT_EQ(back.pi_name(0), "a");
  EXPECT_EQ(back.po_name(1), "g");
  EXPECT_TRUE(equivalent_exhaustive(mig, back));
}

TEST(MigFormat, RoundTripRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto mig = test::random_mig(seed, 8, 60, 4).cleanup();
    std::stringstream ss;
    write_mig(mig, ss);
    const auto back = read_mig(ss);
    EXPECT_TRUE(equivalent_random(mig, back, 8, seed))
        << "seed " << seed;
  }
}

TEST(MigFormat, ForwardReferenceThrows) {
  std::stringstream ss(".mig 1 1 1\n.pi a\n.gate 6 2 0\n.po 4 f\n.end\n");
  EXPECT_THROW(read_mig(ss), Error);
}

TEST(MigFormat, MissingHeaderThrows) {
  std::stringstream ss(".pi a\n.end\n");
  EXPECT_THROW(read_mig(ss), Error);
}

TEST(MigFormat, UnknownDirectiveThrows) {
  std::stringstream ss(".mig 0 0 0\n.bogus\n.end\n");
  EXPECT_THROW(read_mig(ss), Error);
}

TEST(MigFormat, CountMismatchThrows) {
  std::stringstream ss(".mig 2 0 0\n.pi a\n.end\n");
  EXPECT_THROW(read_mig(ss), Error);
}

TEST(MigFormat, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# hello\n\n.mig 1 1 0\n.pi a\n# mid comment\n.po 2 f\n.end\n");
  const auto mig = read_mig(ss);
  EXPECT_EQ(mig.num_pis(), 1u);
  EXPECT_EQ(mig.num_pos(), 1u);
}

TEST(Blif, RoundTripPreservesFunction) {
  const auto mig = sample_graph();
  std::stringstream ss;
  write_blif(mig, ss, "sample");
  const auto back = read_blif(ss);
  EXPECT_EQ(back.num_pis(), mig.num_pis());
  EXPECT_EQ(back.num_pos(), mig.num_pos());
  EXPECT_TRUE(equivalent_exhaustive(mig, back));
}

TEST(Blif, MajorityCoversReadBackAsSingleGates) {
  Mig mig;
  const auto a = mig.create_pi("a");
  const auto b = mig.create_pi("b");
  const auto c = mig.create_pi("c");
  mig.create_po(mig.create_maj(a, !b, c), "f");
  std::stringstream ss;
  write_blif(mig, ss);
  const auto back = read_blif(ss);
  EXPECT_EQ(back.num_gates(), 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, back));
}

TEST(Blif, RoundTripRandomGraphs) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const auto mig = test::random_mig(seed, 7, 40, 3).cleanup();
    std::stringstream ss;
    write_blif(mig, ss);
    const auto back = read_blif(ss);
    EXPECT_TRUE(equivalent_random(mig, back, 8, seed)) << "seed " << seed;
  }
}

TEST(Blif, ParsesOutOfOrderNames) {
  std::stringstream ss(
      ".model t\n.inputs a b\n.outputs f\n"
      ".names mid f\n1 1\n"     // uses `mid` before its definition
      ".names a b mid\n11 1\n"
      ".end\n");
  const auto mig = read_blif(ss);
  Mig expect;
  const auto a = expect.create_pi("a");
  const auto b = expect.create_pi("b");
  expect.create_po(expect.create_and(a, b), "f");
  EXPECT_TRUE(equivalent_exhaustive(mig, expect));
}

TEST(Blif, OffsetCoverSupported) {
  std::stringstream ss(
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a b f\n00 0\n01 0\n10 0\n"  // off-set: f = a AND b
      ".end\n");
  const auto mig = read_blif(ss);
  Mig expect;
  const auto a = expect.create_pi("a");
  const auto b = expect.create_pi("b");
  expect.create_po(expect.create_and(a, b), "f");
  EXPECT_TRUE(equivalent_exhaustive(mig, expect));
}

TEST(Blif, WildcardCubes) {
  std::stringstream ss(
      ".model t\n.inputs a b c\n.outputs f\n"
      ".names a b c f\n1-- 1\n-1- 1\n"  // f = a OR b
      ".end\n");
  const auto mig = read_blif(ss);
  Mig expect;
  const auto a = expect.create_pi("a");
  const auto b = expect.create_pi("b");
  expect.create_pi("c");
  expect.create_po(expect.create_or(a, b), "f");
  EXPECT_TRUE(equivalent_exhaustive(mig, expect));
}

TEST(Blif, ConstantCovers) {
  std::stringstream ss(
      ".model t\n.inputs a\n.outputs z o\n"
      ".names z\n"        // empty cover = constant 0
      ".names o\n1\n"     // constant 1
      ".end\n");
  const auto mig = read_blif(ss);
  std::vector<std::uint64_t> pis{0x1234};
  const auto out = simulate(mig, pis);
  EXPECT_EQ(out[0], 0ULL);
  EXPECT_EQ(out[1], ~0ULL);
}

TEST(Blif, LatchThrows) {
  std::stringstream ss(".model t\n.inputs a\n.outputs f\n.latch a f\n.end\n");
  EXPECT_THROW(read_blif(ss), Error);
}

TEST(Blif, WideCoverThrows) {
  std::stringstream ss(
      ".model t\n.inputs a b c d\n.outputs f\n.names a b c d f\n1111 1\n.end\n");
  EXPECT_THROW(read_blif(ss), Error);
}

TEST(Blif, CyclicNamesThrow) {
  std::stringstream ss(
      ".model t\n.inputs a\n.outputs f\n"
      ".names g f\n1 1\n.names f g\n1 1\n.end\n");
  EXPECT_THROW(read_blif(ss), Error);
}

TEST(Blif, UndefinedOutputThrows) {
  std::stringstream ss(".model t\n.inputs a\n.outputs nope\n.end\n");
  EXPECT_THROW(read_blif(ss), Error);
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW(read_mig_file("/nonexistent/path.mig"), Error);
  EXPECT_THROW(read_blif_file("/nonexistent/path.blif"), Error);
}

TEST(Files, WriteReadTempFile) {
  const auto mig = sample_graph();
  const std::string path = ::testing::TempDir() + "/rlim_io_test.mig";
  write_mig_file(mig, path);
  const auto back = read_mig_file(path);
  EXPECT_TRUE(equivalent_exhaustive(mig, back));
}

}  // namespace
}  // namespace rlim::mig
