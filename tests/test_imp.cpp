#include <gtest/gtest.h>

#include "core/endurance.hpp"
#include "core/imp.hpp"
#include "mig/mig.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim::core {
namespace {

using mig::Mig;

TEST(Imp, SingleMajorityGateCosts) {
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  graph.create_po(graph.create_maj(a, b, c));
  const auto report = imp_wear(graph);
  EXPECT_EQ(report.nand_gates, 6u);
  EXPECT_EQ(report.operations, 18u);
  EXPECT_EQ(report.input_devices, 3u);
  EXPECT_EQ(report.work_devices, 2u);
}

TEST(Imp, ComplementedEdgesAddInverters) {
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  graph.create_po(!graph.create_maj(!a, b, c));  // 1 fanin NOT + 1 PO NOT
  const auto report = imp_wear(graph);
  EXPECT_EQ(report.nand_gates, 8u);
}

TEST(Imp, DeadGatesExcluded) {
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  const auto used = graph.create_maj(a, b, c);
  graph.create_maj(!a, b, c);  // dead
  graph.create_po(used);
  EXPECT_EQ(imp_wear(graph).nand_gates, 6u);
}

TEST(Imp, WritesConcentrateOnWorkDevices) {
  const auto graph = test::random_mig(3, 8, 60, 4);
  const auto report = imp_wear(graph, {2});
  // Inputs never get written; all traffic lands on the two work devices.
  EXPECT_EQ(report.writes.min, 0u);
  EXPECT_GE(report.writes.max, 3 * report.nand_gates / 2 - 2);
  EXPECT_EQ(report.writes.total, 3 * report.nand_gates);
}

TEST(Imp, LargerPoolSpreadsWear) {
  const auto graph = test::random_mig(4, 8, 80, 4);
  const auto two = imp_wear(graph, {2});
  const auto eight = imp_wear(graph, {8});
  EXPECT_GT(two.writes.max, eight.writes.max);
}

TEST(Imp, SectionTwoClaim_PlimSpreadsWritesBetterThanImp) {
  // Paper §II: IMP's work devices wear out far faster than PLiM's RM3
  // operands, which share writes across the whole array.
  const auto graph = test::random_mig(5, 10, 120, 6);
  const auto imp = imp_wear(graph, {2});
  const auto plim = run_pipeline(graph, make_config(Strategy::MinWrite), "g");
  EXPECT_GT(imp.writes.max, 4 * plim.writes.max);
}

TEST(Imp, ZeroWorkDevicesThrows) {
  const auto graph = test::random_mig(6, 6, 20, 2);
  EXPECT_THROW(static_cast<void>(imp_wear(graph, {0})), Error);
}

}  // namespace
}  // namespace rlim::core
