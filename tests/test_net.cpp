#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>

#include "benchmarks/arithmetic.hpp"
#include "core/registry.hpp"
#include "flow/runner.hpp"
#include "flow/wire.hpp"
#include "net/client.hpp"
#include "net/framing.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::net {
namespace {

using namespace std::chrono_literals;

core::PipelineConfig config_with_cap(std::uint64_t cap) {
  return core::make_config(core::Strategy::FullEndurance, cap);
}

flow::wire::JobSpec ctrl_spec(std::uint64_t cap) {
  return flow::wire::JobSpec::reference("bench:ctrl", config_with_cap(cap));
}

/// The ground truth a wire round trip must match bit for bit. Resolution
/// failures become error results, exactly as the serving side reports them.
flow::JobResult local_run(const flow::wire::JobSpec& spec) {
  try {
    return flow::run_job(spec.to_job());
  } catch (const std::exception& error) {
    flow::JobResult failed;
    failed.error = error.what();
    return failed;
  }
}

void expect_same_outcome(const flow::JobResult& wire,
                         const flow::JobResult& local) {
  ASSERT_EQ(wire.ok(), local.ok()) << wire.error;
  if (!local.ok()) {
    EXPECT_EQ(wire.error, local.error);
    return;
  }
  EXPECT_EQ(wire.report.benchmark, local.report.benchmark);
  EXPECT_EQ(wire.report.instructions, local.report.instructions);
  EXPECT_EQ(wire.report.rrams, local.report.rrams);
  EXPECT_EQ(wire.report.writes.min, local.report.writes.min);
  EXPECT_EQ(wire.report.writes.max, local.report.writes.max);
  EXPECT_EQ(wire.report.writes.stdev, local.report.writes.stdev);
  EXPECT_EQ(wire.report.program.disassemble(),
            local.report.program.disassemble());
}

/// Fast-failure client knobs for the injection tests: transport failures
/// must be detected in milliseconds, not the production 30 s.
ClientOptions fast_client() {
  ClientOptions options;
  options.connect_timeout = 1000ms;
  options.request_timeout = 300ms;
  options.max_retries = 2;
  options.backoff_base = 5ms;
  options.backoff_cap = 20ms;
  return options;
}

// ---- raw-socket helpers (the byte-level injection harness) -----------------

bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    std::size_t sent = 0;
    const auto status = send_some(fd, bytes, sent);
    if (status == IoStatus::Closed) {
      return false;
    }
    if (status == IoStatus::Ok) {
      bytes.remove_prefix(sent);
    } else {
      ::pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
    }
  }
  return true;
}

/// Reads one envelope; nullopt when the server closes the connection first.
std::optional<FramedMessage> recv_frame(int fd, FrameReader& reader) {
  char chunk[4096];
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto message = reader.next()) {
      return message;
    }
    ::pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, 100);
    std::size_t received = 0;
    const auto status = recv_some(fd, chunk, sizeof chunk, received);
    if (status == IoStatus::Closed) {
      return std::nullopt;
    }
    if (status == IoStatus::Ok) {
      reader.feed(std::string_view(chunk, received));
    }
  }
  return std::nullopt;
}

// ---- endpoint parsing ------------------------------------------------------

TEST(NetEndpoint, ParsesHostPortForms) {
  const auto plain = parse_endpoint("127.0.0.1:8080");
  EXPECT_EQ(plain.host, "127.0.0.1");
  EXPECT_EQ(plain.port, 8080);
  EXPECT_EQ(plain.to_string(), "127.0.0.1:8080");

  const auto bracketed = parse_endpoint("[::1]:9090");
  EXPECT_EQ(bracketed.host, "::1");
  EXPECT_EQ(bracketed.port, 9090);
  EXPECT_EQ(bracketed.to_string(), "[::1]:9090");

  EXPECT_EQ(parse_endpoint("localhost:0").port, 0);
}

TEST(NetEndpoint, RejectsDamagedSpecs) {
  EXPECT_THROW((void)parse_endpoint("nocolon"), Error);
  EXPECT_THROW((void)parse_endpoint(":123"), Error);
  EXPECT_THROW((void)parse_endpoint("host:"), Error);
  EXPECT_THROW((void)parse_endpoint("host:notaport"), Error);
  EXPECT_THROW((void)parse_endpoint("host:65536"), Error);
  EXPECT_THROW((void)parse_endpoint("host:12x"), Error);
  EXPECT_THROW((void)parse_endpoint("[::1]9090"), Error);
}

TEST(NetEndpoint, ParsesCommaList) {
  const auto list = parse_endpoints("a:1,b:2,c:3");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].to_string(), "a:1");
  EXPECT_EQ(list[2].to_string(), "c:3");
  EXPECT_THROW((void)parse_endpoints(""), Error);
  EXPECT_THROW((void)parse_endpoints("a:1,,b:2"), Error);
}

// ---- stream framing --------------------------------------------------------

TEST(NetFraming, EnvelopeRoundTripsThroughReader) {
  FrameReader reader;
  const auto bytes =
      envelope(7, "alpha") + envelope(8, "") + envelope(9, "gamma");
  // Worst-case delivery: one byte per feed.
  std::vector<FramedMessage> messages;
  for (const char byte : bytes) {
    reader.feed(std::string_view(&byte, 1));
    while (auto message = reader.next()) {
      messages.push_back(*message);
    }
  }
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0].ticket, 7u);
  EXPECT_EQ(messages[0].frame, "alpha");
  EXPECT_EQ(messages[1].ticket, 8u);
  EXPECT_EQ(messages[1].frame, "");
  EXPECT_EQ(messages[2].ticket, 9u);
  EXPECT_EQ(messages[2].frame, "gamma");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetFraming, RuntLengthPrefixIsRejected) {
  // length = 4 cannot even hold the 8-byte ticket.
  FrameReader reader;
  reader.feed(std::string_view("\x04\x00\x00\x00", 4));
  EXPECT_THROW((void)reader.next(), Error);
}

TEST(NetFraming, OversizeLengthPrefixIsRejectedBeforeTheBodyArrives) {
  FrameReader reader(/*max_frame_bytes=*/1024);
  // 64 MiB claimed; only the 4 prefix bytes are ever delivered. The reader
  // must throw now — buffering (or allocating) toward an absurd length is
  // exactly the attack the ceiling exists to stop.
  reader.feed(std::string_view("\x00\x00\x00\x04", 4));
  EXPECT_THROW((void)reader.next(), Error);
}

TEST(NetFraming, FrameAtTheCeilingStillPasses) {
  FrameReader reader(/*max_frame_bytes=*/5);
  reader.feed(envelope(1, "12345"));
  const auto message = reader.next();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->frame, "12345");
}

// ---- consistent-hash ring --------------------------------------------------

TEST(NetRing, KeyIsStableAndConfigSensitive) {
  const auto a = ShardRouter::key_of(ctrl_spec(100));
  EXPECT_EQ(a, ShardRouter::key_of(ctrl_spec(100)));
  EXPECT_NE(a, ShardRouter::key_of(ctrl_spec(101)));
  EXPECT_NE(a, ShardRouter::key_of(flow::wire::JobSpec::reference(
                   "bench:cavlc", config_with_cap(100))));

  // Inline graphs key on content, so the same graph built twice agrees.
  const auto inline_a = ShardRouter::key_of(flow::wire::JobSpec::inline_graph(
      bench::make_adder(4), "adder4", config_with_cap(100)));
  const auto inline_b = ShardRouter::key_of(flow::wire::JobSpec::inline_graph(
      bench::make_adder(4), "adder4", config_with_cap(100)));
  EXPECT_EQ(inline_a, inline_b);
}

TEST(NetRing, RoutingIsDeterministicAndSpreads) {
  const std::vector<Endpoint> endpoints = {
      {"shard-a", 1}, {"shard-b", 1}, {"shard-c", 1}, {"shard-d", 1}};
  ShardRouter router(endpoints);
  ShardRouter twin(endpoints);
  std::set<std::size_t> used;
  for (std::uint64_t cap = 3; cap <= 202; ++cap) {
    const auto spec = ctrl_spec(cap);
    const auto shard = router.route(spec);
    ASSERT_TRUE(shard.has_value());
    EXPECT_EQ(shard, twin.route(spec));  // same ring in every process
    used.insert(*shard);
  }
  // 200 keys over 4 shards * 64 virtual nodes: every shard owns some.
  EXPECT_EQ(used.size(), endpoints.size());
}

// ---- loopback: the happy path ----------------------------------------------

TEST(NetLoopback, PipelinedBatchMatchesLocalRunExactly) {
  Server server({"127.0.0.1", 0});
  Client client(server.endpoint(), fast_client());

  const std::vector<flow::wire::JobSpec> specs = {
      ctrl_spec(60),
      flow::wire::JobSpec::reference("bench:int2float", config_with_cap(40)),
      ctrl_spec(60),  // duplicate: coalesces or cache-hits server-side
      flow::wire::JobSpec::reference("bench:nope", config_with_cap(10)),
  };
  const auto results = client.run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_same_outcome(results[i], local_run(specs[i]));
  }
  EXPECT_FALSE(results[3].ok());  // unknown benchmark fails on the shard
  EXPECT_EQ(client.telemetry().retries, 0u);
  EXPECT_EQ(client.telemetry().frames_out, specs.size());
  EXPECT_EQ(client.telemetry().frames_in, specs.size());

  const auto counters = server.counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.frames_in, specs.size());
  EXPECT_EQ(counters.frames_out, specs.size());
  EXPECT_EQ(counters.dropped_connections, 0u);
}

TEST(NetLoopback, PingReportsServiceAndCacheCounters) {
  Server server({"127.0.0.1", 0});
  Client client(server.endpoint(), fast_client());
  (void)client.run({ctrl_spec(25)});

  const auto stats = client.ping();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_GE(stats.workers, 1u);
  EXPECT_FALSE(stats.has_store);
  EXPECT_EQ(stats.rewrite_misses, 1u);
}

TEST(NetLoopback, ShardStoreWarmsAcrossRestart) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "rlim_net_store_test";
  std::filesystem::remove_all(dir);
  ServerOptions options;
  options.cache_dir = dir.string();
  {
    Server server({"127.0.0.1", 0}, options);
    Client client(server.endpoint(), fast_client());
    (void)client.run({ctrl_spec(33)});
    const auto stats = client.ping();
    ASSERT_TRUE(stats.has_store);
    EXPECT_GT(stats.store_stores, 0u);
    EXPECT_EQ(stats.store_rewrite_loads + stats.store_program_loads, 0u);
  }
  {
    // A fresh shard on the same store serves the job from disk.
    Server server({"127.0.0.1", 0}, options);
    Client client(server.endpoint(), fast_client());
    const auto results = client.run({ctrl_spec(33)});
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    const auto stats = client.ping();
    ASSERT_TRUE(stats.has_store);
    EXPECT_GT(stats.store_program_loads, 0u);
  }
  std::filesystem::remove_all(dir);
}

// ---- loopback: failure injection -------------------------------------------

TEST(NetInjection, TruncatedEnvelopeLeavesServerServing) {
  Server server({"127.0.0.1", 0});
  {
    // Half an envelope, then a hard close mid-message.
    const auto bytes = envelope(1, flow::wire::encode(ctrl_spec(10)));
    auto fd = connect_tcp(server.endpoint(), 1000ms);
    ASSERT_TRUE(send_all(fd.get(), std::string_view(bytes).substr(
                                       0, bytes.size() / 2)));
  }
  // The shard must shrug that off and keep answering real clients.
  Client client(server.endpoint(), fast_client());
  const auto results = client.run({ctrl_spec(11)});
  ASSERT_TRUE(results[0].ok()) << results[0].error;
}

TEST(NetInjection, BitFlippedPayloadGetsErrorReplyOnSameTicket) {
  Server server({"127.0.0.1", 0});
  auto frame = flow::wire::encode(ctrl_spec(12));
  // Flip one bit somewhere in the middle of the authenticated frame: the
  // envelope still delimits it, so the server must answer the damaged
  // ticket with an error JobResult and keep the stream alive.
  frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 0x10);

  auto fd = connect_tcp(server.endpoint(), 1000ms);
  ASSERT_TRUE(send_all(fd.get(), envelope(99, frame)));
  FrameReader reader;
  const auto reply = recv_frame(fd.get(), reader);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->ticket, 99u);
  const auto result = flow::wire::decode_job_result(reply->frame);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("server:"), std::string::npos) << result.error;

  // Same connection, intact frame: still served.
  ASSERT_TRUE(
      send_all(fd.get(), envelope(100, flow::wire::encode(ctrl_spec(12)))));
  const auto good = recv_frame(fd.get(), reader);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->ticket, 100u);
  EXPECT_TRUE(flow::wire::decode_job_result(good->frame).ok());
  EXPECT_EQ(server.counters().decode_errors, 1u);
}

TEST(NetInjection, MiskindedFrameDropsTheConnection) {
  Server server({"127.0.0.1", 0});
  flow::JobResult bogus;
  bogus.error = "client has no business sending results";
  auto fd = connect_tcp(server.endpoint(), 1000ms);
  ASSERT_TRUE(send_all(fd.get(), envelope(1, flow::wire::encode(bogus))));
  FrameReader reader;
  EXPECT_FALSE(recv_frame(fd.get(), reader).has_value());  // closed, no reply
  // Poll until the loop thread has registered the drop.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (server.counters().dropped_connections == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(server.counters().dropped_connections, 1u);
}

TEST(NetInjection, OversizeFrameIsRefusedAndClientGivesUp) {
  ServerOptions options;
  options.max_frame_bytes = 256;  // smaller than any real JobSpec frame
  Server server({"127.0.0.1", 0}, options);
  auto client_options = fast_client();
  client_options.max_retries = 1;
  Client client(server.endpoint(), client_options);
  const std::vector<flow::wire::JobSpec> specs = {
      flow::wire::JobSpec::inline_graph(bench::make_adder(6), "adder6",
                                        config_with_cap(100))};
  EXPECT_THROW((void)client.run(specs), Error);
  EXPECT_EQ(client.telemetry().retries, 1u);
  EXPECT_GE(server.counters().dropped_connections, 1u);
}

TEST(NetInjection, SilentPeerTripsRequestTimeoutThenRetryBudget) {
  // A listener whose backlog accepts the handshake but nobody ever reads:
  // the inactivity timeout is the only thing that can unstick the client.
  auto listener = listen_tcp({"127.0.0.1", 0});
  const Endpoint endpoint{"127.0.0.1", local_port(listener)};
  auto options = fast_client();
  options.request_timeout = 100ms;
  Client client(endpoint, options);
  const auto started = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.run({ctrl_spec(10)}), Error);
  EXPECT_EQ(client.telemetry().retries, options.max_retries);
  EXPECT_EQ(client.telemetry().frames_in, 0u);
  // 3 attempts x 100 ms inactivity + backoff: an unresponsive shard costs
  // milliseconds, not the production 30 s per attempt.
  EXPECT_LT(std::chrono::steady_clock::now() - started, 5s);
}

TEST(NetInjection, DeadEndpointIsRetriedWithBackoffThenFails) {
  // Bind-then-close yields a port that refuses instantly.
  Endpoint endpoint{"127.0.0.1", 0};
  {
    auto listener = listen_tcp(endpoint);
    endpoint.port = local_port(listener);
  }
  auto options = fast_client();
  Client client(endpoint, options);
  EXPECT_THROW((void)client.run({ctrl_spec(10)}), Error);
  EXPECT_EQ(client.telemetry().retries, options.max_retries);
  EXPECT_EQ(client.telemetry().connects, 0u);
}

TEST(NetInjection, DelayedAcceptsAreToleratedByPatientClients) {
  ServerOptions options;
  options.accept_delay = 50ms;
  Server server({"127.0.0.1", 0}, options);
  ClientOptions patient;  // production defaults: 2 s connect, 30 s request
  Client client(server.endpoint(), patient);
  const auto results = client.run({ctrl_spec(21)});
  ASSERT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_EQ(client.telemetry().retries, 0u);
}

// ---- retry backoff jitter --------------------------------------------------

TEST(NetBackoff, DelayStaysInHalfToFullWindowAtEveryAttempt) {
  net::ClientOptions options;  // production defaults: base 50 ms, cap 2 s
  util::Xoshiro256 rng(7);
  for (unsigned attempt = 0; attempt < 40; ++attempt) {
    const auto full = std::min<std::int64_t>(
        options.backoff_cap.count(),
        options.backoff_base.count() *
            (std::int64_t{1} << std::min(attempt, 20u)));
    for (int draw = 0; draw < 64; ++draw) {
      const auto delay = net::backoff_delay(options, attempt, rng).count();
      EXPECT_GE(delay, full / 2) << "attempt " << attempt;
      EXPECT_LE(delay, full) << "attempt " << attempt;
    }
  }
}

TEST(NetBackoff, JitterIsSeedReproducibleAndActuallySpreads) {
  const net::ClientOptions options;
  util::Xoshiro256 same_a(99);
  util::Xoshiro256 same_b(99);
  util::Xoshiro256 other(100);
  bool spread = false;
  for (int draw = 0; draw < 32; ++draw) {
    const auto delay = net::backoff_delay(options, 3, same_a);
    EXPECT_EQ(delay, net::backoff_delay(options, 3, same_b));
    spread |= delay != net::backoff_delay(options, 3, other);
  }
  EXPECT_TRUE(spread);  // two fleets with different seeds must decorrelate
}

TEST(NetBackoff, ZeroBaseMeansNoSleep) {
  net::ClientOptions options;
  options.backoff_base = std::chrono::milliseconds(0);
  util::Xoshiro256 rng(1);
  for (unsigned attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(net::backoff_delay(options, attempt, rng).count(), 0);
  }
}

// ---- loopback: the cluster -------------------------------------------------

TEST(NetCluster, TwoShardsPartitionAndAgreeWithLocalRuns) {
  Server shard_a({"127.0.0.1", 0});
  Server shard_b({"127.0.0.1", 0});
  ShardRouter router({shard_a.endpoint(), shard_b.endpoint()}, fast_client());

  std::vector<flow::wire::JobSpec> specs;
  for (std::uint64_t cap = 30; cap < 42; ++cap) {
    specs.push_back(ctrl_spec(cap));
  }
  const auto results = router.run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_same_outcome(results[i], local_run(specs[i]));
  }
  // Consistent hashing actually split the stream (64 virtual nodes and 12
  // distinct keys: both shards get work with overwhelming probability).
  const auto a = shard_a.counters().frames_in;
  const auto b = shard_b.counters().frames_in;
  EXPECT_EQ(a + b, specs.size());
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, 0u);
  EXPECT_EQ(router.telemetry().failovers, 0u);
}

TEST(NetCluster, KilledShardFailsOverWithoutLosingAJob) {
  Server shard_a({"127.0.0.1", 0});
  // Shard B is doomed: its accept loop is slowed far past the client's
  // inactivity ceiling, so it cannot answer anything before the kill below
  // lands — a deterministic mid-batch death, whatever the scheduler does.
  ServerOptions doomed;
  doomed.accept_delay = 10s;
  Server shard_b({"127.0.0.1", 0}, doomed);
  ShardRouter router({shard_a.endpoint(), shard_b.endpoint()}, fast_client());

  std::vector<flow::wire::JobSpec> specs;
  for (std::uint64_t cap = 50; cap < 62; ++cap) {
    specs.push_back(ctrl_spec(cap));
  }
  // Kill shard B while the batch is in flight: every job routed to it must
  // reroute to shard A after B's retry budget drains, and nothing from A is
  // disturbed.
  std::thread killer([&shard_b] {
    std::this_thread::sleep_for(30ms);
    shard_b.stop();
  });
  const auto results = router.run(specs);
  killer.join();

  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_same_outcome(results[i], local_run(specs[i]));
  }
  EXPECT_FALSE(router.alive(1));
  EXPECT_TRUE(router.alive(0));
  EXPECT_EQ(router.telemetry().failovers, 1u);
  EXPECT_GT(router.telemetry().rerouted, 0u);
  // Every job still produced a real report on shard A.
  EXPECT_EQ(shard_a.counters().frames_out,
            static_cast<std::uint64_t>(specs.size()));
}

TEST(NetCluster, AllShardsDeadYieldsErrorRowsNotAThrow) {
  Endpoint dead{"127.0.0.1", 0};
  {
    auto listener = listen_tcp(dead);
    dead.port = local_port(listener);
  }
  auto options = fast_client();
  options.max_retries = 0;
  ShardRouter router({dead}, options);
  const auto results = router.run({ctrl_spec(10), ctrl_spec(11)});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("no shard available"), std::string::npos)
        << result.error;
  }
}

}  // namespace
}  // namespace rlim::net
