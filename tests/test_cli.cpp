#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchmarks/arithmetic.hpp"
#include "cli.hpp"
#include "mig/io.hpp"

namespace rlim::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

// compile/suite resolve RLIM_CACHE_DIR, so an ambient value from the
// developer's shell would attach their real store to every test run (and
// flip the no-directory error cases). Scrub it once at load; the env test
// below sets and clears its own value.
[[maybe_unused]] const bool kCacheDirScrubbed = [] {
  ::unsetenv("RLIM_CACHE_DIR");
  return true;
}();

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

/// Drives a command that reads from stdin (`serve --stdin-jobs`).
CliResult run_cli(std::vector<std::string> args, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, in, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_netlist() {
  const auto path = ::testing::TempDir() + "/cli_adder.mig";
  mig::write_mig_file(bench::make_adder(4), path);
  return path;
}

TEST(Cli, NoCommandFails) {
  const auto result = run_cli({});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto result = run_cli({"frobnicate"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, InfoPrintsStatistics) {
  const auto result = run_cli({"info", temp_netlist()});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("pis:"), std::string::npos);
  EXPECT_NE(result.out.find("8"), std::string::npos);  // 2x4 PIs
  EXPECT_NE(result.out.find("depth:"), std::string::npos);
}

TEST(Cli, InfoOnBenchGenerator) {
  const auto result = run_cli({"info", "bench:int2float"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("pis:              11"), std::string::npos);
}

TEST(Cli, SuiteListsAllBenchmarks) {
  const auto result = run_cli({"suite"});
  EXPECT_EQ(result.code, 0);
  for (const auto* name : {"adder", "voter", "mem_ctrl", "dec"}) {
    EXPECT_NE(result.out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, CompileWithVerify) {
  const auto result = run_cli(
      {"compile", temp_netlist(), "--strategy", "full", "--verify"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("instructions:"), std::string::npos);
  EXPECT_NE(result.out.find("verification:    passed"), std::string::npos);
}

TEST(Cli, CompileAllStrategies) {
  for (const auto* strategy :
       {"naive", "plim21", "min-write", "endurance-rewrite", "full"}) {
    const auto result =
        run_cli({"compile", temp_netlist(), "--strategy", strategy, "--verify"});
    EXPECT_EQ(result.code, 0) << strategy << ": " << result.err;
  }
}

TEST(Cli, CompileWithCapHonorsIt) {
  const auto result = run_cli(
      {"compile", "bench:int2float", "--strategy", "full", "--cap", "10"});
  EXPECT_EQ(result.code, 0);
  // "writes min/max:  x/y" with y <= 10.
  const auto pos = result.out.find("writes min/max:");
  ASSERT_NE(pos, std::string::npos);
  const auto slash = result.out.find('/', pos + 16);
  const auto max = std::stoul(result.out.substr(slash + 1));
  EXPECT_LE(max, 10u);
}

TEST(Cli, CompileDisassembles) {
  const auto result = run_cli({"compile", temp_netlist(), "--disasm"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("RM3("), std::string::npos);
}

TEST(Cli, CompileBatchRendersOneRowPerNetlist) {
  const auto result = run_cli({"compile", "bench:ctrl", "bench:router",
                               "--strategy", "full", "--jobs", "2"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("bench:ctrl"), std::string::npos);
  EXPECT_NE(result.out.find("bench:router"), std::string::npos);
  EXPECT_NE(result.out.find("| benchmark"), std::string::npos);
}

TEST(Cli, CompileJobCountDoesNotChangeOutput) {
  const auto serial = run_cli({"compile", "bench:ctrl", "bench:router",
                               "--jobs", "1", "--format", "csv"});
  const auto parallel = run_cli({"compile", "bench:ctrl", "bench:router",
                                 "--jobs", "8", "--format", "csv"});
  EXPECT_EQ(serial.code, 0) << serial.err;
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Cli, CompileBatchKeepsGoodResultsOnPartialFailure) {
  const auto result = run_cli(
      {"compile", "bench:ctrl", "/nonexistent/x.mig", "--format", "csv"});
  EXPECT_EQ(result.code, 1);
  // The good netlist's row survives; the bad one reports its error inline.
  EXPECT_NE(result.out.find("bench:ctrl,"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("error: "), std::string::npos) << result.out;
}

TEST(Cli, CompileJsonFormat) {
  const auto result =
      run_cli({"compile", "bench:ctrl", "--format", "json"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out.rfind("{\"title\":", 0), 0u) << result.out;
  EXPECT_NE(result.out.find("\"bench:ctrl\""), std::string::npos);
}

TEST(Cli, SuiteCsvFormat) {
  const auto result = run_cli({"suite", "--format", "csv"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("benchmark,PI/PO,class"), std::string::npos);
  EXPECT_NE(result.out.find("adder,256/129,arithmetic"), std::string::npos);
}

TEST(Cli, BadFormatFails) {
  const auto result =
      run_cli({"compile", "bench:ctrl", "--format", "yaml"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown report format"), std::string::npos);
}

TEST(Cli, RewriteRoundTrip) {
  const auto input = temp_netlist();
  const auto output = ::testing::TempDir() + "/cli_rewritten.blif";
  const auto result = run_cli({"rewrite", input, output, "--flow", "endurance"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("gates:"), std::string::npos);
  // The output file must parse and still be compilable.
  const auto compiled = run_cli({"compile", output, "--verify"});
  EXPECT_EQ(compiled.code, 0) << compiled.err;
}

TEST(Cli, RewriteLevelFlow) {
  const auto input = temp_netlist();
  const auto output = ::testing::TempDir() + "/cli_level.mig";
  const auto result = run_cli({"rewrite", input, output, "--flow", "level"});
  EXPECT_EQ(result.code, 0) << result.err;
}

TEST(Cli, RewriteSeqFlowMatchesNamedAlias) {
  const auto input = temp_netlist();
  const auto by_alias = ::testing::TempDir() + "/cli_seq_alias.mig";
  const auto by_list = ::testing::TempDir() + "/cli_seq_list.mig";
  const auto alias = run_cli({"rewrite", input, by_alias, "--flow", "endurance"});
  const auto listed =
      run_cli({"rewrite", input, by_list, "--flow", "seq", "--passes",
               "maj,dist,inv,inv3,assoc,inv,inv3,maj,dist,inv3"});
  ASSERT_EQ(alias.code, 0) << alias.err;
  ASSERT_EQ(listed.code, 0) << listed.err;
  EXPECT_NE(listed.out.find("passes:"), std::string::npos);
  // Same pass sequence, same graph: the rewritten netlists must be identical.
  std::ifstream a(by_alias), b(by_list);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Cli, RewriteUntilStopsAfterNamedPass) {
  const auto input = temp_netlist();
  const auto output = ::testing::TempDir() + "/cli_until.mig";
  const auto result = run_cli({"rewrite", input, output, "--flow", "endurance",
                               "--until", "dist"});
  EXPECT_EQ(result.code, 0) << result.err;
  // Passes after the cut must not appear in the breakdown.
  EXPECT_NE(result.out.find("dist"), std::string::npos);
  EXPECT_EQ(result.out.find("inv3"), std::string::npos) << result.out;
  EXPECT_EQ(run_cli({"rewrite", input, output, "--flow", "endurance",
                     "--until", "bogus"})
                .code,
            1);
}

TEST(Cli, RewriteDumpAfterStreamsToStderr) {
  const auto input = temp_netlist();
  const auto output = ::testing::TempDir() + "/cli_dumped.mig";
  const auto result = run_cli({"rewrite", input, output, "--flow", "plim21",
                               "--dump-after", "-"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.err.find("== cycle 0 step 0: maj =="), std::string::npos);
  EXPECT_NE(result.err.find("# MIG:"), std::string::npos);
}

TEST(Cli, BadStrategyAndFlowFail) {
  EXPECT_EQ(run_cli({"compile", temp_netlist(), "--strategy", "bogus"}).code, 1);
  EXPECT_EQ(run_cli({"rewrite", temp_netlist(), "/tmp/x.mig", "--flow", "bogus"})
                .code,
            1);
  // seq requires --passes, and --passes only makes sense with seq.
  EXPECT_EQ(
      run_cli({"rewrite", temp_netlist(), "/tmp/x.mig", "--flow", "seq"}).code,
      1);
  EXPECT_EQ(run_cli({"rewrite", temp_netlist(), "/tmp/x.mig", "--flow",
                     "plim21", "--passes", "maj"})
                .code,
            1);
}

TEST(Cli, MissingValueFails) {
  const auto result = run_cli({"compile", temp_netlist(), "--cap"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("needs a value"), std::string::npos);
}

TEST(Cli, UnknownExtensionFails) {
  const auto result = run_cli({"info", "/tmp/whatever.v"});
  EXPECT_EQ(result.code, 1);
}

TEST(Cli, UnknownBenchFails) {
  const auto result = run_cli({"info", "bench:nope"});
  EXPECT_EQ(result.code, 1);
}

// ---- policy registry surface ------------------------------------------------

TEST(Cli, PoliciesListsEveryRegistryKind) {
  const auto result = run_cli({"policies"});
  EXPECT_EQ(result.code, 0) << result.err;
  for (const auto* needle :
       {"rewrite", "pass", "select", "alloc", "endurance", "wear_quota",
        "start_gap", "min_write", "quota=8", "interval=16", "presets:", "seq",
        "pass sequences:", "seq aliases:"}) {
    EXPECT_NE(result.out.find(needle), std::string::npos) << needle;
  }
}

TEST(Cli, PoliciesCsvFormat) {
  const auto result = run_cli({"policies", "--format", "csv"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("kind,key,parameters,summary"), std::string::npos);
}

TEST(Cli, ConfigSpecMatchesEquivalentStrategy) {
  // --config with a preset alias (or its canonical expansion) reproduces the
  // --strategy output byte for byte, modulo the title line.
  const auto by_strategy = run_cli({"compile", "bench:ctrl", "--strategy",
                                    "full", "--cap", "10", "--format", "csv"});
  const auto by_alias = run_cli(
      {"compile", "bench:ctrl", "--config", "full,cap=10", "--format", "csv"});
  const auto by_canonical = run_cli(
      {"compile", "bench:ctrl", "--config",
       "rewrite=endurance:effort=5,select=endurance,alloc=min_write,cap=10",
       "--format", "csv"});
  EXPECT_EQ(by_strategy.code, 0) << by_strategy.err;
  EXPECT_EQ(by_alias.code, 0) << by_alias.err;
  // Everything after the `#` title comment must agree.
  const auto body = [](const std::string& text) {
    return text.substr(text.find('\n'));
  };
  EXPECT_EQ(body(by_strategy.out), body(by_alias.out));
  EXPECT_EQ(by_alias.out, by_canonical.out);
}

TEST(Cli, ConfigSpecReachesRegistryOnlyPolicies) {
  const auto result = run_cli(
      {"compile", temp_netlist(), "--config",
       "rewrite=endurance,select=wear_quota:quota=4,alloc=start_gap",
       "--verify"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("config:          rewrite=endurance:effort=5,"
                            "select=wear_quota:quota=4,"
                            "alloc=start_gap:interval=16"),
            std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("verification:    passed"), std::string::npos);
}

TEST(Cli, SeqConfigMatchesEnumFlowAndShowsPassBreakdown) {
  // A seq spec spelling out the endurance pass list must reproduce the enum
  // flow's compile table byte for byte (modulo the title line naming the key).
  const auto by_enum = run_cli({"compile", "bench:ctrl", "--config",
                                "rewrite=endurance,cap=10", "--format", "csv"});
  const auto by_seq = run_cli(
      {"compile", "bench:ctrl", "--config",
       "rewrite=seq:passes=maj,dist,inv,inv3,assoc,inv,inv3,maj,dist,inv3,"
       "cap=10",
       "--format", "csv"});
  ASSERT_EQ(by_enum.code, 0) << by_enum.err;
  ASSERT_EQ(by_seq.code, 0) << by_seq.err;
  const auto body = [](const std::string& text) {
    return text.substr(text.find('\n'));
  };
  EXPECT_EQ(body(by_enum.out), body(by_seq.out));

  // Verbose compile surfaces the per-pass attribution of RewriteStats.
  const auto verbose = run_cli(
      {"compile", temp_netlist(), "--config",
       "rewrite=seq:passes=maj,dist,inv,inv3:effort=3", "--verify"});
  ASSERT_EQ(verbose.code, 0) << verbose.err;
  EXPECT_NE(verbose.out.find("rewrite passes ("), std::string::npos)
      << verbose.out;
  EXPECT_NE(verbose.out.find("maj"), std::string::npos);
  EXPECT_NE(verbose.out.find("applications"), std::string::npos);
}

TEST(Cli, BadConfigSpecFails) {
  EXPECT_EQ(run_cli({"compile", "bench:ctrl", "--config", "bogus"}).code, 1);
  EXPECT_EQ(
      run_cli({"compile", "bench:ctrl", "--config", "select=unregistered"})
          .code,
      1);
  EXPECT_EQ(run_cli({"compile", "bench:ctrl", "--config", "full,cap=2"}).code,
            1);
  // --config conflicts with --strategy / --cap.
  EXPECT_EQ(run_cli({"compile", "bench:ctrl", "--config", "full", "--strategy",
                     "naive"})
                .code,
            1);
  EXPECT_EQ(
      run_cli({"compile", "bench:ctrl", "--config", "full", "--cap", "10"})
          .code,
      1);
}

TEST(Cli, SuiteWithConfigCompilesTheWholeSuite) {
  // RLIM_SUITE is read by the flow layer; the unit-test environment runs the
  // paper profile, so just check the sweep renders one row per benchmark.
  const auto result =
      run_cli({"suite", "--config", "naive", "--format", "csv", "--jobs", "4"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("suite ("), std::string::npos);
  EXPECT_NE(result.out.find("config rewrite=none,select=naive,alloc=lifo"),
            std::string::npos);
  for (const auto* name : {"adder", "voter", "mem_ctrl", "dec"}) {
    EXPECT_NE(result.out.find("\n" + std::string(name) + ","),
              std::string::npos)
        << name;
  }
}

TEST(Cli, SuiteWithStrategyKeepsLegacyWording) {
  const auto result =
      run_cli({"suite", "--strategy", "naive", "--format", "csv"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("strategy naive"), std::string::npos);
}

TEST(Cli, NegativeEffortFailsUpFrontNotPerJob) {
  // set_effort bypasses parse()'s eager validation; config_from re-checks so
  // the whole batch fails with one clear message instead of per-job errors.
  const auto result = run_cli({"compile", "bench:ctrl", "bench:router",
                               "--config", "full", "--effort", "-2"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("effort must be non-negative"), std::string::npos)
      << result.err;
}

TEST(Cli, SuiteRejectsSweepFlagsWithoutConfiguration) {
  // Listing mode must not silently drop sweep-only flags.
  const auto result = run_cli({"suite", "--cap", "10"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--strategy or --config"), std::string::npos);
  EXPECT_EQ(run_cli({"suite", "--verify"}).code, 1);
  EXPECT_EQ(run_cli({"suite", "--jobs", "4"}).code, 1);
}

// ---- async serve front-end ----------------------------------------------------

TEST(Cli, ServeStreamsRowsByteIdenticalToCompile) {
  // The acceptance property: the async stdin front-end over flow::Service
  // renders exactly the rows the synchronous compile batch renders — the
  // CSV bodies differ only by compile's `#` title comment.
  const auto compiled = run_cli({"compile", "bench:ctrl", "bench:router",
                                 "--strategy", "full", "--format", "csv"});
  ASSERT_EQ(compiled.code, 0) << compiled.err;
  const auto served = run_cli({"serve", "--stdin-jobs"},
                              "bench:ctrl\nbench:router\n");
  EXPECT_EQ(served.code, 0) << served.err;
  EXPECT_EQ(served.out, compiled.out.substr(compiled.out.find('\n') + 1));
  EXPECT_NE(served.err.find("rlim: serve: 2 jobs"), std::string::npos)
      << served.err;
}

TEST(Cli, ServeOutputIsByteIdenticalForAnyWorkerCount) {
  const std::string lines =
      "bench:ctrl\n"
      "bench:router naive\n"
      "bench:int2float full,cap=50\n"
      "bench:ctrl\n";
  const auto serial = run_cli({"serve", "--stdin-jobs", "--jobs", "1"}, lines);
  const auto parallel =
      run_cli({"serve", "--stdin-jobs", "--jobs", "8"}, lines);
  EXPECT_EQ(serial.code, 0) << serial.err;
  EXPECT_EQ(parallel.code, 0) << parallel.err;
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Cli, ServeHandlesPerLineConfigsCommentsAndErrors) {
  const auto result = run_cli(
      {"serve", "--stdin-jobs"},
      "# a comment line\n"
      "\n"
      "bench:ctrl rewrite=endurance,select=wear_quota:quota=4,alloc=start_gap\n"
      "bad.v\n"
      "bench:router select=unregistered\n");
  EXPECT_EQ(result.code, 1) << "failed lines must flip the exit code";
  // The good row renders, each bad line holds its position as an error row.
  EXPECT_NE(result.out.find("bench:ctrl,"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("bad.v,\"error: "), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("bench:router,\"error: "), std::string::npos)
      << result.out;
  EXPECT_NE(result.err.find("2 failed"), std::string::npos) << result.err;
}

TEST(Cli, ServeRequiresStdinJobs) {
  const auto result = run_cli({"serve"}, "bench:ctrl\n");
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--stdin-jobs"), std::string::npos) << result.err;
  EXPECT_EQ(run_cli({"serve", "--stdin-jobs", "bench:ctrl"}, "").code, 1)
      << "positional arguments are rejected";
  EXPECT_EQ(
      run_cli({"serve", "--stdin-jobs", "--format", "json"}, "").code, 1)
      << "json cannot stream";
  EXPECT_EQ(
      run_cli({"serve", "--stdin-jobs", "--format", "table"}, "").code, 1)
      << "an explicit non-csv format is rejected, not silently ignored";
  EXPECT_EQ(run_cli({"serve", "--stdin-jobs", "--format", "csv"}, "").code, 0);
}

TEST(Cli, ServeUsesPersistentStore) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "cli_cache_serve";
  std::filesystem::remove_all(dir);
  const std::vector<std::string> args = {"serve", "--stdin-jobs",
                                         "--cache-dir", dir.string()};
  const auto cold = run_cli(args, "bench:ctrl\n");
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("program loads 0"), std::string::npos) << cold.err;
  const auto warm = run_cli(args, "bench:ctrl\n");
  EXPECT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, cold.out) << "stdout must stay byte-identical";
  EXPECT_NE(warm.err.find("program loads 1"), std::string::npos) << warm.err;
}

// ---- persistent store surface -----------------------------------------------

std::string fresh_cache_dir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("cli_cache_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Cli, VersionReportsProjectAndStoreFormat) {
  for (const auto* spelling : {"version", "--version"}) {
    const auto result = run_cli({spelling});
    EXPECT_EQ(result.code, 0) << spelling;
    EXPECT_EQ(result.out.rfind("rlim ", 0), 0u) << result.out;
    EXPECT_NE(result.out.find("store format"), std::string::npos)
        << result.out;
  }
}

TEST(Cli, CacheDirMakesRerunsByteIdenticalWithDiskHits) {
  const auto dir = fresh_cache_dir("rerun");
  const std::vector<std::string> args = {
      "compile", "bench:ctrl",     "--strategy",  "full",
      "--format", "csv",           "--cache-dir", dir};
  const auto cold = run_cli(args);
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("program loads 0"), std::string::npos) << cold.err;

  const auto warm = run_cli(args);
  EXPECT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, cold.out) << "stdout must stay byte-identical";
  EXPECT_NE(warm.err.find("program loads 1"), std::string::npos) << warm.err;
  EXPECT_NE(warm.err.find("stores 0"), std::string::npos) << warm.err;
}

TEST(Cli, EnvCacheDirIsHonoredAndFlagWins) {
  const auto env_dir = fresh_cache_dir("env");
  const auto flag_dir = fresh_cache_dir("env_flag");
  ::setenv("RLIM_CACHE_DIR", env_dir.c_str(), 1);
  // Without --cache-dir, the environment's store is used...
  const auto via_env =
      run_cli({"compile", "bench:ctrl", "--strategy", "naive"});
  // ...and --cache-dir overrides it.
  const auto via_flag = run_cli({"compile", "bench:ctrl", "--strategy",
                                 "naive", "--cache-dir", flag_dir});
  ::unsetenv("RLIM_CACHE_DIR");
  EXPECT_EQ(via_env.code, 0) << via_env.err;
  EXPECT_NE(via_env.err.find("rlim: cache " + env_dir), std::string::npos)
      << via_env.err;
  EXPECT_NE(via_flag.err.find("rlim: cache " + flag_dir), std::string::npos)
      << via_flag.err;
}

TEST(Cli, CacheStatsReflectsEntries) {
  const auto dir = fresh_cache_dir("stats");
  ASSERT_EQ(run_cli({"compile", "bench:ctrl", "--strategy", "full",
                     "--cache-dir", dir})
                .code,
            0);
  const auto result = run_cli({"cache", "stats", "--cache-dir", dir});
  EXPECT_EQ(result.code, 0) << result.err;
  // One program entry + one endurance rewrite entry for a single job.
  EXPECT_NE(result.out.find("program entries"), std::string::npos);
  EXPECT_NE(result.out.find("rewrite entries"), std::string::npos);
  EXPECT_NE(result.out.find("| entries"), std::string::npos);
}

TEST(Cli, CacheClearEmptiesTheStore) {
  const auto dir = fresh_cache_dir("clear");
  ASSERT_EQ(run_cli({"compile", "bench:ctrl", "--strategy", "full",
                     "--cache-dir", dir})
                .code,
            0);
  EXPECT_EQ(run_cli({"cache", "clear", "--cache-dir", dir}).code, 0);
  const auto stats = run_cli({"cache", "stats", "--cache-dir", dir,
                              "--format", "csv"});
  EXPECT_NE(stats.out.find("entries,0"), std::string::npos) << stats.out;
}

TEST(Cli, CacheGcNeedsACap) {
  const auto dir = fresh_cache_dir("gc_flags");
  ASSERT_EQ(run_cli({"compile", "bench:ctrl", "--strategy", "naive",
                     "--cache-dir", dir})
                .code,
            0);
  const auto result = run_cli({"cache", "gc", "--cache-dir", dir});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--max-bytes"), std::string::npos);
  EXPECT_EQ(run_cli({"cache", "gc", "--cache-dir", dir, "--max-bytes", "0"})
                .code,
            0);
}

TEST(Cli, CacheVerifySignalsRepairedStores) {
  const auto dir = fresh_cache_dir("verify");
  ASSERT_EQ(run_cli({"compile", "bench:ctrl", "--strategy", "full",
                     "--cache-dir", dir})
                .code,
            0);
  EXPECT_EQ(run_cli({"cache", "verify", "--cache-dir", dir}).code, 0);
  // Damage one entry; verify evicts it and exits 2.
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           std::filesystem::path(dir) / "objects")) {
    if (entry.is_regular_file()) {
      std::filesystem::resize_file(entry.path(), 3);
      break;
    }
  }
  const auto repaired = run_cli({"cache", "verify", "--cache-dir", dir});
  EXPECT_EQ(repaired.code, 2) << repaired.out;
  // A truncated file fails map validation (it is not even a framed entry),
  // which verify reports separately from content-hash mismatches.
  EXPECT_NE(repaired.out.find("evicted map-validation"), std::string::npos)
      << repaired.out;
  EXPECT_NE(repaired.out.find("evicted hash-mismatch"), std::string::npos)
      << repaired.out;
}

TEST(Cli, CacheRejectsBadUsage) {
  EXPECT_EQ(run_cli({"cache"}).code, 1);
  const auto existing = fresh_cache_dir("bad_sub");
  std::filesystem::create_directories(existing);
  const auto unknown =
      run_cli({"cache", "frobnicate", "--cache-dir", existing});
  EXPECT_EQ(unknown.code, 1);
  EXPECT_NE(unknown.err.find("unknown cache subcommand"), std::string::npos);
  // No --cache-dir and no RLIM_CACHE_DIR: the command has nothing to act on.
  // (The test environment never sets RLIM_CACHE_DIR; the build would not be
  // hermetic otherwise.)
  const auto result = run_cli({"cache", "stats"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("RLIM_CACHE_DIR"), std::string::npos);
  // A directory that does not exist is an error, not an empty store.
  const auto missing = run_cli(
      {"cache", "stats", "--cache-dir", "/nonexistent/rlim_store"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("does not exist"), std::string::npos);
}

}  // namespace
}  // namespace rlim::cli
