#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "core/endurance.hpp"
#include "plim/controller.hpp"
#include "test_helpers.hpp"

namespace rlim::core {
namespace {

TEST(Config, StrategyMappingsMatchThePaper) {
  const auto naive = make_config(Strategy::Naive);
  EXPECT_EQ(naive.rewrite.key, "none");
  EXPECT_EQ(naive.selection.key, "naive");
  EXPECT_EQ(naive.allocation.key, "lifo");

  const auto plim21 = make_config(Strategy::Plim21);
  EXPECT_EQ(plim21.rewrite.key, "plim21");
  EXPECT_EQ(plim21.selection.key, "plim21");
  // [21]'s own free-list discipline is modelled as a rotating scan (see
  // EXPERIMENTS.md for the sensitivity analysis).
  EXPECT_EQ(plim21.allocation.key, "round_robin");

  const auto min_write = make_config(Strategy::MinWrite);
  EXPECT_EQ(min_write.rewrite.key, "plim21");
  EXPECT_EQ(min_write.allocation.key, "min_write");

  const auto rewrite = make_config(Strategy::MinWriteEnduranceRewrite);
  EXPECT_EQ(rewrite.rewrite.key, "endurance");
  EXPECT_EQ(rewrite.selection.key, "plim21");

  const auto full = make_config(Strategy::FullEndurance, 20);
  EXPECT_EQ(full.rewrite.key, "endurance");
  EXPECT_EQ(full.selection.key, "endurance");
  EXPECT_EQ(full.allocation.key, "min_write");
  ASSERT_TRUE(full.max_writes.has_value());
  EXPECT_EQ(*full.max_writes, 20u);

  // Presets come out normalized: the effort default is materialized.
  EXPECT_EQ(full.effort(), 5);
  EXPECT_EQ(full.rewrite.canonical(), "endurance:effort=5");
}

TEST(Config, StrategyNames) {
  EXPECT_EQ(to_string(Strategy::Naive), "naive");
  EXPECT_EQ(to_string(Strategy::FullEndurance), "full-endurance");
  EXPECT_EQ(parse_strategy("full-endurance"), Strategy::FullEndurance);
  EXPECT_EQ(parse_strategy("full"), Strategy::FullEndurance);
}

TEST(Pipeline, ReportCarriesAllMetrics) {
  const auto graph = test::random_mig(7, 10, 100, 5);
  const auto report =
      run_pipeline(graph, make_config(Strategy::FullEndurance), "test-bench");
  EXPECT_EQ(report.benchmark, "test-bench");
  EXPECT_GT(report.instructions, 0u);
  EXPECT_GT(report.rrams, 0u);
  EXPECT_EQ(report.writes.total, report.instructions);
  EXPECT_EQ(report.gates_before_rewrite, graph.num_gates());
  EXPECT_GT(report.program.size(), 0u);
}

TEST(Pipeline, PrepareAndCompileMatchRunPipeline) {
  const auto graph = test::random_mig(21, 9, 80, 4);
  const auto config = make_config(Strategy::MinWrite);
  const auto direct = run_pipeline(graph, config, "x");
  const auto prepared = prepare(graph, config);
  const auto two_step = compile_prepared(prepared, config, "x", graph.num_gates());
  EXPECT_EQ(direct.instructions, two_step.instructions);
  EXPECT_EQ(direct.rrams, two_step.rrams);
  EXPECT_DOUBLE_EQ(direct.writes.stdev, two_step.writes.stdev);
}

TEST(Pipeline, AllStrategiesPreserveFunction) {
  const auto graph = test::random_mig(99, 10, 120, 6);
  for (const auto strategy :
       {Strategy::Naive, Strategy::Plim21, Strategy::MinWrite,
        Strategy::MinWriteEnduranceRewrite, Strategy::FullEndurance}) {
    const auto config = make_config(strategy);
    const auto prepared = prepare(graph, config);
    const auto report = compile_prepared(prepared, config);
    EXPECT_TRUE(plim::program_matches_mig(report.program, prepared, 10, 5))
        << to_string(strategy);
  }
}

TEST(Pipeline, MaxWriteCapHonoredEndToEnd) {
  const auto graph = test::random_mig(404, 10, 150, 6);
  for (const std::uint64_t cap : {10u, 20u, 50u}) {
    const auto report = run_pipeline(graph, make_config(Strategy::FullEndurance, cap));
    EXPECT_LE(report.writes.max, cap) << "cap " << cap;
  }
}

TEST(Pipeline, StdevImprovementConvention) {
  EnduranceReport baseline;
  baseline.writes.stdev = 10.0;
  EnduranceReport better;
  better.writes.stdev = 2.0;
  EnduranceReport worse;
  worse.writes.stdev = 15.0;
  EXPECT_DOUBLE_EQ(stdev_improvement(baseline, better), 80.0);
  EXPECT_LT(stdev_improvement(baseline, worse), 0.0);
}

TEST(Pipeline, HeadlineClaimOnMiniSuite) {
  // The paper's qualitative headline: the full endurance flow substantially
  // lowers the average write-count standard deviation vs the naive flow,
  // while also reducing instructions and RRAMs on average.
  double naive_stdev = 0.0;
  double full_stdev = 0.0;
  double naive_instr = 0.0;
  double full_instr = 0.0;
  for (const auto& spec : bench::mini_suite()) {
    const auto graph = spec.build();
    const auto naive = run_pipeline(graph, make_config(Strategy::Naive), spec.name);
    const auto full =
        run_pipeline(graph, make_config(Strategy::FullEndurance), spec.name);
    naive_stdev += naive.writes.stdev;
    full_stdev += full.writes.stdev;
    naive_instr += static_cast<double>(naive.instructions);
    full_instr += static_cast<double>(full.instructions);
  }
  EXPECT_LT(full_stdev, naive_stdev * 0.7)
      << "expected >30% average stdev improvement on the mini suite";
  EXPECT_LT(full_instr, naive_instr);
}

}  // namespace
}  // namespace rlim::core
