#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "benchmarks/arithmetic.hpp"
#include "core/registry.hpp"
#include "core/endurance.hpp"
#include "plim/controller.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim {
namespace {

using core::PipelineConfig;
using core::Strategy;

// ---- registry facade -------------------------------------------------------

TEST(Registry, KindsCoverTheSpecGrammar) {
  const auto kinds = registry::kinds();
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds[0], "rewrite");
  EXPECT_EQ(kinds[1], "pass");  // the building blocks of rewrite=seq:
  EXPECT_EQ(kinds[2], "select");
  EXPECT_EQ(kinds[3], "alloc");
  EXPECT_EQ(kinds[4], "fault");
}

TEST(Registry, BuiltinsAreListed) {
  const auto keys = [](std::string_view kind) {
    std::set<std::string> out;
    for (const auto& info : registry::list(kind)) {
      out.insert(info.key);
    }
    return out;
  };
  const auto rewrite = keys("rewrite");
  for (const auto* key :
       {"none", "plim21", "endurance", "level_balanced", "seq"}) {
    EXPECT_TRUE(rewrite.count(key)) << key;
  }
  const auto pass_keys = keys("pass");
  for (const auto* key : {"maj", "dist", "assoc", "comp", "inv", "inv3",
                          "relief", "cleanup"}) {
    EXPECT_TRUE(pass_keys.count(key)) << key;
  }
  const auto select = keys("select");
  for (const auto* key : {"naive", "plim21", "endurance", "wear_quota"}) {
    EXPECT_TRUE(select.count(key)) << key;
  }
  const auto alloc = keys("alloc");
  for (const auto* key : {"lifo", "fifo", "round_robin", "min_write",
                          "start_gap", "retire", "spare"}) {
    EXPECT_TRUE(alloc.count(key)) << key;
  }
  const auto fault_models = keys("fault");
  for (const auto* key : {"none", "stuck", "drift", "variation", "mixed"}) {
    EXPECT_TRUE(fault_models.count(key)) << key;
  }
  EXPECT_THROW(static_cast<void>(registry::list("frobnicate")), Error);
}

TEST(Registry, DescribeExposesParameters) {
  const auto& endurance = registry::describe("rewrite", "endurance");
  ASSERT_EQ(endurance.params.size(), 1u);
  EXPECT_EQ(endurance.params[0].name, "effort");
  EXPECT_EQ(endurance.params[0].default_value, "5");

  const auto& start_gap = registry::describe("alloc", "start_gap");
  ASSERT_EQ(start_gap.params.size(), 1u);
  EXPECT_EQ(start_gap.params[0].name, "interval");

  const auto& stuck = registry::describe("fault", "stuck");
  EXPECT_EQ(stuck.params[0].name, "rate");
  EXPECT_EQ(stuck.params[0].default_value, "0.0001");

  EXPECT_THROW(static_cast<void>(registry::describe("select", "nope")), Error);
}

TEST(Registry, MakeValidatesParameterValues) {
  EXPECT_NE(registry::make_selector({"wear_quota", {{"quota", "3"}}}), nullptr);
  EXPECT_THROW(registry::make_selector({"wear_quota", {{"quota", "0"}}}),
               Error);
  EXPECT_THROW(registry::make_selector({"wear_quota", {{"quota", "x"}}}),
               Error);
  EXPECT_THROW(registry::make_allocator({"start_gap", {{"interval", "0"}}}),
               Error);
  EXPECT_THROW(registry::make_rewrite({"endurance", {{"effort", "-1"}}}),
               Error);
  // Unknown parameters are rejected by normalization.
  EXPECT_THROW(registry::make_allocator({"lifo", {{"interval", "4"}}}), Error);
}

// ---- enum name round-trips -------------------------------------------------

TEST(EnumNames, RewriteKindRoundTripsEveryEnumerator) {
  for (const auto kind :
       {mig::RewriteKind::None, mig::RewriteKind::Plim21,
        mig::RewriteKind::Endurance, mig::RewriteKind::LevelBalanced}) {
    EXPECT_EQ(mig::parse_rewrite_kind(to_string(kind)), kind);
  }
  EXPECT_EQ(mig::parse_rewrite_kind("level_balanced"),
            mig::RewriteKind::LevelBalanced);
  EXPECT_THROW(static_cast<void>(mig::parse_rewrite_kind("bogus")), Error);
}

TEST(EnumNames, SelectionPolicyRoundTripsEveryEnumerator) {
  for (const auto policy :
       {plim::SelectionPolicy::NaiveOrder, plim::SelectionPolicy::Plim21,
        plim::SelectionPolicy::EnduranceAware}) {
    EXPECT_EQ(plim::parse_selection_policy(to_string(policy)), policy);
    // The registry key parses to the same enumerator.
    EXPECT_EQ(plim::parse_selection_policy(
                  std::string(plim::selection_key(policy))),
              policy);
  }
  EXPECT_THROW(static_cast<void>(plim::parse_selection_policy("bogus")), Error);
}

TEST(EnumNames, AllocPolicyRoundTripsEveryEnumerator) {
  for (const auto policy :
       {plim::AllocPolicy::Lifo, plim::AllocPolicy::Fifo,
        plim::AllocPolicy::RoundRobin, plim::AllocPolicy::MinWrite}) {
    EXPECT_EQ(plim::parse_alloc_policy(to_string(policy)), policy);
    EXPECT_EQ(
        plim::parse_alloc_policy(std::string(plim::allocation_key(policy))),
        policy);
  }
  EXPECT_THROW(static_cast<void>(plim::parse_alloc_policy("bogus")), Error);
}

TEST(EnumNames, StrategyRoundTripsEveryEnumerator) {
  for (const auto strategy :
       {Strategy::Naive, Strategy::Plim21, Strategy::MinWrite,
        Strategy::MinWriteEnduranceRewrite, Strategy::FullEndurance}) {
    EXPECT_EQ(core::parse_strategy(to_string(strategy)), strategy);
    EXPECT_EQ(core::parse_strategy(std::string(core::strategy_alias(strategy))),
              strategy);
  }
  EXPECT_THROW(static_cast<void>(core::parse_strategy("bogus")), Error);
}

// ---- config spec grammar ---------------------------------------------------

TEST(ConfigSpec, PresetAliasesMatchMakeConfig) {
  for (const auto& [alias, strategy] : core::strategy_aliases()) {
    EXPECT_EQ(PipelineConfig::parse(std::string(alias)), make_config(strategy))
        << alias;
  }
}

TEST(ConfigSpec, AliasWithOverrides) {
  const auto capped = PipelineConfig::parse("full,cap=100");
  EXPECT_EQ(capped.max_writes, std::uint64_t{100});
  EXPECT_EQ(capped, make_config(Strategy::FullEndurance, 100));

  const auto swapped = PipelineConfig::parse("full,alloc=start_gap");
  EXPECT_EQ(swapped.rewrite.key, "endurance");
  EXPECT_EQ(swapped.allocation.key, "start_gap");
  EXPECT_EQ(swapped.allocation.params.at("interval"), "16");  // default filled
}

TEST(ConfigSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("bogus")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("cap=10,full")), Error);  // alias not first
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("full,cap=10,cap=20")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("banana=split")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("select=unregistered")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("alloc=lifo:speed=11")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("rewrite=endurance:effort=many")), Error);
  EXPECT_THROW(static_cast<void>(PipelineConfig::parse("cap=ten")), Error);
}

TEST(ConfigSpec, CapBelowThreeIsRejectedWithClearError) {
  // The maximum write count strategy needs >= 3 writes of headroom for the
  // compiler's copy idioms — both the spec grammar and make_config enforce
  // it up front.
  for (const auto* spec : {"full,cap=0", "full,cap=1", "full,cap=2"}) {
    EXPECT_THROW(static_cast<void>(PipelineConfig::parse(spec)), Error) << spec;
  }
  try {
    static_cast<void>(PipelineConfig::parse("full,cap=2"));
    FAIL() << "cap=2 must be rejected";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("cap 2 is below 3"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW(static_cast<void>(core::make_config(Strategy::FullEndurance, 2)), Error);
  EXPECT_NO_THROW(static_cast<void>(PipelineConfig::parse("full,cap=3")));
}

TEST(ConfigSpec, EffortAccessors) {
  auto config = core::make_config(Strategy::FullEndurance);
  EXPECT_EQ(config.effort(), 5);
  config.set_effort(2);
  EXPECT_EQ(config.effort(), 2);
  EXPECT_EQ(config.rewrite.canonical(), "endurance:effort=2");

  auto naive = core::make_config(Strategy::Naive);
  EXPECT_EQ(naive.effort(), 0);
  naive.set_effort(7);  // "none" declares no effort knob — a no-op
  EXPECT_EQ(naive, core::make_config(Strategy::Naive));
}

// ---- canonical key round-trip property -------------------------------------

TEST(ConfigSpec, ParseCanonicalKeyRoundTripsEveryRegisteredCombination) {
  // The acceptance property of the redesign: parse(canonical_key(c)) == c
  // for every registered policy combination (with and without a cap). Going
  // through registry::list also forces fault::ensure_registered(), so the
  // allocator decorators are in the listing regardless of test order.
  std::size_t combinations = 0;
  for (const auto& rewrite : registry::list("rewrite")) {
    for (const auto& select : registry::list("select")) {
      for (const auto& alloc : registry::list("alloc")) {
        for (const auto& fault_model : registry::list("fault")) {
          for (const auto cap : {std::optional<std::uint64_t>{},
                                 std::optional<std::uint64_t>{10}}) {
            PipelineConfig config;
            config.rewrite = {rewrite.key, {}};
            config.selection = {select.key, {}};
            config.allocation = {alloc.key, {}};
            config.fault = {fault_model.key, {}};
            config.max_writes = cap;
            config = config.normalized();
            const auto key = config.canonical_key();
            EXPECT_EQ(PipelineConfig::parse(key), config) << key;
            EXPECT_EQ(PipelineConfig::parse(key).canonical_key(), key) << key;
            ++combinations;
          }
        }
      }
    }
  }
  // 5 rewrites x 4 selectors x 7 allocators x 5 fault models x 2 cap variants
  // — the seq flow (default passes = the endurance alias list) round-trips
  // through the grammar like every enum-backed flow.
  EXPECT_EQ(combinations, 1400u);
}

TEST(ConfigSpec, NonDefaultParametersSurviveTheRoundTrip) {
  const auto config = PipelineConfig::parse(
      "rewrite=level_balanced:effort=3,select=wear_quota:quota=2,"
      "alloc=start_gap:interval=4,cap=50");
  EXPECT_EQ(config.canonical_key(),
            "rewrite=level_balanced:effort=3,select=wear_quota:quota=2,"
            "alloc=start_gap:interval=4,cap=50");
  EXPECT_EQ(PipelineConfig::parse(config.canonical_key()), config);
}

// ---- behavior of the registry-only policies --------------------------------

TEST(RegistryPolicies, WearQuotaAndStartGapCompileCorrectPrograms) {
  const auto graph = test::random_mig(17, 9, 90, 5);
  for (const auto* spec :
       {"rewrite=endurance,select=wear_quota:quota=4,alloc=min_write",
        "full,alloc=start_gap:interval=8",
        "rewrite=endurance,select=wear_quota:quota=2,alloc=start_gap"}) {
    const auto config = PipelineConfig::parse(spec);
    const auto prepared = core::prepare(graph, config);
    const auto report = core::compile_prepared(prepared, config);
    EXPECT_TRUE(plim::program_matches_mig(report.program, prepared, 10, 5))
        << spec;
  }
}

TEST(RegistryPolicies, WearQuotaDiffersFromPlainEndurance) {
  // quota=1 rotates after every node — the schedule must diverge from
  // Algorithm 3's strict level ascent on a graph with enough levels.
  const auto graph = bench::make_adder(16);
  const auto base = core::run_pipeline(
      graph, PipelineConfig::parse("rewrite=endurance,select=endurance,"
                                   "alloc=min_write"));
  const auto quota = core::run_pipeline(
      graph, PipelineConfig::parse("rewrite=endurance,select=wear_quota:"
                                   "quota=1,alloc=min_write"));
  EXPECT_NE(base.writes.stdev, quota.writes.stdev);
}

TEST(RegistryPolicies, StartGapRotationDiffersFromRoundRobin) {
  const auto graph = bench::make_adder(16);
  const auto round_robin = core::run_pipeline(
      graph,
      PipelineConfig::parse("rewrite=endurance,select=endurance,"
                            "alloc=round_robin"));
  const auto start_gap = core::run_pipeline(
      graph, PipelineConfig::parse("rewrite=endurance,select=endurance,"
                                   "alloc=start_gap:interval=1"));
  EXPECT_NE(round_robin.writes.stdev, start_gap.writes.stdev);
}

TEST(RegistryPolicies, PresetReportsMatchEnumBackedCompiler) {
  // The registry path and the enum-backed CompilerOptions shorthand must
  // produce identical programs — the presets are the same policies.
  const auto graph = test::random_mig(55, 8, 70, 4);
  const auto via_config = core::run_pipeline(
      graph, core::make_config(Strategy::MinWrite), "x");
  const auto prepared = mig::rewrite_plim21(graph, 5);
  const auto via_enums =
      plim::PlimCompiler({plim::SelectionPolicy::Plim21,
                          plim::AllocPolicy::MinWrite})
          .compile(prepared);
  EXPECT_EQ(via_config.instructions, via_enums.num_instructions());
  EXPECT_EQ(via_config.rrams, via_enums.num_cells);
  EXPECT_DOUBLE_EQ(via_config.writes.stdev, via_enums.write_stats.stdev);
}

// ---- downstream registration -----------------------------------------------

TEST(RegistryPolicies, DownstreamPoliciesComposeWithTheSpecGrammar) {
  // Register a trivial custom selector once and drive it through the whole
  // pipeline purely by spec string — the pluggability contract.
  static bool registered = false;
  if (!registered) {
    plim::selectors().add(
        {"test_reverse", "newest candidate first (test-only)", {}},
        [](const util::Params&) -> plim::SelectorPtr {
          class ReverseSelector final : public plim::Selector {
          public:
            plim::SelectionKey priority(
                const plim::CandidateInfo& info) override {
              return {~info.gate, 0, 0};
            }
          };
          return std::make_unique<ReverseSelector>();
        });
    registered = true;
  }
  EXPECT_THROW(plim::selectors().add({"test_reverse", "dup", {}},
                                     plim::SelectorFactory{}),
               Error);

  const auto graph = test::random_mig(7, 8, 60, 4);
  const auto config =
      PipelineConfig::parse("rewrite=none,select=test_reverse,alloc=lifo");
  EXPECT_EQ(PipelineConfig::parse(config.canonical_key()), config);
  const auto report = core::run_pipeline(graph, config, "custom");
  EXPECT_TRUE(
      plim::program_matches_mig(report.program, graph.cleanup(), 10, 3));
}

}  // namespace
}  // namespace rlim
