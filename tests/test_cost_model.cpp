#include <gtest/gtest.h>

#include "benchmarks/arithmetic.hpp"
#include "core/endurance.hpp"
#include "plim/cost_model.hpp"

namespace rlim::plim {
namespace {

TEST(CostModel, EmptyProgramIsFree) {
  const Program program;
  const auto cost = estimate_cost(program);
  EXPECT_EQ(cost.cycles, 0u);
  EXPECT_DOUBLE_EQ(cost.energy_pj, 0.0);
}

TEST(CostModel, CountsReadsAndWrites) {
  Program program;
  // Constant write: 0 reads, 1 write.
  program.append(make_write_const(true, 0));
  // Copy step: 1 cell read (src), 1 write.
  program.append(make_copy_step(0, 1));
  // Full RM3 with two cell operands: 2 reads, 1 write.
  program.append(Instruction{Operand::cell(0), Operand::cell(1), 2});
  const auto cost = estimate_cost(program);
  EXPECT_EQ(cost.cycles, 3u);
  EXPECT_EQ(cost.cell_writes, 3u);
  EXPECT_EQ(cost.cell_reads, 3u);
}

TEST(CostModel, ParametersScaleLinearly) {
  Program program;
  program.append(Instruction{Operand::cell(0), Operand::cell(1), 2});
  CostParams params;
  params.write_energy_pj = 2.0;
  params.read_energy_pj = 0.5;
  params.cycle_ns = 7.0;
  const auto cost = estimate_cost(program, params);
  EXPECT_DOUBLE_EQ(cost.energy_pj, 2.0 + 2 * 0.5);
  EXPECT_DOUBLE_EQ(cost.latency_ns, 7.0);
}

TEST(CostModel, RewritingReducesEnergyAndLatency) {
  // The paper's latency argument in energy terms: fewer instructions =
  // proportionally less write energy and fewer cycles.
  const auto graph = bench::make_adder(16);
  const auto naive =
      core::run_pipeline(graph, core::make_config(core::Strategy::Naive), "a");
  const auto full = core::run_pipeline(
      graph, core::make_config(core::Strategy::FullEndurance), "a");
  const auto naive_cost = estimate_cost(naive.program);
  const auto full_cost = estimate_cost(full.program);
  EXPECT_LT(full_cost.energy_pj, naive_cost.energy_pj);
  EXPECT_LT(full_cost.latency_ns, naive_cost.latency_ns);
}

TEST(CostModel, CapRaisesEnergyModestly) {
  const auto graph = bench::make_adder(16);
  const auto uncapped = core::run_pipeline(
      graph, core::make_config(core::Strategy::FullEndurance), "a");
  const auto capped = core::run_pipeline(
      graph, core::make_config(core::Strategy::FullEndurance, 10), "a");
  const auto e0 = estimate_cost(uncapped.program).energy_pj;
  const auto e1 = estimate_cost(capped.program).energy_pj;
  EXPECT_GE(e1, e0);
  EXPECT_LT(e1, 2.0 * e0);  // the cap's latency price stays moderate
}

}  // namespace
}  // namespace rlim::plim
