#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "benchmarks/arithmetic.hpp"
#include "benchmarks/control.hpp"
#include "benchmarks/suite.hpp"
#include "mig/simulate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::bench {
namespace {

using mig::Mig;

void pack(std::vector<std::uint64_t>& pi_values, std::size_t offset, unsigned bits,
          std::span<const std::uint64_t> tests) {
  for (unsigned i = 0; i < bits; ++i) {
    std::uint64_t word = 0;
    for (std::size_t t = 0; t < tests.size(); ++t) {
      word |= ((tests[t] >> i) & 1ULL) << t;
    }
    pi_values[offset + i] = word;
  }
}

std::uint64_t unpack(std::span<const std::uint64_t> po_values, std::size_t offset,
                     unsigned bits, std::size_t lane) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    value |= ((po_values[offset + i] >> lane) & 1ULL) << i;
  }
  return value;
}

std::vector<std::uint64_t> random_values(std::uint64_t seed, unsigned bits) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> values(64);
  const auto mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
  for (auto& value : values) {
    value = rng() & mask;
  }
  values[0] = 0;
  values[1] = mask;
  return values;
}

TEST(Arithmetic, AdderComputesSums) {
  constexpr unsigned kBits = 10;
  const auto graph = make_adder(kBits);
  EXPECT_EQ(graph.num_pis(), 2 * kBits);
  EXPECT_EQ(graph.num_pos(), kBits + 1);
  const auto av = random_values(1, kBits);
  const auto bv = random_values(2, kBits);
  std::vector<std::uint64_t> pis(2 * kBits);
  pack(pis, 0, kBits, av);
  pack(pis, kBits, kBits, bv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < av.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, kBits + 1, t), av[t] + bv[t]);
  }
}

TEST(Arithmetic, BarrelShifterShifts) {
  constexpr unsigned kBits = 16;
  const auto graph = make_barrel_shifter(kBits);
  EXPECT_EQ(graph.num_pis(), kBits + 4);
  EXPECT_EQ(graph.num_pos(), kBits);
  const auto dv = random_values(3, kBits);
  const auto sv = random_values(4, 4);
  std::vector<std::uint64_t> pis(kBits + 4);
  pack(pis, 0, kBits, dv);
  pack(pis, kBits, 4, sv);
  const auto out = mig::simulate(graph, pis);
  const auto mask = (1ULL << kBits) - 1;
  for (std::size_t t = 0; t < dv.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, kBits, t), (dv[t] << sv[t]) & mask);
  }
}

TEST(Arithmetic, DividerComputesQuotientAndRemainder) {
  constexpr unsigned kBits = 7;
  const auto graph = make_divider(kBits);
  auto nv = random_values(5, kBits);
  auto dv = random_values(6, kBits);
  for (auto& d : dv) {
    if (d == 0) {
      d = 1;  // divide-by-zero is out of contract
    }
  }
  std::vector<std::uint64_t> pis(2 * kBits);
  pack(pis, 0, kBits, nv);
  pack(pis, kBits, kBits, dv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < nv.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, kBits, t), nv[t] / dv[t]) << nv[t] << "/" << dv[t];
    EXPECT_EQ(unpack(out, kBits, kBits, t), nv[t] % dv[t]);
  }
}

TEST(Arithmetic, Log2MatchesBitExactReference) {
  constexpr unsigned kBits = 8;
  const auto graph = make_log2(kBits);
  EXPECT_EQ(graph.num_pis(), kBits);
  EXPECT_EQ(graph.num_pos(), kBits);
  // Exhaustive over all 256 inputs, 64 lanes at a time.
  for (unsigned base = 0; base < 256; base += 64) {
    std::vector<std::uint64_t> values(64);
    for (unsigned i = 0; i < 64; ++i) {
      values[i] = base + i;
    }
    std::vector<std::uint64_t> pis(kBits);
    pack(pis, 0, kBits, values);
    const auto out = mig::simulate(graph, pis);
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(unpack(out, 0, kBits, i), reference_log2(base + i, kBits))
          << "x=" << base + i;
    }
  }
}

TEST(Arithmetic, Log2ApproximatesRealLog2) {
  constexpr unsigned kBits = 12;
  const unsigned pos_bits = 4;  // log2_ceil(12)
  const auto frac_scale = static_cast<double>(1u << (kBits - pos_bits));
  for (const std::uint64_t x : {3ULL, 100ULL, 999ULL, 2048ULL, 4095ULL}) {
    const auto y = reference_log2(x, kBits);
    const double approx = static_cast<double>(y) / frac_scale;
    EXPECT_NEAR(approx, std::log2(static_cast<double>(x)), 0.02) << "x=" << x;
  }
}

TEST(Arithmetic, MaxSelectsMaximumAndIndex) {
  constexpr unsigned kBits = 6;
  const auto graph = make_max(4, kBits);
  EXPECT_EQ(graph.num_pis(), 4 * kBits);
  EXPECT_EQ(graph.num_pos(), kBits + 2);
  std::vector<std::vector<std::uint64_t>> words;
  for (unsigned w = 0; w < 4; ++w) {
    words.push_back(random_values(10 + w, kBits));
  }
  std::vector<std::uint64_t> pis(4 * kBits);
  for (unsigned w = 0; w < 4; ++w) {
    pack(pis, w * kBits, kBits, words[w]);
  }
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < 64; ++t) {
    std::uint64_t best = 0;
    unsigned best_index = 0;
    for (unsigned w = 0; w < 4; ++w) {
      // Ties resolve to the later word (strict comparison in the tree).
      if (words[w][t] >= best) {
        if (words[w][t] > best || w == 0) {
          best_index = w;
        } else if (words[best_index][t] != words[w][t]) {
          best_index = w;
        }
        best = std::max(best, words[w][t]);
      }
    }
    EXPECT_EQ(unpack(out, 0, kBits, t), best);
  }
}

TEST(Arithmetic, MultiplierAndSquarer) {
  constexpr unsigned kBits = 6;
  const auto mult = make_multiplier(kBits);
  const auto square = make_square(kBits);
  const auto av = random_values(20, kBits);
  const auto bv = random_values(21, kBits);
  {
    std::vector<std::uint64_t> pis(2 * kBits);
    pack(pis, 0, kBits, av);
    pack(pis, kBits, kBits, bv);
    const auto out = mig::simulate(mult, pis);
    for (std::size_t t = 0; t < av.size(); ++t) {
      EXPECT_EQ(unpack(out, 0, 2 * kBits, t), av[t] * bv[t]);
    }
  }
  {
    std::vector<std::uint64_t> pis(kBits);
    pack(pis, 0, kBits, av);
    const auto out = mig::simulate(square, pis);
    for (std::size_t t = 0; t < av.size(); ++t) {
      EXPECT_EQ(unpack(out, 0, 2 * kBits, t), av[t] * av[t]);
    }
  }
}

TEST(Arithmetic, SinMatchesBitExactReference) {
  constexpr unsigned kBits = 8;
  const auto graph = make_sin(kBits);
  EXPECT_EQ(graph.num_pis(), kBits);
  EXPECT_EQ(graph.num_pos(), kBits + 1);
  for (unsigned base = 0; base < 256; base += 64) {
    std::vector<std::uint64_t> values(64);
    for (unsigned i = 0; i < 64; ++i) {
      values[i] = base + i;
    }
    std::vector<std::uint64_t> pis(kBits);
    pack(pis, 0, kBits, values);
    const auto out = mig::simulate(graph, pis);
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(unpack(out, 0, kBits + 1, i), reference_sin(base + i, kBits))
          << "x=" << base + i;
    }
  }
}

TEST(Arithmetic, SinApproximatesRealSine) {
  constexpr unsigned kBits = 16;
  const auto scale = static_cast<double>(1u << kBits);
  for (const std::uint64_t x : {0ULL, 1000ULL, 20000ULL, 40000ULL, 65535ULL}) {
    const auto y = reference_sin(x, kBits);
    const double angle = static_cast<double>(x) / scale * 3.14159265358979 / 2.0;
    EXPECT_NEAR(static_cast<double>(y) / scale, std::sin(angle), 0.02) << "x=" << x;
  }
}

TEST(Arithmetic, SqrtComputesIntegerRoot) {
  constexpr unsigned kOut = 6;  // 12-bit radicand
  const auto graph = make_sqrt(kOut);
  EXPECT_EQ(graph.num_pis(), 2 * kOut);
  EXPECT_EQ(graph.num_pos(), kOut);
  const auto nv = random_values(30, 2 * kOut);
  std::vector<std::uint64_t> pis(2 * kOut);
  pack(pis, 0, 2 * kOut, nv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < nv.size(); ++t) {
    const auto expected =
        static_cast<std::uint64_t>(std::sqrt(static_cast<double>(nv[t])));
    EXPECT_EQ(unpack(out, 0, kOut, t), expected) << "n=" << nv[t];
  }
}

TEST(Control, DecoderIsOneHot) {
  const auto graph = make_decoder(4);
  EXPECT_EQ(graph.num_pis(), 4u);
  EXPECT_EQ(graph.num_pos(), 16u);
  std::vector<std::uint64_t> values(16);
  for (unsigned i = 0; i < 16; ++i) {
    values[i] = i;
  }
  std::vector<std::uint64_t> pis(4);
  pack(pis, 0, 4, values);
  const auto out = mig::simulate(graph, pis);
  for (unsigned lane = 0; lane < 16; ++lane) {
    for (unsigned po = 0; po < 16; ++po) {
      EXPECT_EQ((out[po] >> lane) & 1, po == lane ? 1u : 0u);
    }
  }
}

TEST(Control, PriorityEncoderPicksHighestLine) {
  const auto graph = make_priority_encoder(16);
  EXPECT_EQ(graph.num_pis(), 16u);
  EXPECT_EQ(graph.num_pos(), 5u);  // 4 index bits + valid
  const auto rv = random_values(40, 16);
  std::vector<std::uint64_t> pis(16);
  pack(pis, 0, 16, rv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < rv.size(); ++t) {
    if (rv[t] == 0) {
      EXPECT_EQ((out[4] >> t) & 1, 0u);
      continue;
    }
    const auto expected = 63u - static_cast<unsigned>(__builtin_clzll(rv[t]));
    EXPECT_EQ(unpack(out, 0, 4, t), expected);
    EXPECT_EQ((out[4] >> t) & 1, 1u);
  }
}

TEST(Control, Int2FloatMatchesReferenceExhaustively) {
  const auto graph = make_int2float();
  EXPECT_EQ(graph.num_pis(), 11u);
  EXPECT_EQ(graph.num_pos(), 7u);
  for (std::uint64_t base = 0; base < 2048; base += 64) {
    std::vector<std::uint64_t> values(64);
    for (unsigned i = 0; i < 64; ++i) {
      values[i] = base + i;
    }
    std::vector<std::uint64_t> pis(11);
    pack(pis, 0, 11, values);
    const auto out = mig::simulate(graph, pis);
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(unpack(out, 0, 7, i), reference_int2float(base + i))
          << "x=" << base + i;
    }
  }
}

TEST(Control, VoterComputesMajority) {
  const auto graph = make_voter(15);
  const auto vv = random_values(50, 15);
  std::vector<std::uint64_t> pis(15);
  pack(pis, 0, 15, vv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < vv.size(); ++t) {
    const auto ones = __builtin_popcountll(vv[t]);
    EXPECT_EQ((out[0] >> t) & 1, ones >= 8 ? 1u : 0u) << "v=" << vv[t];
  }
}

TEST(Control, RandomControlIsDeterministic) {
  const auto a = make_random_control(12, 6, 100, 42);
  const auto b = make_random_control(12, 6, 100, 42);
  EXPECT_EQ(mig::simulation_signature(a, 4, 7), mig::simulation_signature(b, 4, 7));
  const auto c = make_random_control(12, 6, 100, 43);
  EXPECT_NE(mig::simulation_signature(a, 4, 7), mig::simulation_signature(c, 4, 7));
}

TEST(Control, RandomControlMeetsProfile) {
  const auto graph = make_random_control(20, 9, 300, 7);
  EXPECT_EQ(graph.num_pis(), 20u);
  EXPECT_EQ(graph.num_pos(), 9u);
  EXPECT_GE(graph.num_gates(), 300u / 2);
}

TEST(Suite, MiniSuiteProfilesMatch) {
  for (const auto& spec : mini_suite()) {
    const auto graph = spec.build();
    EXPECT_EQ(graph.num_pis(), spec.pis) << spec.name;
    EXPECT_EQ(graph.num_pos(), spec.pos) << spec.name;
    EXPECT_GT(graph.num_gates(), 0u) << spec.name;
  }
}

TEST(Suite, PaperSuiteHasEighteenEntriesWithPaperProfiles) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 18u);
  // Spot-check the published PI/PO profile.
  EXPECT_EQ(find_benchmark("adder").pis, 256u);
  EXPECT_EQ(find_benchmark("adder").pos, 129u);
  EXPECT_EQ(find_benchmark("mem_ctrl").pis, 1204u);
  EXPECT_EQ(find_benchmark("mem_ctrl").pos, 1231u);
  EXPECT_EQ(find_benchmark("voter").pis, 1001u);
  EXPECT_EQ(find_benchmark("voter").pos, 1u);
  EXPECT_THROW(static_cast<void>(find_benchmark("nope")), Error);
}

TEST(Suite, PaperSizedLightEntriesBuildWithExactProfile) {
  // The small paper-profile entries build quickly; the heavyweight ones are
  // covered by the bench harness.
  for (const auto name : {"adder", "bar", "sin", "dec", "int2float", "priority",
                          "cavlc", "ctrl", "router"}) {
    const auto& spec = find_benchmark(name);
    const auto graph = spec.build();
    EXPECT_EQ(graph.num_pis(), spec.pis) << name;
    EXPECT_EQ(graph.num_pos(), spec.pos) << name;
  }
}

}  // namespace
}  // namespace rlim::bench
