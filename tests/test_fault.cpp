#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>
#include <string>

#include "core/endurance.hpp"
#include "core/registry.hpp"
#include "fault/array.hpp"
#include "fault/fault.hpp"
#include "fault/sweep.hpp"
#include "plim/allocator.hpp"
#include "plim/controller.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim {
namespace {

using core::PipelineConfig;

// ---- model registry and spec grammar ---------------------------------------

TEST(FaultModels, RegistryListsTheBuiltins) {
  std::set<std::string> keys;
  for (const auto& info : fault::models().list()) {
    keys.insert(info.key);
  }
  for (const auto* key : {"none", "stuck", "drift", "variation", "mixed"}) {
    EXPECT_TRUE(keys.count(key)) << key;
  }
}

TEST(FaultModels, NoneIsDisabledAndEverythingElseEnabled) {
  EXPECT_FALSE(fault::make_sweep({"none", {}}).enabled);
  EXPECT_FALSE(fault::active({"none", {}}));
  for (const auto* key : {"stuck", "drift", "variation", "mixed"}) {
    EXPECT_TRUE(fault::make_sweep({key, {}}).enabled) << key;
    EXPECT_TRUE(fault::active({key, {}})) << key;
  }
}

TEST(FaultModels, StuckSpecMapsOntoTheProfile) {
  const auto spec = fault::make_sweep(
      {"stuck",
       {{"rate", "0.01"}, {"wear_rate", "1e-3"}, {"repair", "remap"},
        {"spares", "8"}, {"endurance", "100"}, {"sigma", "0.5"},
        {"seed", "9"}, {"trials", "7"}, {"runs", "50"}}});
  EXPECT_DOUBLE_EQ(spec.profile.logic.stuck_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.profile.logic.wear_stuck_rate, 1e-3);
  EXPECT_EQ(spec.profile.logic, spec.profile.memory);
  EXPECT_EQ(spec.profile.repair, fault::Repair::Remap);
  EXPECT_EQ(spec.profile.spares, 8u);
  EXPECT_EQ(spec.profile.endurance, 100u);
  EXPECT_DOUBLE_EQ(spec.profile.sigma, 0.5);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.trials, 7u);
  EXPECT_EQ(spec.runs, 50u);
}

TEST(FaultModels, MixedSpecSeparatesTheRegions) {
  const auto spec = fault::make_sweep(
      {"mixed",
       {{"mem_rate", "0.001"}, {"logic_rate", "0.02"}, {"logic_wear", "3"}}});
  EXPECT_DOUBLE_EQ(spec.profile.memory.stuck_rate, 0.001);
  EXPECT_DOUBLE_EQ(spec.profile.logic.stuck_rate, 0.02);
  EXPECT_EQ(spec.profile.logic.wear_per_write, 3u);
  EXPECT_EQ(spec.profile.memory.wear_per_write, 1u);
}

TEST(FaultModels, RejectsBadParameters) {
  // Probabilities outside [0, 1], malformed numbers, unknown params.
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"rate", "1.5"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"rate", "-0.1"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"rate", "lots"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"bogus", "1"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"trials", "0"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"runs", "0"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"sigma", "-1"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"repair", "magic"}}}), Error);
  // repair=remap without spares is a configuration error, not a silent no-op.
  EXPECT_THROW((void)fault::make_sweep({"stuck", {{"repair", "remap"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"mixed", {{"logic_wear", "0"}}}), Error);
  EXPECT_THROW((void)fault::make_sweep({"unheard_of", {}}), Error);
}

TEST(FaultModels, ConfigSpecRoundTripsThroughTheCanonicalKey) {
  // Same property style as the PR-3 config tests: parse(canonical_key())
  // reproduces the config for fault clauses, defaults filled.
  const auto config = PipelineConfig::parse(
      "full,fault=stuck:rate=1e-3:repair=remap:spares=4:trials=5");
  EXPECT_EQ(config.fault.key, "stuck");
  EXPECT_EQ(config.fault.params.at("rate"), "1e-3");
  EXPECT_EQ(config.fault.params.at("runs"), "500");  // default filled
  const auto key = config.canonical_key();
  EXPECT_NE(key.find("fault=stuck:"), std::string::npos);
  EXPECT_EQ(PipelineConfig::parse(key), config);
  EXPECT_EQ(PipelineConfig::parse(key).canonical_key(), key);
}

TEST(FaultModels, DefaultConfigKeyHasNoFaultClause) {
  // Byte-stability of pre-fault keys: the five paper presets must hash and
  // cache exactly as before the fault dimension existed.
  for (const auto& [alias, strategy] : core::strategy_aliases()) {
    const auto key = core::make_config(strategy).canonical_key();
    EXPECT_EQ(key.find("fault"), std::string::npos) << alias;
    EXPECT_EQ(PipelineConfig::parse(std::string(alias)).canonical_key(), key);
  }
}

// ---- FaultArray ------------------------------------------------------------

TEST(FaultArray, NoFaultsBehavesLikeTheBaseArray) {
  fault::FaultProfile clean;
  fault::FaultArray array(8, clean, 1);
  array.write(3, 42);
  EXPECT_EQ(array.read(3), 42u);
  EXPECT_EQ(array.write_count(3), 1u);
  EXPECT_FALSE(array.is_failed(3));
  EXPECT_EQ(array.failed_cell_count(), 0u);
  array.reset_values();
  EXPECT_EQ(array.read(3), 0u);
}

TEST(FaultArray, ManufacturingStuckCellsIgnoreWritesAndPreloads) {
  fault::FaultProfile profile;
  profile.logic.stuck_rate = 1.0;  // every cell stuck at construction
  fault::FaultArray array(4, profile, 7);
  EXPECT_EQ(array.stuck_cell_count(), 4u);
  EXPECT_EQ(array.failed_cell_count(), 4u);
  for (plim::Cell cell = 0; cell < 4; ++cell) {
    EXPECT_TRUE(array.is_stuck(cell));
    EXPECT_TRUE(array.is_failed(cell));
    const auto before = array.read(cell);
    array.write(cell, ~before);
    array.preload(cell, ~before);
    EXPECT_EQ(array.read(cell), before);  // value pinned
  }
  EXPECT_EQ(array.dropped_writes(), 8u);
  array.reset_values();
  // Stuck values survive reset (they are physical, not stored charge).
  EXPECT_EQ(array.stuck_cell_count(), 4u);
}

TEST(FaultArray, StuckValuesAreDeterministicInTheSeed) {
  fault::FaultProfile profile;
  profile.logic.stuck_rate = 0.5;
  for (const std::uint64_t seed : {1ull, 99ull, 12345ull}) {
    fault::FaultArray a(64, profile, seed);
    fault::FaultArray b(64, profile, seed);
    EXPECT_EQ(a.stuck_cell_count(), b.stuck_cell_count());
    for (plim::Cell cell = 0; cell < 64; ++cell) {
      EXPECT_EQ(a.is_stuck(cell), b.is_stuck(cell));
      EXPECT_EQ(a.read(cell), b.read(cell));
    }
  }
  // And different seeds give different defect maps (overwhelmingly likely
  // over 64 cells at rate 0.5).
  fault::FaultArray a(64, profile, 1);
  fault::FaultArray b(64, profile, 2);
  bool differs = a.stuck_cell_count() != b.stuck_cell_count();
  for (plim::Cell cell = 0; !differs && cell < 64; ++cell) {
    differs = a.is_stuck(cell) != b.is_stuck(cell);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultArray, DriftDisturbsReadsPersistently) {
  fault::FaultProfile profile;
  profile.logic.drift_rate = 1.0;  // every read disturbs
  fault::FaultArray array(2, profile, 3);
  array.write(0, 0);
  const auto first = array.read(0);
  EXPECT_EQ(std::popcount(first), 1);  // exactly one lane flipped
  EXPECT_EQ(array.disturbed_reads(), 1u);
  // The disturbance is persistent: the next read starts from the disturbed
  // word and flips one more lane (possibly the same one back).
  const auto second = array.read(0);
  EXPECT_LE(std::popcount(first ^ second), 1);
  EXPECT_EQ(array.disturbed_reads(), 2u);
}

TEST(FaultArray, WriteVariabilityWearsWithoutLatching) {
  fault::FaultProfile profile;
  profile.logic.write_fail_rate = 1.0;  // every pulse fails to latch
  fault::FaultArray array(2, profile, 3);
  array.write(0, 7);
  EXPECT_EQ(array.read(0), 0u);         // value unchanged
  EXPECT_EQ(array.write_count(0), 1u);  // wear still accrued
}

TEST(FaultArray, MixedModeWearsLogicCellsFaster) {
  fault::FaultProfile profile;
  profile.logic.wear_per_write = 3;
  std::vector<bool> memory = {true, false};
  fault::FaultArray array(2, profile, 5, std::move(memory));
  array.write(0, 1);  // memory-mode: wear 1
  array.write(1, 1);  // logic-mode: wear 3
  EXPECT_EQ(array.write_count(0), 1u);
  EXPECT_EQ(array.write_count(1), 3u);
}

TEST(FaultArray, RemapRedirectsToHealthySpares) {
  fault::FaultProfile profile;
  profile.endurance = 2;
  profile.repair = fault::Repair::Remap;
  profile.spares = 1;
  fault::FaultArray array(2, profile, 11);
  array.write(0, 1);
  array.write(0, 2);
  EXPECT_TRUE(array.is_failed(0));  // wear limit reached, no spare used yet
  array.write(0, 3);                // triggers the remap, then latches
  EXPECT_EQ(array.remapped_count(), 1u);
  EXPECT_FALSE(array.is_failed(0));
  EXPECT_EQ(array.read(0), 3u);
  // The single spare is spent: once it wears out there is nowhere to go.
  array.write(0, 4);  // spare's second write reaches its own limit
  EXPECT_TRUE(array.is_failed(0));
  array.write(0, 5);
  EXPECT_EQ(array.dropped_writes(), 1u);
  EXPECT_EQ(array.read(0), 4u);
}

TEST(FaultArray, LargeSigmaStillDrawsPositiveLimits) {
  // Satellite regression: extreme endurance_sigma must clamp to limit >= 1
  // in the underlying variability draw, never 0 or negative.
  fault::FaultProfile profile;
  profile.endurance = 100;
  profile.sigma = 10.0;
  fault::FaultArray array(256, profile, 17);
  for (plim::Cell cell = 0; cell < 256; ++cell) {
    const auto limit = array.endurance_of(cell);
    ASSERT_TRUE(limit.has_value());
    EXPECT_GE(*limit, 1u);
  }
}

TEST(FaultArray, RejectsBadMemoryMask) {
  EXPECT_THROW(fault::FaultArray(4, {}, 1, std::vector<bool>(3, false)), Error);
}

// ---- allocator decorators --------------------------------------------------

TEST(FaultDecorators, RetireDropsWornCells) {
  // Direct plim::make_allocator use needs the fault library's lazy decorator
  // registration first (the config/registry paths do this themselves).
  fault::ensure_registered();
  auto alloc = plim::make_allocator(
      util::PolicySpec{"retire", {{"threshold", "10"}}});
  alloc->push(0, 9);
  alloc->push(1, 10);  // retired
  alloc->push(2, 11);  // retired
  EXPECT_EQ(alloc->size(), 1u);
  EXPECT_EQ(alloc->pop(), std::optional<plim::Cell>{0});
  EXPECT_EQ(alloc->pop(), std::nullopt);
}

TEST(FaultDecorators, SpareHoldsBackAReserveServedLast) {
  fault::ensure_registered();
  auto alloc =
      plim::make_allocator(util::PolicySpec{"spare", {{"spares", "2"}}});
  alloc->push(0, 0);  // reserve
  alloc->push(1, 0);  // reserve
  alloc->push(2, 5);  // inner
  alloc->push(3, 1);  // inner (min_write serves this first)
  EXPECT_EQ(alloc->size(), 4u);
  EXPECT_EQ(alloc->pop(), std::optional<plim::Cell>{3});
  EXPECT_EQ(alloc->pop(), std::optional<plim::Cell>{2});
  // Inner pool dry — the reserve is served now.
  EXPECT_EQ(alloc->pop(), std::optional<plim::Cell>{1});
  EXPECT_EQ(alloc->pop(), std::optional<plim::Cell>{0});
  EXPECT_EQ(alloc->pop(), std::nullopt);
}

TEST(FaultDecorators, DecoratorsCannotNestAndValidateInner) {
  fault::ensure_registered();
  EXPECT_THROW((void)plim::make_allocator(
                   util::PolicySpec{"retire", {{"inner", "spare"}}}),
               Error);
  EXPECT_THROW((void)plim::make_allocator(
                   util::PolicySpec{"spare", {{"inner", "retire"}}}),
               Error);
  EXPECT_THROW((void)plim::make_allocator(
                   util::PolicySpec{"retire", {{"inner", "unregistered"}}}),
               Error);
  EXPECT_THROW((void)plim::make_allocator(
                   util::PolicySpec{"retire", {{"threshold", "0"}}}),
               Error);
}

TEST(FaultDecorators, DecoratedConfigCompilesACorrectProgram) {
  const auto graph = test::random_mig(23, 8, 70, 4);
  for (const auto* spec :
       {"full,alloc=retire:threshold=8", "full,alloc=spare:spares=2"}) {
    const auto config = PipelineConfig::parse(spec);
    const auto prepared = core::prepare(graph, config);
    const auto report = core::compile_prepared(prepared, config);
    EXPECT_TRUE(plim::program_matches_mig(report.program, prepared, 10, 5))
        << spec;
  }
}

// ---- Monte-Carlo sweeps ----------------------------------------------------

core::EnduranceReport compile_with(const mig::Mig& graph,
                                   const std::string& spec) {
  const auto config = PipelineConfig::parse(spec);
  return core::run_pipeline(graph, config, "t");
}

TEST(FaultSweep, ReportCarriesTheDistributionOnlyWhenRequested) {
  const auto graph = test::random_mig(31, 8, 60, 4);
  const auto plain = compile_with(graph, "full");
  EXPECT_FALSE(plain.fault_sweep.has_value());

  const auto faulty = compile_with(
      graph, "full,fault=stuck:rate=0.01:endurance=50:trials=4:runs=40");
  ASSERT_TRUE(faulty.fault_sweep.has_value());
  const auto& dist = *faulty.fault_sweep;
  EXPECT_EQ(dist.trials, 4u);
  EXPECT_EQ(dist.runs_cap, 40u);
  EXPECT_LE(dist.lifetime_min, dist.lifetime_p50);
  EXPECT_LE(dist.lifetime_p50, dist.lifetime_p99);
  EXPECT_LE(dist.lifetime_p99, dist.lifetime_max);
  EXPECT_LE(dist.lifetime_max, 40u);
  EXPECT_GE(dist.lifetime_mean, static_cast<double>(dist.lifetime_min));
  EXPECT_LE(dist.lifetime_mean, static_cast<double>(dist.lifetime_max));
  EXPECT_LE(dist.failed_cells_min, dist.failed_cells_max);
}

TEST(FaultSweep, SameSeedIsByteIdenticalDifferentSeedDiffers) {
  const auto graph = test::random_mig(37, 8, 60, 4);
  const auto a = compile_with(
      graph, "full,fault=stuck:rate=0.02:endurance=60:seed=5:trials=5:runs=50");
  const auto b = compile_with(
      graph, "full,fault=stuck:rate=0.02:endurance=60:seed=5:trials=5:runs=50");
  ASSERT_TRUE(a.fault_sweep && b.fault_sweep);
  EXPECT_EQ(*a.fault_sweep, *b.fault_sweep);

  const auto c = compile_with(
      graph, "full,fault=stuck:rate=0.02:endurance=60:seed=6:trials=5:runs=50");
  ASSERT_TRUE(c.fault_sweep.has_value());
  EXPECT_NE(*a.fault_sweep, *c.fault_sweep);
}

TEST(FaultSweep, HigherStuckRateShortensLifetimes) {
  const auto graph = test::random_mig(41, 8, 80, 4);
  const auto gentle = compile_with(
      graph, "full,fault=stuck:rate=0.0:endurance=200:trials=4:runs=120");
  const auto harsh = compile_with(
      graph, "full,fault=stuck:rate=0.3:endurance=200:trials=4:runs=120");
  ASSERT_TRUE(gentle.fault_sweep && harsh.fault_sweep);
  // 30% dead cells kill the program essentially immediately; a defect-free
  // array under the same endurance budget lives strictly longer.
  EXPECT_GT(gentle.fault_sweep->lifetime_min, harsh.fault_sweep->lifetime_max);
  EXPECT_GT(harsh.fault_sweep->failed_cells_min, 0u);
}

TEST(FaultSweep, RemapExtendsLifetimeUnderWear) {
  const auto graph = test::random_mig(43, 8, 80, 4);
  const auto base =
      "fault=stuck:rate=0:endurance=40:trials=4:runs=200";
  const auto bare = compile_with(graph, std::string("full,") + base);
  const auto repaired = compile_with(
      graph, std::string("full,") + base + ":repair=remap:spares=64");
  ASSERT_TRUE(bare.fault_sweep && repaired.fault_sweep);
  // With 64 spares absorbing the first exhausted cells, median lifetime
  // must improve over the unrepaired run (wear failure is deterministic
  // here: sigma=0, no stochastic faults).
  EXPECT_GT(repaired.fault_sweep->lifetime_p50, bare.fault_sweep->lifetime_p50);
  EXPECT_GT(repaired.fault_sweep->remapped_total, 0u);
}

TEST(FaultSweep, MixedModeSparesTheMemoryRegion) {
  const auto graph = test::random_mig(47, 8, 60, 4);
  const auto report = compile_with(
      graph,
      "full,fault=mixed:mem_rate=0:logic_rate=0.05:endurance=80:trials=3:"
      "runs=60");
  ASSERT_TRUE(report.fault_sweep.has_value());
  EXPECT_EQ(report.fault_sweep->trials, 3u);
}

TEST(FaultSweep, CensoringReportsTrialsThatNeverFailed) {
  const auto graph = test::random_mig(53, 8, 50, 4);
  // Unlimited endurance, no faults injected: every trial survives the cap.
  const auto report = compile_with(
      graph, "full,fault=stuck:rate=0:endurance=0:trials=3:runs=10");
  ASSERT_TRUE(report.fault_sweep.has_value());
  EXPECT_EQ(report.fault_sweep->censored, 3u);
  EXPECT_EQ(report.fault_sweep->lifetime_min, 10u);
}

TEST(FaultSweep, RunSweepRejectsDisabledSpecs) {
  const auto graph = test::random_mig(59, 6, 30, 3);
  const auto report = compile_with(graph, "naive");
  EXPECT_THROW(
      (void)fault::run_sweep(report.program, graph.cleanup(), fault::SweepSpec{}),
      Error);
}

}  // namespace
}  // namespace rlim
