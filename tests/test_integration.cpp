#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "core/endurance.hpp"
#include "core/lifetime.hpp"
#include "mig/simulate.hpp"
#include "plim/controller.hpp"

namespace rlim::core {
namespace {

using mig::Mig;

/// Every mini-suite benchmark × every strategy: the compiled program must
/// compute the (rewritten) MIG's function on the crossbar simulator. This is
/// the end-to-end oracle of the whole pipeline.
class SuiteCorrectness
    : public ::testing::TestWithParam<std::tuple<int, Strategy>> {};

TEST_P(SuiteCorrectness, CompiledProgramMatchesRewrittenMig) {
  const auto [bench_index, strategy] = GetParam();
  const auto& spec = bench::mini_suite()[static_cast<std::size_t>(bench_index)];
  const auto graph = spec.build();
  const auto config = make_config(strategy);
  const auto prepared = prepare(graph, config);
  // Rewriting must itself preserve the function...
  EXPECT_TRUE(mig::equivalent_random(graph, prepared, 8, 17))
      << spec.name << ": rewriting broke the function";
  // ...and the compiled program must match on the crossbar.
  const auto report = compile_prepared(prepared, config, spec.name);
  EXPECT_TRUE(plim::program_matches_mig(report.program, prepared, 8, 23))
      << spec.name << " / " << to_string(strategy);
}

INSTANTIATE_TEST_SUITE_P(
    MiniSuiteTimesStrategies, SuiteCorrectness,
    ::testing::Combine(::testing::Range(0, 18),
                       ::testing::Values(Strategy::Naive, Strategy::Plim21,
                                         Strategy::MinWrite,
                                         Strategy::MinWriteEnduranceRewrite,
                                         Strategy::FullEndurance)),
    [](const auto& info) {
      auto name = bench::mini_suite()[static_cast<std::size_t>(
                      std::get<0>(info.param))].name +
                  "_" + to_string(std::get<1>(info.param));
      for (auto& ch : name) {
        if (ch == '-' || ch == '+') {
          ch = '_';
        }
      }
      return name;
    });

TEST(TableThreeTrend, TighterCapLowersStdevAndRaisesArea) {
  const auto graph = bench::find_benchmark("sin").build();
  const auto base_config = make_config(Strategy::FullEndurance);
  const auto prepared = prepare(graph, base_config);

  std::vector<EnduranceReport> reports;
  for (const std::uint64_t cap : {10u, 20u, 50u, 100u}) {
    reports.push_back(compile_prepared(
        prepared, make_config(Strategy::FullEndurance, cap), "sin"));
  }
  for (std::size_t i = 0; i + 1 < reports.size(); ++i) {
    EXPECT_LE(reports[i].writes.stdev, reports[i + 1].writes.stdev + 1e-9)
        << "cap step " << i;
    EXPECT_GE(reports[i].rrams, reports[i + 1].rrams) << "cap step " << i;
    EXPECT_GE(reports[i].instructions, reports[i + 1].instructions)
        << "cap step " << i;
  }
}

/// Paper Fig. 1: a chain in which every node has exactly one single-fanout
/// child, so the area-greedy compiler keeps overwriting the same cell.
Mig fig1_chain(int length) {
  Mig graph;
  std::vector<mig::Signal> pis;
  for (int i = 0; i < 2 * length + 1; ++i) {
    pis.push_back(graph.create_pi());
  }
  // Multi-fanout side inputs (like nodes with >1 fanout in Fig. 1): they can
  // never serve as in-place destinations.
  auto chain = pis[0];
  for (int i = 0; i < length; ++i) {
    const auto u = pis[1 + 2 * i];
    const auto v = pis[2 + 2 * i];
    chain = graph.create_maj(chain, !u, v);
    // Keep u and v alive via extra fanout.
    graph.create_po(graph.create_and(u, v));
  }
  graph.create_po(chain);
  return graph;
}

TEST(Fig1Scenario, NaiveReuseConcentratesWritesOnOneCell) {
  const auto graph = fig1_chain(12);
  const auto naive = run_pipeline(graph, make_config(Strategy::Naive), "fig1");
  // The chain destination is recycled in place through the whole chain: one
  // cell absorbs on the order of `length` writes.
  EXPECT_GE(naive.writes.max, 12u);
  // The max-write strategy bounds exactly this effect.
  const auto capped = run_pipeline(graph, make_config(Strategy::FullEndurance, 4),
                                   "fig1");
  EXPECT_LE(capped.writes.max, 4u);
  EXPECT_GT(capped.rrams, naive.rrams);
}

/// Paper Fig. 2: node A is consumed only by the root, while B/C-style nodes
/// are consumed immediately — a blocked-RRAM pattern.
Mig fig2_blocked(int width) {
  Mig graph;
  std::vector<mig::Signal> pis;
  for (int i = 0; i < 3 * width; ++i) {
    pis.push_back(graph.create_pi());
  }
  // "A": computed early, consumed only at the very end.
  const auto a = graph.create_maj(pis[0], !pis[1], pis[2]);
  // A ladder of short-lived nodes (B, C, D, E, F ... in the figure).
  auto acc = pis[3];
  for (int i = 1; i < width; ++i) {
    acc = graph.create_maj(acc, !pis[3 * i], pis[3 * i + 1]);
  }
  graph.create_po(graph.create_maj(a, !acc, pis[4]));  // root G
  return graph;
}

TEST(Fig2Scenario, EnduranceSelectionNeverWorsensSpread) {
  const auto graph = fig2_blocked(10);
  const auto config21 =
      PipelineConfig::parse("rewrite=none,select=plim21,alloc=min_write");
  auto config_endurance = config21;
  config_endurance.selection = {"endurance", {}};
  const auto r21 = run_pipeline(graph, config21, "fig2");
  const auto re = run_pipeline(graph, config_endurance, "fig2");
  EXPECT_LE(re.writes.stdev, r21.writes.stdev + 1e-9);
  EXPECT_TRUE(plim::program_matches_mig(re.program, graph.cleanup(), 8, 3));
}

TEST(Lifetime, FullFlowExtendsMiniSuiteLifetimes) {
  // Aggregate lifetime gain across the mini suite (the paper's motivation).
  std::uint64_t naive_total = 0;
  std::uint64_t full_total = 0;
  constexpr std::uint64_t kEndurance = 10'000'000;
  for (const auto& spec : bench::mini_suite()) {
    const auto graph = spec.build();
    const auto naive = run_pipeline(graph, make_config(Strategy::Naive), spec.name);
    const auto full =
        run_pipeline(graph, make_config(Strategy::FullEndurance, 10), spec.name);
    naive_total += estimate_lifetime(naive.writes, kEndurance).executions_to_first_failure;
    full_total += estimate_lifetime(full.writes, kEndurance).executions_to_first_failure;
  }
  EXPECT_GT(full_total, naive_total);
}

}  // namespace
}  // namespace rlim::core
