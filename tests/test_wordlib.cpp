#include <gtest/gtest.h>

#include <vector>

#include "benchmarks/wordlib.hpp"
#include "mig/simulate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::bench {
namespace {

using mig::Mig;

/// Packs per-test integer values into bit-parallel PI words: PI word
/// `offset + i` carries bit i of values[t] in lane t.
void pack(std::vector<std::uint64_t>& pi_values, std::size_t offset, unsigned bits,
          std::span<const std::uint64_t> tests) {
  for (unsigned i = 0; i < bits; ++i) {
    std::uint64_t word = 0;
    for (std::size_t t = 0; t < tests.size(); ++t) {
      word |= ((tests[t] >> i) & 1ULL) << t;
    }
    pi_values[offset + i] = word;
  }
}

/// Reads test-lane t of an integer spread over PO words [offset, offset+bits).
std::uint64_t unpack(std::span<const std::uint64_t> po_values, std::size_t offset,
                     unsigned bits, std::size_t lane) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    value |= ((po_values[offset + i] >> lane) & 1ULL) << i;
  }
  return value;
}

std::vector<std::uint64_t> random_values(std::uint64_t seed, unsigned bits,
                                         std::size_t count = 64) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> values(count);
  const auto mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
  for (auto& value : values) {
    value = rng() & mask;
  }
  // Always include the corners.
  values[0] = 0;
  values[1] = mask;
  return values;
}

TEST(WordLib, AddMatchesIntegerAddition) {
  constexpr unsigned kBits = 12;
  Mig graph;
  WordBuilder builder(graph);
  const auto a = builder.input(kBits, "a");
  const auto b = builder.input(kBits, "b");
  mig::Signal carry = Mig::get_constant(false);
  auto sum = builder.add(a, b, Mig::get_constant(false), &carry);
  sum.push_back(carry);
  builder.output(sum, "s");

  const auto av = random_values(1, kBits);
  const auto bv = random_values(2, kBits);
  std::vector<std::uint64_t> pis(2 * kBits);
  pack(pis, 0, kBits, av);
  pack(pis, kBits, kBits, bv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < av.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, kBits + 1, t), av[t] + bv[t]) << "lane " << t;
  }
}

TEST(WordLib, SubAndBorrow) {
  constexpr unsigned kBits = 10;
  Mig graph;
  WordBuilder builder(graph);
  const auto a = builder.input(kBits, "a");
  const auto b = builder.input(kBits, "b");
  mig::Signal borrow = Mig::get_constant(false);
  const auto diff = builder.sub(a, b, &borrow);
  builder.output(diff, "d");
  graph.create_po(borrow, "bo");

  const auto av = random_values(3, kBits);
  const auto bv = random_values(4, kBits);
  std::vector<std::uint64_t> pis(2 * kBits);
  pack(pis, 0, kBits, av);
  pack(pis, kBits, kBits, bv);
  const auto out = mig::simulate(graph, pis);
  const auto mask = (1ULL << kBits) - 1;
  for (std::size_t t = 0; t < av.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, kBits, t), (av[t] - bv[t]) & mask);
    EXPECT_EQ((out[kBits] >> t) & 1, av[t] < bv[t] ? 1u : 0u);
  }
}

TEST(WordLib, CompareAndEquality) {
  constexpr unsigned kBits = 9;
  Mig graph;
  WordBuilder builder(graph);
  const auto a = builder.input(kBits, "a");
  const auto b = builder.input(kBits, "b");
  graph.create_po(builder.ult(a, b), "lt");
  graph.create_po(builder.eq(a, b), "eq");

  auto av = random_values(5, kBits);
  auto bv = random_values(6, kBits);
  bv[2] = av[2];  // force an equal lane
  std::vector<std::uint64_t> pis(2 * kBits);
  pack(pis, 0, kBits, av);
  pack(pis, kBits, kBits, bv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < av.size(); ++t) {
    EXPECT_EQ((out[0] >> t) & 1, av[t] < bv[t] ? 1u : 0u);
    EXPECT_EQ((out[1] >> t) & 1, av[t] == bv[t] ? 1u : 0u);
  }
}

TEST(WordLib, VariableShifts) {
  constexpr unsigned kBits = 16;
  Mig graph;
  WordBuilder builder(graph);
  const auto data = builder.input(kBits, "d");
  const auto amount = builder.input(4, "sh");
  builder.output(builder.shift_left_var(data, amount), "l");
  builder.output(builder.shift_right_var(data, amount), "r");

  const auto dv = random_values(7, kBits);
  const auto sv = random_values(8, 4);
  std::vector<std::uint64_t> pis(kBits + 4);
  pack(pis, 0, kBits, dv);
  pack(pis, kBits, 4, sv);
  const auto out = mig::simulate(graph, pis);
  const auto mask = (1ULL << kBits) - 1;
  for (std::size_t t = 0; t < dv.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, kBits, t), (dv[t] << sv[t]) & mask);
    EXPECT_EQ(unpack(out, kBits, kBits, t), (dv[t] & mask) >> sv[t]);
  }
}

TEST(WordLib, MultiplierMatchesIntegerProduct) {
  constexpr unsigned kBits = 7;
  Mig graph;
  WordBuilder builder(graph);
  const auto a = builder.input(kBits, "a");
  const auto b = builder.input(kBits, "b");
  builder.output(builder.mul(a, b), "p");

  const auto av = random_values(9, kBits);
  const auto bv = random_values(10, kBits);
  std::vector<std::uint64_t> pis(2 * kBits);
  pack(pis, 0, kBits, av);
  pack(pis, kBits, kBits, bv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < av.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, 2 * kBits, t), av[t] * bv[t]);
  }
}

TEST(WordLib, PopcountMatchesBuiltin) {
  constexpr unsigned kBits = 33;
  Mig graph;
  WordBuilder builder(graph);
  const auto bits = builder.input(kBits, "v");
  const auto count = builder.popcount(bits);
  builder.output(count, "c");

  const auto vv = random_values(11, kBits);
  std::vector<std::uint64_t> pis(kBits);
  pack(pis, 0, kBits, vv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < vv.size(); ++t) {
    EXPECT_EQ(unpack(out, 0, static_cast<unsigned>(count.size()), t),
              static_cast<std::uint64_t>(__builtin_popcountll(vv[t])));
  }
}

TEST(WordLib, LeadingOnePosition) {
  constexpr unsigned kBits = 12;
  Mig graph;
  WordBuilder builder(graph);
  const auto word = builder.input(kBits, "v");
  mig::Signal any = Mig::get_constant(false);
  const auto pos = builder.leading_one_position(word, &any);
  builder.output(pos, "p");
  graph.create_po(any, "any");

  const auto vv = random_values(12, kBits);
  std::vector<std::uint64_t> pis(kBits);
  pack(pis, 0, kBits, vv);
  const auto out = mig::simulate(graph, pis);
  for (std::size_t t = 0; t < vv.size(); ++t) {
    const auto expected =
        vv[t] == 0 ? 0u : 63u - static_cast<unsigned>(__builtin_clzll(vv[t]));
    EXPECT_EQ(unpack(out, 0, static_cast<unsigned>(pos.size()), t), expected);
    EXPECT_EQ((out[pos.size()] >> t) & 1, vv[t] != 0 ? 1u : 0u);
  }
}

TEST(WordLib, ConstantWordAndResize) {
  Mig graph;
  WordBuilder builder(graph);
  const auto word = builder.constant_word(0b1011, 6);
  builder.output(word, "k");
  builder.output(builder.resize(word, 8), "x");
  std::vector<std::uint64_t> pis;
  const auto out = mig::simulate(graph, pis);
  EXPECT_EQ(unpack(out, 0, 6, 0), 0b1011u);
  EXPECT_EQ(unpack(out, 6, 8, 0), 0b1011u);
}

TEST(WordLib, WidthMismatchThrows) {
  Mig graph;
  WordBuilder builder(graph);
  const auto a = builder.input(4, "a");
  const auto b = builder.input(5, "b");
  EXPECT_THROW(builder.add(a, b, Mig::get_constant(false)), Error);
  EXPECT_THROW(builder.mux_word(a[0], a, b), Error);
  EXPECT_THROW(builder.eq(a, b), Error);
}

}  // namespace
}  // namespace rlim::bench
