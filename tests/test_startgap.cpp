#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/startgap.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rlim::core {
namespace {

TEST(StartGap, InitialMappingIsIdentity) {
  StartGapRemapper remapper(8, 100);
  for (std::size_t logical = 0; logical < 8; ++logical) {
    EXPECT_EQ(remapper.physical(logical), logical);
  }
  EXPECT_EQ(remapper.gap_position(), 8u);
  EXPECT_EQ(remapper.num_physical(), 9u);
}

TEST(StartGap, MappingIsAlwaysABijectionSkippingTheGap) {
  StartGapRemapper remapper(16, 3);
  util::Xoshiro256 rng(5);
  for (int step = 0; step < 2000; ++step) {
    remapper.on_write(rng.below(16));
    std::set<std::size_t> seen;
    for (std::size_t logical = 0; logical < 16; ++logical) {
      const auto physical = remapper.physical(logical);
      EXPECT_LT(physical, remapper.num_physical());
      EXPECT_NE(physical, remapper.gap_position());
      seen.insert(physical);
    }
    ASSERT_EQ(seen.size(), 16u) << "mapping not injective at step " << step;
  }
}

TEST(StartGap, GapMovesEveryInterval) {
  StartGapRemapper remapper(4, 10);
  for (int i = 0; i < 9; ++i) {
    remapper.on_write(0);
  }
  EXPECT_EQ(remapper.gap_position(), 4u);
  remapper.on_write(0);  // 10th write triggers the move
  EXPECT_EQ(remapper.gap_position(), 3u);
  EXPECT_EQ(remapper.gap_move_writes(), 1u);
}

TEST(StartGap, StartAdvancesAfterFullRevolution) {
  StartGapRemapper remapper(4, 1);  // gap moves on every write
  EXPECT_EQ(remapper.start(), 0u);
  for (int i = 0; i < 5; ++i) {
    remapper.on_write(0);
  }
  // Gap walked 4 → 3 → 2 → 1 → 0 → 4: start rotated once.
  EXPECT_EQ(remapper.start(), 1u);
  EXPECT_EQ(remapper.gap_position(), 4u);
}

TEST(StartGap, ReplayConservesWrites) {
  std::vector<plim::Cell> trace;
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    trace.push_back(static_cast<plim::Cell>(rng.below(10)));
  }
  const auto counts = replay_with_start_gap(trace, 10, 7);
  ASSERT_EQ(counts.size(), 11u);
  const auto total = std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  // 500 payload writes + one gap-move write per 7 writes.
  EXPECT_EQ(total, 500u + 500u / 7u);
}

TEST(StartGap, SpreadsAHotCell) {
  // Worst case for a static mapping: every write hits logical cell 0.
  std::vector<plim::Cell> trace(2000, 0);
  const auto static_counts = [] {
    std::vector<std::uint64_t> counts(9, 0);
    counts[0] = 2000;
    return counts;
  }();
  const auto leveled = replay_with_start_gap(trace, 8, 8);
  const auto static_stats = util::compute_stats(static_counts);
  const auto leveled_stats = util::compute_stats(leveled);
  EXPECT_LT(leveled_stats.max, static_stats.max);
  EXPECT_LT(leveled_stats.stdev, static_stats.stdev);
}

TEST(StartGap, UniformTrafficIncursOnlyOverhead) {
  std::vector<plim::Cell> trace;
  for (int round = 0; round < 100; ++round) {
    for (plim::Cell cell = 0; cell < 6; ++cell) {
      trace.push_back(cell);
    }
  }
  const auto counts = replay_with_start_gap(trace, 6, 10);
  const auto stats = util::compute_stats(counts);
  // Already-uniform traffic stays roughly uniform under Start-Gap.
  EXPECT_LE(stats.max, 130u);
  EXPECT_GE(stats.min, 70u);
}

TEST(StartGap, ContractViolationsThrow) {
  EXPECT_THROW(StartGapRemapper(0, 1), Error);
  EXPECT_THROW(StartGapRemapper(4, 0), Error);
  StartGapRemapper remapper(4, 1);
  EXPECT_THROW(static_cast<void>(remapper.physical(4)), Error);
  const std::vector<plim::Cell> bad{9};
  EXPECT_THROW(static_cast<void>(replay_with_start_gap(bad, 4, 1)), Error);
}

}  // namespace
}  // namespace rlim::core
