#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/endurance.hpp"
#include "fault/fault.hpp"
#include "fault/sweep.hpp"
#include "sched/deque.hpp"
#include "sched/sched.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim::sched {
namespace {

using namespace std::chrono_literals;

Task plain(std::function<void()> fn, Priority priority = Priority::Normal,
           std::optional<Deadline> deadline = std::nullopt,
           bool child = false) {
  Task task;
  task.fn = std::move(fn);
  task.priority = priority;
  task.deadline = deadline;
  task.child = child;
  return task;
}

/// Pushes a marker-recording task; `log` collects execution order.
Task marker(std::vector<std::string>& log, std::string name,
            Priority priority = Priority::Normal,
            std::optional<Deadline> deadline = std::nullopt,
            bool child = false) {
  return plain([&log, name] { log.push_back(name); }, priority, deadline,
               child);
}

/// Drains a deque with `pop` (owner view) into a name list.
std::vector<std::string> drain_pop(WorkDeque& deque,
                                   std::vector<std::string>& log) {
  while (auto task = deque.pop()) {
    task->fn();
  }
  return log;
}

// ---- WorkDeque ordering -----------------------------------------------------

TEST(SchedDeque, PriorityBandsDrainHighFirst) {
  WorkDeque deque;
  std::vector<std::string> log;
  for (auto* name : {"low", "high", "normal"}) {
    auto task = marker(log, name, parse_priority(name));
    ASSERT_TRUE(deque.push(task));
  }
  EXPECT_EQ(drain_pop(deque, log),
            (std::vector<std::string>{"high", "normal", "low"}));
}

TEST(SchedDeque, ExternalTasksKeepFifoArrivalOrderForOwnerAndThief) {
  std::vector<std::string> log;
  {
    WorkDeque deque;
    for (auto* name : {"a", "b", "c"}) {
      auto task = marker(log, name);
      ASSERT_TRUE(deque.push(task));
    }
    drain_pop(deque, log);
  }
  {
    WorkDeque deque;
    for (auto* name : {"d", "e", "f"}) {
      auto task = marker(log, name);
      ASSERT_TRUE(deque.push(task));
    }
    while (auto task = deque.steal()) {
      task->fn();
    }
  }
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c", "d", "e", "f"}));
}

TEST(SchedDeque, ChildrenPopLifoButStealFifo) {
  std::vector<std::string> log;
  WorkDeque deque;
  for (auto* name : {"first", "second", "third"}) {
    auto task = marker(log, name, Priority::Normal, std::nullopt,
                       /*child=*/true);
    ASSERT_TRUE(deque.push(task));
  }
  auto stolen = deque.steal();  // thief: the oldest fork
  ASSERT_TRUE(stolen.has_value());
  stolen->fn();
  drain_pop(deque, log);  // owner: freshest first
  EXPECT_EQ(log, (std::vector<std::string>{"first", "third", "second"}));
}

TEST(SchedDeque, DeadlinesRunEarliestFirstAndBeatUndatedInBand) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::string> log;
  WorkDeque deque;
  auto undated = marker(log, "undated");
  auto late = marker(log, "late", Priority::Normal, now + 200ms);
  auto soon = marker(log, "soon", Priority::Normal, now + 50ms);
  ASSERT_TRUE(deque.push(undated));
  ASSERT_TRUE(deque.push(late));
  ASSERT_TRUE(deque.push(soon));
  EXPECT_EQ(drain_pop(deque, log),
            (std::vector<std::string>{"soon", "late", "undated"}));
}

TEST(SchedDeque, HigherBandBeatsEarlierDeadline) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::string> log;
  WorkDeque deque;
  auto soon_low = marker(log, "soon-low", Priority::Low, now + 1ms);
  auto high = marker(log, "high", Priority::High);
  ASSERT_TRUE(deque.push(soon_low));
  ASSERT_TRUE(deque.push(high));
  EXPECT_EQ(drain_pop(deque, log),
            (std::vector<std::string>{"high", "soon-low"}));
}

TEST(SchedDeque, BoundedPushRefusesWhenFullAndLeavesTaskIntact) {
  WorkDeque deque(2);
  std::vector<std::string> log;
  auto a = marker(log, "a");
  auto b = marker(log, "b");
  auto c = marker(log, "c");
  ASSERT_TRUE(deque.push(a));
  ASSERT_TRUE(deque.push(b));
  EXPECT_FALSE(deque.push(c));
  ASSERT_TRUE(c.fn != nullptr);  // refused push must not consume the closure
  EXPECT_EQ(deque.size(), 2u);
  ASSERT_TRUE(deque.pop().has_value());
  ASSERT_TRUE(deque.push(c));  // room again
  EXPECT_EQ(deque.size(), 2u);
}

TEST(SchedDeque, ParsePriorityRejectsUnknownNames) {
  EXPECT_EQ(parse_priority("low"), Priority::Low);
  EXPECT_EQ(parse_priority("normal"), Priority::Normal);
  EXPECT_EQ(parse_priority("high"), Priority::High);
  EXPECT_THROW((void)parse_priority("urgent"), Error);
  EXPECT_THROW((void)parse_priority(""), Error);
}

// ---- Scheduler --------------------------------------------------------------

TEST(SchedScheduler, RunsEverySubmittedTask) {
  Scheduler scheduler({.workers = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    scheduler.submit(plain([&] { ran.fetch_add(1); }));
  }
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 100);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.by_priority[static_cast<std::size_t>(Priority::Normal)],
            100u);
}

TEST(SchedScheduler, SubmitAfterShutdownThrows) {
  Scheduler scheduler({.workers = 1});
  scheduler.shutdown();
  EXPECT_THROW(scheduler.submit(plain([] {})), Error);
  scheduler.shutdown();  // idempotent
}

TEST(SchedScheduler, SingleWorkerHonorsPriorityThenDeadlineOrder) {
  Scheduler scheduler({.workers = 1});
  // Pin the only worker inside a task so the queue builds up behind it.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  bool pinned = false;
  scheduler.submit(plain([&] {
    std::unique_lock lock(mutex);
    pinned = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }));
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return pinned; });
  }

  std::vector<std::string> log;  // only the worker thread writes it
  const auto now = std::chrono::steady_clock::now();
  scheduler.submit(marker(log, "low", Priority::Low));
  scheduler.submit(marker(log, "normal-late", Priority::Normal, now + 500ms));
  scheduler.submit(marker(log, "normal"));
  scheduler.submit(marker(log, "normal-soon", Priority::Normal, now + 100ms));
  scheduler.submit(marker(log, "high", Priority::High));
  {
    const std::scoped_lock lock(mutex);
    release = true;
  }
  cv.notify_all();
  scheduler.shutdown();
  EXPECT_EQ(log, (std::vector<std::string>{"high", "normal-soon",
                                           "normal-late", "normal", "low"}));
}

TEST(SchedScheduler, DryWorkerStealsFromLoadedVictim) {
  Scheduler scheduler({.workers = 2});
  // Pin both workers, pile tasks behind them (round-robined over both
  // deques), then release only one pin: the free worker must steal the
  // blocked worker's backlog to finish the batch.
  std::mutex mutex;
  std::condition_variable cv;
  int pinned = 0;
  int release = 0;
  const auto pin = [&] {
    std::unique_lock lock(mutex);
    const int self = ++pinned;
    cv.notify_all();
    cv.wait(lock, [&] { return release >= self; });
  };
  scheduler.submit(plain(pin));
  scheduler.submit(plain(pin));
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return pinned == 2; });
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i) {
    scheduler.submit(plain([&] { ran.fetch_add(1); }));
  }
  {
    const std::scoped_lock lock(mutex);
    release = 1;  // worker A stays pinned; worker B drains everything
  }
  cv.notify_all();
  while (ran.load() < 40) {
    std::this_thread::yield();
  }
  EXPECT_GT(scheduler.stats().stolen, 0u);
  {
    const std::scoped_lock lock(mutex);
    release = 2;
  }
  cv.notify_all();
  scheduler.shutdown();
  EXPECT_EQ(scheduler.stats().executed, 42u);
}

TEST(SchedScheduler, IdleWorkersParkAndWakeForNewWork) {
  Scheduler scheduler({.workers = 2});
  std::atomic<int> ran{0};
  scheduler.submit(plain([&] { ran.fetch_add(1); }));
  while (ran.load() < 1) {
    std::this_thread::yield();
  }
  // The worker has nothing left: it must park rather than spin. Parking is
  // asynchronous, so poll (bounded) for the gauge.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (scheduler.stats().parks == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GT(scheduler.stats().parks, 0u);
  // And a fresh submission must wake it.
  scheduler.submit(plain([&] { ran.fetch_add(1); }));
  const auto wake_deadline = std::chrono::steady_clock::now() + 5s;
  while (ran.load() < 2 && std::chrono::steady_clock::now() < wake_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), 2);
  scheduler.shutdown();
}

TEST(SchedScheduler, TinyDequesSpillToInjectorWithoutLosingTasks) {
  Scheduler scheduler({.workers = 2, .deque_capacity = 2});
  std::mutex mutex;
  std::condition_variable cv;
  int pinned = 0;
  bool release = false;
  const auto pin = [&] {
    std::unique_lock lock(mutex);
    ++pinned;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  scheduler.submit(plain(pin));
  scheduler.submit(plain(pin));
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return pinned == 2; });
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {  // 50 tasks into 2×2 deque slots
    scheduler.submit(plain([&] { ran.fetch_add(1); }));
  }
  EXPECT_GT(scheduler.stats().overflows, 0u);
  {
    const std::scoped_lock lock(mutex);
    release = true;
  }
  cv.notify_all();
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 50);
}

TEST(SchedScheduler, SingleQueueModeStillRunsEverything) {
  Scheduler scheduler({.workers = 2, .single_queue = true});
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    scheduler.submit(plain([&] { ran.fetch_add(1); }));
  }
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(scheduler.stats().executed, 64u);
}

TEST(SchedScheduler, CurrentIsNullOffPoolAndSelfOnWorkers) {
  EXPECT_EQ(Scheduler::current(), nullptr);
  Scheduler scheduler({.workers = 1});
  std::atomic<Scheduler*> seen{nullptr};
  scheduler.submit(plain([&] { seen.store(Scheduler::current()); }));
  scheduler.shutdown();
  EXPECT_EQ(seen.load(), &scheduler);
  EXPECT_EQ(Scheduler::current(), nullptr);
}

// ---- fork-join --------------------------------------------------------------

TEST(SchedForkJoin, OffPoolRunChildrenExecutesInlineInOrder) {
  Scheduler scheduler({.workers = 2});
  std::vector<int> order;  // serial inline: safe to mutate unguarded
  std::vector<std::function<void()>> children;
  for (int i = 0; i < 5; ++i) {
    children.push_back([&order, i] { order.push_back(i); });
  }
  scheduler.run_children(std::move(children));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  // Inline children still count as forked/executed: the gauge tracks
  // run_children traffic, not which thread happened to run it.
  EXPECT_EQ(scheduler.stats().forked, 5u);
  EXPECT_EQ(scheduler.stats().executed, 5u);
}

TEST(SchedForkJoin, OnPoolChildrenAllRunAndParentHelps) {
  Scheduler scheduler({.workers = 2});
  std::atomic<int> ran{0};
  std::atomic<bool> joined{false};
  scheduler.submit(plain([&] {
    std::vector<std::function<void()>> children;
    for (int i = 0; i < 32; ++i) {
      children.push_back([&ran] { ran.fetch_add(1); });
    }
    Scheduler::current()->run_children(std::move(children), Priority::High);
    joined.store(ran.load() == 32);  // join implies every child completed
  }));
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_TRUE(joined.load());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.forked, 32u);
  EXPECT_EQ(stats.by_priority[static_cast<std::size_t>(Priority::High)], 32u);
}

TEST(SchedForkJoin, FirstChildExceptionIsRethrownAtTheJoin) {
  Scheduler scheduler({.workers = 2});
  // Off-pool inline path.
  {
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> children;
    children.push_back([&] { ran.fetch_add(1); });
    children.push_back([] { throw Error("child failed"); });
    children.push_back([&] { ran.fetch_add(1); });
    EXPECT_THROW(scheduler.run_children(std::move(children)), Error);
    EXPECT_EQ(ran.load(), 2);  // siblings still ran
  }
  // On-pool fork-join path: the parent task observes the rethrow.
  std::atomic<bool> caught{false};
  std::atomic<int> ran{0};
  scheduler.submit(plain([&] {
    std::vector<std::function<void()>> children;
    children.push_back([&] { ran.fetch_add(1); });
    children.push_back([] { throw Error("child failed"); });
    children.push_back([&] { ran.fetch_add(1); });
    try {
      Scheduler::current()->run_children(std::move(children));
    } catch (const Error&) {
      caught.store(true);
    }
  }));
  scheduler.shutdown();
  EXPECT_TRUE(caught.load());
  EXPECT_EQ(ran.load(), 2);
}

// ---- parallel fault sweeps --------------------------------------------------

TEST(SchedSweep, ParallelSweepOnPoolMatchesSerialSweepExactly) {
  const auto graph = test::random_mig(61, 8, 60, 4);
  const auto reference = graph.cleanup();
  const auto report = core::run_pipeline(
      graph, core::PipelineConfig::parse("naive"), "t");
  fault::SweepSpec spec;
  spec.enabled = true;
  spec.trials = 16;
  spec.runs = 64;
  spec.seed = 99;
  spec.profile.logic.stuck_rate = 0.01;
  spec.profile.memory.stuck_rate = 0.01;
  spec.profile.endurance = 60;

  // Serial reference: no scheduler on this thread.
  ASSERT_EQ(Scheduler::current(), nullptr);
  const auto serial = fault::run_sweep(report.program, reference, spec);

  // The same sweep from inside a worker forks the trials as children across
  // the pool; the distribution must be byte-identical.
  Scheduler scheduler({.workers = 3});
  std::optional<fault::LifetimeDistribution> parallel;
  scheduler.submit(plain([&] {
    parallel = fault::run_sweep(report.program, reference, spec);
  }));
  scheduler.shutdown();
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(*parallel, serial);
  EXPECT_EQ(scheduler.stats().forked, 16u);
}

}  // namespace
}  // namespace rlim::sched
