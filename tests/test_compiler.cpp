#include <gtest/gtest.h>

#include <vector>

#include "mig/mig.hpp"
#include "mig/simulate.hpp"
#include "plim/compiler.hpp"
#include "plim/controller.hpp"
#include "test_helpers.hpp"

namespace rlim::plim {
namespace {

using mig::Mig;
using mig::Signal;

// ---- translation cost model --------------------------------------------------

TEST(Translation, IdealGateIsOneInstruction) {
  // ⟨a b̄ c⟩: B←b free, A←a free, Z←c in place (last use) — paper's ideal.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  graph.create_po(graph.create_maj(a, !b, c));
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 1u);
  EXPECT_EQ(result.num_cells, 3u);  // only the PI cells
  EXPECT_EQ(result.gate_instructions, 1u);
  EXPECT_EQ(result.overhead_instructions, 0u);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 1));
}

TEST(Translation, AndOrAreSingleInstructions) {
  // ⟨0ab⟩ and ⟨1ab⟩: the constant serves as B for free.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  graph.create_po(graph.create_and(a, b));
  const auto and_result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(and_result.num_instructions(), 1u);
  EXPECT_TRUE(program_matches_mig(and_result.program, graph, 8, 2));

  Mig graph2;
  const auto a2 = graph2.create_pi();
  const auto b2 = graph2.create_pi();
  graph2.create_po(graph2.create_or(a2, b2));
  const auto or_result = PlimCompiler(CompilerOptions{}).compile(graph2);
  EXPECT_EQ(or_result.num_instructions(), 1u);
  EXPECT_TRUE(program_matches_mig(or_result.program, graph2, 8, 3));
}

TEST(Translation, ZeroComplementGateCostsTwoExtra) {
  // ⟨abc⟩ (no complement, no constant): B needs a complement copy.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  graph.create_po(graph.create_maj(a, b, c));
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 3u);  // 2 (complement copy) + 1
  EXPECT_EQ(result.num_cells, 4u);           // 3 PI + 1 temp
  EXPECT_EQ(result.overhead_instructions, 2u);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 4));
}

TEST(Translation, TwoComplementGateCostsTwoExtra) {
  // ⟨ā b̄ c⟩: one complement rides B; the other needs a complement copy.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  graph.create_po(graph.create_maj(!a, !b, c));
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 3u);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 5));
}

TEST(Translation, MultiFanoutDestinationForcesCopy) {
  // Fig. 1 situation: both feasible destinations still have other uses.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  const auto g = graph.create_maj(a, !b, c);
  graph.create_po(g);
  graph.create_po(a);  // `a` has another fanout
  graph.create_po(c);  // `c` too: no free in-place destination
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  // 2 (copy one operand) + 1 (RM3) instructions, one extra cell.
  EXPECT_EQ(result.num_instructions(), 3u);
  EXPECT_EQ(result.num_cells, 4u);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 6));
}

TEST(Translation, ComplementedPoMaterialized) {
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  const auto g = graph.create_maj(a, !b, c);
  graph.create_po(!g);
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 3u);  // gate + 2 inversion
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 7));
}

TEST(Translation, SharedComplementedPoMaterializedOnce) {
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  const auto g = graph.create_maj(a, !b, c);
  graph.create_po(!g, "p");
  graph.create_po(!g, "q");
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 3u);  // inversion shared by both POs
  EXPECT_EQ(result.program.po_cells()[0], result.program.po_cells()[1]);
}

TEST(Translation, ConstantAndPassthroughPos) {
  Mig graph;
  const auto a = graph.create_pi();
  graph.create_pi();
  graph.create_po(Mig::get_constant(true), "one");
  graph.create_po(a, "pass");
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 1u);  // one constant write
  EXPECT_EQ(result.program.po_cells()[1], result.program.pi_cells()[0]);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 4, 8));
}

TEST(Translation, TwoComplementsWithConstantFanin) {
  // ⟨0 ā b̄⟩ (NOR): B absorbs one complement for free, the constant rides A,
  // and the second complement needs a 2-instruction complement copy as Z —
  // 3 instructions total, one temp cell.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  graph.create_po(graph.create_and(!a, !b));
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 3u);
  EXPECT_EQ(result.num_cells, 3u);  // 2 PIs + 1 temp
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 9));
}

TEST(Translation, OrWithLiveOperandsCostsTwoExtra) {
  // ⟨1 a b⟩ (OR) where both a and b have other fanouts: in-place is
  // impossible — the constant rides B, one operand is A, the other is copied
  // into a fresh destination (2 extra instructions, 1 extra cell).
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  graph.create_po(graph.create_or(a, b));
  graph.create_po(a);
  graph.create_po(b);
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.num_instructions(), 3u);
  EXPECT_EQ(result.num_cells, 3u);  // 2 PIs + 1 fresh destination
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 10));
}

// ---- write accounting ---------------------------------------------------------

TEST(Compiler, StaticWriteCountsMatchAllocatorStats) {
  const auto graph = test::random_mig(77, 10, 120, 6);
  for (const auto policy : {AllocPolicy::Lifo, AllocPolicy::MinWrite}) {
    const auto result = PlimCompiler({SelectionPolicy::Plim21, policy, {}}).compile(graph);
    const auto program_stats =
        util::compute_stats(result.program.static_write_counts());
    EXPECT_EQ(program_stats.count, result.write_stats.count);
    EXPECT_EQ(program_stats.min, result.write_stats.min);
    EXPECT_EQ(program_stats.max, result.write_stats.max);
    EXPECT_DOUBLE_EQ(program_stats.stdev, result.write_stats.stdev);
    EXPECT_EQ(program_stats.total, result.num_instructions());
  }
}

TEST(Compiler, InstructionBreakdownSumsToTotal) {
  const auto graph = test::random_mig(31, 9, 90, 5);
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.gate_instructions + result.overhead_instructions,
            result.num_instructions());
}

TEST(Compiler, PiBindingsAreComplete) {
  const auto graph = test::random_mig(5, 12, 40, 4);
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.program.pi_cells().size(), graph.num_pis());
  EXPECT_EQ(result.program.po_cells().size(), graph.num_pos());
}

// ---- functional correctness across all option combinations --------------------

class CompilerCorrectness
    : public ::testing::TestWithParam<
          std::tuple<SelectionPolicy, AllocPolicy, std::uint64_t>> {};

TEST_P(CompilerCorrectness, ProgramComputesTheMigFunction) {
  const auto [selection, allocation, seed] = GetParam();
  const auto graph = test::random_mig(seed, 11, 140, 7);
  const auto result =
      PlimCompiler({selection, allocation, {}}).compile(graph);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 12, seed * 3 + 1))
      << to_string(selection) << " / " << to_string(allocation);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CompilerCorrectness,
    ::testing::Combine(::testing::Values(SelectionPolicy::NaiveOrder,
                                         SelectionPolicy::Plim21,
                                         SelectionPolicy::EnduranceAware),
                       ::testing::Values(AllocPolicy::Lifo, AllocPolicy::Fifo,
                                         AllocPolicy::RoundRobin,
                                         AllocPolicy::MinWrite),
                       ::testing::Values(17, 99, 1234)),
    [](const auto& info) {
      auto name = to_string(std::get<0>(info.param)) + "_" +
                  to_string(std::get<1>(info.param)) + "_" +
                  std::to_string(std::get<2>(info.param));
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

// ---- maximum write count strategy ---------------------------------------------

class MaxWriteCap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxWriteCap, CapIsNeverExceededAndFunctionHolds) {
  const auto cap = GetParam();
  const auto graph = test::random_mig(321, 10, 150, 6);
  CompilerOptions options{SelectionPolicy::EnduranceAware, AllocPolicy::MinWrite,
                          cap};
  const auto result = PlimCompiler(options).compile(graph);
  EXPECT_LE(result.write_stats.max, cap);
  EXPECT_TRUE(program_matches_mig(result.program, graph, 12, cap));
}

INSTANTIATE_TEST_SUITE_P(Caps, MaxWriteCap, ::testing::Values(3, 5, 10, 20, 50));

TEST(MaxWrite, TighterCapCostsMoreCells) {
  const auto graph = test::random_mig(555, 10, 200, 8);
  const auto uncapped =
      PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::MinWrite, {}})
          .compile(graph);
  const auto capped =
      PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::MinWrite, 4})
          .compile(graph);
  EXPECT_GE(capped.num_cells, uncapped.num_cells);
  EXPECT_GE(capped.num_instructions(), uncapped.num_instructions());
  EXPECT_LE(capped.write_stats.max, 4u);
}

TEST(MaxWrite, QuarantinedCellsReported) {
  const auto graph = test::random_mig(777, 8, 150, 6);
  const auto result =
      PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::Lifo, 3}).compile(graph);
  // With the tightest legal cap some cell must saturate on a graph this size.
  EXPECT_GT(result.quarantined_cells, 0u);
}

// ---- endurance strategies actually help (in aggregate) -------------------------

TEST(Endurance, MinWriteLowersStdevOnAverage) {
  double lifo_total = 0.0;
  double min_write_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto graph = test::random_mig(seed * 37, 10, 180, 8);
    lifo_total += PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::Lifo, {}})
                      .compile(graph)
                      .write_stats.stdev;
    min_write_total +=
        PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::MinWrite, {}})
            .compile(graph)
            .write_stats.stdev;
  }
  EXPECT_LT(min_write_total, lifo_total);
}

TEST(Endurance, MinWriteDoesNotChangeCosts) {
  // Paper: "the minimum write count strategy does not influence the number of
  // required instructions and RRAMs."
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto graph = test::random_mig(seed * 11, 9, 120, 6);
    const auto lifo =
        PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::Lifo, {}}).compile(graph);
    const auto min_write =
        PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::MinWrite, {}})
            .compile(graph);
    EXPECT_EQ(lifo.num_instructions(), min_write.num_instructions());
    EXPECT_EQ(lifo.num_cells, min_write.num_cells);
  }
}

TEST(Compiler, DeadGatesAreNotCompiled) {
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  const auto used = graph.create_maj(a, !b, c);
  graph.create_maj(!a, b, c);  // dead
  graph.create_po(used);
  const auto result = PlimCompiler(CompilerOptions{}).compile(graph);
  EXPECT_EQ(result.gate_instructions, 1u);
}

TEST(Compiler, UnusedPiCellsAreReusable) {
  // An unused PI's cell joins the free set; with LIFO it is the first reuse
  // target, so #R does not grow for the temp.
  Mig graph;
  const auto a = graph.create_pi();
  const auto b = graph.create_pi();
  const auto c = graph.create_pi();
  graph.create_pi();  // unused
  graph.create_po(graph.create_maj(a, b, c));  // needs one temp (0 complements)
  const auto result =
      PlimCompiler({SelectionPolicy::Plim21, AllocPolicy::Lifo, {}}).compile(graph);
  EXPECT_EQ(result.num_cells, 4u);  // temp reused the dead PI cell
  EXPECT_TRUE(program_matches_mig(result.program, graph, 8, 11));
}

TEST(Compiler, SelectionPolicyNames) {
  EXPECT_EQ(to_string(SelectionPolicy::NaiveOrder), "naive-order");
  EXPECT_EQ(to_string(SelectionPolicy::Plim21), "plim21");
  EXPECT_EQ(to_string(SelectionPolicy::EnduranceAware), "endurance-aware");
}

TEST(Compiler, FactoryOptionsMatchEnumShorthand) {
  // CompilerOptions built from explicit factories and from the enum-backed
  // shorthand are the same policies — identical programs.
  const auto graph = test::random_mig(77, 9, 80, 4);
  CompilerOptions factory_options;
  factory_options.selector = [] {
    return make_selector(SelectionPolicy::EnduranceAware);
  };
  factory_options.allocator = [] {
    return make_allocator(AllocPolicy::MinWrite);
  };
  const auto via_factories = PlimCompiler(factory_options).compile(graph);
  const auto via_enums =
      PlimCompiler({SelectionPolicy::EnduranceAware, AllocPolicy::MinWrite})
          .compile(graph);
  EXPECT_EQ(via_factories.num_instructions(), via_enums.num_instructions());
  EXPECT_EQ(via_factories.num_cells, via_enums.num_cells);
  EXPECT_DOUBLE_EQ(via_factories.write_stats.stdev,
                   via_enums.write_stats.stdev);
}

TEST(Compiler, NullFactoriesAreRejected) {
  CompilerOptions options;
  options.selector = nullptr;
  EXPECT_THROW(PlimCompiler{options}, Error);
}

TEST(Compiler, WearQuotaSelectorCompilesCorrectPrograms) {
  // The stateful registry-only selector goes through the same contract as
  // the built-ins: every cap honored, function preserved.
  const auto graph = test::random_mig(88, 10, 120, 6);
  for (const auto* quota : {"1", "4", "1000000"}) {
    CompilerOptions options;
    options.selector = [quota] {
      return make_selector(
          util::PolicySpec{"wear_quota", {{"quota", quota}}});
    };
    options.allocator = [] { return make_allocator(AllocPolicy::MinWrite); };
    const auto result = PlimCompiler(options).compile(graph);
    EXPECT_TRUE(program_matches_mig(result.program, graph, 10, 3))
        << "quota " << quota;
  }
}

TEST(Compiler, HugeWearQuotaMatchesEnduranceAware) {
  // A quota no level can exhaust never rotates: the schedule degenerates to
  // Algorithm 3 exactly.
  const auto graph = test::random_mig(99, 10, 120, 6);
  CompilerOptions quota_options;
  quota_options.selector = [] {
    return make_selector(
        util::PolicySpec{"wear_quota", {{"quota", "1000000"}}});
  };
  quota_options.allocator = [] { return make_allocator(AllocPolicy::MinWrite); };
  const auto quota = PlimCompiler(quota_options).compile(graph);
  const auto endurance =
      PlimCompiler({SelectionPolicy::EnduranceAware, AllocPolicy::MinWrite})
          .compile(graph);
  EXPECT_EQ(quota.num_instructions(), endurance.num_instructions());
  EXPECT_DOUBLE_EQ(quota.write_stats.stdev, endurance.write_stats.stdev);
}

}  // namespace
}  // namespace rlim::plim
