#include <gtest/gtest.h>

#include <vector>

#include "mig/mig.hpp"
#include "mig/simulate.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim::mig {
namespace {

TEST(Simulate, MajorityWord) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  mig.create_po(mig.create_maj(a, b, c));
  const std::vector<std::uint64_t> pis{0b0011, 0b0101, 0b0110};
  const auto out = simulate(mig, pis);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0] & 0xF, 0b0111u);
}

TEST(Simulate, ComplementedEdgesAndPo) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  mig.create_po(!mig.create_and(!a, b));  // ¬(¬a ∧ b) = a ∨ ¬b
  const std::vector<std::uint64_t> pis{0b0101, 0b0011};
  const auto out = simulate(mig, pis);
  EXPECT_EQ(out[0] & 0xF, 0b1101u);
}

TEST(Simulate, ConstantPo) {
  Mig mig;
  mig.create_pi();
  mig.create_po(Mig::get_constant(true));
  mig.create_po(Mig::get_constant(false));
  const std::vector<std::uint64_t> pis{0xdeadbeef};
  const auto out = simulate(mig, pis);
  EXPECT_EQ(out[0], ~0ULL);
  EXPECT_EQ(out[1], 0ULL);
}

TEST(Simulate, PiCountMismatchThrows) {
  Mig mig;
  mig.create_pi();
  mig.create_pi();
  const std::vector<std::uint64_t> wrong{1};
  EXPECT_THROW(simulate(mig, wrong), Error);
}

TEST(Simulate, ExhaustivePatternsLowVariables) {
  EXPECT_EQ(exhaustive_pattern(0, 0), 0xaaaaaaaaaaaaaaaaULL);
  EXPECT_EQ(exhaustive_pattern(1, 0), 0xccccccccccccccccULL);
  EXPECT_EQ(exhaustive_pattern(5, 0), 0xffffffff00000000ULL);
}

TEST(Simulate, ExhaustivePatternsHighVariablesFollowChunk) {
  EXPECT_EQ(exhaustive_pattern(6, 0), 0ULL);
  EXPECT_EQ(exhaustive_pattern(6, 1), ~0ULL);
  EXPECT_EQ(exhaustive_pattern(7, 1), 0ULL);
  EXPECT_EQ(exhaustive_pattern(7, 2), ~0ULL);
}

TEST(Simulate, EquivalentExhaustiveDetectsEquality) {
  // a∧b built two different ways.
  Mig x;
  {
    const auto a = x.create_pi();
    const auto b = x.create_pi();
    x.create_po(x.create_and(a, b));
  }
  Mig y;
  {
    const auto a = y.create_pi();
    const auto b = y.create_pi();
    // ¬(¬a ∨ ¬b)
    y.create_po(!y.create_or(!a, !b));
  }
  EXPECT_TRUE(equivalent_exhaustive(x, y));
}

TEST(Simulate, EquivalentExhaustiveDetectsInequality) {
  Mig x;
  {
    const auto a = x.create_pi();
    const auto b = x.create_pi();
    x.create_po(x.create_and(a, b));
  }
  Mig y;
  {
    const auto a = y.create_pi();
    const auto b = y.create_pi();
    y.create_po(y.create_or(a, b));
  }
  EXPECT_FALSE(equivalent_exhaustive(x, y));
}

TEST(Simulate, EquivalentExhaustiveAboveSixPis) {
  // 8-PI parity vs itself restructured.
  Mig x;
  Mig y;
  {
    std::vector<Signal> pis;
    for (int i = 0; i < 8; ++i) pis.push_back(x.create_pi());
    auto acc = pis[0];
    for (int i = 1; i < 8; ++i) acc = x.create_xor(acc, pis[i]);
    x.create_po(acc);
  }
  {
    std::vector<Signal> pis;
    for (int i = 0; i < 8; ++i) pis.push_back(y.create_pi());
    // Tree-shaped parity.
    auto l1 = y.create_xor(pis[0], pis[1]);
    auto l2 = y.create_xor(pis[2], pis[3]);
    auto l3 = y.create_xor(pis[4], pis[5]);
    auto l4 = y.create_xor(pis[6], pis[7]);
    y.create_po(y.create_xor(y.create_xor(l1, l2), y.create_xor(l3, l4)));
  }
  EXPECT_TRUE(equivalent_exhaustive(x, y));
}

TEST(Simulate, EquivalentExhaustiveProfileMismatch) {
  Mig x;
  x.create_pi();
  x.create_po(Mig::get_constant(false));
  Mig y;
  y.create_pi();
  y.create_pi();
  y.create_po(Mig::get_constant(false));
  EXPECT_FALSE(equivalent_exhaustive(x, y));
}

TEST(Simulate, EquivalentExhaustiveTooManyPisThrows) {
  Mig x = test::random_mig(3, 20, 30, 2);
  Mig y = test::random_mig(3, 20, 30, 2);
  EXPECT_THROW(equivalent_exhaustive(x, y, 16), Error);
}

TEST(Simulate, EquivalentRandomSelfConsistency) {
  const auto mig = test::random_mig(11, 12, 60, 4);
  EXPECT_TRUE(equivalent_random(mig, mig, 8, 99));
  const auto cleaned = mig.cleanup();
  EXPECT_TRUE(equivalent_random(mig, cleaned, 8, 99));
}

TEST(Simulate, SignatureIsDeterministicAndSensitive) {
  const auto mig = test::random_mig(5, 10, 40, 3);
  EXPECT_EQ(simulation_signature(mig, 4, 7), simulation_signature(mig, 4, 7));
  Mig other = test::random_mig(6, 10, 40, 3);
  EXPECT_NE(simulation_signature(mig, 4, 7), simulation_signature(other, 4, 7));
}

TEST(Simulate, TruthTableRequiresSmallGraph) {
  const auto mig = test::random_mig(2, 7, 10, 1);
  EXPECT_THROW(truth_table(mig, 0), Error);
}

TEST(Simulate, SimulateNodesExposesInternalValues) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto g = mig.create_and(a, b);
  mig.create_po(g);
  const std::vector<std::uint64_t> pis{0b01, 0b11};
  const auto values = simulate_nodes(mig, pis);
  EXPECT_EQ(values[a.index()] & 3, 0b01u);
  EXPECT_EQ(values[g.index()] & 3, 0b01u);
}

}  // namespace
}  // namespace rlim::mig
