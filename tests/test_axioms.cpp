#include <gtest/gtest.h>

#include "mig/axioms.hpp"
#include "mig/mig.hpp"
#include "mig/simulate.hpp"
#include "test_helpers.hpp"

namespace rlim::mig {
namespace {

// ---- targeted structural tests ----------------------------------------------

TEST(PassMajority, RemovesDeadAndMergesDuplicates) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto g = mig.create_maj(a, b, c);
  mig.create_maj(!a, b, c);  // dead gate
  mig.create_po(g);
  const auto result = pass_majority(mig);
  EXPECT_EQ(result.mig.num_gates(), 1u);
  EXPECT_EQ(result.applications, 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

TEST(PassDistributivity, FusesSharedPairChildren) {
  // ⟨⟨xyu⟩⟨xyv⟩z⟩ → ⟨xy⟨uvz⟩⟩: 3 gates → 2 gates.
  Mig mig;
  const auto x = mig.create_pi();
  const auto y = mig.create_pi();
  const auto u = mig.create_pi();
  const auto v = mig.create_pi();
  const auto z = mig.create_pi();
  const auto g1 = mig.create_maj(x, y, u);
  const auto g2 = mig.create_maj(x, y, v);
  mig.create_po(mig.create_maj(g1, g2, z));
  const auto result = pass_distributivity_rl(mig);
  EXPECT_EQ(result.applications, 1u);
  EXPECT_EQ(result.mig.num_gates(), 2u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

TEST(PassDistributivity, FusesComplementedChildPair) {
  // ⟨¬⟨xyu⟩ ¬⟨xyv⟩ z⟩ — effective fanins share {x̄,ȳ}.
  Mig mig;
  const auto x = mig.create_pi();
  const auto y = mig.create_pi();
  const auto u = mig.create_pi();
  const auto v = mig.create_pi();
  const auto z = mig.create_pi();
  const auto g1 = mig.create_maj(x, y, u);
  const auto g2 = mig.create_maj(x, y, v);
  mig.create_po(mig.create_maj(!g1, !g2, z));
  const auto result = pass_distributivity_rl(mig);
  EXPECT_EQ(result.applications, 1u);
  EXPECT_EQ(result.mig.num_gates(), 2u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

TEST(PassDistributivity, SkipsMultiFanoutChildren) {
  Mig mig;
  const auto x = mig.create_pi();
  const auto y = mig.create_pi();
  const auto u = mig.create_pi();
  const auto v = mig.create_pi();
  const auto z = mig.create_pi();
  const auto g1 = mig.create_maj(x, y, u);
  const auto g2 = mig.create_maj(x, y, v);
  mig.create_po(mig.create_maj(g1, g2, z));
  mig.create_po(g1);  // g1 now has two fanouts — fusing would duplicate logic
  const auto result = pass_distributivity_rl(mig);
  EXPECT_EQ(result.applications, 0u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

TEST(PassDistributivity, SkipsMixedPolarityChildren) {
  Mig mig;
  const auto x = mig.create_pi();
  const auto y = mig.create_pi();
  const auto u = mig.create_pi();
  const auto v = mig.create_pi();
  const auto z = mig.create_pi();
  const auto g1 = mig.create_maj(x, y, u);
  const auto g2 = mig.create_maj(x, y, v);
  mig.create_po(mig.create_maj(g1, !g2, z));
  const auto result = pass_distributivity_rl(mig);
  EXPECT_EQ(result.applications, 0u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

TEST(PassAssociativity, SwapEnablesSimplification) {
  // ⟨x u ⟨x u z⟩⟩: swapping x↔z gives inner ⟨x u x⟩ = x, so one gate remains.
  Mig mig;
  const auto x = mig.create_pi();
  const auto u = mig.create_pi();
  const auto z = mig.create_pi();
  const auto inner = mig.create_maj(x, u, z);
  mig.create_po(mig.create_maj(x, u, inner));
  const auto result = pass_associativity(mig);
  EXPECT_GE(result.applications, 1u);
  EXPECT_EQ(result.mig.num_gates(), 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

TEST(PassAssociativity, NoSwapWithoutBenefit) {
  Mig mig;
  const auto x = mig.create_pi();
  const auto u = mig.create_pi();
  const auto y = mig.create_pi();
  const auto z = mig.create_pi();
  const auto inner = mig.create_maj(y, u, z);
  mig.create_po(mig.create_maj(x, u, inner));
  const auto result = pass_associativity(mig);
  EXPECT_EQ(result.applications, 0u);
  EXPECT_EQ(result.mig.num_gates(), 2u);
}

TEST(PassCompAssoc, ReplacesComplementOfOuterFanin) {
  // Ψ.C: ⟨x u ⟨y x̄ z⟩⟩ = ⟨x u ⟨y u z⟩⟩ — fires because the inner
  // complemented-edge count drops.
  Mig mig;
  const auto x = mig.create_pi();
  const auto u = mig.create_pi();
  const auto y = mig.create_pi();
  const auto z = mig.create_pi();
  const auto inner = mig.create_maj(y, !x, z);
  mig.create_po(mig.create_maj(x, u, inner));
  const auto result = pass_comp_assoc(mig);
  EXPECT_EQ(result.applications, 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
  // The rewritten inner gate has no complemented fanin.
  const auto& out = result.mig;
  for (std::uint32_t gate = out.first_gate(); gate < out.num_nodes(); ++gate) {
    EXPECT_LE(out.complement_count(gate), 0);
  }
}

TEST(PassCompAssoc, IdentityVerifiedExhaustively) {
  // Direct truth check of the corrected Ψ.C identity on all 16 assignments.
  Mig lhs;
  {
    const auto x = lhs.create_pi();
    const auto u = lhs.create_pi();
    const auto y = lhs.create_pi();
    const auto z = lhs.create_pi();
    lhs.create_po(lhs.create_maj(x, u, lhs.create_maj(y, !x, z)));
  }
  Mig rhs;
  {
    const auto x = rhs.create_pi();
    const auto u = rhs.create_pi();
    const auto y = rhs.create_pi();
    const auto z = rhs.create_pi();
    rhs.create_po(rhs.create_maj(x, u, rhs.create_maj(y, u, z)));
  }
  EXPECT_TRUE(equivalent_exhaustive(lhs, rhs));
}

TEST(PassInvReduce, NormalizesTwoAndThreeComplementGates) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto two = mig.create_maj(!a, !b, c);
  const auto three = mig.create_maj(!a, !b, !c);
  mig.create_po(two);
  mig.create_po(three);
  const auto result = pass_inv_reduce(mig);
  EXPECT_EQ(result.applications, 2u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
  for (std::uint32_t gate = result.mig.first_gate(); gate < result.mig.num_nodes();
       ++gate) {
    EXPECT_LE(result.mig.complement_count(gate), 1);
  }
}

TEST(PassInvReduce, CascadesThroughParents) {
  // Flipping a child can push a parent to >= 2 complements; the pass handles
  // this within one sweep because parents see remapped fanins.
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto d = mig.create_pi();
  const auto child = mig.create_maj(!a, !b, c);   // will flip
  const auto parent = mig.create_maj(child, !d, a);  // child flip adds a complement
  mig.create_po(parent);
  const auto result = pass_inv_reduce(mig);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
  for (std::uint32_t gate = result.mig.first_gate(); gate < result.mig.num_nodes();
       ++gate) {
    EXPECT_LE(result.mig.complement_count(gate), 1);
  }
}

TEST(PassInvThree, OnlyFullyComplementedGatesFlip) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  const auto c = mig.create_pi();
  const auto two = mig.create_maj(!a, !b, c);
  const auto three = mig.create_maj(!a, !b, !c);
  mig.create_po(two);
  mig.create_po(three);
  const auto result = pass_inv_three(mig);
  EXPECT_EQ(result.applications, 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
  bool saw_two_complement = false;
  for (std::uint32_t gate = result.mig.first_gate(); gate < result.mig.num_nodes();
       ++gate) {
    EXPECT_LE(result.mig.complement_count(gate), 2);
    saw_two_complement |= result.mig.complement_count(gate) == 2;
  }
  EXPECT_TRUE(saw_two_complement);  // the 2-complement gate is untouched
}

TEST(PassInvReduce, ConstantFaninsExcludedFromCount) {
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  // ⟨1 ā b⟩ has one non-constant complement: already ideal, must not flip.
  const auto g = mig.create_maj(Mig::get_constant(true), !a, b);
  mig.create_po(g);
  const auto result = pass_inv_reduce(mig);
  EXPECT_EQ(result.applications, 0u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
}

// ---- property tests: every pass preserves the function ----------------------

using PassFn = PassResult (*)(const Mig&);

struct NamedPass {
  const char* name;
  PassFn fn;
};

class AxiomPreservation
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

const NamedPass kPasses[] = {
    {"majority", pass_majority},
    {"distributivity_rl", pass_distributivity_rl},
    {"associativity", pass_associativity},
    {"comp_assoc", pass_comp_assoc},
    {"inv_reduce", pass_inv_reduce},
    {"inv_three", pass_inv_three},
};

TEST_P(AxiomPreservation, RandomGraphsKeepTheirFunction) {
  const auto [pass_index, seed] = GetParam();
  const auto& pass = kPasses[pass_index];
  const auto mig = test::random_mig(seed, 10, 80, 5);
  const auto result = pass.fn(mig);
  EXPECT_TRUE(equivalent_random(mig, result.mig, 16, seed * 31 + 1))
      << "pass " << pass.name << " broke the function (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllPassesManySeeds, AxiomPreservation,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89)),
    [](const auto& info) {
      return std::string(kPasses[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class AxiomPreservationDense
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AxiomPreservationDense, ChainedPassesKeepFunctionOnDenseGraphs) {
  const auto seed = GetParam();
  auto mig = test::random_mig(seed, 8, 200, 8);
  auto current = mig.cleanup();
  for (const auto& pass : kPasses) {
    auto result = pass.fn(current);
    current = std::move(result.mig);
  }
  EXPECT_TRUE(equivalent_random(mig, current, 16, seed + 1000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomPreservationDense,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST(PassInvariant, InvReduceLeavesAtMostOneComplementEverywhere) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto mig = test::random_mig(seed * 7, 9, 120, 6);
    const auto result = pass_inv_reduce(mig);
    for (std::uint32_t gate = result.mig.first_gate();
         gate < result.mig.num_nodes(); ++gate) {
      ASSERT_LE(result.mig.complement_count(gate), 1)
          << "seed " << seed << " gate " << gate;
    }
  }
}

TEST(PassInvariant, PassesNeverIncreaseGateCountExceptAssocFlavors) {
  // Ω.M, Ω.D(R→L), and the Ω.I flips never add gates.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto mig = test::random_mig(seed * 13, 9, 100, 6);
    const auto base = mig.cleanup().num_gates();
    EXPECT_LE(pass_majority(mig).mig.num_gates(), base);
    EXPECT_LE(pass_distributivity_rl(mig).mig.num_gates(), base);
    EXPECT_LE(pass_inv_reduce(mig).mig.num_gates(), base);
    EXPECT_LE(pass_inv_three(mig).mig.num_gates(), base);
  }
}

}  // namespace
}  // namespace rlim::mig
