#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "util/codec.hpp"
#include "util/mmap_file.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/registry.hpp"
#include "util/rng.hpp"
#include "util/spec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rlim::util {
namespace {

TEST(Stats, EmptyInputYieldsZeros) {
  const auto stats = compute_stats({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 0u);
  EXPECT_DOUBLE_EQ(stats.stdev, 0.0);
}

TEST(Stats, SingleValue) {
  const std::vector<std::uint64_t> writes{7};
  const auto stats = compute_stats(writes);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.min, 7u);
  EXPECT_EQ(stats.max, 7u);
  EXPECT_DOUBLE_EQ(stats.mean, 7.0);
  EXPECT_DOUBLE_EQ(stats.stdev, 0.0);
}

TEST(Stats, KnownPopulationStdev) {
  // Population stdev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
  const std::vector<std::uint64_t> writes{2, 4, 4, 4, 5, 5, 7, 9};
  const auto stats = compute_stats(writes);
  EXPECT_EQ(stats.min, 2u);
  EXPECT_EQ(stats.max, 9u);
  EXPECT_EQ(stats.total, 40u);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.stdev, 2.0);
}

TEST(Stats, UniformDistributionHasZeroStdev) {
  const std::vector<std::uint64_t> writes(100, 13);
  EXPECT_DOUBLE_EQ(compute_stats(writes).stdev, 0.0);
}

TEST(Stats, ImprovementPercentMatchesPaperConvention) {
  // Paper Table I: naive 12.60 -> 6.09 is a 51.66% improvement.
  EXPECT_NEAR(improvement_percent(12.60, 6.09), 51.67, 0.01);
  // Worsening yields a negative improvement (paper: div -86.69%).
  EXPECT_LT(improvement_percent(121.98, 227.73), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(10.0, 0.0), 100.0);
}

TEST(Stats, HistogramBucketsCoverRange) {
  const std::vector<std::uint64_t> writes{0, 1, 2, 3, 4, 5, 6, 7};
  const auto bins = histogram(writes, 4);
  ASSERT_EQ(bins.size(), 4u);
  for (const auto bin : bins) {
    EXPECT_EQ(bin, 2u);
  }
}

TEST(Stats, HistogramAllZeroWrites) {
  const std::vector<std::uint64_t> writes(10, 0);
  const auto bins = histogram(writes, 4);
  EXPECT_EQ(bins[0], 10u);
  EXPECT_EQ(bins[1] + bins[2] + bins[3], 0u);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t state = 0;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
}

TEST(Table, RendersHeaderAndRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fixed(12.6, 2), "12.60");
  EXPECT_EQ(Table::percent(86.65), "86.65%");
  EXPECT_EQ(Table::fixed(-0.5, 1), "-0.5");
}

TEST(Hash, Fnv1a64KnownVectors) {
  // Reference values of the canonical FNV-1a 64-bit function.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, IntegerUpdatesAreByteOrderIndependent) {
  // u32/u64 hash their little-endian byte sequences.
  EXPECT_EQ(Fnv1a64().u32(0x01020304u).digest(),
            Fnv1a64().bytes("\x04\x03\x02\x01", 4).digest());
  EXPECT_EQ(Fnv1a64().u64(0x0102030405060708ULL).digest(),
            Fnv1a64().bytes("\x08\x07\x06\x05\x04\x03\x02\x01", 8).digest());
}

TEST(Hash, StreamingMatchesOneShot) {
  EXPECT_EQ(Fnv1a64().str("foo").str("bar").digest(), fnv1a64("foobar"));
}

TEST(Error, RequirePassesAndThrows) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "boom"), Error);
  try {
    require(false, "specific message");
    FAIL();
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("specific message"), std::string::npos);
  }
}

TEST(Spec, CanonicalSortsParamsAndRoundTrips) {
  const PolicySpec spec{"start_gap", {{"interval", "8"}}};
  EXPECT_EQ(spec.canonical(), "start_gap:interval=8");
  EXPECT_EQ(PolicySpec::parse(spec.canonical()), spec);

  // std::map keeps parameters sorted whatever the input order.
  const auto multi = PolicySpec::parse("key:zeta=1:alpha=2");
  EXPECT_EQ(multi.canonical(), "key:alpha=2:zeta=1");
  EXPECT_EQ(PolicySpec::parse(multi.canonical()), multi);

  const auto bare = PolicySpec::parse("lifo");
  EXPECT_EQ(bare.key, "lifo");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.canonical(), "lifo");
}

TEST(Spec, ParseRejectsMalformedText) {
  EXPECT_THROW(static_cast<void>(PolicySpec::parse("")), Error);
  EXPECT_THROW(static_cast<void>(PolicySpec::parse("Bad-Key")), Error);
  EXPECT_THROW(static_cast<void>(PolicySpec::parse("key:paramonly")), Error);
  EXPECT_THROW(static_cast<void>(PolicySpec::parse("key:=value")), Error);
  EXPECT_THROW(static_cast<void>(PolicySpec::parse(":p=v")), Error);
  // Duplicate parameters are hard errors, mirroring the config grammar's
  // duplicate-clause check.
  EXPECT_THROW(static_cast<void>(PolicySpec::parse("key:p=1:p=2")), Error);
}

TEST(Spec, TypedParamAccessors) {
  const Params params{{"interval", "16"}, {"effort", "-2"}, {"bad", "12x"}};
  EXPECT_EQ(param_u64(params, "interval"), 16u);
  EXPECT_EQ(param_int(params, "effort"), -2);
  EXPECT_THROW(static_cast<void>(param_u64(params, "missing")), Error);
  EXPECT_THROW(static_cast<void>(param_u64(params, "bad")), Error);
  EXPECT_THROW(static_cast<void>(param_u64(params, "effort")), Error);
}

TEST(Registry, NormalizeFillsDefaultsAndRejectsUnknowns) {
  Registry<int (*)(const Params&)> registry("thing");
  registry.add({"alpha", "first", {{"knob", "7", "a knob"}}},
               [](const Params& params) {
                 return static_cast<int>(param_u64(params, "knob"));
               });
  const auto normalized = registry.normalize({"alpha", {}});
  EXPECT_EQ(normalized.canonical(), "alpha:knob=7");
  EXPECT_EQ(registry.make({"alpha", {{"knob", "9"}}}), 9);
  EXPECT_THROW(static_cast<void>(registry.normalize({"alpha", {{"x", "1"}}})),
               Error);
  EXPECT_THROW(static_cast<void>(registry.normalize({"beta", {}})), Error);
  EXPECT_THROW(registry.add({"alpha", "dup", {}}, nullptr), Error);
  EXPECT_THROW(registry.add({"Bad Key", "", {}}, nullptr), Error);
}

// ---- binary codec -----------------------------------------------------------

TEST(Codec, RoundTripsEveryFieldType) {
  ByteWriter out;
  out.u8(0xab)
      .u32(0xdeadbeef)
      .u64(0x0123456789abcdefULL)
      .f64(-3.25e-7)
      .str("hello\0world")  // embedded NUL stops here, as string literals do
      .str("")
      .raw("tail");
  ByteReader in(out.bytes());
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.f64(), -3.25e-7);
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.str(), "");
  EXPECT_EQ(in.remaining(), 4u);
}

TEST(Codec, EncodingIsLittleEndianBytes) {
  // The format is defined byte by byte, independent of the host: a reader
  // on any machine must see these exact bytes.
  ByteWriter out;
  out.u32(0x01020304);
  const auto& bytes = out.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(Codec, TruncatedReadsThrow) {
  ByteWriter out;
  out.u32(7);
  ByteReader in(out.bytes());
  EXPECT_THROW(static_cast<void>(in.u64()), Error);

  // A string whose length prefix promises more bytes than exist.
  ByteWriter lying;
  lying.u32(1000).raw("short");
  ByteReader liar(lying.bytes());
  EXPECT_THROW(static_cast<void>(liar.str()), Error);
}

TEST(Codec, ExpectEndRejectsTrailingBytes) {
  ByteWriter out;
  out.u8(1).u8(2);
  ByteReader in(out.bytes());
  EXPECT_EQ(in.u8(), 1u);
  EXPECT_THROW(in.expect_end(), Error);
  EXPECT_EQ(in.u8(), 2u);
  in.expect_end();
  EXPECT_TRUE(in.exhausted());
}

TEST(Codec, BulkU32ArrayRoundTripsAndBoundsChecks) {
  const std::vector<std::uint32_t> values{0, 1, 0x01020304, 0xffffffffu};
  ByteWriter out;
  out.u32_array(values.data(), values.size());
  ASSERT_EQ(out.size(), 16u);
  // Bulk writes produce the same little-endian bytes as element writes.
  ByteWriter scalar;
  for (const auto v : values) scalar.u32(v);
  EXPECT_EQ(out.bytes(), scalar.bytes());

  std::vector<std::uint32_t> back(values.size());
  ByteReader in(out.bytes());
  in.u32_array(back.data(), back.size());
  EXPECT_EQ(back, values);
  in.expect_end();

  // Reading one element more than was written must throw, not over-read.
  ByteReader short_read(out.bytes());
  std::vector<std::uint32_t> too_many(values.size() + 1);
  EXPECT_THROW(short_read.u32_array(too_many.data(), too_many.size()), Error);
}

TEST(Codec, HostileArrayCountDoesNotOverflow) {
  // count * 4 would wrap in 32-bit (and even size_t) arithmetic if the
  // bounds check were written naively; the reader must reject it outright.
  ByteWriter out;
  out.u32(1).u32(2);
  ByteReader in(out.bytes());
  std::array<std::uint32_t, 1> sink{};
  EXPECT_THROW(
      in.u32_array(sink.data(), std::numeric_limits<std::size_t>::max() / 2),
      Error);
  // The failed bulk read consumed nothing.
  EXPECT_EQ(in.remaining(), 8u);
}

TEST(Codec, ViewAndStrViewAreZeroCopy) {
  ByteWriter out;
  out.str("payload").raw("xy");
  ByteReader in(out.bytes());
  const auto sv = in.str_view();
  EXPECT_EQ(sv, "payload");
  // The view aliases the writer's buffer — no copy was made.
  EXPECT_GE(sv.data(), out.bytes().data());
  EXPECT_LT(sv.data(), out.bytes().data() + out.bytes().size());
  EXPECT_EQ(in.view(2), "xy");
  EXPECT_THROW(static_cast<void>(in.view(1)), Error);
}

TEST(Codec, UnderflowErrorsReportWhatAndWhere) {
  ByteWriter out;
  out.u8(1);
  ByteReader in(out.bytes());
  in.skip(1);
  try {
    static_cast<void>(in.u64());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string_view what = e.what();
    EXPECT_NE(what.find("u64"), std::string_view::npos) << what;
    EXPECT_NE(what.find("8"), std::string_view::npos) << what;
  }
}

TEST(Codec, PatchU32BackfillsLengthPrefix) {
  ByteWriter out;
  out.u8(0xcc);
  const auto at = out.size();
  out.u32(0);  // placeholder
  out.raw("abcdef");
  out.patch_u32(at, static_cast<std::uint32_t>(out.size() - at - 4));
  ByteReader in(out.bytes());
  EXPECT_EQ(in.u8(), 0xcc);
  EXPECT_EQ(in.u32(), 6u);
  EXPECT_EQ(in.view(6), "abcdef");
  // Patching outside the written range is a bug, not a silent resize.
  EXPECT_THROW(out.patch_u32(out.size() - 3, 0), Error);
}

TEST(Codec, RecycledWriterReusesCapacityAndStartsEmpty) {
  ByteWriter first;
  first.raw(std::string(4096, 'z'));
  auto storage = first.take();
  const auto* data = storage.data();
  ByteWriter second(std::move(storage));
  EXPECT_EQ(second.size(), 0u);
  second.u32(42);
  EXPECT_EQ(second.bytes().data(), data);  // same heap block, no realloc
}

TEST(MmapFileTest, MapsWholeFileAndCloses) {
  const auto path = std::filesystem::path(::testing::TempDir()) / "mmap_probe.bin";
  const std::string payload = "rlim mmap probe\n";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << payload;
  }
  MmapFile file;
  ASSERT_TRUE(file.open(path));
  EXPECT_TRUE(file.is_open());
  EXPECT_EQ(file.bytes(), payload);
  EXPECT_EQ(file.is_mapped(), MmapFile::mmap_enabled());
  file.close();
  EXPECT_FALSE(file.is_open());
  EXPECT_TRUE(file.bytes().empty());
}

TEST(MmapFileTest, MissingFileIsAMissNotAnError) {
  MmapFile file;
  EXPECT_FALSE(file.open(std::filesystem::path(::testing::TempDir()) /
                         "does_not_exist.bin"));
  EXPECT_FALSE(file.is_open());
}

TEST(MmapFileTest, MoveTransfersTheView) {
  const auto path = std::filesystem::path(::testing::TempDir()) / "mmap_move.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "abc";
  }
  MmapFile a;
  ASSERT_TRUE(a.open(path));
  MmapFile b = std::move(a);
  EXPECT_FALSE(a.is_open());
  EXPECT_EQ(b.bytes(), "abc");
}

TEST(Codec, DoublesSurviveBitExactly) {
  for (const double value : {0.0, -0.0, 1.0 / 3.0, 6.02214076e23,
                             std::numeric_limits<double>::infinity()}) {
    ByteWriter out;
    out.f64(value);
    ByteReader in(out.bytes());
    const auto back = in.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(value));
  }
}

}  // namespace
}  // namespace rlim::util
