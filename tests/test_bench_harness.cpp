#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_common.hpp"
#include "benchmarks/suite.hpp"

namespace rlim::benchharness {
namespace {

/// Sets RLIM_SUITE for the duration of one test and restores the previous
/// value afterwards, so tests do not leak state into each other.
class SuiteEnvGuard {
 public:
  explicit SuiteEnvGuard(const char* value) {
    const char* previous = std::getenv("RLIM_SUITE");
    had_previous_ = previous != nullptr;
    if (had_previous_) {
      previous_ = previous;
    }
    if (value != nullptr) {
      ::setenv("RLIM_SUITE", value, 1);
    } else {
      ::unsetenv("RLIM_SUITE");
    }
  }

  ~SuiteEnvGuard() {
    if (had_previous_) {
      ::setenv("RLIM_SUITE", previous_.c_str(), 1);
    } else {
      ::unsetenv("RLIM_SUITE");
    }
  }

  SuiteEnvGuard(const SuiteEnvGuard&) = delete;
  SuiteEnvGuard& operator=(const SuiteEnvGuard&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(BenchHarness, DefaultsToPaperSuite) {
  const SuiteEnvGuard guard(nullptr);
  EXPECT_EQ(&selected_suite(), &bench::paper_suite());
  EXPECT_EQ(suite_label(), "paper profile");
}

TEST(BenchHarness, MiniEnvSelectsMiniSuite) {
  const SuiteEnvGuard guard("mini");
  EXPECT_EQ(&selected_suite(), &bench::mini_suite());
  EXPECT_EQ(suite_label(), "mini (RLIM_SUITE=mini)");
}

TEST(BenchHarness, UnknownValueFallsBackToPaperSuite) {
  const SuiteEnvGuard guard("jumbo");
  EXPECT_EQ(&selected_suite(), &bench::paper_suite());
  EXPECT_EQ(suite_label(), "paper profile");
}

TEST(BenchHarness, SuitesShareNamesButDifferInSize) {
  const auto& paper = bench::paper_suite();
  const auto& mini = bench::mini_suite();
  ASSERT_EQ(paper.size(), mini.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(paper[i].name, mini[i].name);
  }
}

TEST(BenchHarness, PrepareBenchmarkRunsAllRewriteFlavours) {
  const SuiteEnvGuard guard("mini");
  const auto& suite = selected_suite();
  ASSERT_FALSE(suite.empty());
  const auto prepared = prepare_benchmark(suite.front(), /*effort=*/1);
  EXPECT_EQ(prepared.name, suite.front().name);
  EXPECT_GT(prepared.original.num_gates(), 0u);
  // Each rewrite flavour must be reachable through for_config().
  for (const auto strategy :
       {core::Strategy::Naive, core::Strategy::Plim21,
        core::Strategy::FullEndurance}) {
    const auto config = core::make_config(strategy);
    EXPECT_GT(prepared.for_config(config).num_gates(), 0u);
  }
}

}  // namespace
}  // namespace rlim::benchharness
