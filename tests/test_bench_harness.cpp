#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_common.hpp"
#include "benchmarks/suite.hpp"
#include "flow/suite.hpp"

namespace rlim::benchharness {
namespace {

/// Sets RLIM_SUITE for the duration of one test and restores the previous
/// value afterwards, so tests do not leak state into each other.
class SuiteEnvGuard {
 public:
  explicit SuiteEnvGuard(const char* value) {
    const char* previous = std::getenv("RLIM_SUITE");
    had_previous_ = previous != nullptr;
    if (had_previous_) {
      previous_ = previous;
    }
    if (value != nullptr) {
      ::setenv("RLIM_SUITE", value, 1);
    } else {
      ::unsetenv("RLIM_SUITE");
    }
  }

  ~SuiteEnvGuard() {
    if (had_previous_) {
      ::setenv("RLIM_SUITE", previous_.c_str(), 1);
    } else {
      ::unsetenv("RLIM_SUITE");
    }
  }

  SuiteEnvGuard(const SuiteEnvGuard&) = delete;
  SuiteEnvGuard& operator=(const SuiteEnvGuard&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(BenchHarness, DefaultsToPaperSuite) {
  const SuiteEnvGuard guard(nullptr);
  EXPECT_EQ(&selected_suite(), &bench::paper_suite());
  EXPECT_EQ(suite_label(), "paper profile");
  EXPECT_FALSE(flow::suite().mini);
}

TEST(BenchHarness, MiniEnvSelectsMiniSuite) {
  const SuiteEnvGuard guard("mini");
  EXPECT_EQ(&selected_suite(), &bench::mini_suite());
  EXPECT_EQ(suite_label(), "mini (RLIM_SUITE=mini)");
  EXPECT_TRUE(flow::suite().mini);
}

TEST(BenchHarness, UnknownValueFallsBackToPaperSuite) {
  const SuiteEnvGuard guard("jumbo");
  EXPECT_EQ(&selected_suite(), &bench::paper_suite());
  EXPECT_EQ(suite_label(), "paper profile");
}

TEST(BenchHarness, ShimForwardsToFlowSelection) {
  // The harness helpers are a shim over the single RLIM_SUITE parser in the
  // flow layer; both views must agree.
  const SuiteEnvGuard guard("mini");
  const auto selection = flow::suite();
  EXPECT_EQ(&selected_suite(), selection.specs);
  EXPECT_EQ(suite_label(), selection.label);
}

TEST(BenchHarness, SuitesShareNamesButDifferInSize) {
  const auto& paper = bench::paper_suite();
  const auto& mini = bench::mini_suite();
  ASSERT_EQ(paper.size(), mini.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(paper[i].name, mini[i].name);
  }
}

TEST(BenchHarness, MinMaxUsesPaperNotation) {
  util::WriteStats stats;
  stats.min = 3;
  stats.max = 17;
  EXPECT_EQ(min_max(stats), "3/17");
}

}  // namespace
}  // namespace rlim::benchharness
