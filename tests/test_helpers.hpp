#pragma once

#include <cstdint>
#include <vector>

#include "mig/mig.hpp"
#include "util/rng.hpp"

namespace rlim::test {

/// Deterministic random MIG for property tests: `gates` is a target (strash
/// and trivial simplification can make the result smaller).
inline mig::Mig random_mig(std::uint64_t seed, std::uint32_t num_pis,
                           std::uint32_t target_gates, std::uint32_t num_pos) {
  util::Xoshiro256 rng(seed);
  mig::Mig graph;
  std::vector<mig::Signal> pool;
  for (std::uint32_t i = 0; i < num_pis; ++i) {
    pool.push_back(graph.create_pi());
  }
  std::uint32_t attempts = 0;
  while (graph.num_gates() < target_gates && attempts < 8 * target_gates + 64) {
    ++attempts;
    auto pick = [&] {
      auto s = pool[rng.below(pool.size())];
      return s ^ rng.chance(2, 5);
    };
    auto a = pick();
    auto b = pick();
    auto c = rng.chance(1, 10) ? mig::Mig::get_constant(rng.chance(1, 2)) : pick();
    const auto out = graph.create_maj(a, b, c);
    if (!out.is_constant()) {
      pool.push_back(out);
    }
  }
  for (std::uint32_t i = 0; i < num_pos; ++i) {
    // Bias POs toward recently created (deep) signals.
    const auto idx = pool.size() - 1 - rng.below((pool.size() + 3) / 4);
    graph.create_po(pool[idx] ^ rng.chance(1, 4));
  }
  return graph;
}

}  // namespace rlim::test
