#include <gtest/gtest.h>

#include <sstream>

#include "plim/controller.hpp"
#include "plim/instruction.hpp"
#include "plim/program.hpp"
#include "plim/rram_array.hpp"
#include "util/error.hpp"

namespace rlim::plim {
namespace {

TEST(Operand, ConstantsAndCells) {
  const auto zero = Operand::constant(false);
  const auto one = Operand::constant(true);
  const auto c5 = Operand::cell(5);
  EXPECT_TRUE(zero.is_constant());
  EXPECT_FALSE(zero.constant_value());
  EXPECT_TRUE(one.constant_value());
  EXPECT_FALSE(c5.is_constant());
  EXPECT_EQ(c5.cell_index(), 5u);
  EXPECT_EQ(Operand{}, zero);  // default operand is constant 0
}

TEST(Rm3, TruthTableAllEightCases) {
  // Z ← ⟨A B̄ Z⟩ for every (a, b, z) combination, one bit per case.
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned b = 0; b < 2; ++b) {
      for (unsigned z = 0; z < 2; ++z) {
        RramArray array(3);
        array.preload(0, a ? ~0ULL : 0);
        array.preload(1, b ? ~0ULL : 0);
        array.preload(2, z ? ~0ULL : 0);
        PlimController::execute(
            array, Instruction{Operand::cell(0), Operand::cell(1), 2});
        const unsigned expected = ((a + (1 - b) + z) >= 2) ? 1 : 0;
        EXPECT_EQ(array.read(2) & 1, expected) << "a=" << a << " b=" << b
                                               << " z=" << z;
      }
    }
  }
}

TEST(Rm3, ConstantOperands) {
  RramArray array(1);
  array.preload(0, 0);
  // RM3(1, 0, Z) = ⟨1 1 Z⟩ = 1.
  PlimController::execute(array, make_write_const(true, 0));
  EXPECT_EQ(array.read(0), ~0ULL);
  // RM3(0, 1, Z) = ⟨0 0 Z⟩ = 0.
  PlimController::execute(array, make_write_const(false, 0));
  EXPECT_EQ(array.read(0), 0ULL);
}

TEST(Rm3, CopyIdiom) {
  RramArray array(2);
  array.preload(0, 0xdeadbeefULL);
  PlimController::execute(array, make_write_const(false, 1));
  PlimController::execute(array, make_copy_step(0, 1));
  EXPECT_EQ(array.read(1), 0xdeadbeefULL);
  EXPECT_EQ(array.write_count(1), 2u);
  EXPECT_EQ(array.write_count(0), 0u);  // source untouched
}

TEST(Rm3, ComplementCopyIdiom) {
  RramArray array(2);
  array.preload(0, 0xdeadbeefULL);
  PlimController::execute(array, make_write_const(true, 1));
  PlimController::execute(array, make_complement_copy_step(0, 1));
  EXPECT_EQ(array.read(1), ~0xdeadbeefULL);
}

TEST(RramArray, WriteCountsAndPreload) {
  RramArray array(4);
  array.write(2, 7);
  array.write(2, 9);
  array.preload(3, 5);  // preload does not wear
  EXPECT_EQ(array.write_count(2), 2u);
  EXPECT_EQ(array.write_count(3), 0u);
  EXPECT_EQ(array.read(3), 5u);
  const auto counts = array.write_counts();
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 0, 2, 0}));
}

TEST(RramArray, OutOfRangeThrows) {
  RramArray array(2);
  EXPECT_THROW(static_cast<void>(array.read(2)), Error);
  EXPECT_THROW(array.write(5, 0), Error);
  EXPECT_THROW(static_cast<void>(array.write_count(2)), Error);
}

TEST(RramArray, EnduranceFailureIsStuckAtLastValue) {
  RramArray array(1, RramConfig{.endurance_limit = 3});
  array.write(0, 1);
  array.write(0, 2);
  EXPECT_FALSE(array.is_failed(0));
  array.write(0, 3);
  EXPECT_TRUE(array.is_failed(0));
  array.write(0, 99);  // dropped
  EXPECT_EQ(array.read(0), 3u);
  EXPECT_EQ(array.write_count(0), 3u);
  EXPECT_EQ(array.failed_cell_count(), 1u);
}

TEST(RramArray, FailedCellIgnoresPreloadAndReset) {
  // A hard-failed cell is stuck at its last value for *every* external
  // write path: counted writes, uncounted preloads, and reset_values.
  RramArray array(2, RramConfig{.endurance_limit = 2});
  array.write(0, 1);
  array.write(0, 0xabcdULL);
  ASSERT_TRUE(array.is_failed(0));
  array.preload(0, 7);  // dropped: the cell is stuck
  EXPECT_EQ(array.read(0), 0xabcdULL);
  array.preload(1, 9);  // healthy neighbor still preloads
  EXPECT_EQ(array.read(1), 9u);
  array.reset_values();
  EXPECT_EQ(array.read(0), 0xabcdULL);  // stuck value survives the reset
  EXPECT_EQ(array.read(1), 0u);
}

TEST(RramArray, VariabilityDrawsPerCellLimits) {
  RramArray array(64, RramConfig{.endurance_limit = 1000,
                                 .endurance_sigma = 0.5,
                                 .variation_seed = 9});
  bool saw_below = false;
  bool saw_above = false;
  for (Cell cell = 0; cell < 64; ++cell) {
    const auto limit = array.endurance_of(cell);
    ASSERT_TRUE(limit.has_value());
    EXPECT_GE(*limit, 1u);
    saw_below |= *limit < 1000;
    saw_above |= *limit > 1000;
  }
  EXPECT_TRUE(saw_below);
  EXPECT_TRUE(saw_above);
  // Deterministic per seed.
  RramArray again(64, RramConfig{.endurance_limit = 1000,
                                 .endurance_sigma = 0.5,
                                 .variation_seed = 9});
  for (Cell cell = 0; cell < 64; ++cell) {
    EXPECT_EQ(array.endurance_of(cell), again.endurance_of(cell));
  }
}

TEST(RramArray, VariabilityZeroSigmaIsUniform) {
  RramArray array(8, RramConfig{.endurance_limit = 77});
  EXPECT_TRUE(array.has_endurance_model());
  for (Cell cell = 0; cell < 8; ++cell) {
    EXPECT_EQ(array.endurance_of(cell), 77u);
  }
  // Model disabled: endurance_of is nullopt (unlimited), never a zero limit —
  // the two used to be conflated as 0.
  RramArray unlimited(4);
  EXPECT_FALSE(unlimited.has_endurance_model());
  EXPECT_FALSE(unlimited.endurance_of(0).has_value());
}

TEST(RramArray, WeakCellFailsFirst) {
  RramArray array(32, RramConfig{.endurance_limit = 50,
                                 .endurance_sigma = 0.7,
                                 .variation_seed = 4});
  Cell weakest = 0;
  for (Cell cell = 1; cell < 32; ++cell) {
    if (*array.endurance_of(cell) < *array.endurance_of(weakest)) {
      weakest = cell;
    }
  }
  for (std::uint64_t i = 0; i < *array.endurance_of(weakest); ++i) {
    for (Cell cell = 0; cell < 32; ++cell) {
      array.write(cell, i);
    }
  }
  EXPECT_TRUE(array.is_failed(weakest));
  EXPECT_GE(array.failed_cell_count(), 1u);
  EXPECT_LT(array.failed_cell_count(), 32u);
}

TEST(RramArray, NegativeSigmaThrows) {
  EXPECT_THROW(RramArray(4, RramConfig{.endurance_limit = 10,
                                       .endurance_sigma = -0.1}),
               Error);
}

TEST(RramArray, ResetValuesKeepsWear) {
  RramArray array(2);
  array.write(0, 42);
  array.reset_values();
  EXPECT_EQ(array.read(0), 0u);
  EXPECT_EQ(array.write_count(0), 1u);
}

TEST(RramArray, StatsMatchWriteCounts) {
  RramArray array(3);
  array.write(0, 1);
  array.write(0, 1);
  array.write(1, 1);
  const auto stats = array.stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_EQ(stats.total, 3u);
}

TEST(Program, AppendGrowsCellSpace) {
  Program program;
  program.append(Instruction{Operand::cell(3), Operand::constant(true), 7});
  EXPECT_EQ(program.num_cells(), 8u);
  EXPECT_EQ(program.size(), 1u);
  program.set_num_cells(20);
  EXPECT_EQ(program.num_cells(), 20u);
  EXPECT_THROW(program.set_num_cells(5), Error);
}

TEST(Program, StaticWriteCounts) {
  Program program;
  program.append(make_write_const(true, 0));
  program.append(make_write_const(false, 0));
  program.append(make_write_const(true, 2));
  const auto counts = program.static_write_counts();
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{2, 0, 1}));
}

TEST(Program, DisassembleMentionsEverything) {
  Program program;
  program.bind_pi(0);
  program.append(Instruction{Operand::cell(0), Operand::constant(false), 1});
  program.bind_po(1);
  const auto text = program.disassemble();
  EXPECT_NE(text.find("RM3(c[0], !0, c[1])"), std::string::npos);
  EXPECT_NE(text.find("pi 0 -> c[0]"), std::string::npos);
  EXPECT_NE(text.find("po 0 <- c[1]"), std::string::npos);
}

TEST(Program, SerializationRoundTrip) {
  Program program;
  program.bind_pi(0);
  program.bind_pi(1);
  program.append(make_write_const(true, 2));
  program.append(Instruction{Operand::cell(0), Operand::cell(1), 2});
  program.append(make_copy_step(2, 3));
  program.bind_po(3);
  program.set_num_cells(6);  // cells 4,5 allocated but unwritten

  std::stringstream stream;
  program.write(stream);
  const auto back = Program::read(stream);
  EXPECT_EQ(back.size(), program.size());
  EXPECT_EQ(back.num_cells(), program.num_cells());
  EXPECT_TRUE(std::equal(back.instructions().begin(), back.instructions().end(),
                         program.instructions().begin()));
  EXPECT_TRUE(std::equal(back.pi_cells().begin(), back.pi_cells().end(),
                         program.pi_cells().begin()));
  EXPECT_TRUE(std::equal(back.po_cells().begin(), back.po_cells().end(),
                         program.po_cells().begin()));

  // Both must evaluate identically.
  const std::vector<std::uint64_t> pis{0xff00ff00, 0x0f0f0f0f};
  EXPECT_EQ(evaluate(back, pis), evaluate(program, pis));
}

TEST(Program, ReadRejectsMalformedInput) {
  {
    std::stringstream stream(".rm3 c0 c1 2\n.end\n");  // no header
    EXPECT_THROW(Program::read(stream), Error);
  }
  {
    std::stringstream stream(".plim 1 4\n.rm3 x0 c1 2\n.end\n");  // bad operand
    EXPECT_THROW(Program::read(stream), Error);
  }
  {
    std::stringstream stream(".plim 0 1\n.bogus\n.end\n");
    EXPECT_THROW(Program::read(stream), Error);
  }
}

TEST(Controller, FsmLifecycle) {
  Program program;
  program.append(make_write_const(true, 0));
  program.append(make_write_const(false, 1));
  RramArray array(program.num_cells());
  PlimController controller(array);
  EXPECT_EQ(controller.state(), PlimController::State::Idle);
  controller.start(program);
  EXPECT_EQ(controller.state(), PlimController::State::Running);
  EXPECT_EQ(controller.program_counter(), 0u);
  EXPECT_TRUE(controller.step());
  EXPECT_EQ(controller.program_counter(), 1u);
  EXPECT_FALSE(controller.step());
  EXPECT_EQ(controller.state(), PlimController::State::Done);
  EXPECT_THROW(controller.step(), Error);
}

TEST(Controller, RunExecutesWholeProgram) {
  Program program;
  for (int i = 0; i < 5; ++i) {
    program.append(make_write_const(i % 2 == 0, static_cast<Cell>(i)));
  }
  RramArray array(program.num_cells());
  PlimController controller(array);
  EXPECT_EQ(controller.run(program), 5u);
  EXPECT_EQ(array.read(0), ~0ULL);
  EXPECT_EQ(array.read(1), 0ULL);
}

TEST(Controller, EmptyProgramIsImmediatelyDone) {
  Program program;
  RramArray array(1);
  PlimController controller(array);
  controller.start(program);
  EXPECT_EQ(controller.state(), PlimController::State::Done);
  EXPECT_EQ(controller.run(), 0u);
}

TEST(Controller, ProgramLargerThanArrayThrows) {
  Program program;
  program.append(make_write_const(true, 10));
  RramArray array(4);
  PlimController controller(array);
  EXPECT_THROW(controller.start(program), Error);
}

TEST(Evaluate, MajorityProgram) {
  // Hand-written program computing ⟨a b̄ c⟩ into c's cell.
  Program program;
  program.bind_pi(0);
  program.bind_pi(1);
  program.bind_pi(2);
  program.append(Instruction{Operand::cell(0), Operand::cell(1), 2});
  program.bind_po(2);
  const std::vector<std::uint64_t> pis{0b0011, 0b0101, 0b1001};
  const auto out = evaluate(program, pis);
  // maj(a, ¬b, c): rows — a=1100? bit order: value of bit k.
  std::uint64_t expected = 0;
  for (int k = 0; k < 4; ++k) {
    const int a = (0b0011 >> k) & 1;
    const int b = (0b0101 >> k) & 1;
    const int c = (0b1001 >> k) & 1;
    if (a + (1 - b) + c >= 2) {
      expected |= 1ULL << k;
    }
  }
  EXPECT_EQ(out[0] & 0xF, expected);
}

TEST(Evaluate, AccumulatesWearAcrossRuns) {
  Program program;
  program.bind_pi(0);
  program.append(make_write_const(true, 1));
  program.bind_po(1);
  RramArray array(program.num_cells());
  const std::vector<std::uint64_t> pis{0};
  evaluate(program, pis, &array);
  evaluate(program, pis, &array);
  evaluate(program, pis, &array);
  EXPECT_EQ(array.write_count(1), 3u);
}

TEST(Evaluate, DynamicWearMatchesStaticAccounting) {
  // The compiler's static write counts must equal the crossbar's observed
  // wear after execution — per run, and accumulating linearly across runs.
  Program program;
  program.bind_pi(0);
  program.bind_pi(1);
  program.append(make_write_const(false, 2));
  program.append(make_copy_step(0, 2));
  program.append(Instruction{Operand::cell(1), Operand::cell(0), 2});
  program.append(Instruction{Operand::cell(2), Operand::constant(true), 3});
  program.bind_po(3);

  RramArray array(program.num_cells());
  const std::vector<std::uint64_t> pis{0x12345678, 0x9abcdef0};
  const auto static_counts = program.static_write_counts();
  for (int run = 1; run <= 3; ++run) {
    evaluate(program, pis, &array);
    for (Cell cell = 0; cell < program.num_cells(); ++cell) {
      ASSERT_EQ(array.write_count(cell),
                static_cast<std::uint64_t>(run) * static_counts[cell])
          << "run " << run << " cell " << cell;
    }
  }
}

TEST(Evaluate, PiCountMismatchThrows) {
  Program program;
  program.bind_pi(0);
  const std::vector<std::uint64_t> none{};
  EXPECT_THROW(evaluate(program, none), Error);
}

}  // namespace
}  // namespace rlim::plim
