#include <gtest/gtest.h>

#include <vector>

#include "mig/mig.hpp"
#include "mig/axioms.hpp"
#include "mig/rewriting.hpp"
#include "mig/simulate.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rlim::mig {
namespace {

/// A deliberately redundant circuit in the style of AIG-derived benchmarks:
/// ripple-carry logic with the carry written as a sum of products
/// cout = (a∧b) ∨ (a∧c) ∨ (b∧c). The first OR's children ⟨0ab⟩ and ⟨0ac⟩
/// share two fanins, so Ω.D(R→L) can fuse them; the "waste" gates are Ω.I
/// targets with two complemented fanins.
Mig redundant_circuit(int bits) {
  Mig mig;
  std::vector<Signal> a;
  std::vector<Signal> b;
  for (int i = 0; i < bits; ++i) a.push_back(mig.create_pi());
  for (int i = 0; i < bits; ++i) b.push_back(mig.create_pi());
  auto carry = Mig::get_constant(false);
  for (int i = 0; i < bits; ++i) {
    const auto and_ab = mig.create_and(a[i], b[i]);
    const auto and_ac = mig.create_and(a[i], carry);
    const auto and_bc = mig.create_and(b[i], carry);
    const auto next_carry = mig.create_or(mig.create_or(and_ab, and_ac), and_bc);
    const auto sum = mig.create_xor(mig.create_xor(a[i], b[i]), carry);
    mig.create_po(sum);
    // Doubly-complemented gate (Ω.I target).
    const auto waste = mig.create_maj(!a[i], !b[i], sum);
    mig.create_po(waste);
    carry = next_carry;
  }
  mig.create_po(carry);
  return mig;
}

TEST(Rewriting, Plim21PreservesFunctionOnRedundantCircuit) {
  const auto mig = redundant_circuit(6);
  RewriteStats stats;
  const auto out = rewrite_plim21(mig, 5, &stats);
  EXPECT_TRUE(equivalent_exhaustive(mig, out));
  EXPECT_EQ(stats.initial_gates, mig.num_gates());
  EXPECT_EQ(stats.final_gates, out.num_gates());
}

TEST(Rewriting, EndurancePreservesFunctionOnRedundantCircuit) {
  const auto mig = redundant_circuit(6);
  const auto out = rewrite_endurance(mig, 5);
  EXPECT_TRUE(equivalent_exhaustive(mig, out));
}

TEST(Rewriting, EnduranceReducesComplementEdges) {
  const auto mig = redundant_circuit(8);
  RewriteStats stats;
  rewrite_endurance(mig, 5, &stats);
  EXPECT_LT(stats.final_complement_edges, stats.initial_complement_edges);
}

TEST(Rewriting, BothFlowsReduceGateCount) {
  const auto mig = redundant_circuit(8);
  RewriteStats s1;
  RewriteStats s2;
  rewrite_plim21(mig, 5, &s1);
  rewrite_endurance(mig, 5, &s2);
  EXPECT_LT(s1.final_gates, s1.initial_gates);
  EXPECT_LT(s2.final_gates, s2.initial_gates);
}

TEST(Rewriting, EffortZeroOnlyCleansUp) {
  auto mig = redundant_circuit(4);
  RewriteStats stats;
  const auto out = rewrite_plim21(mig, 0, &stats);
  EXPECT_EQ(stats.cycles_run, 0);
  EXPECT_EQ(out.num_gates(), mig.cleanup().num_gates());
  EXPECT_TRUE(equivalent_exhaustive(mig, out));
}

TEST(Rewriting, NegativeEffortThrows) {
  const auto mig = redundant_circuit(2);
  EXPECT_THROW(rewrite_plim21(mig, -1), Error);
}

TEST(Rewriting, EarlyExitAtFixpoint) {
  // A single AND gate admits no rewriting: one cycle must suffice.
  Mig mig;
  const auto a = mig.create_pi();
  const auto b = mig.create_pi();
  mig.create_po(mig.create_and(a, b));
  RewriteStats stats;
  rewrite_plim21(mig, 100, &stats);
  EXPECT_LE(stats.cycles_run, 2);
}

TEST(Rewriting, DispatchMatchesDirectCalls) {
  const auto mig = redundant_circuit(5);
  const auto none = rewrite(mig, RewriteKind::None);
  EXPECT_EQ(none.num_gates(), mig.cleanup().num_gates());
  const auto alg1 = rewrite(mig, RewriteKind::Plim21);
  const auto alg2 = rewrite(mig, RewriteKind::Endurance);
  EXPECT_TRUE(equivalent_exhaustive(mig, alg1));
  EXPECT_TRUE(equivalent_exhaustive(mig, alg2));
}

TEST(Rewriting, ToStringNames) {
  EXPECT_EQ(to_string(RewriteKind::None), "none");
  EXPECT_EQ(to_string(RewriteKind::Plim21), "plim21");
  EXPECT_EQ(to_string(RewriteKind::Endurance), "endurance");
  EXPECT_EQ(to_string(RewriteKind::LevelBalanced), "level-balanced");
}

TEST(Rewriting, LevelBalancedDispatchPreservesFunction) {
  const auto mig = redundant_circuit(5);
  const auto balanced = rewrite(mig, RewriteKind::LevelBalanced);
  EXPECT_TRUE(equivalent_exhaustive(mig, balanced));
}

class RewritePreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RewritePreservation, BothFlowsPreserveRandomFunctions) {
  const auto seed = GetParam();
  const auto mig = test::random_mig(seed, 12, 150, 6);
  const auto alg1 = rewrite_plim21(mig, 5);
  const auto alg2 = rewrite_endurance(mig, 5);
  EXPECT_TRUE(equivalent_random(mig, alg1, 16, seed ^ 0xabc))
      << "Algorithm 1 broke seed " << seed;
  EXPECT_TRUE(equivalent_random(mig, alg2, 16, seed ^ 0xdef))
      << "Algorithm 2 broke seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePreservation,
                         ::testing::Values(3, 7, 19, 42, 77, 123, 256, 999,
                                           2024, 31337));

TEST(Rewriting, LevelBalancedFlowPreservesFunction) {
  const auto mig = redundant_circuit(6);
  const auto out = rewrite_level_balanced(mig, 5);
  EXPECT_TRUE(equivalent_exhaustive(mig, out));
}

TEST(Rewriting, LevelBalancePassReducesDepthOnChains) {
  // A left-leaning associative chain sharing u: level balancing must pull
  // the deep operand upward and cut the depth.
  Mig mig;
  const auto u = mig.create_pi();
  std::vector<Signal> xs;
  for (int i = 0; i < 6; ++i) {
    xs.push_back(mig.create_pi());
  }
  // Build ⟨x5 u ⟨x4 u ⟨x3 u ⟨x2 u ⟨x1 u x0⟩⟩⟩⟩⟩ — x0 sits 5 levels deep.
  auto acc = xs[0];
  for (int i = 1; i < 6; ++i) {
    acc = mig.create_maj(xs[i], u, acc);
  }
  mig.create_po(acc);
  const auto before = mig.depth();
  const auto result = pass_level_balance(mig);
  EXPECT_GE(result.applications, 1u);
  EXPECT_TRUE(equivalent_exhaustive(mig, result.mig));
  EXPECT_LE(result.mig.depth(), before);
}

TEST(Rewriting, LevelBalancePreservesRandomFunctions) {
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    const auto mig = test::random_mig(seed, 10, 120, 5);
    const auto result = pass_level_balance(mig);
    EXPECT_TRUE(equivalent_random(mig, result.mig, 12, seed)) << "seed " << seed;
  }
}

TEST(Rewriting, StatsAccumulateApplications) {
  const auto mig = redundant_circuit(8);
  RewriteStats stats;
  rewrite_endurance(mig, 5, &stats);
  EXPECT_GT(stats.total_applications, 0u);
  EXPECT_GE(stats.cycles_run, 1);
  EXPECT_LE(stats.cycles_run, 5);
}

}  // namespace
}  // namespace rlim::mig
