// Quickstart: build a Boolean function as an MIG, compile it through the
// flow job-runner with full endurance management, execute the program on the
// RRAM crossbar simulator, and inspect the write traffic.
//
//   $ ./build/examples/quickstart

#include <iostream>
#include <vector>

#include "core/lifetime.hpp"
#include "flow/runner.hpp"
#include "mig/mig.hpp"
#include "mig/simulate.hpp"
#include "plim/controller.hpp"

int main() {
  using namespace rlim;

  // 1. Describe the function as a majority-inverter graph. Here: a 1-bit
  //    full adder (sum and carry).
  mig::Mig graph;
  const auto a = graph.create_pi("a");
  const auto b = graph.create_pi("b");
  const auto cin = graph.create_pi("cin");
  const auto carry = graph.create_maj(a, b, cin);          // ⟨a b c⟩
  const auto sum = graph.create_xor(graph.create_xor(a, b), cin);
  graph.create_po(sum, "sum");
  graph.create_po(carry, "cout");

  // 2. Compile with the paper's full endurance-management flow (Algorithm 2
  //    rewriting + Algorithm 3 selection + min-write allocation) as a
  //    one-job flow batch. "full" is the preset alias for
  //    rewrite=endurance:effort=5,select=endurance,alloc=min_write — any
  //    registered policy combination parses the same way (`rlim policies`
  //    lists them). Sweeps simply push more jobs — same API.
  const flow::Job job{flow::Source::graph(graph, "full-adder"),
                      core::PipelineConfig::parse("full"),
                      {}};
  const auto result = flow::run_job(job);
  if (!result.ok()) {
    std::cerr << "pipeline failed: " << result.error << '\n';
    return 1;
  }
  const auto& report = result.report;

  std::cout << "compiled " << report.benchmark << ": " << report.instructions
            << " RM3 instructions over " << report.rrams << " RRAM cells\n"
            << "write counts: min " << report.writes.min << ", max "
            << report.writes.max << ", stdev " << report.writes.stdev << "\n\n";

  // 3. The program is a plain RM3 instruction list — inspect it.
  std::cout << report.program.disassemble() << '\n';

  // 4. Execute on the crossbar simulator (64 input patterns in parallel)
  //    and cross-check against MIG simulation.
  const std::vector<std::uint64_t> inputs = {0x00000000ffffffffULL,
                                             0x0000ffff0000ffffULL,
                                             0x00ff00ff00ff00ffULL};
  const auto from_crossbar = plim::evaluate(report.program, inputs);
  const auto from_mig = mig::simulate(graph, inputs);
  std::cout << "crossbar output matches MIG simulation: "
            << (from_crossbar == from_mig ? "yes" : "NO — bug!") << '\n';

  // 5. Project the architecture lifetime at RRAM endurance 1e10 writes.
  const auto lifetime = core::estimate_lifetime(report.writes);
  std::cout << "guaranteed executions before first cell failure: "
            << lifetime.executions_to_first_failure << " (balance efficiency "
            << lifetime.balance_efficiency * 100.0 << "%)\n";
  return 0;
}
