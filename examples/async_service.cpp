// Asynchronous execution with flow::Service: incremental submission,
// progress observation, duplicate coalescing, cooperative cancellation, and
// shipping work through flow::wire bytes — the API surface a network
// front-end or shard coordinator builds on. Compare examples/quickstart.cpp,
// which drives the same pipeline through the synchronous Runner façade.

#include <iostream>

#include "benchmarks/arithmetic.hpp"
#include "flow/service.hpp"
#include "flow/wire.hpp"

int main() try {
  using namespace rlim;

  flow::Service service({.jobs = 2});
  const auto config = core::make_config(core::Strategy::FullEndurance);

  // 1. Submit returns immediately; execution starts on the worker pool.
  const auto source = flow::Source::graph(bench::make_adder(8), "adder8");
  const auto ticket = service.submit({source, config, "first"});

  // 2. A duplicate of an in-flight job coalesces: it is fulfilled from the
  //    primary's result (own label patched in) without occupying a worker.
  const auto duplicate = service.submit({source, config, "again"});

  // 3. Batches come with a progress handle.
  std::vector<flow::Job> batch_jobs;
  for (const unsigned bits : {4u, 5u, 6u}) {
    batch_jobs.push_back({flow::Source::graph(bench::make_adder(bits),
                                              "adder" + std::to_string(bits)),
                          config,
                          {}});
  }
  const auto batch = service.submit_batch(batch_jobs);
  batch.wait();
  std::cout << "batch: " << batch.completed() << "/" << batch.size()
            << " jobs done\n";

  // 4. Results are collected by ticket, in any order.
  for (const auto& result : service.collect(batch)) {
    std::cout << "  " << result.report.benchmark << ": "
              << result.report.instructions << " instructions, write stdev "
              << result.report.writes.stdev << '\n';
  }
  const auto first = service.wait(ticket);
  const auto again = service.wait(duplicate);
  // Whether the duplicate coalesced in flight or hit the program cache
  // depends on timing; either way it reuses the primary's work and only the
  // label differs.
  std::cout << "duplicate '" << again.report.benchmark << "' reused '"
            << first.report.benchmark << "' (" << service.stats().coalesced
            << " coalesced in flight, " << service.cache().program_hits()
            << " program-cache hits)\n";

  // 5. Cancellation is cooperative: pending work can be withdrawn, running
  //    work always completes.
  const auto doomed = service.submit({source, config, "doomed"});
  if (service.cancel(doomed)) {
    std::cout << "cancelled: " << service.wait(doomed).error << '\n';
  } else {
    std::cout << "too late to cancel; result ok="
              << service.wait(doomed).ok() << '\n';
  }

  // 6. flow::wire ships jobs and results across process boundaries: a
  //    self-contained JobSpec frame round-trips through bytes and executes
  //    to the same report on the far side.
  const auto frame = flow::wire::encode(flow::wire::JobSpec::inline_graph(
      bench::make_adder(8), "adder8", config, "remote"));
  const auto remote_job = flow::wire::decode_job_spec(frame).to_job();
  const auto remote = service.wait(service.submit(remote_job));
  const auto reply = flow::wire::decode_job_result(
      flow::wire::encode(remote));
  std::cout << "wire: " << frame.size() << "-byte job frame -> '"
            << reply.report.benchmark << "' with "
            << reply.report.instructions << " instructions (matches local: "
            << (reply.report.instructions == first.report.instructions)
            << ")\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "async_service: " << error.what() << '\n';
  return 1;
}
