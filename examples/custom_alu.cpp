// Building a custom in-memory compute kernel with the word-level builder:
// an 8-bit, 4-operation ALU (ADD / SUB / AND / XOR selected by a 2-bit
// opcode), compiled naively, with full endurance management, and with a
// *custom allocation policy registered by this example* — all three
// configurations as one flow::Runner batch over a shared Source. Shows the
// end-to-end flow a downstream user follows for their own logic, including
// how to plug a new policy into the registries.
//
//   $ ./build/examples/custom_alu

#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "benchmarks/wordlib.hpp"
#include "core/lifetime.hpp"
#include "flow/runner.hpp"
#include "plim/controller.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlim;

  // 1. Describe the ALU with the word-level netlist builder.
  mig::Mig graph;
  bench::WordBuilder builder(graph);
  const auto a = builder.input(8, "a");
  const auto b = builder.input(8, "b");
  const auto op = builder.input(2, "op");

  mig::Signal carry = mig::Mig::get_constant(false);
  const auto add = builder.add(a, b, mig::Mig::get_constant(false), &carry);
  const auto sub = builder.sub(a, b);
  const auto conj = builder.bitwise_and(a, b);
  const auto parity = builder.bitwise_xor(a, b);

  // result = op[1] ? (op[0] ? XOR : AND) : (op[0] ? SUB : ADD)
  const auto arith = builder.mux_word(op[0], sub, add);
  const auto logic = builder.mux_word(op[0], parity, conj);
  builder.output(builder.mux_word(op[1], logic, arith), "y");

  std::cout << "ALU MIG: " << graph.num_gates() << " majority gates, depth "
            << graph.depth() << "\n\n";

  // 2. The policy registries are open: plug in a deliberately wear-hostile
  //    allocation policy — most-written free cell first, the mirror image of
  //    the paper's min-write strategy — and it immediately composes with
  //    every other pipeline dimension through the config-spec grammar.
  class MostWriteAllocator final : public plim::Allocator {
  public:
    void push(plim::Cell cell, std::uint64_t writes) override {
      by_writes_.emplace(writes, cell);
    }
    std::optional<plim::Cell> pop() override {
      if (by_writes_.empty()) {
        return std::nullopt;
      }
      const auto it = std::prev(by_writes_.end());
      const auto cell = it->second;
      by_writes_.erase(it);
      return cell;
    }
    [[nodiscard]] std::size_t size() const override {
      return by_writes_.size();
    }

  private:
    std::multimap<std::uint64_t, plim::Cell> by_writes_;
  };
  plim::allocators().add(
      {"most_write", "anti-policy demo: most-written free cell first", {}},
      [](const util::Params&) -> plim::AllocatorPtr {
        return std::make_unique<MostWriteAllocator>();
      });

  // 3. Compile the extremes and the custom policy as one batch and compare.
  const auto source = flow::Source::graph(graph, "alu");
  const std::pair<const char*, const char*> cases[] = {
      {"naive", "naive"},
      {"full-endurance", "full"},
      {"full + most_write", "full,alloc=most_write"},
  };
  std::vector<flow::Job> jobs;
  for (const auto& [label, spec] : cases) {
    (void)label;
    jobs.push_back({source, core::PipelineConfig::parse(spec), {}});
  }
  flow::Runner runner;
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  util::Table table({"flow", "#I", "#R", "min/max writes", "STDEV",
                     "executions @1e10"});
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& report = results[i].report;
    const auto lifetime = core::estimate_lifetime(report.writes);
    table.add_row({cases[i].first,
                   std::to_string(report.instructions),
                   std::to_string(report.rrams),
                   std::to_string(report.writes.min) + "/" +
                       std::to_string(report.writes.max),
                   util::Table::fixed(report.writes.stdev),
                   std::to_string(lifetime.executions_to_first_failure)});
  }
  std::cout << table.to_string() << '\n';

  // 4. All programs must behave identically on the crossbar; check a few
  //    thousand random vectors (64 per word x 32 rounds x 3 programs). The
  //    rewritten graph each job compiled ships with its result.
  bool all_match = true;
  for (const auto& result : results) {
    all_match &= plim::program_matches_mig(result.report.program,
                                           *result.prepared, 32, 7);
  }
  std::cout << "functional cross-check on the crossbar simulator: "
            << (all_match ? "passed" : "FAILED") << '\n';
  std::cout << "endurance flow lifetime gain: "
            << util::Table::fixed(
                   static_cast<double>(
                       core::estimate_lifetime(results[1].report.writes)
                           .executions_to_first_failure) /
                   static_cast<double>(
                       core::estimate_lifetime(results[0].report.writes)
                           .executions_to_first_failure),
                   2)
            << "x\n";
  return 0;
}
