// Building a custom in-memory compute kernel with the word-level builder:
// an 8-bit, 4-operation ALU (ADD / SUB / AND / XOR selected by a 2-bit
// opcode), compiled once naively and once with full endurance management —
// both configurations as one flow::Runner batch over a shared Source.
// Shows the end-to-end flow a downstream user follows for their own logic.
//
//   $ ./build/examples/custom_alu

#include <iostream>

#include "benchmarks/wordlib.hpp"
#include "core/lifetime.hpp"
#include "flow/runner.hpp"
#include "plim/controller.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlim;

  // 1. Describe the ALU with the word-level netlist builder.
  mig::Mig graph;
  bench::WordBuilder builder(graph);
  const auto a = builder.input(8, "a");
  const auto b = builder.input(8, "b");
  const auto op = builder.input(2, "op");

  mig::Signal carry = mig::Mig::get_constant(false);
  const auto add = builder.add(a, b, mig::Mig::get_constant(false), &carry);
  const auto sub = builder.sub(a, b);
  const auto conj = builder.bitwise_and(a, b);
  const auto parity = builder.bitwise_xor(a, b);

  // result = op[1] ? (op[0] ? XOR : AND) : (op[0] ? SUB : ADD)
  const auto arith = builder.mux_word(op[0], sub, add);
  const auto logic = builder.mux_word(op[0], parity, conj);
  builder.output(builder.mux_word(op[1], logic, arith), "y");

  std::cout << "ALU MIG: " << graph.num_gates() << " majority gates, depth "
            << graph.depth() << "\n\n";

  // 2. Compile under both extremes as one batch and compare.
  const auto source = flow::Source::graph(graph, "alu");
  const core::Strategy strategies[2] = {core::Strategy::Naive,
                                        core::Strategy::FullEndurance};
  std::vector<flow::Job> jobs;
  for (const auto strategy : strategies) {
    jobs.push_back({source, core::make_config(strategy), {}});
  }
  flow::Runner runner;
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  util::Table table({"flow", "#I", "#R", "min/max writes", "STDEV",
                     "executions @1e10"});
  for (int i = 0; i < 2; ++i) {
    const auto& report = results[i].report;
    const auto lifetime = core::estimate_lifetime(report.writes);
    table.add_row({to_string(strategies[i]),
                   std::to_string(report.instructions),
                   std::to_string(report.rrams),
                   std::to_string(report.writes.min) + "/" +
                       std::to_string(report.writes.max),
                   util::Table::fixed(report.writes.stdev),
                   std::to_string(lifetime.executions_to_first_failure)});
  }
  std::cout << table.to_string() << '\n';

  // 3. Both programs must behave identically on the crossbar; check a few
  //    thousand random vectors (64 per word x 32 rounds x 2 programs). The
  //    rewritten graph each job compiled ships with its result.
  bool all_match = true;
  for (const auto& result : results) {
    all_match &= plim::program_matches_mig(result.report.program,
                                           *result.prepared, 32, 7);
  }
  std::cout << "functional cross-check on the crossbar simulator: "
            << (all_match ? "passed" : "FAILED") << '\n';
  std::cout << "endurance flow lifetime gain: "
            << util::Table::fixed(
                   static_cast<double>(
                       core::estimate_lifetime(results[1].report.writes)
                           .executions_to_first_failure) /
                   static_cast<double>(
                       core::estimate_lifetime(results[0].report.writes)
                           .executions_to_first_failure),
                   2)
            << "x\n";
  return 0;
}
