// Driving the rewriting pipeline pass by pass: build a PassManager from the
// paper's endurance sequence, watch each pass work through the per-pass
// telemetry and dump hooks, cut the sequence with an `until` limit, then
// register a custom probe pass and run it through the `rewrite=seq:` config
// grammar — the same spec that flows through the cache, disk store, and
// cluster protocol.
//
//   $ ./build/examples/example_pass_pipeline

#include <iostream>
#include <string>

#include "benchmarks/arithmetic.hpp"
#include "core/endurance.hpp"
#include "pass/manager.hpp"
#include "pass/pass.hpp"
#include "pass/seq.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlim;

  pass::ensure_registered();
  const auto graph = bench::make_adder(16);
  std::cout << "16-bit adder: " << graph.num_gates() << " majority gates, "
            << "depth " << graph.depth() << "\n\n";

  // 1. The endurance flow is just a pass sequence. Build it explicitly and
  //    run it with telemetry — the exact same passes, in the same order, as
  //    `rewrite=endurance` (the alias list is joined from the enum flow, so
  //    the two can never drift apart).
  const auto sequence = pass::alias_passes(mig::RewriteKind::Endurance);
  std::cout << "endurance = seq:passes=" << sequence << "\n\n";

  auto manager = pass::make_manager(sequence);
  std::size_t dumps = 0;
  manager.on_dump([&dumps](const mig::Mig&, const pass::DumpContext&) {
    ++dumps;  // a real hook would dump_graph() to a file per snapshot
  });
  mig::RewriteStats stats;
  const auto rewritten = manager.run(graph, /*effort=*/5, &stats);

  util::Table table({"pass", "runs", "applications", "gate delta",
                     "compl. delta", "depth delta"});
  for (const auto& pass : stats.per_pass) {
    table.add_row({pass.name, std::to_string(pass.runs),
                   std::to_string(pass.applications),
                   std::to_string(pass.gate_delta),
                   std::to_string(pass.complement_delta),
                   std::to_string(pass.depth_delta)});
  }
  std::cout << table.to_string();
  std::cout << "fixpoint after " << stats.cycles_run << " cycles, "
            << rewritten.num_gates() << " gates, " << dumps
            << " dump snapshots\n\n";

  // 2. `until` limits every cycle to the prefix ending at a named pass —
  //    the ablation knife for "what did the tail of the sequence buy?".
  const auto reshaped =
      pass::make_manager(sequence).until("dist").run(graph, 5);
  std::cout << "until=dist (reshaping only): " << reshaped.num_gates()
            << " gates, "
            << reshaped.complement_edge_count() << " complemented edges vs "
            << rewritten.complement_edge_count() << " after the full flow\n\n";

  // 3. The pass registry is open, like every policy registry. A probe pass
  //    records the gate count it saw as its application count — a telemetry
  //    checkpoint that can sit anywhere in a sequence.
  class ProbePass final : public pass::Pass {
  public:
    explicit ProbePass(util::Params params) : params_(std::move(params)) {}
    std::string_view name() const override { return "probe"; }
    const util::Params& params() const override { return params_; }
    void run(mig::Mig& graph, pass::PassStats& stats) const override {
      stats.applications += graph.num_gates();
    }

  private:
    util::Params params_;
  };
  pass::passes().add(
      {"probe", "telemetry checkpoint: records the gate count it saw", {}},
      [](const util::Params& params) -> pass::PassPtr {
        return std::make_shared<ProbePass>(params);
      });

  // 4. Custom passes immediately compose with the whole pipeline through the
  //    config grammar — cache keys, disk store, and cluster jobs included.
  const auto config = core::PipelineConfig::parse(
      "rewrite=seq:passes=maj,dist,probe,inv,inv3,select=endurance,"
      "alloc=min_write");
  std::cout << "canonical key: " << config.canonical_key() << '\n';
  const auto report = core::run_pipeline(graph, config, "adder16");
  std::cout << "compiled: " << report.instructions << " instructions, "
            << report.rrams << " RRAMs, write STDEV "
            << util::Table::fixed(report.writes.stdev) << '\n';
  return 0;
}
