// Fault resilience: a downstream-user scenario for the seeded fault model.
// Given an adder kernel on an array with manufacturing stuck-at defects and
// finite endurance, compare three provisioning choices — no repair, spare
// cells with remap-on-failure, and retiring worn cells early — and read the
// p50/p99 lifetime off the Monte-Carlo distribution the pipeline attaches to
// each report. Everything is expressed in the config-spec grammar, so the
// same scenarios work verbatim with `rlim suite --config ...` or over the
// cluster wire protocol.
//
//   $ ./build/examples/example_fault_resilience

#include <iostream>

#include "benchmarks/arithmetic.hpp"
#include "core/config.hpp"
#include "flow/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlim;

  // Scaled-down endurance keeps the simulation quick; real arrays move the
  // same curves out by orders of magnitude.
  const char* common =
      ":rate=0.002:endurance=300:sigma=0.3:trials=12:runs=250:seed=42";
  const struct {
    const char* label;
    std::string spec;
  } scenarios[] = {
      {"no repair", std::string("full,fault=stuck") + common},
      {"8 spares + remap",
       std::string("full,fault=stuck") + common + ":repair=remap:spares=8"},
      {"retire worn cells",
       std::string("full,alloc=retire:threshold=2,fault=stuck") + common},
  };

  const auto source = flow::Source::graph(bench::make_adder(16), "adder16");
  std::cout << "workload: 16-bit adder, stuck-at rate 0.002, endurance 300 "
               "writes, 12 Monte-Carlo arrays\n\n";

  std::vector<flow::Job> jobs;
  for (const auto& scenario : scenarios) {
    jobs.push_back({source, core::PipelineConfig::parse(scenario.spec), {}});
  }
  flow::Runner runner;
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  util::Table table({"scenario", "life p50", "life p99", "life max",
                     "failed cells", "remapped", "dropped writes"});
  for (std::size_t i = 0; i < std::size(scenarios); ++i) {
    const auto& dist = results[i].report.fault_sweep;
    if (!dist) {
      std::cerr << "expected a lifetime distribution on every report\n";
      return 1;
    }
    table.add_row({scenarios[i].label, std::to_string(dist->lifetime_p50),
                   std::to_string(dist->lifetime_p99),
                   std::to_string(dist->lifetime_max),
                   std::to_string(dist->failed_cells_min) + ".." +
                       std::to_string(dist->failed_cells_max),
                   std::to_string(dist->remapped_total),
                   std::to_string(dist->dropped_writes)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "remapping buys lifetime per spare cell; retiring trades a "
               "little area (more live cells in rotation) for a flatter wear "
               "profile\n";
  return 0;
}
