// A two-shard cluster in one process: net::Server shards on loopback
// ports, a net::ShardRouter spreading a sweep over them by consistent
// hashing, and a mid-run shard kill to show failover. The same machinery
// backs `rlim serve --listen` / `rlim submit --connect`; see
// examples/async_service.cpp for the in-process flow::Service API the
// shards are built on.

#include <chrono>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "flow/wire.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

int main() try {
  using namespace rlim;

  // 1. Start two shards on ephemeral loopback ports. Each owns its own
  //    flow::Service (and would own its own --cache-dir in a real
  //    deployment; routing keeps each shard's cache hot, so they never
  //    need to share one).
  auto shard_a = std::make_unique<net::Server>(
      net::Endpoint{"127.0.0.1", 0}, net::ServerOptions{.jobs = 2});
  auto shard_b = std::make_unique<net::Server>(
      net::Endpoint{"127.0.0.1", 0}, net::ServerOptions{.jobs = 2});
  std::cout << "shards: " << shard_a->endpoint().to_string() << ", "
            << shard_b->endpoint().to_string() << '\n';

  // 2. A sweep as wire JobSpecs: one benchmark under a range of write caps.
  std::vector<flow::wire::JobSpec> specs;
  for (unsigned cap = 10; cap <= 90; cap += 10) {
    specs.push_back(flow::wire::JobSpec::reference(
        "bench:ctrl", core::make_config(core::Strategy::FullEndurance, cap),
        "ctrl/cap=" + std::to_string(cap)));
  }

  // 3. Route it over the cluster. Consistent hashing on (graph identity,
  //    config key) decides the shard per job, so a rerun of the same sweep
  //    lands every job on the same shard's warm cache.
  net::ClientOptions client_options;
  client_options.max_retries = 2;
  client_options.backoff_base = std::chrono::milliseconds{10};
  net::ShardRouter router({shard_a->endpoint(), shard_b->endpoint()},
                          client_options);
  const auto results = router.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::cout << "  " << specs[i].label << " -> shard "
              << *router.route(specs[i]) << ", "
              << results[i].report.instructions << " instructions\n";
  }
  std::cout << "split: shard 0 answered " << shard_a->counters().frames_out
            << ", shard 1 answered " << shard_b->counters().frames_out
            << '\n';

  // 4. Ping doubles as a health probe and a stats scrape (the same frames
  //    `rlim stats --connect` prints as a table).
  const auto stats = router.ping(0);
  std::cout << "shard 0 stats: " << stats.executed << " executed, "
            << stats.program_hits << " program-cache hits, " << stats.workers
            << " workers\n";

  // 5. Kill shard 1 and rerun: its jobs fail over to the ring successor,
  //    and the batch still completes with every result intact.
  shard_b->stop();
  client_options.max_retries = 1;
  auto rerouter = net::ShardRouter({shard_a->endpoint(), shard_b->endpoint()},
                                   client_options);
  const auto rerun = rerouter.run(specs);
  std::size_t ok = 0;
  for (const auto& result : rerun) {
    ok += result.ok() ? 1 : 0;
  }
  std::cout << "after killing shard 1: " << ok << "/" << rerun.size()
            << " jobs completed, shard 1 alive=" << rerouter.alive(1)
            << ", failovers=" << rerouter.telemetry().failovers
            << ", rerouted=" << rerouter.telemetry().rerouted << '\n';
  return ok == rerun.size() ? 0 : 1;
} catch (const std::exception& error) {
  std::cerr << "cluster_quickstart: " << error.what() << '\n';
  return 1;
}
