// Netlist interoperability: export an MIG to BLIF (for external logic
// tools), read a BLIF produced elsewhere, and run the endurance pipeline on
// it. Also demonstrates the plain-text .mig exchange format.
//
//   $ ./build/examples/netlist_interop

#include <iostream>
#include <sstream>

#include "benchmarks/control.hpp"
#include "flow/runner.hpp"
#include "mig/io.hpp"
#include "mig/simulate.hpp"

int main() {
  using namespace rlim;

  // A function another tool might hand us: 16-line priority encoder.
  const auto original = bench::make_priority_encoder(16);

  // Round-trip through BLIF…
  std::stringstream blif;
  mig::write_blif(original, blif, "priority16");
  const auto text = blif.str();
  std::cout << "BLIF export: " << text.size() << " bytes, first lines:\n";
  std::istringstream head(text);
  std::string line;
  for (int i = 0; i < 5 && std::getline(head, line); ++i) {
    std::cout << "  " << line << '\n';
  }
  std::istringstream reparse(text);
  const auto imported = mig::read_blif(reparse);
  std::cout << "re-imported: " << imported.num_gates() << " gates (original "
            << original.num_gates() << ")\n";
  std::cout << "functions equivalent: "
            << (mig::equivalent_random(original, imported, 16, 42) ? "yes" : "NO")
            << "\n\n";

  // …and through the .mig text format.
  std::stringstream migtext;
  mig::write_mig(original, migtext);
  const auto reread = mig::read_mig(migtext);
  std::cout << ".mig round-trip equivalent: "
            << (mig::equivalent_random(original, reread, 16, 43) ? "yes" : "NO")
            << "\n\n";

  // Imported netlists drop straight into the endurance pipeline as flow
  // Sources (files would use flow::Source::netlist("path.blif") instead).
  const auto result = flow::run_job(
      {flow::Source::graph(imported, "imported"),
       core::PipelineConfig::parse("full"),
       {}});
  if (!result.ok()) {
    std::cerr << "pipeline failed: " << result.error << '\n';
    return 1;
  }
  std::cout << "compiled imported netlist: " << result.report.instructions
            << " instructions, " << result.report.rrams
            << " cells, write stdev " << result.report.writes.stdev << '\n';
  return 0;
}
