// Wear budgeting: a downstream-user scenario for the maximum write count
// strategy (paper Table III). Given a deployment that must survive N program
// executions on cells with endurance E, find the loosest write cap that
// meets the target and report its area/latency price.
//
//   $ ./build/examples/wear_budgeting

#include <iostream>

#include "benchmarks/arithmetic.hpp"
#include "core/endurance.hpp"
#include "core/lifetime.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlim;

  constexpr std::uint64_t kEndurance = 10'000'000'000ULL;  // HfOx-class [5]
  constexpr std::uint64_t kTargetExecutions = 800'000'000ULL;

  // The workload: a 16-bit multiplier kernel executed on every invocation.
  const auto graph = bench::make_multiplier(16);
  std::cout << "workload: 16-bit multiplier, target " << kTargetExecutions
            << " executions at cell endurance " << kEndurance << "\n\n";

  const auto base_config = core::make_config(core::Strategy::FullEndurance);
  const auto prepared = core::prepare(graph, base_config);

  util::Table table({"write cap", "#I", "#R", "max writes", "STDEV",
                     "guaranteed executions", "meets target"});
  std::optional<std::uint64_t> chosen;
  const auto uncapped =
      core::compile_prepared(prepared, base_config, "multiplier16");
  for (const std::uint64_t cap : {0ULL, 100ULL, 50ULL, 20ULL, 10ULL}) {
    const auto report =
        cap == 0 ? uncapped
                 : core::compile_prepared(
                       prepared, core::make_config(core::Strategy::FullEndurance, cap),
                       "multiplier16");
    const auto lifetime = core::estimate_lifetime(report.writes, kEndurance);
    const bool ok = lifetime.executions_to_first_failure >= kTargetExecutions;
    if (ok && !chosen) {
      chosen = cap;
    }
    table.add_row({cap == 0 ? "none" : std::to_string(cap),
                   std::to_string(report.instructions),
                   std::to_string(report.rrams),
                   std::to_string(report.writes.max),
                   util::Table::fixed(report.writes.stdev),
                   std::to_string(lifetime.executions_to_first_failure),
                   ok ? "yes" : "no"});
  }
  std::cout << table.to_string() << '\n';
  if (chosen) {
    std::cout << "loosest cap meeting the target: "
              << (*chosen == 0 ? "no cap needed" : std::to_string(*chosen))
              << '\n';
  } else {
    std::cout << "no evaluated cap meets the target — tighten further or "
                 "shard the workload across arrays\n";
  }
  return 0;
}
