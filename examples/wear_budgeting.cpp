// Wear budgeting: a downstream-user scenario for the maximum write count
// strategy (paper Table III). Given a deployment that must survive N program
// executions on cells with endurance E, find the loosest write cap that
// meets the target and report its area/latency price. The whole cap sweep is
// one flow::Runner batch over a shared Source — the Algorithm-2 rewrite runs
// once and every capped compilation reuses it from the rewrite cache.
//
//   $ ./build/examples/wear_budgeting

#include <iostream>

#include "benchmarks/arithmetic.hpp"
#include "core/lifetime.hpp"
#include "flow/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlim;

  constexpr std::uint64_t kEndurance = 10'000'000'000ULL;  // HfOx-class [5]
  constexpr std::uint64_t kTargetExecutions = 800'000'000ULL;

  // The workload: a 16-bit multiplier kernel executed on every invocation.
  const auto source = flow::Source::graph(bench::make_multiplier(16),
                                          "multiplier16");
  std::cout << "workload: 16-bit multiplier, target " << kTargetExecutions
            << " executions at cell endurance " << kEndurance << "\n\n";

  constexpr std::uint64_t kCaps[] = {0, 100, 50, 20, 10};  // 0 = uncapped
  std::vector<flow::Job> jobs;
  for (const std::uint64_t cap : kCaps) {
    // Preset alias + cap override in the config-spec grammar; "full" alone
    // is the uncapped full-endurance flow.
    const auto spec =
        cap == 0 ? std::string("full") : "full,cap=" + std::to_string(cap);
    jobs.push_back({source, core::PipelineConfig::parse(spec), {}});
  }
  flow::Runner runner;
  const auto results = runner.run(jobs);
  flow::throw_on_error(results);

  util::Table table({"write cap", "#I", "#R", "max writes", "STDEV",
                     "guaranteed executions", "meets target"});
  std::optional<std::uint64_t> chosen;
  for (std::size_t i = 0; i < std::size(kCaps); ++i) {
    const auto& report = results[i].report;
    const auto lifetime = core::estimate_lifetime(report.writes, kEndurance);
    const bool ok = lifetime.executions_to_first_failure >= kTargetExecutions;
    if (ok && !chosen) {
      chosen = kCaps[i];
    }
    table.add_row({kCaps[i] == 0 ? "none" : std::to_string(kCaps[i]),
                   std::to_string(report.instructions),
                   std::to_string(report.rrams),
                   std::to_string(report.writes.max),
                   util::Table::fixed(report.writes.stdev),
                   std::to_string(lifetime.executions_to_first_failure),
                   ok ? "yes" : "no"});
  }
  std::cout << table.to_string() << '\n';
  if (chosen) {
    std::cout << "loosest cap meeting the target: "
              << (*chosen == 0 ? "no cap needed" : std::to_string(*chosen))
              << '\n';
  } else {
    std::cout << "no evaluated cap meets the target — tighten further or "
                 "shard the workload across arrays\n";
  }
  return 0;
}
