#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "flow/job.hpp"
#include "mig/rewriting.hpp"

namespace rlim::flow {

/// Content-addressed cache of rewritten MIGs, shared by every job of a
/// Runner batch. Keyed by (graph fingerprint, RewriteKind, effort), so a
/// sweep that compiles the same benchmark under many strategies runs each
/// rewriting flow exactly once — the generalization of the manual
/// "PreparedBenchmark" sharing the bench drivers used to hand-roll.
///
/// Thread-safe with single-flight semantics: when two workers request the
/// same missing key concurrently, one performs the rewrite and the other
/// blocks on its result, never duplicating work.
class RewriteCache {
public:
  struct Entry {
    std::shared_ptr<const mig::Mig> graph;
    mig::RewriteStats stats;
  };

  /// Returns the rewritten graph for the triple, computing it on a miss.
  /// Exceptions from graph construction / rewriting propagate to every
  /// waiter of the entry.
  Entry get(const Source& source, mig::RewriteKind kind, int effort);

  /// Number of cache lookups answered without rewriting.
  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  /// Number of lookups that ran a rewriting flow (== distinct keys seen).
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// How many times the given flow actually ran.
  [[nodiscard]] std::size_t rewrites(mig::RewriteKind kind) const;

  void clear();

private:
  struct Key {
    std::uint64_t fingerprint;
    mig::RewriteKind kind;
    int effort;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  std::mutex mutex_;
  std::unordered_map<Key, std::shared_future<Entry>, KeyHash> entries_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::array<std::atomic<std::size_t>, mig::kRewriteKindCount>
      rewrites_by_kind_{};
};

}  // namespace rlim::flow
