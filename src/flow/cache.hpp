#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "flow/job.hpp"
#include "mig/rewriting.hpp"

namespace rlim::store {
class DiskStore;
struct IoScratch;
}

namespace rlim::flow {

/// Two-level content-addressed cache shared by every job of a Runner batch.
///
/// Level 1 (rewrite): rewritten MIGs keyed on (graph fingerprint, canonical
/// rewrite spec) — a sweep that compiles the same benchmark under many
/// strategies runs each rewriting flavour exactly once.
///
/// Level 2 (program): compiled programs keyed on (graph fingerprint,
/// PipelineConfig::canonical_key()) — repeated (source, config) pairs across
/// or within batches skip compilation entirely and share one
/// EnduranceReport. A program-level miss feeds through level 1, so the two
/// levels compose: distinct configs sharing a rewrite flavour still share
/// the rewritten graph.
///
/// Thread-safe with single-flight semantics per level: when two workers
/// request the same missing key concurrently, one computes and the other
/// blocks on its result, never duplicating work. Exceptions propagate to
/// every waiter of the entry.
///
/// Optionally backed by a persistent store::DiskStore (attach_store): an
/// in-memory miss then consults the disk tier before computing, and a
/// computed entry is written through, so rewrites and whole compiled
/// programs survive across process invocations. Disk traffic runs inside
/// the single-flight owner, so concurrent workers never load or serialize
/// the same entry twice.
class PipelineCache {
public:
  struct RewriteEntry {
    std::shared_ptr<const mig::Mig> graph;
    mig::RewriteStats stats;
  };

  struct CompiledEntry {
    /// The graph the compiler consumed (the Source's own graph for `none`).
    std::shared_ptr<const mig::Mig> prepared;
    mig::RewriteStats rewrite_stats;
    /// Label-agnostic report (benchmark name left empty — callers patch in
    /// their job label).
    std::shared_ptr<const core::EnduranceReport> report;
  };

  /// Level 1: the rewritten graph for (source fingerprint, rewrite spec),
  /// computing it on a miss. `scratch` (optional) recycles the disk tier's
  /// I/O buffers — flow workers pass their per-worker scratch.
  RewriteEntry rewrite(const Source& source, const util::PolicySpec& spec,
                       store::IoScratch* scratch = nullptr);

  /// Level 2: the compiled program for (source fingerprint,
  /// config.canonical_key()), rewriting (through level 1) and compiling on a
  /// miss. The config is normalized first, so hand-assembled and
  /// parse()/make_config-built configs of equal behavior share one entry.
  CompiledEntry compiled(const Source& source,
                         const core::PipelineConfig& config,
                         store::IoScratch* scratch = nullptr);

  /// Level-1 lookups answered without rewriting / that ran a flow.
  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// How many times the flow registered under `key` actually ran.
  [[nodiscard]] std::size_t rewrites(std::string_view key) const;

  /// Level-2 lookups answered without compiling / that ran the compiler.
  [[nodiscard]] std::size_t program_hits() const {
    return program_hits_.load();
  }
  [[nodiscard]] std::size_t program_misses() const {
    return program_misses_.load();
  }

  /// Attaches (or, with nullptr, detaches) the persistent backing tier.
  /// Not synchronized against in-flight lookups — attach before handing the
  /// cache to workers, the way Runner does at construction.
  void attach_store(std::shared_ptr<store::DiskStore> store);
  [[nodiscard]] const std::shared_ptr<store::DiskStore>& disk_store() const {
    return store_;
  }

  void clear();

private:
  struct Key {
    std::uint64_t fingerprint;
    std::string spec;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  std::shared_ptr<store::DiskStore> store_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_future<RewriteEntry>, KeyHash> rewrites_;
  std::unordered_map<Key, std::shared_future<CompiledEntry>, KeyHash>
      programs_;
  std::unordered_map<std::string, std::size_t> rewrites_by_key_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> program_hits_{0};
  std::atomic<std::size_t> program_misses_{0};
};

/// Historical name from when the cache only covered rewrites.
using RewriteCache = PipelineCache;

/// The naive baseline's "rewrite": shares the Source's graph exactly as
/// constructed (no cleanup pass, no cache entry) and mirrors its shape into
/// the stats. Single definition for the cached and uncached execution paths.
[[nodiscard]] PipelineCache::RewriteEntry passthrough_rewrite(
    const Source& source);

}  // namespace rlim::flow
