#include "flow/wire.hpp"

#include <utility>

#include "core/config.hpp"
#include "store/serialize.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::flow::wire {

namespace {

/// magic + version + kind before the payload, hash after it.
constexpr std::size_t kHeaderSize = 4 + 4 + 1;
constexpr std::size_t kHashSize = 8;

/// Encoders write the payload straight after this header into the same
/// buffer (no second payload copy — inline graphs dominate frame size),
/// then seal() it.
util::ByteWriter frame_header(MessageKind kind) {
  util::ByteWriter out;
  out.raw(kMagic).u32(kWireVersion).u8(static_cast<std::uint8_t>(kind));
  return out;
}

std::string seal(util::ByteWriter out) {
  out.u64(util::fnv1a64(out.bytes()));
  return out.take();
}

/// Authenticates one frame and returns (kind, payload view into `bytes`).
std::pair<MessageKind, std::string_view> unframe(std::string_view bytes) {
  require(bytes.size() >= kHeaderSize + kHashSize, "wire: truncated frame");
  require(bytes.substr(0, kMagic.size()) == kMagic,
          "wire: bad magic (not a flow wire frame)");
  const auto body = bytes.substr(0, bytes.size() - kHashSize);
  util::ByteReader tail(bytes.substr(bytes.size() - kHashSize));
  require(tail.u64() == util::fnv1a64(body),
          "wire: integrity hash mismatch (frame damaged in transit)");
  util::ByteReader head(body.substr(kMagic.size()));
  const auto version = head.u32();
  require(version == kWireVersion,
          "wire: version mismatch (frame v" + std::to_string(version) +
              ", this build speaks v" + std::to_string(kWireVersion) + ")");
  const auto kind = head.u8();
  require(kind >= static_cast<std::uint8_t>(MessageKind::JobSpec) &&
              kind <= static_cast<std::uint8_t>(MessageKind::Stats),
          "wire: unknown message kind");
  return {static_cast<MessageKind>(kind), body.substr(kHeaderSize)};
}

std::string_view payload_of(std::string_view bytes, MessageKind expected) {
  const auto [kind, payload] = unframe(bytes);
  require(kind == expected,
          "wire: expected a " + std::string(to_string(expected)) +
              " frame, got " + std::string(to_string(kind)));
  return payload;
}

}  // namespace

// ---- JobSpec ---------------------------------------------------------------

JobSpec JobSpec::reference(std::string ref, const core::PipelineConfig& config,
                           std::string label) {
  require(!ref.empty(), "wire: JobSpec reference needs a source");
  JobSpec spec;
  spec.source_ref = std::move(ref);
  spec.config_spec = config.canonical_key();
  spec.label = std::move(label);
  return spec;
}

JobSpec JobSpec::inline_graph(mig::Mig graph, std::string graph_label,
                              const core::PipelineConfig& config,
                              std::string label) {
  JobSpec spec;
  spec.graph = std::move(graph);
  spec.graph_label = std::move(graph_label);
  spec.config_spec = config.canonical_key();
  spec.label = std::move(label);
  return spec;
}

Job JobSpec::to_job() const {
  Job job;
  if (graph) {
    job.source =
        Source::graph(*graph, graph_label.empty() ? "inline" : graph_label);
  } else {
    job.source = Source::netlist(source_ref);
  }
  job.config = core::PipelineConfig::parse(config_spec);
  job.label = label;
  job.priority = priority;
  if (deadline_ms) {
    job.deadline = std::chrono::milliseconds(*deadline_ms);
  }
  return job;
}

std::string encode(const JobSpec& spec) {
  auto out = frame_header(MessageKind::JobSpec);
  out.u8(spec.graph.has_value() ? 1 : 0);
  if (spec.graph) {
    out.str(spec.graph_label);
    store::encode(out, *spec.graph);
  } else {
    out.str(spec.source_ref);
  }
  out.str(spec.config_spec);
  out.str(spec.label);
  out.u8(static_cast<std::uint8_t>(spec.priority));
  out.u8(spec.deadline_ms.has_value() ? 1 : 0);
  if (spec.deadline_ms) {
    out.u64(*spec.deadline_ms);
  }
  return seal(std::move(out));
}

JobSpec decode_job_spec(std::string_view bytes) {
  util::ByteReader in(payload_of(bytes, MessageKind::JobSpec));
  JobSpec spec;
  const auto has_graph = in.u8();
  require(has_graph <= 1, "wire: bad JobSpec source tag");
  if (has_graph == 1) {
    spec.graph_label = in.str();
    spec.graph = store::decode_mig(in);
  } else {
    spec.source_ref = in.str();
    require(!spec.source_ref.empty(), "wire: JobSpec without a source");
  }
  spec.config_spec = in.str();
  spec.label = in.str();
  const auto priority = in.u8();
  require(priority < sched::kPriorityBands, "wire: bad JobSpec priority");
  spec.priority = static_cast<sched::Priority>(priority);
  const auto has_deadline = in.u8();
  require(has_deadline <= 1, "wire: bad JobSpec deadline tag");
  if (has_deadline == 1) {
    spec.deadline_ms = in.u64();
  }
  in.expect_end();
  // Validate eagerly, exactly like the disk store's report decoder: a spec
  // naming a policy this build does not register is rejected at the wire
  // boundary, not deep inside a worker.
  (void)core::PipelineConfig::parse(spec.config_spec);
  return spec;
}

// ---- JobResult -------------------------------------------------------------

std::string encode(const JobResult& result) {
  auto out = frame_header(MessageKind::JobResult);
  if (!result.ok()) {
    out.u8(0).str(result.error);
    return seal(std::move(out));
  }
  out.u8(1);
  store::encode(out, result.rewrite_stats);
  store::encode(out, result.report);
  out.u8(result.prepared != nullptr ? 1 : 0);
  if (result.prepared != nullptr) {
    store::encode(out, *result.prepared);
  }
  return seal(std::move(out));
}

JobResult decode_job_result(std::string_view bytes) {
  util::ByteReader in(payload_of(bytes, MessageKind::JobResult));
  JobResult result;
  const auto ok = in.u8();
  require(ok <= 1, "wire: bad JobResult status tag");
  if (ok == 0) {
    result.error = in.str();
    require(!result.error.empty(), "wire: failed JobResult without an error");
    in.expect_end();
    return result;
  }
  result.rewrite_stats = store::decode_rewrite_stats(in);
  result.report = store::decode_report(in);
  const auto has_prepared = in.u8();
  require(has_prepared <= 1, "wire: bad JobResult graph tag");
  if (has_prepared == 1) {
    result.prepared = std::make_shared<const mig::Mig>(store::decode_mig(in));
  }
  in.expect_end();
  return result;
}

// ---- Ping / Stats ----------------------------------------------------------

std::string encode_ping() { return seal(frame_header(MessageKind::Ping)); }

void decode_ping(std::string_view bytes) {
  util::ByteReader in(payload_of(bytes, MessageKind::Ping));
  in.expect_end();
}

std::string encode(const StatsReply& stats) {
  auto out = frame_header(MessageKind::Stats);
  out.u64(stats.submitted)
      .u64(stats.completed)
      .u64(stats.executed)
      .u64(stats.coalesced)
      .u64(stats.cancelled)
      .u64(stats.rewrite_hits)
      .u64(stats.rewrite_misses)
      .u64(stats.program_hits)
      .u64(stats.program_misses);
  out.u8(stats.has_store ? 1 : 0);
  if (stats.has_store) {
    out.u64(stats.store_rewrite_loads)
        .u64(stats.store_program_loads)
        .u64(stats.store_load_misses)
        .u64(stats.store_stores)
        .u64(stats.store_failures)
        .u64(stats.store_evicted_corrupt)
        .u64(stats.store_evicted_version);
  }
  out.u32(stats.workers);
  out.u64(stats.sched_queue_depth)
      .u64(stats.sched_stolen)
      .u64(stats.sched_parks)
      .u64(stats.sched_overflows)
      .u64(stats.sched_forked)
      .u64(stats.sched_low)
      .u64(stats.sched_normal)
      .u64(stats.sched_high);
  return seal(std::move(out));
}

StatsReply decode_stats(std::string_view bytes) {
  util::ByteReader in(payload_of(bytes, MessageKind::Stats));
  StatsReply stats;
  stats.submitted = in.u64();
  stats.completed = in.u64();
  stats.executed = in.u64();
  stats.coalesced = in.u64();
  stats.cancelled = in.u64();
  stats.rewrite_hits = in.u64();
  stats.rewrite_misses = in.u64();
  stats.program_hits = in.u64();
  stats.program_misses = in.u64();
  const auto has_store = in.u8();
  require(has_store <= 1, "wire: bad StatsReply store tag");
  stats.has_store = has_store == 1;
  if (stats.has_store) {
    stats.store_rewrite_loads = in.u64();
    stats.store_program_loads = in.u64();
    stats.store_load_misses = in.u64();
    stats.store_stores = in.u64();
    stats.store_failures = in.u64();
    stats.store_evicted_corrupt = in.u64();
    stats.store_evicted_version = in.u64();
  }
  stats.workers = in.u32();
  stats.sched_queue_depth = in.u64();
  stats.sched_stolen = in.u64();
  stats.sched_parks = in.u64();
  stats.sched_overflows = in.u64();
  stats.sched_forked = in.u64();
  stats.sched_low = in.u64();
  stats.sched_normal = in.u64();
  stats.sched_high = in.u64();
  in.expect_end();
  return stats;
}

MessageKind peek_kind(std::string_view frame) { return unframe(frame).first; }

}  // namespace rlim::flow::wire
