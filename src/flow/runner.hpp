#pragma once

#include <string>
#include <vector>

#include "flow/cache.hpp"
#include "flow/job.hpp"
#include "flow/report.hpp"
#include "flow/service.hpp"

namespace rlim::flow {

struct RunnerOptions {
  /// Worker-thread count; 0 selects std::thread::hardware_concurrency().
  unsigned jobs = 0;
  /// Share rewritten graphs across jobs via the cache's rewrite level.
  /// Disabling also disables program caching (it measures cold cost).
  bool cache_rewrites = true;
  /// Memoize compiled programs on (fingerprint, canonical config key):
  /// repeated (source, config) pairs skip compilation entirely. Disable to
  /// measure cold compilation cost; requires cache_rewrites.
  bool cache_programs = true;
  /// Directory of the persistent store::DiskStore backing the cache
  /// (created on demand); empty leaves the disk tier off. Requires
  /// cache_rewrites (the store backs the cache). The Runner itself never
  /// consults the environment — benchmarks and tests stay hermetic
  /// however the caller's shell is configured. Front-ends that honor
  /// RLIM_CACHE_DIR (the rlim CLI, the bench drivers) resolve it into this
  /// field (store::env_cache_dir()).
  std::string cache_dir{};
};

/// Executes a batch of Jobs on a thread pool and returns one JobResult per
/// job, in job order — the synchronous convenience over flow::Service
/// (src/flow/service.hpp), which is the underlying async engine. run() is
/// exactly submit_batch + collect on a private Service; callers that need
/// incremental submission, progress, or cancellation should hold a Service
/// directly.
///
/// Determinism: every pipeline stage is a pure function of its job, so the
/// results — and any report rendered from them — are byte-identical for any
/// worker count. Job-level failures are captured in JobResult::error instead
/// of aborting the batch.
///
/// The pipeline cache persists across run() calls, so multi-phase sweeps
/// (e.g. "run uncapped first, then only the binding caps") reuse earlier
/// rewrites — and whole compiled programs — by handing their batches to the
/// same Runner. With a cache_dir (or RLIM_CACHE_DIR) it also persists
/// *across invocations*: the cache reads through to / writes through to a
/// store::DiskStore, so a repeated sweep recompiles nothing.
class Runner {
public:
  /// Throws rlim::Error when the cache directory can neither be created
  /// nor read (a readable read-only store degrades to read-through), or
  /// when cache_dir is combined with cache_rewrites=false.
  explicit Runner(RunnerOptions options = {});

  [[nodiscard]] std::vector<JobResult> run(const std::vector<Job>& jobs);

  /// Worker threads a run() over `job_count` jobs would use.
  [[nodiscard]] unsigned concurrency(std::size_t job_count) const;

  [[nodiscard]] const PipelineCache& cache() const { return service_.cache(); }

private:
  RunnerOptions options_;
  /// Coalescing stays off so the façade is bug-compatible with the
  /// pre-Service Runner: every duplicate job goes through the cache and the
  /// historical hit/miss counters (which tests and the bench self-checks
  /// assert on) keep their exact values.
  Service service_;
};

/// Runs one job inline (single worker, fresh cache) — the one-off
/// convenience, routed through the same Service path as every batch so the
/// single-job and batch flows cannot drift apart.
[[nodiscard]] JobResult run_job(const Job& job);

/// Throws rlim::Error with the first failed job's message, if any.
void throw_on_error(const std::vector<JobResult>& results);

/// Shared command-line options of the bench drivers.
struct DriverOptions {
  ReportFormat format = ReportFormat::Table;
  unsigned jobs = 0;  ///< Runner worker count (0 = hardware concurrency)
  /// Persistent pipeline store directory: --cache-dir, falling back to
  /// RLIM_CACHE_DIR (store::env_cache_dir()) like the rlim CLI; empty keeps
  /// the disk tier off. Hand to RunnerOptions::cache_dir.
  std::string cache_dir{};
};

/// Parses `--format table|csv|json`, `--jobs N`, and `--cache-dir DIR` from
/// a bench driver's argv. On bad usage, prints a message to stderr and exits
/// with code 2 (bench drivers have no other CLI surface).
[[nodiscard]] DriverOptions parse_driver_args(int argc, char** argv);

}  // namespace rlim::flow
