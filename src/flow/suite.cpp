#include "flow/suite.hpp"

#include <cstdlib>

#include "benchmarks/suite.hpp"

namespace rlim::flow {

SuiteSelection suite() {
  SuiteSelection selection;
  const char* env = std::getenv("RLIM_SUITE");
  selection.mini = env != nullptr && std::string(env) == "mini";
  if (selection.mini) {
    selection.specs = &bench::mini_suite();
    selection.label = "mini (RLIM_SUITE=mini)";
  } else {
    selection.specs = &bench::paper_suite();
    selection.label = "paper profile";
  }
  return selection;
}

std::vector<SourcePtr> suite_sources(const SuiteSelection& selection) {
  std::vector<SourcePtr> sources;
  sources.reserve(selection.specs->size());
  for (const auto& spec : *selection.specs) {
    sources.push_back(Source::benchmark(spec));
  }
  return sources;
}

std::vector<SourcePtr> suite_sources() { return suite_sources(suite()); }

std::span<const core::Strategy> paper_strategies() {
  static constexpr core::Strategy kStrategies[5] = {
      core::Strategy::Naive, core::Strategy::Plim21, core::Strategy::MinWrite,
      core::Strategy::MinWriteEnduranceRewrite, core::Strategy::FullEndurance};
  return kStrategies;
}

}  // namespace rlim::flow
