#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace rlim::flow {

/// Output format of a ReportSink.
enum class ReportFormat {
  Table,  ///< aligned ASCII table (the paper-table look)
  Csv,    ///< RFC-4180 cells; title/notes as `#` comment lines
  Json,   ///< one object: {"title", "columns", "rows", "notes"}
};

[[nodiscard]] std::string to_string(ReportFormat format);
/// Parses "table" / "csv" / "json" (throws rlim::Error otherwise).
[[nodiscard]] ReportFormat parse_format(const std::string& name);

/// A rendered result document: the tabular payload every driver produces,
/// decoupled from how it is serialized. Drivers fill one (or several) of
/// these and hand them to a ReportSink.
struct Report {
  std::string title;
  std::vector<std::string> columns;
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<Row> rows;
  /// Free-text annotations (paper reference values, expected shapes, ...).
  std::vector<std::string> notes;

  void add_row(std::vector<std::string> cells) {
    rows.push_back({std::move(cells), false});
  }
  void add_separator() { rows.push_back({{}, true}); }
  void add_note(std::string note) { notes.push_back(std::move(note)); }
};

/// Serialization strategy for Reports. Implementations must be stateless
/// w.r.t. the document (every write() is self-contained), so one sink can
/// render any number of reports.
class ReportSink {
public:
  virtual ~ReportSink() = default;
  virtual void write(const Report& report, std::ostream& os) = 0;
};

/// Aligned ASCII table (util::Table layout), title first, notes after.
class TableSink final : public ReportSink {
public:
  void write(const Report& report, std::ostream& os) override;
};

/// Header + data rows with RFC-4180 quoting; separators are skipped and
/// title/notes become `# ` comment lines.
class CsvSink final : public ReportSink {
public:
  void write(const Report& report, std::ostream& os) override;
};

/// One JSON object per report, rows as arrays of strings.
class JsonSink final : public ReportSink {
public:
  void write(const Report& report, std::ostream& os) override;
};

[[nodiscard]] std::unique_ptr<ReportSink> make_sink(ReportFormat format);

/// One RFC-4180 CSV row (CsvSink's cell quoting) — shared with streaming
/// front-ends like `rlim serve` that emit rows one at a time instead of
/// whole Report documents.
void write_csv_row(const std::vector<std::string>& cells, std::ostream& os);

}  // namespace rlim::flow
