#pragma once

#include <span>
#include <string>
#include <vector>

#include "flow/job.hpp"

namespace rlim::bench {
struct BenchmarkSpec;
}

namespace rlim::flow {

/// Which built-in evaluation suite a sweep runs over. The single place that
/// interprets the RLIM_SUITE environment variable (the bench drivers used to
/// re-parse it in every helper).
struct SuiteSelection {
  /// Points at bench::paper_suite() or bench::mini_suite().
  const std::vector<bench::BenchmarkSpec>* specs = nullptr;
  /// Human-readable provenance, e.g. "paper profile" / "mini (RLIM_SUITE=mini)".
  std::string label;
  bool mini = false;
};

/// Reads RLIM_SUITE: "mini" selects the scaled-down instances, anything else
/// (or unset) the full paper profile.
[[nodiscard]] SuiteSelection suite();

/// One shared Source per benchmark of the selection, in suite order.
[[nodiscard]] std::vector<SourcePtr> suite_sources(const SuiteSelection& selection);
[[nodiscard]] std::vector<SourcePtr> suite_sources();

/// The five incremental endurance-management configurations of the paper's
/// Table I, in column order — the canonical strategy sweep.
[[nodiscard]] std::span<const core::Strategy> paper_strategies();

}  // namespace rlim::flow
