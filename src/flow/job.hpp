#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/endurance.hpp"
#include "mig/mig.hpp"
#include "mig/rewriting.hpp"
#include "sched/deque.hpp"

namespace rlim::bench {
struct BenchmarkSpec;
}

namespace rlim::flow {

/// The input graph of one or more jobs. A Source is shared (by
/// `std::shared_ptr`) between every job that compiles the same netlist, so
/// the graph is built/loaded exactly once per batch and the rewrite cache
/// can key on its content fingerprint.
///
/// Construction is lazy and thread-safe: the graph materializes on the first
/// `original()` / `fingerprint()` call, which may happen on any Runner
/// worker thread.
class Source {
public:
  /// A generator from the built-in evaluation suite.
  [[nodiscard]] static std::shared_ptr<Source> benchmark(
      const bench::BenchmarkSpec& spec);
  /// Looks `name` up in `bench::paper_suite()` (throws rlim::Error when
  /// unknown).
  [[nodiscard]] static std::shared_ptr<Source> benchmark(const std::string& name);
  /// A netlist reference in CLI notation: `bench:NAME`, `*.mig`, or `*.blif`.
  [[nodiscard]] static std::shared_ptr<Source> netlist(const std::string& spec);
  /// An in-memory graph.
  [[nodiscard]] static std::shared_ptr<Source> graph(mig::Mig graph,
                                                     std::string label);

  [[nodiscard]] const std::string& label() const { return label_; }
  /// Declared PI/PO profile (benchmark sources); 0 when not declared.
  [[nodiscard]] unsigned pis() const { return pis_; }
  [[nodiscard]] unsigned pos() const { return pos_; }

  /// The unrewritten graph; built on first call (throws on load failure).
  [[nodiscard]] const mig::Mig& original() const;
  /// Shared handle to `original()` — jobs that compile the graph unrewritten
  /// (RewriteKind::None) carry this as their JobResult::prepared.
  [[nodiscard]] std::shared_ptr<const mig::Mig> original_ptr() const;
  /// Content hash of `original()` — the rewrite-cache key component.
  [[nodiscard]] std::uint64_t fingerprint() const;
  /// fingerprint() if the graph is already materialized, nullopt otherwise —
  /// never builds. Lets flow::Service coalesce duplicate submissions without
  /// blocking the submitting thread on graph construction.
  [[nodiscard]] std::optional<std::uint64_t> ready_fingerprint() const;

private:
  Source() = default;

  [[nodiscard]] const mig::Mig& original_locked() const;

  std::string label_;
  unsigned pis_ = 0;
  unsigned pos_ = 0;
  std::function<mig::Mig()> build_;

  mutable std::mutex mutex_;
  mutable std::shared_ptr<const mig::Mig> graph_;
  mutable std::optional<std::uint64_t> fingerprint_;
};

using SourcePtr = std::shared_ptr<Source>;

/// One cell of a sweep: an input source crossed with a pipeline
/// configuration. The whole batch is handed to flow::Runner.
struct Job {
  SourcePtr source;
  core::PipelineConfig config;
  /// Report label; defaults to the source's label when empty.
  std::string label;
  /// Dequeue-order hints, honored by the Service's work-stealing scheduler.
  /// Neither affects the result bytes — a job computes the same report in
  /// any band — only when it runs relative to its queue peers.
  sched::Priority priority = sched::Priority::Normal;
  /// Soft latency budget, relative to submission; the Service converts it
  /// to an absolute deadline at submit time (earliest-deadline-first within
  /// the priority band). nullopt = no deadline.
  std::optional<std::chrono::milliseconds> deadline{};

  [[nodiscard]] const std::string& display_label() const {
    return label.empty() ? source->label() : label;
  }
};

/// Outcome of one job. Either `error` is empty and the remaining fields are
/// valid, or `error` carries the exception message of the failed pipeline.
struct JobResult {
  core::EnduranceReport report;
  /// Telemetry of the rewriting run that produced `prepared` (recorded once
  /// per cache entry; identical for every job sharing the entry).
  mig::RewriteStats rewrite_stats;
  /// The rewritten graph the compiler consumed — shared with every job that
  /// hit the same cache entry.
  std::shared_ptr<const mig::Mig> prepared;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

}  // namespace rlim::flow
