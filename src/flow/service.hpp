#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flow/cache.hpp"
#include "flow/job.hpp"
#include "sched/sched.hpp"

namespace rlim::store {
struct IoScratch;
}

namespace rlim::flow {

/// Handle of one submitted Job. Tickets are unique per Service instance and
/// never reused; they are plain integers so a future network front-end can
/// ship them across a process boundary verbatim.
using Ticket = std::uint64_t;

struct ServiceOptions {
  /// Worker-pool ceiling; 0 selects std::thread::hardware_concurrency().
  /// Threads spawn lazily (one per enqueued job, up to the ceiling) and
  /// live until shutdown().
  unsigned jobs = 0;
  /// Per-worker deque bound of the work-stealing scheduler; pushes that find
  /// every deque full spill to its unbounded shared injector queue.
  std::size_t deque_capacity = 1024;
  /// Benchmark baseline: funnel every job through one shared queue instead
  /// of per-worker deques + stealing (the pre-scheduler convoy shape).
  /// BM_ServeLoad flips this for an apples-to-apples comparison; production
  /// code leaves it false.
  bool single_queue = false;
  /// Share rewritten graphs across jobs via the cache's rewrite level.
  /// Disabling also disables program caching (it measures cold cost).
  bool cache_rewrites = true;
  /// Memoize compiled programs on (fingerprint, canonical config key).
  bool cache_programs = true;
  /// Directory of the persistent store::DiskStore backing the cache; empty
  /// leaves the disk tier off. Same hermeticity contract as RunnerOptions:
  /// the Service never consults the environment.
  std::string cache_dir{};
  /// Coalesce duplicate submissions on (graph fingerprint, canonical config
  /// key): a duplicate of a pending or running job never occupies a worker —
  /// it is fulfilled from the primary's result with its own label patched
  /// in. Results are identical to a program-cache hit; the difference is
  /// accounting (coalesced jobs never touch the cache counters) and that no
  /// worker blocks on the duplicate. The Runner façade turns this off to
  /// keep the historical cache-counter semantics observable.
  bool coalesce = true;
  /// Completion hook: invoked once per ticket — after its result became
  /// collectable — with no Service lock held, from whichever thread finished
  /// it (a worker, a cancelling caller, or shutdown()). The hook may call
  /// try_get()/wait() on the ticket; it must not block for long (it runs on
  /// the worker's time) and must tolerate tickets it never saw submitted
  /// (none are generated, but ordering with concurrent collectors is the
  /// hook's problem: a racing wait() may have collected the ticket first).
  /// This is how the socket front-end turns job completion into an event
  /// instead of a poll.
  std::function<void(Ticket)> on_finished{};
};

/// Monotonic per-Service counters (all since construction).
struct ServiceStats {
  std::size_t submitted = 0;  ///< tickets issued
  std::size_t completed = 0;  ///< tickets finished (any way)
  std::size_t executed = 0;   ///< jobs that actually ran the pipeline
  std::size_t coalesced = 0;  ///< duplicates fulfilled from a primary
  std::size_t cancelled = 0;  ///< tickets cancelled before execution
};

/// Progress handle of one submit_batch() call. Cheap to copy (shared state);
/// valid only while the issuing Service is alive. Progress counts every
/// finished ticket of the batch — executed, coalesced, or cancelled.
class BatchHandle {
public:
  BatchHandle() = default;

  [[nodiscard]] std::size_t size() const { return tickets_.size(); }
  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] bool done() const { return completed() == size(); }
  /// Blocks until every ticket of the batch has finished.
  void wait() const;

  /// The batch's tickets, in submission order — collect results with
  /// Service::wait()/try_get(), or all at once with Service::collect().
  [[nodiscard]] const std::vector<Ticket>& tickets() const { return tickets_; }

private:
  friend class Service;
  struct Progress {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    std::size_t done = 0;
  };

  std::vector<Ticket> tickets_;
  std::shared_ptr<Progress> progress_;
};

/// Asynchronous execution service over the endurance pipeline: jobs are
/// submitted incrementally, run on a work-stealing scheduler
/// (sched::Scheduler — per-worker priority deques, so Job::priority and
/// Job::deadline bias which queued job runs next) above the shared
/// two-level PipelineCache (+ optional disk store), and are awaited — in any
/// order — by ticket. This is the execution engine behind flow::Runner (a
/// synchronous façade over submit_batch + collect) and the CLI `rlim serve`
/// front-end; the socket front-end (net::Server) submits decoded flow::wire
/// frames here.
///
/// Priority interacts with coalescing in one deliberate way: when a
/// duplicate submission attaches to a *pending* primary with a weaker
/// priority (or later deadline), the primary inherits the stronger hint and
/// is re-queued under it — a high-priority duplicate must not wait behind
/// the low-priority twin it coalesced into.
///
/// Determinism: execution order is unspecified, but every result is a pure
/// function of its job, so collecting a batch in ticket order yields
/// byte-identical reports for any worker count. Job failures are captured in
/// JobResult::error, never thrown from wait().
///
/// Results are collect-once: wait()/try_get() hand the result out and drop
/// the ticket, so a long-lived service stays memory-bounded however many
/// jobs stream through. Waiting on a collected (or never-issued) ticket
/// throws rlim::Error.
class Service {
public:
  /// Validates options and starts the worker pool. Throws rlim::Error when
  /// cache_dir is unusable or combined with cache_rewrites=false.
  explicit Service(ServiceOptions options = {});
  /// Calls shutdown() — cancels pending work, finishes running jobs, joins.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueues one job; returns immediately. Throws only after shutdown().
  Ticket submit(Job job);
  /// Enqueues a batch and returns a progress handle (tickets in job order).
  BatchHandle submit_batch(std::vector<Job> jobs);

  /// Blocks until the ticket finishes and hands its result out (collect-
  /// once). Throws rlim::Error for unknown or already-collected tickets.
  [[nodiscard]] JobResult wait(Ticket ticket);
  /// Non-blocking wait(): nullopt while the ticket is still in flight.
  [[nodiscard]] std::optional<JobResult> try_get(Ticket ticket);
  /// Waits for the whole batch and collects results in submission order.
  [[nodiscard]] std::vector<JobResult> collect(const BatchHandle& batch);

  /// Cooperative cancellation: succeeds only while the ticket is still
  /// pending (not picked up by a worker). A cancelled ticket finishes with
  /// JobResult::error == "cancelled before execution". Returns false for
  /// running, finished, or unknown tickets — a job that already started
  /// always runs to completion.
  bool cancel(Ticket ticket);
  /// Drain-all: cancels every pending ticket; returns how many.
  std::size_t cancel_pending();

  /// Stops accepting work, cancels everything still pending, lets running
  /// jobs finish, and joins the workers. Idempotent; uncollected results
  /// stay collectable. Called by the destructor.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  /// Scheduler-side counters (steals, parks, queue depth, priority mix) —
  /// the serving-shape telemetry behind the wire StatsReply gauges.
  [[nodiscard]] sched::SchedulerStats scheduler_stats() const;
  /// The configured worker-pool ceiling (threads spawn lazily, one per
  /// enqueued job, up to this many — a two-job batch never pays for a
  /// 64-thread pool).
  [[nodiscard]] unsigned workers() const { return scheduler_->workers(); }
  [[nodiscard]] const PipelineCache& cache() const { return cache_; }

private:
  struct Task;
  using TaskPtr = std::shared_ptr<Task>;
  /// Coalescing key: (graph fingerprint, canonical config key).
  using DupKey = std::pair<std::uint64_t, std::string>;

  /// Entry point of every scheduled closure: claims the task (Pending →
  /// Running; a tombstoned — cancelled or re-queued — task is dropped here)
  /// and runs it with the thread's recycled I/O scratch.
  void scheduler_run(const TaskPtr& task);
  /// Hands one claimable task to the scheduler under the task's priority /
  /// deadline. Caller holds mutex_.
  void enqueue_locked(const TaskPtr& task);
  /// Lets a *pending* coalescing primary inherit a stronger follower hint
  /// (higher priority or earlier deadline) and re-queues it under the new
  /// ordering; the stale queue entry tombstones via the Pending check.
  void escalate_locked(const TaskPtr& primary, const TaskPtr& follower);
  /// `scratch` is the calling worker's recyclable I/O buffer set, threaded
  /// down to the disk tier so steady-state serve traffic reuses the same
  /// buffers instead of allocating per job.
  void run_task(const TaskPtr& task, store::IoScratch* scratch);
  /// Runs the pipeline for one job (the former Runner::execute).
  [[nodiscard]] JobResult execute(const Job& job, store::IoScratch* scratch);
  void finish(const TaskPtr& task, JobResult result);
  /// `finished` collects tickets to report through options_.on_finished once
  /// the lock is released (the hook must never run under mutex_).
  void complete_locked(const TaskPtr& task, std::vector<Ticket>& finished);
  void cancel_locked(const TaskPtr& task, std::vector<Ticket>& finished);
  /// Cancels every pending task to a fixpoint (cancelling a coalescing
  /// primary re-queues its followers as pending, which must be caught too).
  std::size_t cancel_all_pending_locked(std::vector<Ticket>& finished);
  /// Runs the on_finished hook (if any) for every collected ticket.
  void notify_finished(const std::vector<Ticket>& finished) const;
  [[nodiscard]] std::optional<DupKey> duplicate_key(const Job& job,
                                                    bool may_build) const;

  ServiceOptions options_;
  PipelineCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;  ///< wakes wait()ers
  std::unordered_map<Ticket, TaskPtr> tasks_;
  std::map<DupKey, TaskPtr> inflight_;  ///< coalescing primaries
  Ticket next_ticket_ = 1;
  bool stopping_ = false;
  ServiceStats stats_;

  /// The worker pool + queues. Last member: constructed after (and torn
  /// down before) everything its closures may touch.
  std::unique_ptr<sched::Scheduler> scheduler_;
};

}  // namespace rlim::flow
