#include "flow/job.hpp"

#include "benchmarks/suite.hpp"
#include "mig/io.hpp"
#include "util/error.hpp"

namespace rlim::flow {

namespace {

bool has_suffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

SourcePtr Source::benchmark(const bench::BenchmarkSpec& spec) {
  auto source = std::shared_ptr<Source>(new Source());
  source->label_ = spec.name;
  source->pis_ = spec.pis;
  source->pos_ = spec.pos;
  source->build_ = spec.build;
  return source;
}

SourcePtr Source::benchmark(const std::string& name) {
  return benchmark(bench::find_benchmark(name));
}

SourcePtr Source::netlist(const std::string& spec) {
  if (spec.rfind("bench:", 0) == 0) {
    auto source = benchmark(spec.substr(6));
    source->label_ = spec;
    return source;
  }
  auto source = std::shared_ptr<Source>(new Source());
  source->label_ = spec;
  if (has_suffix(spec, ".blif")) {
    source->build_ = [spec] { return mig::read_blif_file(spec); };
  } else if (has_suffix(spec, ".mig")) {
    source->build_ = [spec] { return mig::read_mig_file(spec); };
  } else {
    throw Error("cannot determine format of '" + spec +
                "' (expect .mig, .blif, or bench:NAME)");
  }
  return source;
}

SourcePtr Source::graph(mig::Mig graph, std::string label) {
  auto source = std::shared_ptr<Source>(new Source());
  source->label_ = std::move(label);
  source->pis_ = graph.num_pis();
  source->pos_ = graph.num_pos();
  source->graph_ = std::make_shared<const mig::Mig>(std::move(graph));
  return source;
}

const mig::Mig& Source::original_locked() const {
  if (!graph_) {
    graph_ = std::make_shared<const mig::Mig>(build_());
  }
  return *graph_;
}

std::shared_ptr<const mig::Mig> Source::original_ptr() const {
  const std::scoped_lock lock(mutex_);
  static_cast<void>(original_locked());
  return graph_;
}

const mig::Mig& Source::original() const {
  const std::scoped_lock lock(mutex_);
  return original_locked();
}

std::uint64_t Source::fingerprint() const {
  const std::scoped_lock lock(mutex_);
  if (!fingerprint_) {
    fingerprint_ = original_locked().fingerprint();
  }
  return *fingerprint_;
}

std::optional<std::uint64_t> Source::ready_fingerprint() const {
  const std::scoped_lock lock(mutex_);
  if (!fingerprint_ && graph_ != nullptr) {
    fingerprint_ = graph_->fingerprint();
  }
  return fingerprint_;
}

}  // namespace rlim::flow
