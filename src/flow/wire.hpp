#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "flow/job.hpp"

namespace rlim::flow::wire {

/// The process-boundary message format of the flow layer — what a socket
/// front-end or shard coordinator speaks. Every message is one self-framed
/// byte string:
///
///   "RLWM" | u32 wire version | u8 kind | payload | u64 FNV-1a hash
///
/// The hash covers every framed byte before it; decoders authenticate the
/// frame (magic, version, hash, kind) before touching the payload, and
/// payload decoding reuses the store::serialize validators (structural MIG
/// replay, fingerprint check, config re-parse), so a damaged or stale frame
/// throws rlim::Error instead of decoding into a wrong object.
///
/// kWireVersion covers the framing and every payload layout below; it is
/// bumped together with store::kFormatVersion whenever a shared layout
/// changes, so two processes either agree on the bytes or refuse loudly.

inline constexpr std::string_view kMagic = "RLWM";
// v4: per-pass RewriteStats; v5: JobSpec priority/deadline + StatsReply
// scheduler gauges.
inline constexpr std::uint32_t kWireVersion = 5;

/// Ceiling a frame consumer should enforce on any untrusted length prefix
/// *before* allocating or resizing a buffer — an absurd u32 from a damaged
/// or hostile peer must cost a clean rlim::Error, never a multi-GB resize.
/// The net transport's stream framing takes this as its configurable
/// default; generous enough for the largest inline-graph JobResult the
/// suite produces by two orders of magnitude.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

enum class MessageKind : std::uint8_t {
  JobSpec = 1,    ///< a job to execute (request)
  JobResult = 2,  ///< the outcome of one job (response)
  Ping = 3,       ///< health probe (request; empty payload)
  Stats = 4,      ///< shard health snapshot (Ping response)
};

[[nodiscard]] constexpr std::string_view to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::JobSpec:
      return "job-spec";
    case MessageKind::JobResult:
      return "job-result";
    case MessageKind::Ping:
      return "ping";
    case MessageKind::Stats:
      return "stats";
  }
  return "unknown";
}

/// Serializable description of one Job. Exactly one source representation is
/// set: `source_ref` names a netlist the executing side resolves itself
/// (`bench:NAME`, `*.mig`, `*.blif` — cheap to ship, requires the file or
/// generator on the far side), or `graph` carries the MIG inline (self-
/// contained, any process can execute it). The config travels as its spec
/// string and is validated against the receiving registry on decode.
struct JobSpec {
  std::string source_ref;         ///< netlist reference; empty when inline
  std::optional<mig::Mig> graph;  ///< inline graph; used when set
  std::string graph_label;        ///< Source label of an inline graph
  std::string config_spec;        ///< PipelineConfig spec-grammar string
  std::string label;              ///< Job::label (report label override)
  /// Scheduling hints (wire v5), honored by the executing Service's
  /// work-stealing scheduler. Neither changes the result bytes.
  sched::Priority priority = sched::Priority::Normal;
  /// Soft latency budget in milliseconds, relative to arrival at the
  /// executing shard (shipping an absolute time point across machines
  /// would smuggle clock skew into dequeue order).
  std::optional<std::uint64_t> deadline_ms{};

  /// A by-reference spec (the config is stored as its canonical key).
  [[nodiscard]] static JobSpec reference(std::string ref,
                                         const core::PipelineConfig& config,
                                         std::string label = {});
  /// A self-contained spec carrying the graph itself.
  [[nodiscard]] static JobSpec inline_graph(mig::Mig graph,
                                            std::string graph_label,
                                            const core::PipelineConfig& config,
                                            std::string label = {});

  /// Materializes the executable Job (resolves the source, parses the
  /// config). Throws rlim::Error for unresolvable refs or bad specs.
  [[nodiscard]] Job to_job() const;
};

/// Health snapshot of one serving shard: the Service's lifetime counters,
/// the two cache levels' hit/miss counts, and — when a persistent store is
/// attached — its disk-tier counters. Everything a fleet monitor needs to
/// tell a hot shard (disk hits) from a cold or thrashing one, shipped as
/// the response to a Ping frame and printed by `rlim stats --connect`.
struct StatsReply {
  // flow::ServiceStats, field for field.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t executed = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t cancelled = 0;
  // PipelineCache counters (both levels).
  std::uint64_t rewrite_hits = 0;
  std::uint64_t rewrite_misses = 0;
  std::uint64_t program_hits = 0;
  std::uint64_t program_misses = 0;
  // store::StoreCounters; meaningful only when has_store is true.
  bool has_store = false;
  std::uint64_t store_rewrite_loads = 0;
  std::uint64_t store_program_loads = 0;
  std::uint64_t store_load_misses = 0;
  std::uint64_t store_stores = 0;
  std::uint64_t store_failures = 0;
  std::uint64_t store_evicted_corrupt = 0;
  std::uint64_t store_evicted_version = 0;
  // Serving-side shape.
  std::uint32_t workers = 0;
  // sched::SchedulerStats gauges (wire v5): how the shard's work-stealing
  // scheduler is coping. queue_depth is a point-in-time gauge; the rest are
  // lifetime counters. sched_low/normal/high count accepted tasks per
  // priority band.
  std::uint64_t sched_queue_depth = 0;
  std::uint64_t sched_stolen = 0;
  std::uint64_t sched_parks = 0;
  std::uint64_t sched_overflows = 0;
  std::uint64_t sched_forked = 0;
  std::uint64_t sched_low = 0;
  std::uint64_t sched_normal = 0;
  std::uint64_t sched_high = 0;

  bool operator==(const StatsReply&) const = default;
};

/// Encodes one message into a framed byte string.
[[nodiscard]] std::string encode(const JobSpec& spec);
/// JobResult frames carry error-or-payload: a failed job ships only its
/// error string; a successful one ships RewriteStats, the EnduranceReport
/// (program included), and — when present — the prepared graph.
[[nodiscard]] std::string encode(const JobResult& result);
[[nodiscard]] std::string encode(const StatsReply& stats);
/// A Ping frame (empty payload).
[[nodiscard]] std::string encode_ping();

/// Authenticates the frame and returns its kind without decoding the
/// payload — the dispatch primitive of a message loop.
[[nodiscard]] MessageKind peek_kind(std::string_view frame);

/// Decoders: authenticate, check the kind, decode, reject trailing bytes.
[[nodiscard]] JobSpec decode_job_spec(std::string_view frame);
[[nodiscard]] JobResult decode_job_result(std::string_view frame);
[[nodiscard]] StatsReply decode_stats(std::string_view frame);
/// Authenticates a Ping frame (throws on anything else).
void decode_ping(std::string_view frame);

}  // namespace rlim::flow::wire
