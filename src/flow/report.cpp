#include "flow/report.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace rlim::flow {

std::string to_string(ReportFormat format) {
  switch (format) {
    case ReportFormat::Table: return "table";
    case ReportFormat::Csv: return "csv";
    case ReportFormat::Json: return "json";
  }
  return "?";
}

ReportFormat parse_format(const std::string& name) {
  if (name == "table") {
    return ReportFormat::Table;
  }
  if (name == "csv") {
    return ReportFormat::Csv;
  }
  if (name == "json") {
    return ReportFormat::Json;
  }
  throw Error("unknown report format '" + name + "' (expect table|csv|json)");
}

void TableSink::write(const Report& report, std::ostream& os) {
  if (!report.title.empty()) {
    os << report.title << "\n\n";
  }
  util::Table table(report.columns);
  for (const auto& row : report.rows) {
    if (row.separator) {
      table.add_separator();
    } else {
      table.add_row(row.cells);
    }
  }
  os << table.to_string();
  for (const auto& note : report.notes) {
    os << note << '\n';
  }
}

namespace {

void write_csv_cell(const std::string& cell, std::ostream& os) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') {
      os << '"';
    }
    os << c;
  }
  os << '"';
}

void write_json_string(const std::string& text, std::ostream& os) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_strings(const std::vector<std::string>& items,
                        std::ostream& os) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    write_json_string(items[i], os);
  }
  os << ']';
}

/// Emits `text` as `# `-prefixed comment lines (multi-line safe).
void write_csv_comment(const std::string& text, std::ostream& os) {
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto end = text.find('\n', start);
    os << "# " << text.substr(start, end - start) << '\n';
    if (end == std::string::npos) {
      break;
    }
    start = end + 1;
  }
}

}  // namespace

void write_csv_row(const std::vector<std::string>& cells, std::ostream& os) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    write_csv_cell(cells[i], os);
  }
  os << '\n';
}

void CsvSink::write(const Report& report, std::ostream& os) {
  if (!report.title.empty()) {
    write_csv_comment(report.title, os);
  }
  write_csv_row(report.columns, os);
  for (const auto& row : report.rows) {
    if (!row.separator) {
      write_csv_row(row.cells, os);
    }
  }
  for (const auto& note : report.notes) {
    write_csv_comment(note, os);
  }
}

void JsonSink::write(const Report& report, std::ostream& os) {
  os << "{\"title\":";
  write_json_string(report.title, os);
  os << ",\"columns\":";
  write_json_strings(report.columns, os);
  os << ",\"rows\":[";
  bool first = true;
  for (const auto& row : report.rows) {
    if (row.separator) {
      continue;
    }
    if (!first) {
      os << ',';
    }
    first = false;
    write_json_strings(row.cells, os);
  }
  os << "],\"notes\":";
  write_json_strings(report.notes, os);
  os << "}\n";
}

std::unique_ptr<ReportSink> make_sink(ReportFormat format) {
  switch (format) {
    case ReportFormat::Table: return std::make_unique<TableSink>();
    case ReportFormat::Csv: return std::make_unique<CsvSink>();
    case ReportFormat::Json: return std::make_unique<JsonSink>();
  }
  throw Error("make_sink: unknown format");
}

}  // namespace rlim::flow
