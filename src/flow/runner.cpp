#include "flow/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "store/disk_store.hpp"
#include "util/error.hpp"

namespace rlim::flow {

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    // The disk store backs the in-memory cache; with caching off the jobs
    // never touch it, so accepting the directory would be a silent no-op.
    require(options_.cache_rewrites,
            "flow: cache_dir requires cache_rewrites");
    cache_.attach_store(
        std::make_shared<store::DiskStore>(options_.cache_dir));
  }
}

unsigned Runner::concurrency(std::size_t job_count) const {
  unsigned workers = options_.jobs;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(1, job_count)));
}

JobResult Runner::execute(const Job& job) {
  JobResult result;
  try {
    require(job.source != nullptr, "flow: job without a source");
    const auto& config = job.config;
    if (options_.cache_rewrites && options_.cache_programs) {
      // Two-level path: repeated (fingerprint, canonical config) pairs skip
      // compilation entirely; the cached report is label-agnostic, so patch
      // in this job's label.
      auto entry = cache_.compiled(*job.source, config);
      result.prepared = std::move(entry.prepared);
      result.rewrite_stats = entry.rewrite_stats;
      result.report = *entry.report;
      result.report.benchmark = job.display_label();
      return result;
    }
    if (config.rewrite.key == "none") {
      // The paper's naive baseline: share the source's graph exactly as
      // constructed (no cleanup pass, unlike the registered "none" flow).
      auto entry = passthrough_rewrite(*job.source);
      result.prepared = std::move(entry.graph);
      result.rewrite_stats = entry.stats;
    } else if (options_.cache_rewrites) {
      auto entry = cache_.rewrite(*job.source, config.rewrite);
      result.prepared = std::move(entry.graph);
      result.rewrite_stats = entry.stats;
    } else {
      mig::RewriteStats stats;
      result.prepared = std::make_shared<const mig::Mig>(
          mig::make_rewrite(config.rewrite)(job.source->original(), &stats));
      result.rewrite_stats = stats;
    }
    result.report =
        core::compile_prepared(*result.prepared, config, job.display_label(),
                               job.source->original().num_gates());
  } catch (const std::exception& error) {
    result.error = error.what();
    if (result.error.empty()) {
      result.error = "unknown error";
    }
  }
  return result;
}

std::vector<JobResult> Runner::run(const std::vector<Job>& jobs) {
  std::vector<JobResult> results(jobs.size());
  const unsigned workers = concurrency(jobs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = execute(jobs[i]);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const auto index = next.fetch_add(1);
      if (index >= jobs.size()) {
        return;
      }
      results[index] = execute(jobs[index]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    pool.emplace_back(worker);
  }
  for (auto& thread : pool) {
    thread.join();
  }
  return results;
}

JobResult run_job(const Job& job) {
  Runner runner({.jobs = 1});
  return runner.run({job}).front();
}

void throw_on_error(const std::vector<JobResult>& results) {
  for (const auto& result : results) {
    if (!result.ok()) {
      throw Error("flow job failed: " + result.error);
    }
  }
}

DriverOptions parse_driver_args(int argc, char** argv) {
  DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--format") {
        options.format = parse_format(next());
      } else if (arg == "--jobs") {
        options.jobs = static_cast<unsigned>(std::stoul(next()));
      } else {
        throw Error("unknown option '" + arg + "'");
      }
    } catch (const std::exception& error) {
      std::cerr << argv[0] << ": " << error.what()
                << "\nusage: " << argv[0]
                << " [--format table|csv|json] [--jobs N]\n";
      std::exit(2);
    }
  }
  return options;
}

}  // namespace rlim::flow
