#include "flow/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "store/disk_store.hpp"
#include "util/error.hpp"

namespace rlim::flow {

Runner::Runner(RunnerOptions options)
    : options_(options),
      service_({.jobs = options.jobs,
                .cache_rewrites = options.cache_rewrites,
                .cache_programs = options.cache_programs,
                .cache_dir = std::move(options.cache_dir),
                .coalesce = false}) {}

unsigned Runner::concurrency(std::size_t job_count) const {
  unsigned workers = options_.jobs;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(1, job_count)));
}

std::vector<JobResult> Runner::run(const std::vector<Job>& jobs) {
  return service_.collect(service_.submit_batch(jobs));
}

JobResult run_job(const Job& job) {
  Service service({.jobs = 1});
  return service.wait(service.submit(job));
}

void throw_on_error(const std::vector<JobResult>& results) {
  for (const auto& result : results) {
    if (!result.ok()) {
      throw Error("flow job failed: " + result.error);
    }
  }
}

DriverOptions parse_driver_args(int argc, char** argv) {
  DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": option " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--format") {
        options.format = parse_format(next());
      } else if (arg == "--jobs") {
        options.jobs = static_cast<unsigned>(std::stoul(next()));
      } else if (arg == "--cache-dir") {
        options.cache_dir = next();
        require(!options.cache_dir.empty(), "--cache-dir needs a directory");
      } else {
        throw Error("unknown option '" + arg + "'");
      }
    } catch (const std::exception& error) {
      std::cerr << argv[0] << ": " << error.what()
                << "\nusage: " << argv[0]
                << " [--format table|csv|json] [--jobs N] [--cache-dir DIR]\n";
      std::exit(2);
    }
  }
  if (options.cache_dir.empty()) {
    // Same resolution order as the rlim CLI: the explicit flag beats the
    // ambient RLIM_CACHE_DIR, which beats "disk tier off". The env fallback
    // lives here — in the drivers' front-end parser — so the library Runner
    // itself stays hermetic.
    options.cache_dir = store::env_cache_dir();
  }
  return options;
}

}  // namespace rlim::flow
