#include "flow/cache.hpp"

#include "store/disk_store.hpp"
#include "util/hash.hpp"

namespace rlim::flow {

std::size_t PipelineCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(
      util::Fnv1a64().u64(key.fingerprint).str(key.spec).digest());
}

PipelineCache::RewriteEntry PipelineCache::rewrite(
    const Source& source, const util::PolicySpec& spec,
    store::IoScratch* scratch) {
  // Normalizing here makes the cache key canonical, so callers may pass
  // partially-specified specs without splitting entries.
  const auto normalized = mig::rewrites().normalize(spec);
  const Key key{source.fingerprint(), normalized.canonical()};

  std::promise<RewriteEntry> promise;
  std::shared_future<RewriteEntry> future;
  bool owner = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = rewrites_.find(key);
    if (it != rewrites_.end()) {
      future = it->second;
      hits_.fetch_add(1);
    } else {
      future = promise.get_future().share();
      rewrites_.emplace(key, future);
      misses_.fetch_add(1);
      owner = true;
    }
  }

  if (owner) {
    bool value_set = false;
    try {
      RewriteEntry entry;
      bool loaded = false;
      if (store_ != nullptr) {
        if (auto payload =
                store_->load_rewrite(key.fingerprint, key.spec, scratch)) {
          entry.graph =
              std::make_shared<const mig::Mig>(std::move(payload->graph));
          entry.stats = payload->stats;
          loaded = true;
        }
      }
      if (!loaded) {
        mig::RewriteStats stats;
        entry.graph = std::make_shared<const mig::Mig>(
            mig::make_rewrite(normalized)(source.original(), &stats));
        entry.stats = stats;
        {
          const std::scoped_lock lock(mutex_);
          ++rewrites_by_key_[normalized.key];
        }
      }
      // Unblock every waiter before the write-through below: the entry is
      // cheap to copy (shared graph) and waiters must not stall on disk.
      promise.set_value(entry);
      value_set = true;
      if (!loaded && store_ != nullptr) {
        store_->store_rewrite(key.fingerprint, key.spec, *entry.graph,
                              entry.stats, scratch);
      }
    } catch (...) {
      // A failure after set_value can only come from the write-through,
      // which is best-effort by contract — the in-memory result stands.
      if (!value_set) {
        promise.set_exception(std::current_exception());
      }
    }
  }
  return future.get();
}

PipelineCache::CompiledEntry PipelineCache::compiled(
    const Source& source, const core::PipelineConfig& raw_config,
    store::IoScratch* scratch) {
  // Normalize (as rewrite() does) so equal-behavior configs share one entry
  // whether they came from parse()/make_config or were hand-assembled.
  const auto config = raw_config.normalized();
  const Key key{source.fingerprint(), config.canonical_key()};

  std::promise<CompiledEntry> promise;
  std::shared_future<CompiledEntry> future;
  bool owner = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = programs_.find(key);
    if (it != programs_.end()) {
      future = it->second;
      program_hits_.fetch_add(1);
    } else {
      future = promise.get_future().share();
      programs_.emplace(key, future);
      program_misses_.fetch_add(1);
      owner = true;
    }
  }

  if (owner) {
    bool value_set = false;
    try {
      CompiledEntry entry;
      bool loaded = false;
      if (store_ != nullptr) {
        if (auto payload = store_->load_program(key.fingerprint, key.spec,
                                                scratch, &config)) {
          entry.prepared =
              std::make_shared<const mig::Mig>(std::move(payload->prepared));
          entry.rewrite_stats = payload->rewrite_stats;
          entry.report = std::make_shared<const core::EnduranceReport>(
              std::move(payload->report));
          loaded = true;
        }
      }
      if (!loaded) {
        auto rewritten = config.rewrite.key == "none"
                             ? passthrough_rewrite(source)
                             : rewrite(source, config.rewrite, scratch);
        entry.prepared = std::move(rewritten.graph);
        entry.rewrite_stats = rewritten.stats;
        entry.report = std::make_shared<const core::EnduranceReport>(
            core::compile_prepared(*entry.prepared, config, {},
                                   source.original().num_gates()));
      }
      // As in rewrite(): waiters get the shared entry before any disk work.
      promise.set_value(entry);
      value_set = true;
      if (!loaded && store_ != nullptr) {
        store_->store_program(key.fingerprint, key.spec, *entry.prepared,
                              entry.rewrite_stats, *entry.report, scratch);
      }
    } catch (...) {
      if (!value_set) {
        promise.set_exception(std::current_exception());
      }
    }
  }
  return future.get();
}

std::size_t PipelineCache::rewrites(std::string_view key) const {
  const std::scoped_lock lock(mutex_);
  const auto it = rewrites_by_key_.find(std::string(key));
  return it == rewrites_by_key_.end() ? 0 : it->second;
}

void PipelineCache::attach_store(std::shared_ptr<store::DiskStore> store) {
  store_ = std::move(store);
}

PipelineCache::RewriteEntry passthrough_rewrite(const Source& source) {
  PipelineCache::RewriteEntry entry;
  entry.graph = source.original_ptr();
  entry.stats.initial_gates = entry.stats.final_gates =
      entry.graph->num_gates();
  entry.stats.initial_complement_edges = entry.stats.final_complement_edges =
      entry.graph->complement_edge_count();
  return entry;
}

void PipelineCache::clear() {
  const std::scoped_lock lock(mutex_);
  rewrites_.clear();
  programs_.clear();
  rewrites_by_key_.clear();
  hits_.store(0);
  misses_.store(0);
  program_hits_.store(0);
  program_misses_.store(0);
}

}  // namespace rlim::flow
