#include "flow/cache.hpp"

#include "util/hash.hpp"

namespace rlim::flow {

std::size_t PipelineCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(
      util::Fnv1a64().u64(key.fingerprint).str(key.spec).digest());
}

PipelineCache::RewriteEntry PipelineCache::rewrite(
    const Source& source, const util::PolicySpec& spec) {
  // Normalizing here makes the cache key canonical, so callers may pass
  // partially-specified specs without splitting entries.
  const auto normalized = mig::rewrites().normalize(spec);
  const Key key{source.fingerprint(), normalized.canonical()};

  std::promise<RewriteEntry> promise;
  std::shared_future<RewriteEntry> future;
  bool owner = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = rewrites_.find(key);
    if (it != rewrites_.end()) {
      future = it->second;
      hits_.fetch_add(1);
    } else {
      future = promise.get_future().share();
      rewrites_.emplace(key, future);
      misses_.fetch_add(1);
      owner = true;
    }
  }

  if (owner) {
    try {
      RewriteEntry entry;
      mig::RewriteStats stats;
      entry.graph = std::make_shared<const mig::Mig>(
          mig::make_rewrite(normalized)(source.original(), &stats));
      entry.stats = stats;
      {
        const std::scoped_lock lock(mutex_);
        ++rewrites_by_key_[normalized.key];
      }
      promise.set_value(std::move(entry));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

PipelineCache::CompiledEntry PipelineCache::compiled(
    const Source& source, const core::PipelineConfig& raw_config) {
  // Normalize (as rewrite() does) so equal-behavior configs share one entry
  // whether they came from parse()/make_config or were hand-assembled.
  const auto config = raw_config.normalized();
  const Key key{source.fingerprint(), config.canonical_key()};

  std::promise<CompiledEntry> promise;
  std::shared_future<CompiledEntry> future;
  bool owner = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = programs_.find(key);
    if (it != programs_.end()) {
      future = it->second;
      program_hits_.fetch_add(1);
    } else {
      future = promise.get_future().share();
      programs_.emplace(key, future);
      program_misses_.fetch_add(1);
      owner = true;
    }
  }

  if (owner) {
    try {
      CompiledEntry entry;
      auto rewritten = config.rewrite.key == "none"
                           ? passthrough_rewrite(source)
                           : rewrite(source, config.rewrite);
      entry.prepared = std::move(rewritten.graph);
      entry.rewrite_stats = rewritten.stats;
      entry.report = std::make_shared<const core::EnduranceReport>(
          core::compile_prepared(*entry.prepared, config, {},
                                 source.original().num_gates()));
      promise.set_value(std::move(entry));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t PipelineCache::rewrites(std::string_view key) const {
  const std::scoped_lock lock(mutex_);
  const auto it = rewrites_by_key_.find(std::string(key));
  return it == rewrites_by_key_.end() ? 0 : it->second;
}

PipelineCache::RewriteEntry passthrough_rewrite(const Source& source) {
  PipelineCache::RewriteEntry entry;
  entry.graph = source.original_ptr();
  entry.stats.initial_gates = entry.stats.final_gates =
      entry.graph->num_gates();
  entry.stats.initial_complement_edges = entry.stats.final_complement_edges =
      entry.graph->complement_edge_count();
  return entry;
}

void PipelineCache::clear() {
  const std::scoped_lock lock(mutex_);
  rewrites_.clear();
  programs_.clear();
  rewrites_by_key_.clear();
  hits_.store(0);
  misses_.store(0);
  program_hits_.store(0);
  program_misses_.store(0);
}

}  // namespace rlim::flow
