#include "flow/cache.hpp"

#include "util/hash.hpp"

namespace rlim::flow {

std::size_t RewriteCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(util::Fnv1a64()
                                      .u64(key.fingerprint)
                                      .u32(static_cast<std::uint32_t>(key.kind))
                                      .u32(static_cast<std::uint32_t>(key.effort))
                                      .digest());
}

RewriteCache::Entry RewriteCache::get(const Source& source,
                                      mig::RewriteKind kind, int effort) {
  const Key key{source.fingerprint(), kind, effort};

  std::promise<Entry> promise;
  std::shared_future<Entry> future;
  bool owner = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      future = it->second;
      hits_.fetch_add(1);
    } else {
      future = promise.get_future().share();
      entries_.emplace(key, future);
      misses_.fetch_add(1);
      owner = true;
    }
  }

  if (owner) {
    try {
      Entry entry;
      mig::RewriteStats stats;
      entry.graph = std::make_shared<const mig::Mig>(
          mig::rewrite(source.original(), kind, effort, &stats));
      entry.stats = stats;
      rewrites_by_kind_[static_cast<std::size_t>(kind)].fetch_add(1);
      promise.set_value(std::move(entry));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t RewriteCache::rewrites(mig::RewriteKind kind) const {
  return rewrites_by_kind_[static_cast<std::size_t>(kind)].load();
}

void RewriteCache::clear() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
  hits_.store(0);
  misses_.store(0);
  for (auto& count : rewrites_by_kind_) {
    count.store(0);
  }
}

}  // namespace rlim::flow
