#include "flow/service.hpp"

#include <algorithm>

#include "store/disk_store.hpp"
#include "util/error.hpp"

namespace rlim::flow {

namespace {
constexpr const char* kCancelledMessage = "cancelled before execution";
}  // namespace

/// One submitted job and everything needed to finish it. Guarded by the
/// Service mutex except for `job`, which is read by the executing worker
/// while unlocked (no one else touches it after submission).
struct Service::Task {
  enum class State {
    Pending,  ///< queued (or attached to a pending primary), cancellable
    Running,  ///< picked up by a worker — runs to completion
    Done,     ///< result available (executed, coalesced, or cancelled)
  };

  Ticket ticket = 0;
  Job job;
  State state = State::Pending;
  bool cancelled = false;
  JobResult result;
  std::shared_ptr<BatchHandle::Progress> batch;
  /// Scheduling hints, frozen from the Job at submit time (the deadline
  /// made absolute); may strengthen later when a stronger duplicate
  /// coalesces into this task (escalate_locked).
  sched::Priority priority = sched::Priority::Normal;
  std::optional<sched::Deadline> deadline;
  /// Registered as the coalescing primary under `key`.
  bool registered = false;
  DupKey key;
  /// Duplicates fulfilled from this task's result.
  std::vector<TaskPtr> followers;
};

// ---- BatchHandle -----------------------------------------------------------

std::size_t BatchHandle::completed() const {
  if (progress_ == nullptr) {
    return 0;
  }
  const std::scoped_lock lock(progress_->mutex);
  return progress_->done;
}

void BatchHandle::wait() const {
  if (progress_ == nullptr) {
    return;
  }
  std::unique_lock lock(progress_->mutex);
  progress_->cv.wait(lock, [&] { return progress_->done >= tickets_.size(); });
}

// ---- Service lifecycle -----------------------------------------------------

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    // The disk store backs the in-memory cache; with caching off the jobs
    // never touch it, so accepting the directory would be a silent no-op.
    require(options_.cache_rewrites,
            "flow: cache_dir requires cache_rewrites");
    cache_.attach_store(
        std::make_shared<store::DiskStore>(options_.cache_dir));
  }
  sched::SchedulerOptions sched_options;
  sched_options.workers = options_.jobs;
  sched_options.deque_capacity = options_.deque_capacity;
  sched_options.single_queue = options_.single_queue;
  // Worker threads spawn lazily inside the scheduler, one per enqueued job
  // up to the ceiling — the synchronous façade's small batches keep the old
  // min(workers, job_count) thread cost instead of paying for a full pool.
  scheduler_ = std::make_unique<sched::Scheduler>(sched_options);
}

Service::~Service() { shutdown(); }

void Service::shutdown() {
  std::vector<Ticket> finished;
  {
    const std::scoped_lock lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      cancel_all_pending_locked(finished);
      done_cv_.notify_all();
    }
  }
  notify_finished(finished);
  // The cancel drain tombstoned every queued task, so the scheduler's
  // shutdown drain costs one Pending check per closure; running jobs
  // finish normally before their workers exit. Never joined under mutex_ —
  // workers take it in scheduler_run()/finish().
  scheduler_->shutdown();
}

// ---- submission ------------------------------------------------------------

std::optional<Service::DupKey> Service::duplicate_key(const Job& job,
                                                      bool may_build) const {
  if (!options_.coalesce || job.source == nullptr) {
    return std::nullopt;
  }
  try {
    std::optional<std::uint64_t> fingerprint;
    if (may_build) {
      fingerprint = job.source->fingerprint();
    } else {
      fingerprint = job.source->ready_fingerprint();
    }
    if (!fingerprint) {
      return std::nullopt;
    }
    return DupKey{*fingerprint, job.config.normalized().canonical_key()};
  } catch (const std::exception&) {
    // Unloadable source or unregistered policy: not coalescable — the job
    // executes normally and captures the failure in its own result.
    return std::nullopt;
  }
}

Ticket Service::submit(Job job) {
  return submit_batch({std::move(job)}).tickets().front();
}

BatchHandle Service::submit_batch(std::vector<Job> jobs) {
  BatchHandle handle;
  handle.progress_ = std::make_shared<BatchHandle::Progress>();
  handle.tickets_.reserve(jobs.size());
  for (auto& job : jobs) {
    // Opportunistic submit-time coalescing: only when the fingerprint is
    // already known (in-memory Source, or a netlist some earlier job
    // loaded) — submit() must never block on graph construction.
    const auto key = duplicate_key(job, /*may_build=*/false);

    auto task = std::make_shared<Task>();
    task->priority = job.priority;
    if (job.deadline) {
      // Relative budget → absolute point, frozen at submission: two jobs
      // with the same budget race in arrival order, as they should.
      task->deadline = std::chrono::steady_clock::now() + *job.deadline;
    }
    task->job = std::move(job);
    task->batch = handle.progress_;

    const std::scoped_lock lock(mutex_);
    require(!stopping_, "flow: submit after Service shutdown");
    task->ticket = next_ticket_++;
    tasks_.emplace(task->ticket, task);
    ++stats_.submitted;
    handle.tickets_.push_back(task->ticket);

    bool queued = true;
    if (key) {
      const auto it = inflight_.find(*key);
      if (it != inflight_.end()) {
        it->second->followers.push_back(task);
        ++stats_.coalesced;
        escalate_locked(it->second, task);
        queued = false;
      } else {
        inflight_.emplace(*key, task);
        task->registered = true;
        task->key = *key;
      }
    }
    if (queued) {
      enqueue_locked(task);
    }
  }
  return handle;
}

void Service::enqueue_locked(const TaskPtr& task) {
  // The closure holds the TaskPtr: a task stays alive while any queue entry
  // references it, however the ticket side resolves. Lock order is strictly
  // Service::mutex_ → scheduler internals; the scheduler never calls back
  // while holding its own locks.
  scheduler_->submit({[this, task] { scheduler_run(task); },
                      task->priority, task->deadline});
}

void Service::escalate_locked(const TaskPtr& primary, const TaskPtr& follower) {
  if (primary->state != Task::State::Pending) {
    return;  // running or done — dequeue order no longer matters
  }
  bool improved = false;
  if (follower->priority > primary->priority) {
    primary->priority = follower->priority;
    improved = true;
  }
  if (follower->deadline &&
      (!primary->deadline || *follower->deadline < *primary->deadline)) {
    primary->deadline = follower->deadline;
    improved = true;
  }
  if (improved) {
    // Re-queue under the stronger hint. The earlier queue entry becomes a
    // tombstone: whichever closure claims the task first flips it to
    // Running, the other sees non-Pending in scheduler_run() and drops out.
    enqueue_locked(primary);
  }
}

// ---- worker side -----------------------------------------------------------

void Service::scheduler_run(const TaskPtr& task) {
  {
    const std::scoped_lock lock(mutex_);
    if (task->state != Task::State::Pending) {
      return;  // tombstone: cancelled, escalated-and-claimed, or re-queued
    }
    task->state = Task::State::Running;
  }
  // Thread-lifetime scratch: the disk tier's read/write buffers are
  // recycled across every job this scheduler worker serves.
  thread_local store::IoScratch scratch;
  run_task(task, &scratch);
}

void Service::run_task(const TaskPtr& task, store::IoScratch* scratch) {
  if (options_.coalesce && !task->registered) {
    // Dequeue-time coalescing: computing the key may build the graph, so it
    // runs on the worker (outside the lock) where that work belongs anyway.
    if (const auto key = duplicate_key(task->job, /*may_build=*/true)) {
      const std::scoped_lock lock(mutex_);
      const auto it = inflight_.find(*key);
      if (it != inflight_.end()) {
        // A primary with this key is pending or running: attach instead of
        // blocking this worker on the same computation.
        it->second->followers.push_back(task);
        ++stats_.coalesced;
        escalate_locked(it->second, task);
        return;
      }
      inflight_.emplace(*key, task);
      task->registered = true;
      task->key = *key;
    }
  }
  finish(task, execute(task->job, scratch));
}

JobResult Service::execute(const Job& job, store::IoScratch* scratch) {
  JobResult result;
  try {
    require(job.source != nullptr, "flow: job without a source");
    const auto& config = job.config;
    if (options_.cache_rewrites && options_.cache_programs) {
      // Two-level path: repeated (fingerprint, canonical config) pairs skip
      // compilation entirely; the cached report is label-agnostic, so patch
      // in this job's label.
      auto entry = cache_.compiled(*job.source, config, scratch);
      result.prepared = std::move(entry.prepared);
      result.rewrite_stats = entry.rewrite_stats;
      result.report = *entry.report;
      result.report.benchmark = job.display_label();
      return result;
    }
    if (config.rewrite.key == "none") {
      // The paper's naive baseline: share the source's graph exactly as
      // constructed (no cleanup pass, unlike the registered "none" flow).
      auto entry = passthrough_rewrite(*job.source);
      result.prepared = std::move(entry.graph);
      result.rewrite_stats = entry.stats;
    } else if (options_.cache_rewrites) {
      auto entry = cache_.rewrite(*job.source, config.rewrite, scratch);
      result.prepared = std::move(entry.graph);
      result.rewrite_stats = entry.stats;
    } else {
      mig::RewriteStats stats;
      result.prepared = std::make_shared<const mig::Mig>(
          mig::make_rewrite(config.rewrite)(job.source->original(), &stats));
      result.rewrite_stats = stats;
    }
    result.report =
        core::compile_prepared(*result.prepared, config, job.display_label(),
                               job.source->original().num_gates());
  } catch (const std::exception& error) {
    result.error = error.what();
    if (result.error.empty()) {
      result.error = "unknown error";
    }
  }
  return result;
}

void Service::finish(const TaskPtr& task, JobResult result) {
  std::vector<Ticket> finished;
  {
    const std::scoped_lock lock(mutex_);
    if (task->registered) {
      inflight_.erase(task->key);
      task->registered = false;
    }
    task->result = std::move(result);
    task->state = Task::State::Done;
    ++stats_.executed;
    complete_locked(task, finished);
    for (const auto& follower : task->followers) {
      if (follower->state == Task::State::Done) {
        continue;  // cancelled while attached
      }
      follower->result = task->result;
      if (follower->result.ok()) {
        // Same contract as a program-cache hit: shared artifacts, own label.
        follower->result.report.benchmark = follower->job.display_label();
      }
      follower->state = Task::State::Done;
      complete_locked(follower, finished);
    }
    task->followers.clear();
    done_cv_.notify_all();
  }
  notify_finished(finished);
}

void Service::complete_locked(const TaskPtr& task,
                              std::vector<Ticket>& finished) {
  ++stats_.completed;
  if (task->cancelled) {
    ++stats_.cancelled;
  }
  if (task->batch != nullptr) {
    const std::scoped_lock progress_lock(task->batch->mutex);
    ++task->batch->done;
    task->batch->cv.notify_all();
  }
  if (options_.on_finished) {
    finished.push_back(task->ticket);
  }
}

void Service::notify_finished(const std::vector<Ticket>& finished) const {
  if (!options_.on_finished) {
    return;
  }
  for (const auto ticket : finished) {
    options_.on_finished(ticket);
  }
}

// ---- cancellation ----------------------------------------------------------

void Service::cancel_locked(const TaskPtr& task,
                            std::vector<Ticket>& finished) {
  task->cancelled = true;
  task->state = Task::State::Done;
  task->result = JobResult{};
  task->result.error = kCancelledMessage;
  if (task->registered) {
    inflight_.erase(task->key);
    task->registered = false;
  }
  // Followers were waiting on this task's execution, not cancelled
  // themselves: re-queue them. The first one dequeued re-registers as the
  // new primary and the rest re-coalesce behind it. A dequeue-time follower
  // carries state Running (its worker moved on after attaching) — flip it
  // back to Pending or the scheduler_run claim-check would drop the ticket
  // forever.
  for (auto& follower : task->followers) {
    if (follower->state == Task::State::Done) {
      continue;  // cancelled while attached — already fulfilled
    }
    follower->state = Task::State::Pending;
    enqueue_locked(follower);
  }
  task->followers.clear();
  complete_locked(task, finished);
}

bool Service::cancel(Ticket ticket) {
  std::vector<Ticket> finished;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = tasks_.find(ticket);
    if (it == tasks_.end() || it->second->state != Task::State::Pending) {
      return false;
    }
    cancel_locked(it->second, finished);
    done_cv_.notify_all();
  }
  notify_finished(finished);
  return true;
}

std::size_t Service::cancel_all_pending_locked(std::vector<Ticket>& finished) {
  // To a fixpoint: cancelling a primary re-queues its followers as pending,
  // and those must be swept up by the same drain whatever the map order.
  std::size_t count = 0;
  bool again = true;
  while (again) {
    again = false;
    for (auto& [ticket, task] : tasks_) {
      if (task->state == Task::State::Pending) {
        cancel_locked(task, finished);
        ++count;
        again = true;
      }
    }
  }
  // Everything the drain touched is Done now; the matching queue entries
  // are tombstones the scheduler workers drop at their Pending check.
  return count;
}

std::size_t Service::cancel_pending() {
  std::vector<Ticket> finished;
  std::size_t count = 0;
  {
    const std::scoped_lock lock(mutex_);
    count = cancel_all_pending_locked(finished);
    if (count > 0) {
      done_cv_.notify_all();
    }
  }
  notify_finished(finished);
  return count;
}

// ---- collection ------------------------------------------------------------

JobResult Service::wait(Ticket ticket) {
  std::unique_lock lock(mutex_);
  const auto it = tasks_.find(ticket);
  require(it != tasks_.end(),
          "flow: unknown or already-collected ticket " +
              std::to_string(ticket));
  const auto task = it->second;
  done_cv_.wait(lock, [&] { return task->state == Task::State::Done; });
  tasks_.erase(ticket);
  return std::move(task->result);
}

std::optional<JobResult> Service::try_get(Ticket ticket) {
  const std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(ticket);
  require(it != tasks_.end(),
          "flow: unknown or already-collected ticket " +
              std::to_string(ticket));
  if (it->second->state != Task::State::Done) {
    return std::nullopt;
  }
  const auto task = it->second;
  tasks_.erase(it);
  return std::move(task->result);
}

std::vector<JobResult> Service::collect(const BatchHandle& batch) {
  std::vector<JobResult> results;
  results.reserve(batch.tickets().size());
  for (const auto ticket : batch.tickets()) {
    results.push_back(wait(ticket));
  }
  return results;
}

ServiceStats Service::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

sched::SchedulerStats Service::scheduler_stats() const {
  return scheduler_->stats();
}

}  // namespace rlim::flow
