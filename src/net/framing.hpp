#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "flow/wire.hpp"

namespace rlim::net {

/// Stream framing of the net transport. TCP gives a byte stream; each
/// message travels as one self-delimiting envelope:
///
///   u32 length | u64 ticket | flow::wire frame
///
/// `length` (little-endian) counts the ticket and frame bytes that follow.
/// `ticket` is a client-chosen correlation id echoed verbatim on every
/// response, which is what makes in-flight pipelining work: responses may
/// arrive in any completion order and still find their request.
///
/// The length prefix is the only field a peer can use to make this side
/// allocate, so it is validated against a configurable ceiling *before* any
/// buffer grows (flow::wire::kDefaultMaxFrameBytes by default). A frame's
/// own integrity (magic, version, FNV hash) is flow::wire's job once the
/// envelope delimits it.
inline constexpr std::size_t kLengthBytes = 4;
inline constexpr std::size_t kTicketBytes = 8;

/// Encodes one envelope.
[[nodiscard]] std::string envelope(std::uint64_t ticket,
                                   std::string_view frame);

struct FramedMessage {
  std::uint64_t ticket = 0;
  std::string frame;
};

/// Incremental envelope parser over received stream bytes. feed() appends
/// whatever the socket produced; next() yields complete messages. A length
/// prefix that is shorter than a ticket or larger than the configured
/// ceiling throws rlim::Error — the stream is unrecoverable after framing
/// damage, so callers drop the connection.
class FrameReader {
 public:
  explicit FrameReader(
      std::size_t max_frame_bytes = flow::wire::kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::string_view bytes);
  [[nodiscard]] std::optional<FramedMessage> next();

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const {
    return buffer_.size() - offset_;
  }

 private:
  std::string buffer_;
  std::size_t offset_ = 0;
  std::size_t max_frame_bytes_;
};

}  // namespace rlim::net
