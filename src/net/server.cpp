#include "net/server.hpp"

#include <array>
#include <cerrno>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include "store/disk_store.hpp"
#include "util/error.hpp"

namespace rlim::net {

namespace {

void epoll_add(int epoll_fd, int fd, std::uint32_t events) {
  ::epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  require(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) == 0,
          "net: epoll_ctl(ADD) failed");
}

}  // namespace

Server::Server(const Endpoint& listen, ServerOptions options)
    : options_(std::move(options)), listen_host_(listen.host) {
  listen_fd_ = listen_tcp(listen);
  port_ = local_port(listen_fd_);

  epoll_fd_ = Fd(::epoll_create1(0));
  require(epoll_fd_.valid(), "net: epoll_create1 failed");
  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK));
  require(wake_fd_.valid(), "net: eventfd failed");
  epoll_add(epoll_fd_.get(), listen_fd_.get(), EPOLLIN);
  epoll_add(epoll_fd_.get(), wake_fd_.get(), EPOLLIN);

  flow::ServiceOptions service_options;
  service_options.jobs = options_.jobs;
  service_options.cache_dir = options_.cache_dir;
  // Completion-to-event bridge: workers drop the ticket into the mailbox
  // and kick the eventfd; the epoll loop turns it into response frames.
  service_options.on_finished = [this](flow::Ticket ticket) {
    {
      const std::scoped_lock lock(completion_mutex_);
      completed_.push_back(ticket);
    }
    wake();
  };
  service_ = std::make_unique<flow::Service>(std::move(service_options));

  thread_ = std::thread([this] { loop(); });
}

Server::~Server() {
  stop();
  // Drain the Service while every member (mailbox, eventfd) is still alive:
  // its shutdown cancels pending tickets, which runs the completion hook.
  service_.reset();
}

void Server::stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  stop_.store(true);
  wake();
  if (thread_.joinable()) {
    thread_.join();
  }
  // Release the port: a peer probing a stopped shard gets an instant
  // ECONNREFUSED instead of a handshake into a backlog nobody drains —
  // that refusal is what makes client failover fast.
  listen_fd_.reset();
  // The loop is gone; tear the connections down from this thread and stop
  // burning workers on jobs nobody will read. Running jobs finish on their
  // own; their results are dropped by Service destruction.
  connections_.clear();
  routes_.clear();
  service_->cancel_pending();
}

void Server::wake() {
  const std::uint64_t token = 1;
  [[maybe_unused]] const auto n =
      ::write(wake_fd_.get(), &token, sizeof token);
}

ServerCounters Server::counters() const {
  const std::scoped_lock lock(counters_mutex_);
  return counters_;
}

flow::wire::StatsReply Server::stats_reply() const {
  flow::wire::StatsReply reply;
  const auto stats = service_->stats();
  reply.submitted = stats.submitted;
  reply.completed = stats.completed;
  reply.executed = stats.executed;
  reply.coalesced = stats.coalesced;
  reply.cancelled = stats.cancelled;
  const auto& cache = service_->cache();
  reply.rewrite_hits = cache.hits();
  reply.rewrite_misses = cache.misses();
  reply.program_hits = cache.program_hits();
  reply.program_misses = cache.program_misses();
  if (const auto& disk = cache.disk_store(); disk != nullptr) {
    const auto counters = disk->counters();
    reply.has_store = true;
    reply.store_rewrite_loads = counters.rewrite_loads;
    reply.store_program_loads = counters.program_loads;
    reply.store_load_misses = counters.load_misses;
    reply.store_stores = counters.stores;
    reply.store_failures = counters.store_failures;
    reply.store_evicted_corrupt = counters.evicted_corrupt;
    reply.store_evicted_version = counters.evicted_version;
  }
  reply.workers = service_->workers();
  const auto sched = service_->scheduler_stats();
  reply.sched_queue_depth = sched.queue_depth;
  reply.sched_stolen = sched.stolen;
  reply.sched_parks = sched.parks;
  reply.sched_overflows = sched.overflows;
  reply.sched_forked = sched.forked;
  reply.sched_low = sched.by_priority[static_cast<std::size_t>(
      sched::Priority::Low)];
  reply.sched_normal = sched.by_priority[static_cast<std::size_t>(
      sched::Priority::Normal)];
  reply.sched_high = sched.by_priority[static_cast<std::size_t>(
      sched::Priority::High)];
  return reply;
}

// ---- event loop ------------------------------------------------------------

void Server::loop() {
  std::array<::epoll_event, 64> events;
  while (!stop_.load()) {
    const int ready = ::epoll_wait(epoll_fd_.get(), events.data(),
                                   static_cast<int>(events.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // epoll itself failed — nothing left to serve
    }
    for (int i = 0; i < ready && !stop_.load(); ++i) {
      const int fd = events[i].data.fd;
      const auto flags = events[i].events;
      if (fd == wake_fd_.get()) {
        std::uint64_t token = 0;
        while (::read(wake_fd_.get(), &token, sizeof token) > 0) {
        }
        drain_completions();
        continue;
      }
      if (fd == listen_fd_.get()) {
        accept_connections();
        continue;
      }
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(fd, /*dropped=*/true);
        continue;
      }
      if ((flags & EPOLLIN) != 0) {
        handle_readable(fd);
      }
      if ((flags & EPOLLOUT) != 0) {
        handle_writable(fd);
      }
    }
  }
}

void Server::accept_connections() {
  while (true) {
    if (options_.accept_delay.count() > 0) {
      // Failure injection: a deliberately slow acceptor, to exercise client
      // timeouts and backoff against real kernel behavior. Sliced so stop()
      // never has to out-wait the injected delay.
      const auto deadline =
          std::chrono::steady_clock::now() + options_.accept_delay;
      while (std::chrono::steady_clock::now() < deadline && !stop_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (stop_.load()) {
        return;
      }
    }
    Fd conn(::accept4(listen_fd_.get(), nullptr, nullptr, SOCK_NONBLOCK));
    if (!conn.valid()) {
      return;  // EAGAIN (drained) or a transient accept error — either way
               // the next EPOLLIN on the listener retries
    }
    const int one = 1;
    ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const int fd = conn.get();
    epoll_add(epoll_fd_.get(), fd, EPOLLIN);
    connections_.emplace(
        fd, Connection(std::move(conn), options_.max_frame_bytes));
    const std::scoped_lock lock(counters_mutex_);
    ++counters_.accepted;
  }
}

void Server::update_interest(int fd, const Connection& conn) {
  ::epoll_event event{};
  event.events =
      EPOLLIN | (conn.out_queue.empty() ? 0u : static_cast<unsigned>(EPOLLOUT));
  event.data.fd = fd;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &event);
}

void Server::handle_readable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;  // closed earlier in this event batch
  }
  auto& conn = it->second;
  char chunk[64 * 1024];
  while (true) {
    std::size_t received = 0;
    const auto status = recv_some(fd, chunk, sizeof chunk, received);
    if (status == IoStatus::Closed) {
      close_connection(fd, /*dropped=*/false);
      return;
    }
    if (status == IoStatus::WouldBlock) {
      break;
    }
    conn.reader.feed(std::string_view(chunk, received));
    try {
      while (auto message = conn.reader.next()) {
        {
          const std::scoped_lock lock(counters_mutex_);
          ++counters_.frames_in;
        }
        handle_frame(fd, conn, *message);
        if (connections_.find(fd) == connections_.end()) {
          return;  // handle_frame dropped the connection
        }
      }
    } catch (const Error&) {
      // Framing damage (runt/oversize length prefix): the stream cannot be
      // re-synchronized, so the connection goes.
      close_connection(fd, /*dropped=*/true);
      return;
    }
  }
}

void Server::handle_frame(int fd, Connection& conn,
                          const FramedMessage& message) {
  flow::wire::MessageKind kind;
  try {
    kind = flow::wire::peek_kind(message.frame);
  } catch (const Error& error) {
    // The envelope delimited it, so the stream stays usable — answer the
    // damaged frame (bad magic, hash mismatch, version skew) on its own
    // ticket and keep serving the connection.
    {
      const std::scoped_lock lock(counters_mutex_);
      ++counters_.decode_errors;
    }
    flow::JobResult failed;
    failed.error = std::string("server: ") + error.what();
    queue_reply(fd, conn, message.ticket, flow::wire::encode(failed));
    return;
  }
  if (kind == flow::wire::MessageKind::Ping) {
    queue_reply(fd, conn, message.ticket, flow::wire::encode(stats_reply()));
    return;
  }
  if (kind != flow::wire::MessageKind::JobSpec) {
    // A server never receives results or stats; a peer that sends them is
    // not speaking the protocol.
    close_connection(fd, /*dropped=*/true);
    return;
  }
  try {
    const auto spec = flow::wire::decode_job_spec(message.frame);
    const auto ticket = service_->submit(spec.to_job());
    routes_.emplace(ticket, std::make_pair(fd, message.ticket));
    conn.tickets.push_back(ticket);
  } catch (const std::exception& error) {
    // Decoded-but-unrunnable (unknown policy, unresolvable source): the
    // job's failure, not the connection's.
    {
      const std::scoped_lock lock(counters_mutex_);
      ++counters_.decode_errors;
    }
    flow::JobResult failed;
    failed.error = error.what();
    queue_reply(fd, conn, message.ticket, flow::wire::encode(failed));
  }
}

void Server::queue_reply(int fd, Connection& conn, std::uint64_t client_ticket,
                         std::string frame) {
  conn.out_queue.push_back(envelope(client_ticket, frame));
  {
    const std::scoped_lock lock(counters_mutex_);
    ++counters_.frames_out;
  }
  // Opportunistic flush: we are on the loop thread and the socket is very
  // likely writable — skip one epoll round trip.
  handle_writable(fd);
}

void Server::handle_writable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  auto& conn = it->second;
  while (!conn.out_queue.empty()) {
    const auto& front = conn.out_queue.front();
    std::size_t sent = 0;
    const auto status = send_some(
        fd, std::string_view(front).substr(conn.out_offset), sent);
    if (status == IoStatus::Closed) {
      close_connection(fd, /*dropped=*/true);
      return;
    }
    if (status == IoStatus::WouldBlock) {
      break;
    }
    conn.out_offset += sent;
    if (conn.out_offset == front.size()) {
      conn.out_queue.pop_front();
      conn.out_offset = 0;
    }
  }
  update_interest(fd, conn);
}

void Server::drain_completions() {
  std::vector<flow::Ticket> ready;
  {
    const std::scoped_lock lock(completion_mutex_);
    ready.swap(completed_);
  }
  for (const auto ticket : ready) {
    auto result = service_->try_get(ticket);
    if (!result) {
      continue;  // completion raced shutdown — nothing to route
    }
    const auto route = routes_.find(ticket);
    if (route == routes_.end()) {
      continue;  // connection died while the job ran: collected + discarded
    }
    const auto [fd, client_ticket] = route->second;
    routes_.erase(route);
    const auto conn = connections_.find(fd);
    if (conn == connections_.end()) {
      continue;
    }
    std::erase(conn->second.tickets, ticket);
    // Responses carry the report and stats, not the prepared graph — the
    // rewritten MIG stays in the shard's cache where the next job wants it,
    // instead of multiplying every response's size.
    result->prepared = nullptr;
    queue_reply(fd, conn->second, client_ticket,
                flow::wire::encode(*result));
  }
}

void Server::close_connection(int fd, bool dropped) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  // Pending jobs of a vanished peer are wasted work — cancel them. Running
  // ones finish and get discarded when their completion finds no route.
  for (const auto ticket : it->second.tickets) {
    routes_.erase(ticket);
    service_->cancel(ticket);
  }
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);
  if (dropped) {
    const std::scoped_lock lock(counters_mutex_);
    ++counters_.dropped_connections;
  }
}

}  // namespace rlim::net
