#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rlim::net {

/// One TCP endpoint in the CLI's `HOST:PORT` notation. HOST is a numeric
/// IPv4/IPv6 address or a resolvable name; PORT 0 asks the kernel for an
/// ephemeral port when listening (tests bind this way and read the resolved
/// port back with local_port()).
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  /// Round-trips through parse_endpoint: IPv6 literals come back bracketed.
  [[nodiscard]] std::string to_string() const {
    const bool ipv6 = host.find(':') != std::string::npos;
    return (ipv6 ? "[" + host + "]" : host) + ":" + std::to_string(port);
  }
  bool operator==(const Endpoint&) const = default;
};

/// Parses `HOST:PORT` (throws rlim::Error on a missing/non-numeric port or
/// empty host). IPv6 literals use brackets: `[::1]:7070`.
[[nodiscard]] Endpoint parse_endpoint(std::string_view text);

/// Parses a comma-separated endpoint list, e.g. `h1:7070,h2:7070` (the
/// `rlim submit --connect` syntax). At least one endpoint is required.
[[nodiscard]] std::vector<Endpoint> parse_endpoints(std::string_view text);

/// RAII file descriptor. Closes on destruction; moveable, not copyable.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Process-wide SIGPIPE suppression, idempotent. Every socket entry point
/// calls this: a peer that vanishes mid-write must surface as a recoverable
/// I/O error on that one connection, never as a fatal signal to the whole
/// process. Writes additionally pass MSG_NOSIGNAL as a belt-and-braces
/// measure (it also protects callers that installed their own handler).
void ignore_sigpipe();

/// Creates a nonblocking listening socket (SO_REUSEADDR) bound to
/// `endpoint`. Throws rlim::Error when the address cannot be resolved or
/// bound.
[[nodiscard]] Fd listen_tcp(const Endpoint& endpoint, int backlog = 128);

/// The locally bound port of a socket — resolves port 0 after listen_tcp.
[[nodiscard]] std::uint16_t local_port(const Fd& socket);

/// Connects with a timeout; the returned socket is nonblocking and ready
/// for I/O. Throws rlim::Error on resolution failure, refusal, or timeout.
[[nodiscard]] Fd connect_tcp(const Endpoint& endpoint,
                             std::chrono::milliseconds timeout);

/// Outcome of one nonblocking send/recv step.
enum class IoStatus {
  Ok,          ///< moved at least one byte
  WouldBlock,  ///< no bytes available/acceptable right now (EAGAIN)
  Closed,      ///< orderly EOF, reset, or any other hard error — the
               ///< connection is gone either way
};

/// Nonblocking write (MSG_NOSIGNAL). On Ok, `sent` holds the bytes written
/// (possibly a short write — call again for the rest).
[[nodiscard]] IoStatus send_some(int fd, std::string_view bytes,
                                 std::size_t& sent);

/// Nonblocking read. On Ok, `received` holds the bytes read into `buffer`.
[[nodiscard]] IoStatus recv_some(int fd, char* buffer, std::size_t capacity,
                                 std::size_t& received);

}  // namespace rlim::net
