#include "net/framing.hpp"

#include "util/codec.hpp"
#include "util/error.hpp"

namespace rlim::net {

std::string envelope(std::uint64_t ticket, std::string_view frame) {
  util::ByteWriter out;
  out.reserve(kLengthBytes + kTicketBytes + frame.size());
  out.u32(static_cast<std::uint32_t>(kTicketBytes + frame.size()));
  out.u64(ticket);
  out.raw(frame);
  return out.take();
}

void FrameReader::feed(std::string_view bytes) {
  // Reclaim consumed prefix before growing — a long-lived connection's
  // buffer stays proportional to its largest in-flight message, not its
  // traffic history.
  if (offset_ > 0 && (offset_ >= buffer_.size() || offset_ > 64 * 1024)) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<FramedMessage> FrameReader::next() {
  const auto available = buffer_.size() - offset_;
  if (available < kLengthBytes) {
    return std::nullopt;
  }
  util::ByteReader header(
      std::string_view(buffer_).substr(offset_, kLengthBytes));
  const std::size_t length = header.u32();
  // The hardening that matters: both checks run before any allocation is
  // sized from the untrusted prefix. A runt length cannot even hold the
  // ticket; an absurd one would otherwise commit this side to buffering
  // (and eventually resizing into) gigabytes.
  require(length >= kTicketBytes,
          "net: framing error: length prefix shorter than a ticket");
  require(length <= kTicketBytes + max_frame_bytes_,
          "net: framing error: " + std::to_string(length) +
              "-byte message exceeds the " +
              std::to_string(max_frame_bytes_) + "-byte frame ceiling");
  if (available < kLengthBytes + length) {
    return std::nullopt;
  }
  util::ByteReader body(
      std::string_view(buffer_).substr(offset_ + kLengthBytes, length));
  FramedMessage message;
  message.ticket = body.u64();
  message.frame = std::string(body.view(length - kTicketBytes));
  offset_ += kLengthBytes + length;
  return message;
}

}  // namespace rlim::net
