#include "net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include "net/framing.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Internal marker for "the connection is gone, retry may help" — never
/// escapes the client (it is rethrown as rlim::Error once retries are
/// exhausted).
struct TransportFailure {
  std::string reason;
};

}  // namespace

std::chrono::milliseconds backoff_delay(const ClientOptions& options,
                                        unsigned attempt,
                                        util::Xoshiro256& rng) {
  const auto full = std::min(
      options.backoff_cap,
      options.backoff_base * (std::int64_t{1} << std::min(attempt, 20u)));
  const auto count = full.count();
  if (count <= 0) {
    return std::chrono::milliseconds{0};
  }
  // Half-jitter: [full/2, full]. The floor keeps the exponential shape
  // (attempt n+1 never retries sooner than attempt n's floor); the spread
  // decorrelates clients that failed at the same instant.
  const auto floor = count / 2;
  return std::chrono::milliseconds(
      floor + static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(count - floor) + 1)));
}

Client::Client(Endpoint endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(options),
      backoff_rng_(options.backoff_seed != 0
                       ? options.backoff_seed
                       : util::mix_seed(
                             util::fnv1a64(endpoint_.to_string()),
                             reinterpret_cast<std::uintptr_t>(this))) {}

void Client::ensure_connected() {
  if (fd_.valid()) {
    return;
  }
  fd_ = connect_tcp(endpoint_, options_.connect_timeout);
  const int one = 1;
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  ++telemetry_.connects;
}

void Client::exchange(
    const std::vector<Request>& requests,
    const std::function<void(std::uint64_t, std::string_view)>& on_frame) {
  std::vector<bool> answered(requests.size(), false);
  std::size_t remaining = requests.size();
  for (unsigned attempt = 0; remaining > 0; ++attempt) {
    try {
      try {
        ensure_connected();
        pump(requests, answered, remaining, on_frame);
      } catch (const Error& error) {
        // connect_tcp failures and damaged response frames land here; both
        // are transport-class (a fresh connection + resend may succeed).
        throw TransportFailure{error.what()};
      }
    } catch (const TransportFailure& failure) {
      fd_.reset();
      if (attempt >= options_.max_retries) {
        throw Error("net: shard " + endpoint_.to_string() +
                    " unreachable after " + std::to_string(attempt + 1) +
                    " attempts: " + failure.reason);
      }
      ++telemetry_.retries;
      std::this_thread::sleep_for(
          backoff_delay(options_, attempt, backoff_rng_));
    }
  }
}

void Client::pump(
    const std::vector<Request>& requests, std::vector<bool>& answered,
    std::size_t& remaining,
    const std::function<void(std::uint64_t, std::string_view)>& on_frame) {
  std::unordered_map<std::uint64_t, std::size_t> by_ticket;
  by_ticket.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    by_ticket.emplace(requests[i].ticket, i);
  }

  FrameReader reader(options_.max_frame_bytes);
  std::size_t send_index = 0;  // next request to encode
  std::string out;             // bytes being written
  std::size_t out_offset = 0;
  auto last_activity = Clock::now();
  char chunk[64 * 1024];

  while (remaining > 0) {
    // Refill the write buffer with a bounded batch of unanswered requests —
    // full pipelining, but the buffer stays a few hundred KB however large
    // the job stream is.
    if (out_offset == out.size()) {
      out.clear();
      out_offset = 0;
      while (send_index < requests.size() && out.size() < 256 * 1024) {
        if (!answered[send_index]) {
          out += envelope(requests[send_index].ticket,
                          requests[send_index].encode());
          ++telemetry_.frames_out;
        }
        ++send_index;
      }
    }

    ::pollfd pfd{fd_.get(), POLLIN, 0};
    if (out_offset < out.size()) {
      pfd.events |= POLLOUT;
    }
    const auto idle =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - last_activity);
    const auto wait = options_.request_timeout - idle;
    if (wait.count() <= 0) {
      throw TransportFailure{"request timed out after " +
                             std::to_string(options_.request_timeout.count()) +
                             " ms of silence"};
    }
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()));
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw TransportFailure{"poll failed"};
    }
    if (ready == 0) {
      throw TransportFailure{"request timed out after " +
                             std::to_string(options_.request_timeout.count()) +
                             " ms of silence"};
    }

    if ((pfd.revents & POLLIN) != 0) {
      while (true) {
        std::size_t received = 0;
        const auto status = recv_some(fd_.get(), chunk, sizeof chunk, received);
        if (status == IoStatus::Closed) {
          throw TransportFailure{"connection closed by shard"};
        }
        if (status == IoStatus::WouldBlock) {
          break;
        }
        last_activity = Clock::now();
        reader.feed(std::string_view(chunk, received));
        // FrameReader/decode throws Error on damage; exchange() maps that to
        // a transport failure and the whole connection restarts.
        while (auto message = reader.next()) {
          const auto it = by_ticket.find(message->ticket);
          if (it == by_ticket.end() || answered[it->second]) {
            continue;  // stale or duplicate ticket — ignore
          }
          on_frame(message->ticket, message->frame);
          answered[it->second] = true;
          --remaining;
          ++telemetry_.frames_in;
        }
      }
    } else if ((pfd.revents & (POLLERR | POLLHUP)) != 0) {
      throw TransportFailure{"connection reset by shard"};
    }

    if ((pfd.revents & POLLOUT) != 0 && out_offset < out.size()) {
      std::size_t sent = 0;
      const auto status =
          send_some(fd_.get(), std::string_view(out).substr(out_offset), sent);
      if (status == IoStatus::Closed) {
        throw TransportFailure{"connection closed by shard mid-send"};
      }
      if (status == IoStatus::Ok) {
        out_offset += sent;
      }
    }
  }
}

std::vector<flow::JobResult> Client::run(
    const std::vector<flow::wire::JobSpec>& specs) {
  std::vector<std::optional<flow::JobResult>> slots(specs.size());
  std::vector<std::size_t> indices(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    indices[i] = i;
  }
  run_indices(specs, indices, slots);
  std::vector<flow::JobResult> results;
  results.reserve(slots.size());
  for (auto& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

void Client::run_indices(const std::vector<flow::wire::JobSpec>& specs,
                         const std::vector<std::size_t>& indices,
                         std::vector<std::optional<flow::JobResult>>& results) {
  require(results.size() >= specs.size(),
          "net: result slots must cover every spec");
  std::vector<Request> requests;
  requests.reserve(indices.size());
  for (const auto index : indices) {
    require(index < specs.size(), "net: request index out of range");
    if (results[index].has_value()) {
      continue;
    }
    // Ticket = index + 1: stable across retries, unique within the batch,
    // and trivially mapped back to its result slot.
    requests.push_back(Request{
        index + 1, [&specs, index] { return encode(specs[index]); }});
  }
  exchange(requests, [&results](std::uint64_t ticket, std::string_view frame) {
    results[ticket - 1] = flow::wire::decode_job_result(frame);
  });
}

flow::wire::StatsReply Client::ping() {
  flow::wire::StatsReply reply;
  std::vector<Request> requests;
  requests.push_back(Request{1, [] { return flow::wire::encode_ping(); }});
  exchange(requests, [&reply](std::uint64_t, std::string_view frame) {
    reply = flow::wire::decode_stats(frame);
  });
  return reply;
}

}  // namespace rlim::net
