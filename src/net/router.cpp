#include "net/router.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::net {

namespace {

/// murmur3 finalizer: full-avalanche scrambling. FNV-1a alone is not enough
/// here — digests of strings that differ only in a short suffix ("…cap=3"
/// vs "…cap=4", "endpoint#17" vs "endpoint#18") agree in their high bits,
/// which would clump the virtual nodes into a few ring arcs and starve
/// shards. One finalizer round restores uniformity.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-sensitive combination of two 64-bit hashes.
std::uint64_t combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ mix64(value));
}

}  // namespace

ShardRouter::ShardRouter(std::vector<Endpoint> endpoints,
                         ClientOptions options) {
  require(!endpoints.empty(), "net: router needs at least one endpoint");
  shards_.reserve(endpoints.size());
  for (const auto& endpoint : endpoints) {
    shards_.push_back(std::make_unique<Shard>(endpoint, options));
  }
  ring_.reserve(shards_.size() * kReplicas);
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    const auto base = endpoints[shard].to_string();
    for (unsigned replica = 0; replica < kReplicas; ++replica) {
      ring_.push_back(RingNode{
          mix64(util::fnv1a64(base + "#" + std::to_string(replica))), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingNode& a, const RingNode& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

std::uint64_t ShardRouter::key_of(const flow::wire::JobSpec& spec) {
  const auto source_key = spec.graph.has_value()
                              ? spec.graph->fingerprint()
                              : util::fnv1a64(spec.source_ref);
  return combine(source_key, util::fnv1a64(spec.config_spec));
}

std::optional<std::size_t> ShardRouter::route_key(std::uint64_t key) const {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingNode& node, std::uint64_t value) {
        return node.hash < value;
      });
  // Walk clockwise from the key's arc until an alive shard owns a node —
  // that walk IS the failover order, so a dead shard's keys spill onto its
  // ring successors instead of all piling onto one survivor.
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (!shards_[it->shard]->dead) {
      return it->shard;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> ShardRouter::route(
    const flow::wire::JobSpec& spec) const {
  return route_key(key_of(spec));
}

std::vector<flow::JobResult> ShardRouter::run(
    const std::vector<flow::wire::JobSpec>& specs) {
  std::vector<std::optional<flow::JobResult>> slots(specs.size());
  std::vector<std::uint64_t> keys;
  keys.reserve(specs.size());
  for (const auto& spec : specs) {
    keys.push_back(key_of(spec));
  }

  bool rerouting = false;
  while (true) {
    // Partition the still-unanswered indices over the alive shards.
    std::vector<std::vector<std::size_t>> partitions(shards_.size());
    bool pending = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (slots[i].has_value()) {
        continue;
      }
      pending = true;
      const auto shard = route_key(keys[i]);
      if (!shard) {
        flow::JobResult failed;
        failed.error = "net: no shard available (every endpoint is dead)";
        slots[i] = std::move(failed);
        continue;
      }
      partitions[*shard].push_back(i);
      if (rerouting) {
        ++telemetry_.rerouted;
      }
    }
    if (!pending) {
      break;
    }

    // One submission thread per shard: each pipelines its partition and
    // fills disjoint result slots, so no synchronization is needed beyond
    // the join. A thread that throws marks its shard dead; the next round
    // re-partitions whatever it left unanswered.
    std::vector<std::thread> threads;
    for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
      if (partitions[shard].empty()) {
        continue;
      }
      threads.emplace_back([this, shard, &specs, &slots,
                            indices = std::move(partitions[shard])] {
        try {
          shards_[shard]->client.run_indices(specs, indices, slots);
        } catch (const Error&) {
          shards_[shard]->dead = true;
        }
      });
    }
    if (threads.empty()) {
      break;  // everything resolved to an error slot above
    }
    for (auto& thread : threads) {
      thread.join();
    }
    const auto died = std::count_if(
        shards_.begin(), shards_.end(),
        [](const auto& shard) { return shard->dead; });
    if (static_cast<std::uint64_t>(died) > telemetry_.failovers) {
      telemetry_.failovers = static_cast<std::uint64_t>(died);
      rerouting = true;
    }
  }

  std::vector<flow::JobResult> results;
  results.reserve(slots.size());
  for (auto& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace rlim::net
