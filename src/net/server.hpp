#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "flow/service.hpp"
#include "flow/wire.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace rlim::net {

struct ServerOptions {
  /// flow::Service worker-pool ceiling (0 = hardware concurrency).
  unsigned jobs = 0;
  /// Persistent store directory backing the shard's pipeline cache; empty
  /// leaves the disk tier off. A cluster gives each shard its own directory —
  /// consistent-hash routing is what keeps every shard's store hot.
  std::string cache_dir{};
  /// Ceiling on one framed message (enforced on the untrusted length prefix
  /// before any allocation).
  std::size_t max_frame_bytes = flow::wire::kDefaultMaxFrameBytes;
  /// Failure-injection knob: sleep this long before every accept. Only the
  /// loopback test harness sets it (client connect timeouts and retries are
  /// exercised against a genuinely slow acceptor).
  std::chrono::milliseconds accept_delay{0};
};

/// Lifetime I/O counters of one Server (monotonic, read at any time).
struct ServerCounters {
  std::uint64_t accepted = 0;          ///< connections accepted
  std::uint64_t frames_in = 0;         ///< envelopes parsed off the wire
  std::uint64_t frames_out = 0;        ///< envelopes written back
  std::uint64_t decode_errors = 0;     ///< authenticated-envelope frames that
                                       ///< failed wire decoding (answered
                                       ///< with an error JobResult)
  std::uint64_t dropped_connections = 0;  ///< closed on framing damage,
                                          ///< protocol misuse, or I/O error
};

/// The shard side of the net transport: a single epoll event loop that
/// accepts TCP connections, parses length-delimited envelopes, feeds
/// decoded flow::wire JobSpec frames into an owned flow::Service, and
/// streams JobResult frames back tagged with the client's ticket ids — in
/// completion order, which is what makes in-flight pipelining pay.
///
/// Ping frames are answered inline with a Stats frame (service counters,
/// both cache levels, disk-store counters), so a fleet monitor can probe a
/// shard without costing it a worker.
///
/// Failure containment per connection: framing damage (bad length prefix)
/// or an unparseable/mis-kinded frame closes that connection only; a frame
/// that authenticates but fails JobSpec decoding (unknown policy, damaged
/// payload) is answered with an error JobResult on the same ticket. A
/// vanished peer's in-flight jobs run to completion and their results are
/// discarded; its still-pending jobs are cancelled.
///
/// The accept loop, reads, writes, and completion dispatch all run on one
/// background thread (started by the constructor); all the heavy lifting
/// happens on the Service's worker pool. stop() (or destruction) shuts the
/// loop down, closes every connection, and drains the Service.
class Server {
 public:
  /// Binds and starts serving immediately. Throws rlim::Error when the
  /// endpoint cannot be bound or the cache directory is unusable.
  explicit Server(const Endpoint& listen, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually bound port (resolves an ephemeral bind request).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] Endpoint endpoint() const {
    return {listen_host_, port_};
  }

  /// Stops accepting, closes every connection (in-flight responses are
  /// abandoned — the client's retry path owns recovery), and joins the
  /// loop. Idempotent.
  void stop();

  [[nodiscard]] ServerCounters counters() const;
  [[nodiscard]] flow::ServiceStats service_stats() const {
    return service_->stats();
  }
  [[nodiscard]] const flow::PipelineCache& cache() const {
    return service_->cache();
  }

  /// The shard's health snapshot (same payload a Ping returns).
  [[nodiscard]] flow::wire::StatsReply stats_reply() const;

 private:
  struct Connection {
    Fd fd;
    FrameReader reader;
    std::deque<std::string> out_queue;  ///< encoded envelopes
    std::size_t out_offset = 0;         ///< sent bytes of out_queue.front()
    /// Outstanding service tickets submitted by this connection.
    std::vector<flow::Ticket> tickets;

    explicit Connection(Fd socket, std::size_t max_frame_bytes)
        : fd(std::move(socket)), reader(max_frame_bytes) {}
  };

  void loop();
  void accept_connections();
  void handle_readable(int fd);
  void handle_writable(int fd);
  void handle_frame(int fd, Connection& conn, const FramedMessage& message);
  void queue_reply(int fd, Connection& conn, std::uint64_t client_ticket,
                   std::string frame);
  void drain_completions();
  void close_connection(int fd, bool dropped);
  void update_interest(int fd, const Connection& conn);
  void wake();

  ServerOptions options_;
  std::string listen_host_;
  std::uint16_t port_ = 0;
  Fd listen_fd_;
  Fd epoll_fd_;
  Fd wake_fd_;  ///< eventfd: job completions and stop requests

  std::unique_ptr<flow::Service> service_;

  std::unordered_map<int, Connection> connections_;
  /// service ticket -> (connection fd, client ticket). Entries whose
  /// connection died stay until completion, then collect-and-discard.
  std::unordered_map<flow::Ticket, std::pair<int, std::uint64_t>> routes_;

  std::mutex completion_mutex_;
  std::vector<flow::Ticket> completed_;  ///< pushed by service workers

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::thread thread_;

  mutable std::mutex counters_mutex_;
  ServerCounters counters_;
};

}  // namespace rlim::net
