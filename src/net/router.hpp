#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "flow/job.hpp"
#include "flow/wire.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"

namespace rlim::net {

/// Router-level lifetime counters.
struct RouterTelemetry {
  std::uint64_t failovers = 0;  ///< shards declared dead mid-run
  std::uint64_t rerouted = 0;   ///< jobs re-partitioned onto another shard
};

/// Partitions a job stream across N shard endpoints by consistent hashing,
/// with automatic failover.
///
/// The ring holds kReplicas virtual nodes per endpoint (FNV-1a of
/// "endpoint#replica"), and a spec's key combines the graph identity with
/// the canonical config key: the fingerprint for an inline graph, the
/// FNV-1a of the reference string for a by-reference spec. Identical
/// (netlist, config) cells therefore always land on the same shard — which
/// is exactly what keeps each shard's pipeline cache and persistent store
/// hot — and adding or removing a shard only remaps the ~1/N of keys whose
/// ring arcs moved.
///
/// (By-reference specs hash the reference string rather than the graph
/// content so routing never has to build the netlist locally; same
/// cache-locality property, since equal refs resolve to equal graphs.)
///
/// Failover: each shard's Client retries transport failures itself (see
/// ClientOptions); when a client gives up, the router marks that shard dead
/// for the rest of its lifetime, re-partitions the shard's unanswered jobs
/// across the survivors (walking to the next alive ring node), and keeps
/// every result already received. Only when every shard is dead do the
/// remaining jobs come back as error JobResults.
class ShardRouter {
 public:
  static constexpr unsigned kReplicas = 64;

  explicit ShardRouter(std::vector<Endpoint> endpoints,
                       ClientOptions options = {});

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const Endpoint& endpoint(std::size_t shard) const {
    return shards_[shard]->client.endpoint();
  }
  [[nodiscard]] bool alive(std::size_t shard) const {
    return !shards_[shard]->dead;
  }
  [[nodiscard]] const ClientTelemetry& telemetry(std::size_t shard) const {
    return shards_[shard]->client.telemetry();
  }
  [[nodiscard]] const RouterTelemetry& telemetry() const { return telemetry_; }

  /// The ring key of a spec (exposed for tests and diagnostics).
  [[nodiscard]] static std::uint64_t key_of(const flow::wire::JobSpec& spec);

  /// First-choice alive shard for a spec; nullopt when every shard is dead.
  [[nodiscard]] std::optional<std::size_t> route(
      const flow::wire::JobSpec& spec) const;

  /// Executes the whole stream across the cluster and returns results in
  /// spec order. Shards run concurrently (one submission thread each);
  /// failures fail over as described above. Never throws for shard loss —
  /// jobs that no shard could execute carry an error JobResult.
  [[nodiscard]] std::vector<flow::JobResult> run(
      const std::vector<flow::wire::JobSpec>& specs);

  /// Probes one shard (throws rlim::Error when it is unreachable).
  [[nodiscard]] flow::wire::StatsReply ping(std::size_t shard) {
    return shards_[shard]->client.ping();
  }

 private:
  struct Shard {
    Client client;
    bool dead = false;

    Shard(const Endpoint& endpoint, const ClientOptions& options)
        : client(endpoint, options) {}
  };
  struct RingNode {
    std::uint64_t hash;
    std::size_t shard;
  };

  [[nodiscard]] std::optional<std::size_t> route_key(std::uint64_t key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RingNode> ring_;  ///< sorted by hash
  RouterTelemetry telemetry_;
};

}  // namespace rlim::net
