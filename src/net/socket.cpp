#include "net/socket.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/error.hpp"

namespace rlim::net {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string("net: ") + what + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "net: cannot set O_NONBLOCK");
}

/// getaddrinfo wrapper shared by listen and connect. Returns the resolved
/// list; the caller walks it until one address works.
struct AddrList {
  ::addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) {
      ::freeaddrinfo(head);
    }
  }
};

void resolve(const Endpoint& endpoint, bool passive, AddrList& out) {
  ::addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  const auto service = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host.empty() ? nullptr
                                                     : endpoint.host.c_str(),
                               service.c_str(), &hints, &out.head);
  require(rc == 0, "net: cannot resolve '" + endpoint.to_string() +
                       "': " + ::gai_strerror(rc));
}

}  // namespace

Endpoint parse_endpoint(std::string_view text) {
  Endpoint endpoint;
  std::string_view host;
  std::string_view port;
  if (!text.empty() && text.front() == '[') {
    // [IPv6]:PORT
    const auto close = text.find(']');
    require(close != std::string_view::npos && close + 1 < text.size() &&
                text[close + 1] == ':',
            "net: bad endpoint '" + std::string(text) +
                "' (expected [HOST]:PORT)");
    host = text.substr(1, close - 1);
    port = text.substr(close + 2);
  } else {
    const auto colon = text.rfind(':');
    require(colon != std::string_view::npos,
            "net: bad endpoint '" + std::string(text) +
                "' (expected HOST:PORT)");
    host = text.substr(0, colon);
    port = text.substr(colon + 1);
  }
  require(!host.empty(), "net: endpoint '" + std::string(text) +
                             "' is missing a host");
  require(!port.empty() &&
              port.find_first_not_of("0123456789") == std::string_view::npos,
          "net: endpoint '" + std::string(text) +
              "' needs a numeric port");
  unsigned long value = 0;
  for (const char c : port) {
    value = value * 10 + static_cast<unsigned long>(c - '0');
    require(value <= 65535, "net: endpoint '" + std::string(text) +
                                "' port is out of range");
  }
  endpoint.host = std::string(host);
  endpoint.port = static_cast<std::uint16_t>(value);
  return endpoint;
}

std::vector<Endpoint> parse_endpoints(std::string_view text) {
  std::vector<Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto end = text.find(',', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const auto piece = text.substr(start, end - start);
    require(!piece.empty(), "net: empty endpoint in list '" +
                                std::string(text) + "'");
    endpoints.push_back(parse_endpoint(piece));
    if (end == text.size()) {
      break;
    }
    start = end + 1;
  }
  require(!endpoints.empty(), "net: endpoint list is empty");
  return endpoints;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

Fd listen_tcp(const Endpoint& endpoint, int backlog) {
  ignore_sigpipe();
  AddrList addrs;
  resolve(endpoint, /*passive=*/true, addrs);
  std::string last_error = "no addresses";
  for (const auto* addr = addrs.head; addr != nullptr; addr = addr->ai_next) {
    Fd fd(::socket(addr->ai_family, addr->ai_socktype, addr->ai_protocol));
    if (!fd.valid()) {
      last_error = errno_message("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.get(), addr->ai_addr, addr->ai_addrlen) != 0 ||
        ::listen(fd.get(), backlog) != 0) {
      last_error = errno_message("bind/listen");
      continue;
    }
    set_nonblocking(fd.get());
    return fd;
  }
  throw Error("net: cannot listen on '" + endpoint.to_string() +
              "': " + last_error);
}

std::uint16_t local_port(const Fd& socket) {
  ::sockaddr_storage addr{};
  ::socklen_t len = sizeof addr;
  require(::getsockname(socket.get(),
                        reinterpret_cast<::sockaddr*>(&addr), &len) == 0,
          "net: getsockname failed");
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<::sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<::sockaddr_in6*>(&addr)->sin6_port);
  }
  throw Error("net: unexpected socket family");
}

Fd connect_tcp(const Endpoint& endpoint, std::chrono::milliseconds timeout) {
  ignore_sigpipe();
  AddrList addrs;
  resolve(endpoint, /*passive=*/false, addrs);
  std::string last_error = "no addresses";
  for (const auto* addr = addrs.head; addr != nullptr; addr = addr->ai_next) {
    Fd fd(::socket(addr->ai_family, addr->ai_socktype, addr->ai_protocol));
    if (!fd.valid()) {
      last_error = errno_message("socket");
      continue;
    }
    set_nonblocking(fd.get());
    if (::connect(fd.get(), addr->ai_addr, addr->ai_addrlen) == 0) {
      return fd;
    }
    if (errno != EINPROGRESS) {
      last_error = errno_message("connect");
      continue;
    }
    // Nonblocking connect: wait for writability, then read the final
    // status out of SO_ERROR (the only reliable way to tell success from a
    // delayed refusal).
    ::pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready == 0) {
      last_error = "connect timed out after " +
                   std::to_string(timeout.count()) + " ms";
      continue;
    }
    if (ready < 0) {
      last_error = errno_message("poll");
      continue;
    }
    int status = 0;
    ::socklen_t status_len = sizeof status;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &status, &status_len) !=
            0 ||
        status != 0) {
      errno = status != 0 ? status : errno;
      last_error = errno_message("connect");
      continue;
    }
    return fd;
  }
  throw Error("net: cannot connect to '" + endpoint.to_string() +
              "': " + last_error);
}

IoStatus send_some(int fd, std::string_view bytes, std::size_t& sent) {
  sent = 0;
  const auto n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  if (n > 0) {
    sent = static_cast<std::size_t>(n);
    return IoStatus::Ok;
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return IoStatus::WouldBlock;
  }
  return IoStatus::Closed;  // EPIPE, ECONNRESET, or any other hard error
}

IoStatus recv_some(int fd, char* buffer, std::size_t capacity,
                   std::size_t& received) {
  received = 0;
  const auto n = ::recv(fd, buffer, capacity, 0);
  if (n > 0) {
    received = static_cast<std::size_t>(n);
    return IoStatus::Ok;
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return IoStatus::WouldBlock;
  }
  return IoStatus::Closed;  // n == 0 is orderly EOF
}

}  // namespace rlim::net
