#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "flow/job.hpp"
#include "flow/wire.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace rlim::net {

struct ClientOptions {
  /// Ceiling on establishing one TCP connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Inactivity ceiling while responses are outstanding: if the shard sends
  /// nothing for this long, the connection is declared dead and the retry
  /// path takes over. Per-byte progress resets it, so a long pipelined
  /// batch is not penalized for its total duration.
  std::chrono::milliseconds request_timeout{30000};
  /// Reconnect attempts after the first failure. Jobs are pure functions of
  /// their spec (idempotent), so unacknowledged requests are simply resent
  /// on the fresh connection.
  unsigned max_retries = 3;
  /// Exponential backoff between attempts: base * 2^attempt, capped, then
  /// jittered uniformly into [delay/2, delay] — simultaneous clients that
  /// lost the same shard must not retry in lockstep against it as it
  /// recovers (the classic thundering-herd shape).
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_cap{2000};
  /// Seed of the jitter stream; 0 (the default) derives a per-client seed
  /// from the endpoint and the client's identity, so a fleet of clients
  /// decorrelates without configuration. Fix it for reproducible timing.
  std::uint64_t backoff_seed = 0;
  /// Ceiling on one received framed message.
  std::size_t max_frame_bytes = flow::wire::kDefaultMaxFrameBytes;
};

/// The retry delay before reconnect attempt `attempt` (0-based): the bounded
/// exponential backoff_base * 2^attempt (capped at backoff_cap), jittered
/// uniformly into [delay/2, delay] with one draw from `rng`. Exposed as a
/// free function so the bounds are unit-testable without a socket.
[[nodiscard]] std::chrono::milliseconds backoff_delay(
    const ClientOptions& options, unsigned attempt, util::Xoshiro256& rng);

/// Client-side lifetime counters (reads happen between calls; the client is
/// not thread-safe).
struct ClientTelemetry {
  std::uint64_t connects = 0;   ///< successful TCP connections
  std::uint64_t retries = 0;    ///< reconnect-and-resend rounds
  std::uint64_t frames_out = 0;
  std::uint64_t frames_in = 0;
};

/// One shard's client: a lazily connected TCP peer speaking length-
/// delimited flow::wire envelopes with in-flight pipelining — every request
/// of a batch is written without waiting, responses match up by ticket in
/// whatever completion order the shard chose.
///
/// Failure model: anything that breaks the byte stream (refused or timed-
/// out connect, reset, EOF mid-frame, a response that fails wire
/// authentication, inactivity past request_timeout) tears the connection
/// down and — because job execution is idempotent — retries the
/// unacknowledged requests on a fresh connection with bounded exponential
/// backoff. A JobResult carrying an error is NOT retried: that is the job's
/// own deterministic outcome, delivered. After max_retries reconnects the
/// client throws rlim::Error; the ShardRouter catches that and fails the
/// remaining jobs over to the next shard on the ring.
class Client {
 public:
  explicit Client(Endpoint endpoint, ClientOptions options = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }
  [[nodiscard]] const ClientTelemetry& telemetry() const {
    return telemetry_;
  }

  /// Pipelines every spec and returns results in spec order.
  [[nodiscard]] std::vector<flow::JobResult> run(
      const std::vector<flow::wire::JobSpec>& specs);

  /// The ShardRouter's primitive: executes specs[i] for each listed index,
  /// filling results[i] (slots already holding a value are skipped —
  /// that is what makes cross-shard failover resume instead of restart).
  /// Throws on unrecoverable transport failure; results received before
  /// the failure stay filled.
  void run_indices(const std::vector<flow::wire::JobSpec>& specs,
                   const std::vector<std::size_t>& indices,
                   std::vector<std::optional<flow::JobResult>>& results);

  /// Health probe: sends Ping, returns the shard's Stats snapshot.
  [[nodiscard]] flow::wire::StatsReply ping();

 private:
  /// One logical request: the ticket it travels under and its frame
  /// encoder (invoked per attempt, so resends re-encode).
  struct Request {
    std::uint64_t ticket = 0;
    std::function<std::string()> encode;
  };

  /// Sends every request whose ticket is still outstanding and pumps
  /// responses through `on_frame` until none remain, reconnecting and
  /// resending across transport failures per the options.
  void exchange(
      const std::vector<Request>& requests,
      const std::function<void(std::uint64_t, std::string_view)>& on_frame);
  void pump(
      const std::vector<Request>& requests,
      std::vector<bool>& answered, std::size_t& remaining,
      const std::function<void(std::uint64_t, std::string_view)>& on_frame);
  void ensure_connected();

  Endpoint endpoint_;
  ClientOptions options_;
  Fd fd_;
  ClientTelemetry telemetry_;
  util::Xoshiro256 backoff_rng_;  ///< jitter stream; see backoff_seed
};

}  // namespace rlim::net
