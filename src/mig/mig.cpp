#include "mig/mig.hpp"

#include <algorithm>
#include <cassert>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace rlim::mig {

std::size_t Mig::StrashHash::operator()(const StrashKey& key) const {
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (const auto raw : key.raws) {
    state ^= raw + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    (void)util::splitmix64(state);
  }
  return static_cast<std::size_t>(state);
}

Mig::Mig() {
  nodes_.emplace_back();  // node 0: constant 0
}

Signal Mig::create_pi(std::string name) {
  require(num_gates() == 0, "Mig: all PIs must be created before the first gate");
  ++num_pis_;
  nodes_.emplace_back();
  if (name.empty()) {
    name = "x" + std::to_string(num_pis_ - 1);
  }
  pi_names_.push_back(std::move(name));
  return Signal::from_node(num_pis_);
}

namespace {

/// Applies the trivial Ω.M rules. Returns the simplified signal, or nullopt
/// when ⟨a b c⟩ does not simplify.
std::optional<Signal> try_trivial_maj(Signal a, Signal b, Signal c) {
  if (a == b) return a;   // ⟨xxz⟩ = x
  if (a == !b) return c;  // ⟨xx̄z⟩ = z
  if (a == c) return a;
  if (a == !c) return b;
  if (b == c) return b;
  if (b == !c) return a;
  return std::nullopt;
}

}  // namespace

Signal Mig::create_maj(Signal a, Signal b, Signal c) {
  require(a.index() < num_nodes() && b.index() < num_nodes() && c.index() < num_nodes(),
          "Mig::create_maj: fanin references unknown node");
  if (const auto trivial = try_trivial_maj(a, b, c)) {
    return *trivial;
  }
  std::array<Signal, 3> fanin{a, b, c};
  std::sort(fanin.begin(), fanin.end());  // Ω.C: commutativity is free

  const StrashKey key{{fanin[0].raw(), fanin[1].raw(), fanin[2].raw()}};
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return Signal::from_node(it->second);
  }
  const auto index = num_nodes();
  nodes_.push_back(Node{fanin});
  strash_.emplace(key, index);
  return Signal::from_node(index);
}

Signal Mig::create_xor(Signal a, Signal b) {
  // x ⊕ y = (x ∧ ¬y) ∨ (¬x ∧ y); three majority gates.
  const auto pos_part = create_and(a, !b);
  const auto neg_part = create_and(!a, b);
  return create_or(pos_part, neg_part);
}

Signal Mig::create_mux(Signal sel, Signal then_, Signal else_) {
  const auto t = create_and(sel, then_);
  const auto e = create_and(!sel, else_);
  return create_or(t, e);
}

void Mig::create_po(Signal s, std::string name) {
  require(s.index() < num_nodes(), "Mig::create_po: signal references unknown node");
  if (name.empty()) {
    name = "y" + std::to_string(pos_.size());
  }
  pos_.push_back(s);
  po_names_.push_back(std::move(name));
}

const std::array<Signal, 3>& Mig::fanins(std::uint32_t gate) const {
  require(is_gate(gate), "Mig::fanins: node is not a gate");
  return nodes_[gate].fanin;
}

std::optional<Signal> Mig::find_maj(Signal a, Signal b, Signal c) const {
  if (const auto trivial = try_trivial_maj(a, b, c)) {
    return *trivial;
  }
  std::array<Signal, 3> fanin{a, b, c};
  std::sort(fanin.begin(), fanin.end());
  const StrashKey key{{fanin[0].raw(), fanin[1].raw(), fanin[2].raw()}};
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return Signal::from_node(it->second);
  }
  return std::nullopt;
}

std::vector<std::uint32_t> Mig::fanout_counts() const {
  std::vector<std::uint32_t> counts(num_nodes(), 0);
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    for (const auto fanin : nodes_[gate].fanin) {
      ++counts[fanin.index()];
    }
  }
  for (const auto po : pos_) {
    ++counts[po.index()];
  }
  return counts;
}

std::vector<std::vector<std::uint32_t>> Mig::fanout_lists() const {
  std::vector<std::vector<std::uint32_t>> lists(num_nodes());
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    for (const auto fanin : nodes_[gate].fanin) {
      lists[fanin.index()].push_back(gate);
    }
  }
  return lists;
}

std::vector<std::uint32_t> Mig::levels() const {
  std::vector<std::uint32_t> level(num_nodes(), 0);
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    std::uint32_t max_child = 0;
    for (const auto fanin : nodes_[gate].fanin) {
      max_child = std::max(max_child, level[fanin.index()]);
    }
    level[gate] = max_child + 1;
  }
  return level;
}

std::uint32_t Mig::depth() const {
  const auto level = levels();
  std::uint32_t max_level = 0;
  for (const auto po : pos_) {
    max_level = std::max(max_level, level[po.index()]);
  }
  return max_level;
}

int Mig::complement_count(std::uint32_t gate) const {
  const auto& fanin = fanins(gate);
  int count = 0;
  for (const auto f : fanin) {
    if (!f.is_constant() && f.is_complemented()) {
      ++count;
    }
  }
  return count;
}

std::size_t Mig::complement_edge_count() const {
  std::size_t count = 0;
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    count += static_cast<std::size_t>(complement_count(gate));
  }
  return count;
}

std::vector<bool> Mig::reachable_from_pos() const {
  std::vector<bool> reachable(num_nodes(), false);
  std::vector<std::uint32_t> stack;
  for (const auto po : pos_) {
    if (!reachable[po.index()]) {
      reachable[po.index()] = true;
      stack.push_back(po.index());
    }
  }
  while (!stack.empty()) {
    const auto node = stack.back();
    stack.pop_back();
    if (!is_gate(node)) {
      continue;
    }
    for (const auto fanin : nodes_[node].fanin) {
      if (!reachable[fanin.index()]) {
        reachable[fanin.index()] = true;
        stack.push_back(fanin.index());
      }
    }
  }
  return reachable;
}

Mig Mig::cleanup() const {
  Mig fresh;
  std::vector<Signal> map(num_nodes(), Signal::constant(false));
  for (std::uint32_t pi = 1; pi <= num_pis_; ++pi) {
    map[pi] = fresh.create_pi(pi_names_[pi - 1]);
  }
  const auto reachable = reachable_from_pos();
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    if (!reachable[gate]) {
      continue;
    }
    const auto& fanin = nodes_[gate].fanin;
    const auto remap = [&](Signal s) { return map[s.index()] ^ s.is_complemented(); };
    map[gate] = fresh.create_maj(remap(fanin[0]), remap(fanin[1]), remap(fanin[2]));
  }
  for (std::uint32_t i = 0; i < num_pos(); ++i) {
    const auto po = pos_[i];
    fresh.create_po(map[po.index()] ^ po.is_complemented(), po_names_[i]);
  }
  return fresh;
}

std::uint64_t Mig::fingerprint() const {
  util::Fnv1a64 hash;
  hash.u32(num_pis_);
  hash.u32(num_gates());
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    for (const auto fanin : nodes_[gate].fanin) {
      hash.u32(fanin.raw());
    }
  }
  hash.u32(num_pos());
  for (const auto po : pos_) {
    hash.u32(po.raw());
  }
  return hash.digest();
}

}  // namespace rlim::mig
