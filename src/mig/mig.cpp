#include "mig/mig.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace rlim::mig {

// The bulk store/fingerprint paths treat the fanin arena as a flat
// little-endian u32 stream; these pin down the layout they rely on.
static_assert(std::is_trivially_copyable_v<Signal> && sizeof(Signal) == 4);
static_assert(sizeof(std::array<Signal, 3>) == 12);

NamePool NamePool::adopt(std::string pool, std::vector<std::uint32_t> ends) {
  std::uint32_t previous = 0;
  for (const auto end : ends) {
    require(end >= previous, "NamePool: offset table not monotone");
    previous = end;
  }
  require(previous == pool.size(), "NamePool: offset table inconsistent with pool size");
  NamePool result;
  result.pool_ = std::move(pool);
  result.ends_ = std::move(ends);
  return result;
}

std::uint64_t Mig::strash_hash(const std::array<Signal, 3>& fanin) {
  // Two splitmix64 rounds over the packed raws: cheap, stateless, and well
  // mixed enough for a power-of-two table with linear probing.
  std::uint64_t state = (static_cast<std::uint64_t>(fanin[0].raw()) << 32) |
                        fanin[1].raw();
  std::uint64_t hash = util::splitmix64(state);
  state = hash ^ fanin[2].raw();
  return util::splitmix64(state);
}

std::uint32_t* Mig::strash_locate(const std::array<Signal, 3>& fanin) {
  const auto mask = strash_slots_.size() - 1;
  auto slot = static_cast<std::size_t>(strash_hash(fanin)) & mask;
  while (true) {
    auto& entry = strash_slots_[slot];
    if (entry == 0 || fanins_[entry - first_gate()] == fanin) {
      return &entry;
    }
    slot = (slot + 1) & mask;
  }
}

const std::uint32_t* Mig::strash_locate(
    const std::array<Signal, 3>& fanin) const {
  return const_cast<Mig*>(this)->strash_locate(fanin);
}

void Mig::strash_rebuild(std::size_t capacity) {
  strash_slots_.assign(capacity, 0);
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    *strash_locate(fanins_[gate - first_gate()]) = gate;
  }
}

void Mig::strash_reserve_one() {
  // Grow at 50% load; the minimum size keeps the mask math valid on the
  // first insert.
  if (strash_slots_.empty()) {
    strash_rebuild(64);
  } else if (2 * (strash_entries_ + 1) > strash_slots_.size()) {
    strash_rebuild(2 * strash_slots_.size());
  }
}

Mig::Mig() {
  levels_.push_back(0);  // node 0: constant 0
  fanout_counts_.push_back(0);
}

Signal Mig::create_pi(std::string_view name) {
  require(num_gates() == 0, "Mig: all PIs must be created before the first gate");
  ++num_pis_;
  if (name.empty()) {
    pi_names_.append("x" + std::to_string(num_pis_ - 1));
  } else {
    pi_names_.append(name);
  }
  levels_.push_back(0);
  fanout_counts_.push_back(0);
  return Signal::from_node(num_pis_);
}

void Mig::reserve(std::uint32_t pis, std::uint32_t gates, std::uint32_t pos) {
  fanins_.reserve(gates);
  pos_.reserve(pos);
  levels_.reserve(1 + pis + gates);
  fanout_counts_.reserve(1 + pis + gates);
  complement_counts_.reserve(gates);
  const auto capacity = std::bit_ceil<std::size_t>(2 * std::size_t{gates} + 1);
  if (gates > 0 && capacity > strash_slots_.size()) {
    strash_rebuild(capacity);
  }
  pi_names_.reserve(pis, 0);
  po_names_.reserve(pos, 0);
}

namespace {

/// Applies the trivial Ω.M rules. Returns the simplified signal, or nullopt
/// when ⟨a b c⟩ does not simplify.
std::optional<Signal> try_trivial_maj(Signal a, Signal b, Signal c) {
  if (a == b) return a;   // ⟨xxz⟩ = x
  if (a == !b) return c;  // ⟨xx̄z⟩ = z
  if (a == c) return a;
  if (a == !c) return b;
  if (b == c) return b;
  if (b == !c) return a;
  return std::nullopt;
}

}  // namespace

std::uint32_t Mig::append_gate(const std::array<Signal, 3>& fanin) {
  const auto index = num_nodes();
  std::uint32_t level = 0;
  std::uint8_t complements = 0;
  for (const auto f : fanin) {
    level = std::max(level, levels_[f.index()]);
    ++fanout_counts_[f.index()];
    if (!f.is_constant() && f.is_complemented()) {
      ++complements;
    }
  }
  fanins_.push_back(fanin);
  levels_.push_back(level + 1);
  fanout_counts_.push_back(0);
  complement_counts_.push_back(complements);
  complement_edges_ += complements;
  return index;
}

Signal Mig::create_maj(Signal a, Signal b, Signal c) {
  require(a.index() < num_nodes() && b.index() < num_nodes() && c.index() < num_nodes(),
          "Mig::create_maj: fanin references unknown node");
  if (const auto trivial = try_trivial_maj(a, b, c)) {
    return *trivial;
  }
  std::array<Signal, 3> fanin{a, b, c};
  std::sort(fanin.begin(), fanin.end());  // Ω.C: commutativity is free

  strash_reserve_one();
  auto* slot = strash_locate(fanin);
  if (*slot != 0) {
    return Signal::from_node(*slot);
  }
  const auto index = append_gate(fanin);
  *slot = index;
  ++strash_entries_;
  return Signal::from_node(index);
}

Signal Mig::create_xor(Signal a, Signal b) {
  // x ⊕ y = (x ∧ ¬y) ∨ (¬x ∧ y); three majority gates.
  const auto pos_part = create_and(a, !b);
  const auto neg_part = create_and(!a, b);
  return create_or(pos_part, neg_part);
}

Signal Mig::create_mux(Signal sel, Signal then_, Signal else_) {
  const auto t = create_and(sel, then_);
  const auto e = create_and(!sel, else_);
  return create_or(t, e);
}

void Mig::create_po(Signal s, std::string_view name) {
  require(s.index() < num_nodes(), "Mig::create_po: signal references unknown node");
  if (name.empty()) {
    po_names_.append("y" + std::to_string(pos_.size()));
  } else {
    po_names_.append(name);
  }
  ++fanout_counts_[s.index()];
  pos_.push_back(s);
}

Mig Mig::adopt_raw(RawGraph&& raw) {
  require(raw.pi_names.size() == raw.num_pis,
          "Mig::adopt_raw: PI name count does not match PI count");
  require(raw.po_names.size() == raw.pos.size(),
          "Mig::adopt_raw: PO name count does not match PO count");

  Mig mig;
  mig.num_pis_ = raw.num_pis;
  mig.pi_names_ = std::move(raw.pi_names);
  const auto gates = static_cast<std::uint32_t>(raw.fanins.size());
  mig.levels_.resize(1 + raw.num_pis, 0);
  mig.fanout_counts_.resize(1 + raw.num_pis, 0);
  mig.fanins_.reserve(gates);
  mig.levels_.reserve(1 + raw.num_pis + gates);
  mig.fanout_counts_.reserve(1 + raw.num_pis + gates);
  mig.complement_counts_.reserve(gates);
  if (gates > 0) {
    mig.strash_rebuild(std::bit_ceil<std::size_t>(2 * std::size_t{gates} + 1));
  }

  for (const auto& fanin : raw.fanins) {
    // Exactly the shape create_maj emits: strictly increasing fanin node
    // indices (covers Ω.C sortedness and rules out every trivial Ω.M
    // pattern, which all need a repeated index) that reference only
    // already-present nodes.
    require(fanin[0].index() < fanin[1].index() && fanin[1].index() < fanin[2].index(),
            "Mig::adopt_raw: gate fanins not in canonical sorted non-trivial form");
    require(fanin[2].index() < mig.num_nodes(),
            "Mig::adopt_raw: gate fanin references a later node");
    auto* slot = mig.strash_locate(fanin);
    require(*slot == 0, "Mig::adopt_raw: duplicate gate");
    *slot = mig.num_nodes();
    ++mig.strash_entries_;
    (void)mig.append_gate(fanin);
  }

  mig.pos_.reserve(raw.pos.size());
  mig.po_names_ = std::move(raw.po_names);
  for (const auto po : raw.pos) {
    require(po.index() < mig.num_nodes(), "Mig::adopt_raw: PO references unknown node");
    ++mig.fanout_counts_[po.index()];
    mig.pos_.push_back(po);
  }
  return mig;
}

const std::array<Signal, 3>& Mig::fanins(std::uint32_t gate) const {
  require(is_gate(gate), "Mig::fanins: node is not a gate");
  return fanins_[gate - first_gate()];
}

std::optional<Signal> Mig::find_maj(Signal a, Signal b, Signal c) const {
  if (const auto trivial = try_trivial_maj(a, b, c)) {
    return *trivial;
  }
  std::array<Signal, 3> fanin{a, b, c};
  std::sort(fanin.begin(), fanin.end());
  if (strash_slots_.empty()) {
    return std::nullopt;
  }
  if (const auto* slot = strash_locate(fanin); *slot != 0) {
    return Signal::from_node(*slot);
  }
  return std::nullopt;
}

std::vector<std::vector<std::uint32_t>> Mig::fanout_lists() const {
  std::vector<std::vector<std::uint32_t>> lists(num_nodes());
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    for (const auto fanin : fanins_[gate - first_gate()]) {
      lists[fanin.index()].push_back(gate);
    }
  }
  return lists;
}

std::uint32_t Mig::depth() const {
  std::uint32_t max_level = 0;
  for (const auto po : pos_) {
    max_level = std::max(max_level, levels_[po.index()]);
  }
  return max_level;
}

int Mig::complement_count(std::uint32_t gate) const {
  require(is_gate(gate), "Mig::complement_count: node is not a gate");
  return complement_counts_[gate - first_gate()];
}

std::vector<bool> Mig::reachable_from_pos() const {
  std::vector<bool> reachable(num_nodes(), false);
  std::vector<std::uint32_t> stack;
  for (const auto po : pos_) {
    if (!reachable[po.index()]) {
      reachable[po.index()] = true;
      stack.push_back(po.index());
    }
  }
  while (!stack.empty()) {
    const auto node = stack.back();
    stack.pop_back();
    if (!is_gate(node)) {
      continue;
    }
    for (const auto fanin : fanins_[node - first_gate()]) {
      if (!reachable[fanin.index()]) {
        reachable[fanin.index()] = true;
        stack.push_back(fanin.index());
      }
    }
  }
  return reachable;
}

Mig Mig::cleanup() const {
  Mig fresh;
  fresh.reserve(num_pis_, num_gates(), num_pos());
  std::vector<Signal> map(num_nodes(), Signal::constant(false));
  for (std::uint32_t pi = 1; pi <= num_pis_; ++pi) {
    map[pi] = fresh.create_pi(pi_names_.view(pi - 1));
  }
  const auto reachable = reachable_from_pos();
  for (std::uint32_t gate = first_gate(); gate < num_nodes(); ++gate) {
    if (!reachable[gate]) {
      continue;
    }
    const auto& fanin = fanins_[gate - first_gate()];
    const auto remap = [&](Signal s) { return map[s.index()] ^ s.is_complemented(); };
    map[gate] = fresh.create_maj(remap(fanin[0]), remap(fanin[1]), remap(fanin[2]));
  }
  for (std::uint32_t i = 0; i < num_pos(); ++i) {
    const auto po = pos_[i];
    fresh.create_po(map[po.index()] ^ po.is_complemented(), po_names_.view(i));
  }
  return fresh;
}

std::uint64_t Mig::fingerprint() const {
  // Counts fold in as single words; both arenas hash as u32 lanes (Signal
  // is a trivially-copyable u32 wrapper, static_asserted above), so the
  // whole structural hash costs one multiply per 8 bytes and is
  // endian-independent by construction. Recomputed on every store decode,
  // which is why it is lane-based rather than byte-wise.
  std::uint64_t state = util::Fnv1a64::kOffsetBasis;
  state = (state ^ num_pis_) * util::Fnv1a64::kPrime;
  state = (state ^ num_gates()) * util::Fnv1a64::kPrime;
  state = util::fnv1a64_words(
      state, reinterpret_cast<const std::uint32_t*>(fanins_.data()),
      3 * fanins_.size());
  state = (state ^ num_pos()) * util::Fnv1a64::kPrime;
  state = util::fnv1a64_words(
      state, reinterpret_cast<const std::uint32_t*>(pos_.data()), pos_.size());
  return state;
}

}  // namespace rlim::mig
