#include "mig/rewriting.hpp"

#include <chrono>
#include <functional>
#include <span>

#include "mig/axioms.hpp"
#include "util/enum_names.hpp"
#include "util/error.hpp"

namespace rlim::mig {

namespace {

constexpr util::EnumTable kRewriteKindNames{
    std::string_view("rewrite kind"),
    std::array{
        util::EnumName<RewriteKind>{RewriteKind::None, "none"},
        util::EnumName<RewriteKind>{RewriteKind::Plim21, "plim21"},
        util::EnumName<RewriteKind>{RewriteKind::Endurance, "endurance"},
        util::EnumName<RewriteKind>{RewriteKind::LevelBalanced,
                                    "level-balanced"},
        // Registry-key spelling accepted as a parse alias.
        util::EnumName<RewriteKind>{RewriteKind::LevelBalanced,
                                    "level_balanced"},
    }};

}  // namespace

std::string to_string(RewriteKind kind) {
  return std::string(kRewriteKindNames.name(kind));
}

RewriteKind parse_rewrite_kind(std::string_view name) {
  return kRewriteKindNames.parse(name);
}

namespace {

/// One pipeline position of an enum-era flow: the axiom pass plus the key it
/// shares with the rlim::pass registry, so per-pass telemetry and the seq
/// aliases name the steps identically.
struct FlowStep {
  std::string_view name;
  PassResult (*fn)(const Mig&);
};

constexpr FlowStep kMaj{"maj", pass_majority};
constexpr FlowStep kDist{"dist", pass_distributivity_rl};
constexpr FlowStep kAssoc{"assoc", pass_associativity};
constexpr FlowStep kComp{"comp", pass_comp_assoc};
constexpr FlowStep kInv{"inv", pass_inv_reduce};
constexpr FlowStep kInvThree{"inv3", pass_inv_three};
constexpr FlowStep kRelief{"relief", pass_level_balance};

Mig run_flow(const Mig& mig, std::span<const FlowStep> steps, int effort,
             RewriteStats* stats) {
  require(effort >= 0, "rewrite: effort must be non-negative");
  RewriteStats local;
  local.initial_gates = mig.num_gates();
  local.initial_complement_edges = mig.complement_edge_count();
  local.per_pass.resize(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    local.per_pass[i].name = steps[i].name;
  }

  Mig current = mig.cleanup();
  for (int cycle = 0; cycle < effort; ++cycle) {
    std::size_t cycle_applications = 0;
    const auto gates_before = current.num_gates();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      auto& slot = local.per_pass[i];
      const auto pass_gates = current.num_gates();
      const auto pass_edges = current.complement_edge_count();
      const auto pass_depth = current.depth();
      const auto started = std::chrono::steady_clock::now();
      auto result = steps[i].fn(current);
      const auto finished = std::chrono::steady_clock::now();
      cycle_applications += result.applications;
      current = std::move(result.mig);
      ++slot.runs;
      slot.applications += result.applications;
      slot.gate_delta += static_cast<std::int64_t>(current.num_gates()) -
                         static_cast<std::int64_t>(pass_gates);
      slot.complement_delta +=
          static_cast<std::int64_t>(current.complement_edge_count()) -
          static_cast<std::int64_t>(pass_edges);
      slot.depth_delta += static_cast<std::int64_t>(current.depth()) -
                          static_cast<std::int64_t>(pass_depth);
      slot.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(finished -
                                                               started)
              .count());
    }
    ++local.cycles_run;
    local.total_applications += cycle_applications;
    if (cycle_applications == 0 && current.num_gates() == gates_before) {
      break;  // fixpoint: further cycles cannot change the graph
    }
  }

  local.final_gates = current.num_gates();
  local.final_complement_edges = current.complement_edge_count();
  if (stats != nullptr) {
    *stats = std::move(local);
  }
  return current;
}

constexpr FlowStep kPlim21Flow[] = {
    kMaj, kDist,         // step 2
    kAssoc, kComp,       // step 3
    kMaj, kDist,         // step 4
    kInv,                // step 5
    kInvThree,           // step 6
};

constexpr FlowStep kEnduranceFlow[] = {
    kMaj, kDist,         // step 2
    kInv,                // step 3
    kInvThree,           // step 4
    kAssoc,              // step 5
    kInv,                // step 6
    kInvThree,           // step 7
    kMaj, kDist,         // step 8
    kInvThree,           // step 9
};

constexpr FlowStep kLevelBalancedFlow[] = {
    kMaj, kDist,
    kInv, kInvThree,
    kRelief,             // §III-B.4 objective
    kInv, kInvThree,
    kMaj, kDist,
    kInvThree,
};

template <std::size_t N>
constexpr std::array<std::string_view, N> step_names(
    const FlowStep (&steps)[N]) {
  std::array<std::string_view, N> names{};
  for (std::size_t i = 0; i < N; ++i) {
    names[i] = steps[i].name;
  }
  return names;
}

constexpr auto kPlim21Names = step_names(kPlim21Flow);
constexpr auto kEnduranceNames = step_names(kEnduranceFlow);
constexpr auto kLevelBalancedNames = step_names(kLevelBalancedFlow);

}  // namespace

std::span<const std::string_view> flow_pass_keys(RewriteKind kind) {
  switch (kind) {
    case RewriteKind::None: return {};
    case RewriteKind::Plim21: return kPlim21Names;
    case RewriteKind::Endurance: return kEnduranceNames;
    case RewriteKind::LevelBalanced: return kLevelBalancedNames;
  }
  throw Error("flow_pass_keys: unknown kind");
}

Mig rewrite_plim21(const Mig& mig, int effort, RewriteStats* stats) {
  return run_flow(mig, kPlim21Flow, effort, stats);
}

Mig rewrite_endurance(const Mig& mig, int effort, RewriteStats* stats) {
  return run_flow(mig, kEnduranceFlow, effort, stats);
}

Mig rewrite_level_balanced(const Mig& mig, int effort, RewriteStats* stats) {
  return run_flow(mig, kLevelBalancedFlow, effort, stats);
}

Mig rewrite(const Mig& mig, RewriteKind kind, int effort, RewriteStats* stats) {
  switch (kind) {
    case RewriteKind::None: {
      if (stats != nullptr) {
        *stats = RewriteStats{};
        stats->initial_gates = stats->final_gates = mig.num_gates();
        stats->initial_complement_edges = stats->final_complement_edges =
            mig.complement_edge_count();
      }
      return mig.cleanup();
    }
    case RewriteKind::Plim21:
      return rewrite_plim21(mig, effort, stats);
    case RewriteKind::Endurance:
      return rewrite_endurance(mig, effort, stats);
    case RewriteKind::LevelBalanced:
      return rewrite_level_balanced(mig, effort, stats);
  }
  throw Error("rewrite: unknown kind");
}

namespace {

/// Shared by every effort-driven flow: read + validate the effort parameter,
/// bind it into a RewriteFn over the enum dispatch.
RewriteFactory effort_flow(RewriteKind kind) {
  return [kind](const util::Params& params) -> RewriteFn {
    const int effort = util::param_int(params, "effort");
    require(effort >= 0, "rewrite flow '" + std::string(rewrite_key(kind)) +
                             "': effort must be non-negative");
    return [kind, effort](const Mig& mig, RewriteStats* stats) {
      return rewrite(mig, kind, effort, stats);
    };
  };
}

}  // namespace

util::Registry<RewriteFactory>& rewrites() {
  static auto* registry = [] {
    auto* reg = new util::Registry<RewriteFactory>("rewrite flow");
    const util::ParamInfo effort{"effort", "5",
                                 "rewriting cycles before the fixpoint check"};
    reg->add({"none", "compile the MIG as constructed (cleanup only)", {}},
             [](const util::Params&) -> RewriteFn {
               return [](const Mig& mig, RewriteStats* stats) {
                 return rewrite(mig, RewriteKind::None, 0, stats);
               };
             });
    reg->add({"plim21",
              "paper Algorithm 1 — the original PLiM compiler flow [21]",
              {effort}},
             effort_flow(RewriteKind::Plim21));
    reg->add({"endurance", "paper Algorithm 2 — endurance-aware rewriting",
              {effort}},
             effort_flow(RewriteKind::Endurance));
    reg->add({"level_balanced",
              "Algorithm 2 + level balancing (the paper's §III-B.4 direction)",
              {effort}},
             effort_flow(RewriteKind::LevelBalanced));
    return reg;
  }();
  return *registry;
}

RewriteFn make_rewrite(const util::PolicySpec& spec) {
  return rewrites().make(spec);
}

std::string_view rewrite_key(RewriteKind kind) {
  switch (kind) {
    case RewriteKind::None: return "none";
    case RewriteKind::Plim21: return "plim21";
    case RewriteKind::Endurance: return "endurance";
    case RewriteKind::LevelBalanced: return "level_balanced";
  }
  throw Error("rewrite_key: unknown kind");
}

}  // namespace rlim::mig
