#include "mig/rewriting.hpp"

#include <functional>
#include <span>

#include "mig/axioms.hpp"
#include "util/enum_names.hpp"
#include "util/error.hpp"

namespace rlim::mig {

static_assert(static_cast<std::size_t>(RewriteKind::LevelBalanced) + 1 ==
                  kRewriteKindCount,
              "kRewriteKindCount is out of sync with RewriteKind");

namespace {

constexpr util::EnumTable kRewriteKindNames{
    std::string_view("rewrite kind"),
    std::array{
        util::EnumName<RewriteKind>{RewriteKind::None, "none"},
        util::EnumName<RewriteKind>{RewriteKind::Plim21, "plim21"},
        util::EnumName<RewriteKind>{RewriteKind::Endurance, "endurance"},
        util::EnumName<RewriteKind>{RewriteKind::LevelBalanced,
                                    "level-balanced"},
        // Registry-key spelling accepted as a parse alias.
        util::EnumName<RewriteKind>{RewriteKind::LevelBalanced,
                                    "level_balanced"},
    }};

}  // namespace

std::string to_string(RewriteKind kind) {
  return std::string(kRewriteKindNames.name(kind));
}

RewriteKind parse_rewrite_kind(std::string_view name) {
  return kRewriteKindNames.parse(name);
}

namespace {

using Pass = PassResult (*)(const Mig&);

Mig run_flow(const Mig& mig, std::span<const Pass> passes, int effort,
             RewriteStats* stats) {
  require(effort >= 0, "rewrite: effort must be non-negative");
  RewriteStats local;
  local.initial_gates = mig.num_gates();
  local.initial_complement_edges = mig.complement_edge_count();

  Mig current = mig.cleanup();
  for (int cycle = 0; cycle < effort; ++cycle) {
    std::size_t cycle_applications = 0;
    const auto gates_before = current.num_gates();
    for (const auto pass : passes) {
      auto result = pass(current);
      cycle_applications += result.applications;
      current = std::move(result.mig);
    }
    ++local.cycles_run;
    local.total_applications += cycle_applications;
    if (cycle_applications == 0 && current.num_gates() == gates_before) {
      break;  // fixpoint: further cycles cannot change the graph
    }
  }

  local.final_gates = current.num_gates();
  local.final_complement_edges = current.complement_edge_count();
  if (stats != nullptr) {
    *stats = local;
  }
  return current;
}

}  // namespace

Mig rewrite_plim21(const Mig& mig, int effort, RewriteStats* stats) {
  static constexpr Pass kFlow[] = {
      pass_majority, pass_distributivity_rl,      // step 2
      pass_associativity, pass_comp_assoc,        // step 3
      pass_majority, pass_distributivity_rl,      // step 4
      pass_inv_reduce,                            // step 5
      pass_inv_three,                             // step 6
  };
  return run_flow(mig, kFlow, effort, stats);
}

Mig rewrite_endurance(const Mig& mig, int effort, RewriteStats* stats) {
  static constexpr Pass kFlow[] = {
      pass_majority, pass_distributivity_rl,      // step 2
      pass_inv_reduce,                            // step 3
      pass_inv_three,                             // step 4
      pass_associativity,                         // step 5
      pass_inv_reduce,                            // step 6
      pass_inv_three,                             // step 7
      pass_majority, pass_distributivity_rl,      // step 8
      pass_inv_three,                             // step 9
  };
  return run_flow(mig, kFlow, effort, stats);
}

Mig rewrite_level_balanced(const Mig& mig, int effort, RewriteStats* stats) {
  static constexpr Pass kFlow[] = {
      pass_majority, pass_distributivity_rl,
      pass_inv_reduce, pass_inv_three,
      pass_level_balance,                      // §III-B.4 objective
      pass_inv_reduce, pass_inv_three,
      pass_majority, pass_distributivity_rl,
      pass_inv_three,
  };
  return run_flow(mig, kFlow, effort, stats);
}

Mig rewrite(const Mig& mig, RewriteKind kind, int effort, RewriteStats* stats) {
  switch (kind) {
    case RewriteKind::None: {
      if (stats != nullptr) {
        *stats = RewriteStats{};
        stats->initial_gates = stats->final_gates = mig.num_gates();
        stats->initial_complement_edges = stats->final_complement_edges =
            mig.complement_edge_count();
      }
      return mig.cleanup();
    }
    case RewriteKind::Plim21:
      return rewrite_plim21(mig, effort, stats);
    case RewriteKind::Endurance:
      return rewrite_endurance(mig, effort, stats);
    case RewriteKind::LevelBalanced:
      return rewrite_level_balanced(mig, effort, stats);
  }
  throw Error("rewrite: unknown kind");
}

namespace {

/// Shared by every effort-driven flow: read + validate the effort parameter,
/// bind it into a RewriteFn over the enum dispatch.
RewriteFactory effort_flow(RewriteKind kind) {
  return [kind](const util::Params& params) -> RewriteFn {
    const int effort = util::param_int(params, "effort");
    require(effort >= 0, "rewrite flow '" + std::string(rewrite_key(kind)) +
                             "': effort must be non-negative");
    return [kind, effort](const Mig& mig, RewriteStats* stats) {
      return rewrite(mig, kind, effort, stats);
    };
  };
}

}  // namespace

util::Registry<RewriteFactory>& rewrites() {
  static auto* registry = [] {
    auto* reg = new util::Registry<RewriteFactory>("rewrite flow");
    const util::ParamInfo effort{"effort", "5",
                                 "rewriting cycles before the fixpoint check"};
    reg->add({"none", "compile the MIG as constructed (cleanup only)", {}},
             [](const util::Params&) -> RewriteFn {
               return [](const Mig& mig, RewriteStats* stats) {
                 return rewrite(mig, RewriteKind::None, 0, stats);
               };
             });
    reg->add({"plim21",
              "paper Algorithm 1 — the original PLiM compiler flow [21]",
              {effort}},
             effort_flow(RewriteKind::Plim21));
    reg->add({"endurance", "paper Algorithm 2 — endurance-aware rewriting",
              {effort}},
             effort_flow(RewriteKind::Endurance));
    reg->add({"level_balanced",
              "Algorithm 2 + level balancing (the paper's §III-B.4 direction)",
              {effort}},
             effort_flow(RewriteKind::LevelBalanced));
    return reg;
  }();
  return *registry;
}

RewriteFn make_rewrite(const util::PolicySpec& spec) {
  return rewrites().make(spec);
}

std::string_view rewrite_key(RewriteKind kind) {
  switch (kind) {
    case RewriteKind::None: return "none";
    case RewriteKind::Plim21: return "plim21";
    case RewriteKind::Endurance: return "endurance";
    case RewriteKind::LevelBalanced: return "level_balanced";
  }
  throw Error("rewrite_key: unknown kind");
}

}  // namespace rlim::mig
