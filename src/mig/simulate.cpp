#include "mig/simulate.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::mig {

std::vector<std::uint64_t> simulate_nodes(const Mig& mig,
                                          std::span<const std::uint64_t> pi_values) {
  require(pi_values.size() == mig.num_pis(),
          "simulate_nodes: PI value count mismatch");
  std::vector<std::uint64_t> values(mig.num_nodes(), 0);
  for (std::uint32_t pi = 0; pi < mig.num_pis(); ++pi) {
    values[pi + 1] = pi_values[pi];
  }
  const auto value_of = [&](Signal s) {
    const auto word = values[s.index()];
    return s.is_complemented() ? ~word : word;
  };
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    const auto& fanin = mig.fanins(gate);
    const auto a = value_of(fanin[0]);
    const auto b = value_of(fanin[1]);
    const auto c = value_of(fanin[2]);
    values[gate] = (a & b) | (a & c) | (b & c);
  }
  return values;
}

std::vector<std::uint64_t> simulate(const Mig& mig,
                                    std::span<const std::uint64_t> pi_values) {
  const auto values = simulate_nodes(mig, pi_values);
  std::vector<std::uint64_t> result;
  result.reserve(mig.num_pos());
  for (const auto po : mig.pos()) {
    const auto word = values[po.index()];
    result.push_back(po.is_complemented() ? ~word : word);
  }
  return result;
}

std::uint64_t exhaustive_pattern(std::uint32_t pi, std::uint64_t chunk) {
  static constexpr std::uint64_t kMasks[6] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};
  if (pi < 6) {
    return kMasks[pi];
  }
  return (chunk >> (pi - 6)) & 1 ? ~0ULL : 0ULL;
}

bool equivalent_random(const Mig& a, const Mig& b, unsigned rounds,
                       std::uint64_t seed) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    return false;
  }
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> pi_values(a.num_pis());
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& word : pi_values) {
      word = rng();
    }
    if (simulate(a, pi_values) != simulate(b, pi_values)) {
      return false;
    }
  }
  return true;
}

bool equivalent_exhaustive(const Mig& a, const Mig& b, std::uint32_t max_pis) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    return false;
  }
  require(a.num_pis() <= max_pis, "equivalent_exhaustive: too many PIs");
  const auto num_pis = a.num_pis();
  const std::uint64_t chunks = num_pis > 6 ? (1ULL << (num_pis - 6)) : 1;
  std::vector<std::uint64_t> pi_values(num_pis);
  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    for (std::uint32_t pi = 0; pi < num_pis; ++pi) {
      pi_values[pi] = exhaustive_pattern(pi, chunk);
    }
    auto lhs = simulate(a, pi_values);
    auto rhs = simulate(b, pi_values);
    if (num_pis < 6) {
      // Only the first 2^num_pis rows are meaningful.
      const std::uint64_t mask = (1ULL << (1u << num_pis)) - 1;
      for (auto& word : lhs) word &= mask;
      for (auto& word : rhs) word &= mask;
    }
    if (lhs != rhs) {
      return false;
    }
  }
  return true;
}

std::uint64_t truth_table(const Mig& mig, std::uint32_t po) {
  require(mig.num_pis() <= 6, "truth_table: needs <= 6 PIs");
  require(po < mig.num_pos(), "truth_table: PO out of range");
  std::vector<std::uint64_t> pi_values(mig.num_pis());
  for (std::uint32_t pi = 0; pi < mig.num_pis(); ++pi) {
    pi_values[pi] = exhaustive_pattern(pi, 0);
  }
  auto result = simulate(mig, pi_values)[po];
  if (mig.num_pis() < 6) {
    result &= (1ULL << (1u << mig.num_pis())) - 1;
  }
  return result;
}

std::uint64_t simulation_signature(const Mig& mig, unsigned rounds,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> pi_values(mig.num_pis());
  std::uint64_t signature = 0x6a09e667f3bcc908ULL;
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& word : pi_values) {
      word = rng();
    }
    for (const auto word : simulate(mig, pi_values)) {
      std::uint64_t state = signature ^ word;
      signature = util::splitmix64(state);
    }
  }
  return signature;
}

}  // namespace rlim::mig
