#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mig/mig.hpp"

namespace rlim::mig {

/// Bit-parallel MIG simulation: each node value is a 64-bit word, so one
/// pass evaluates 64 input patterns at once.

/// Simulates all nodes. `pi_values[i]` is the word for PI i.
/// Returns one word per node (index-aligned with the graph).
std::vector<std::uint64_t> simulate_nodes(const Mig& mig,
                                          std::span<const std::uint64_t> pi_values);

/// Simulates and extracts the PO words.
std::vector<std::uint64_t> simulate(const Mig& mig,
                                    std::span<const std::uint64_t> pi_values);

/// PI word patterns for exhaustive simulation: chunk `chunk` of variable `pi`
/// out of 2^num_pis rows, 64 rows per chunk. Variables 0..5 use the classic
/// alternating masks; higher variables are constant per chunk.
std::uint64_t exhaustive_pattern(std::uint32_t pi, std::uint64_t chunk);

/// Monte-Carlo equivalence check with `rounds` random 64-pattern words.
/// Both graphs must have the same PI/PO profile (else returns false).
bool equivalent_random(const Mig& a, const Mig& b, unsigned rounds,
                       std::uint64_t seed);

/// Exhaustive equivalence check; requires num_pis() <= max_pis (default 16).
/// Throws rlim::Error when the graphs are too large.
bool equivalent_exhaustive(const Mig& a, const Mig& b, std::uint32_t max_pis = 16);

/// Truth table of PO `po` for graphs with <= 6 PIs, packed in one word
/// (row r = bit r).
std::uint64_t truth_table(const Mig& mig, std::uint32_t po);

/// Order-independent simulation signature over `rounds` random words:
/// useful as a cheap regression fingerprint of the implemented function.
std::uint64_t simulation_signature(const Mig& mig, unsigned rounds,
                                   std::uint64_t seed);

}  // namespace rlim::mig
