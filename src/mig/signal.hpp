#pragma once

#include <compare>
#include <cstdint>

namespace rlim::mig {

/// A (possibly complemented) reference to an MIG node.
///
/// Encoded as `(node_index << 1) | complement`. Node 0 is the constant-0
/// node, so `Signal::constant(false)` is the default signal and
/// `Signal::constant(true)` is its complement.
class Signal {
public:
  constexpr Signal() = default;

  static constexpr Signal from_node(std::uint32_t index, bool complemented = false) {
    return Signal((index << 1) | (complemented ? 1u : 0u));
  }

  static constexpr Signal from_raw(std::uint32_t raw) { return Signal(raw); }

  static constexpr Signal constant(bool value) {
    return Signal(value ? 1u : 0u);
  }

  [[nodiscard]] constexpr std::uint32_t index() const { return data_ >> 1; }
  [[nodiscard]] constexpr bool is_complemented() const { return (data_ & 1u) != 0; }
  [[nodiscard]] constexpr std::uint32_t raw() const { return data_; }

  /// True iff this signal references the constant node (index 0).
  [[nodiscard]] constexpr bool is_constant() const { return index() == 0; }
  /// For constant signals: the constant's value (0 plain, 1 complemented).
  [[nodiscard]] constexpr bool constant_value() const { return is_complemented(); }

  /// Complemented copy of this signal (an MIG inverter is edge-encoded).
  constexpr Signal operator!() const { return Signal(data_ ^ 1u); }
  /// Conditional complement: `s ^ true == !s`.
  constexpr Signal operator^(bool complement) const {
    return Signal(data_ ^ (complement ? 1u : 0u));
  }

  friend constexpr auto operator<=>(Signal, Signal) = default;

private:
  explicit constexpr Signal(std::uint32_t raw) : data_(raw) {}

  std::uint32_t data_ = 0;
};

}  // namespace rlim::mig
