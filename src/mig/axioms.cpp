#include "mig/axioms.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>

namespace rlim::mig {

namespace {

/// Incremental graph rebuilder shared by all passes. Gates are visited in
/// topological (index) order; visited gates record their replacement signal
/// in `map`, so later gates and the POs pick transformations up
/// transparently. Gates absorbed into a fused replacement are skipped.
class Rebuilder {
public:
  explicit Rebuilder(const Mig& old) : old_(old), map_(old.num_nodes()), mapped_(old.num_nodes(), false) {
    // Most passes change a small fraction of the graph, so the rebuilt
    // arenas end up near the old sizes — pre-sizing removes the growth
    // reallocations from every rewrite cycle.
    fresh_.reserve(old.num_pis(), old.num_gates(), old.num_pos());
    map_[0] = Signal::constant(false);
    mapped_[0] = true;
    for (std::uint32_t pi = 1; pi <= old.num_pis(); ++pi) {
      map_[pi] = fresh_.create_pi(old.pi_name(pi - 1));
      mapped_[pi] = true;
    }
  }

  [[nodiscard]] Signal remap(Signal s) const {
    assert(mapped_[s.index()] && "reference to an absorbed/unmapped node");
    return map_[s.index()] ^ s.is_complemented();
  }

  void set_map(std::uint32_t old_gate, Signal replacement) {
    map_[old_gate] = replacement;
    mapped_[old_gate] = true;
  }

  /// Default rebuild of one gate through the strashing constructor.
  void rebuild_default(std::uint32_t gate) {
    const auto& fanin = old_.fanins(gate);
    set_map(gate, fresh_.create_maj(remap(fanin[0]), remap(fanin[1]), remap(fanin[2])));
  }

  Mig finish() {
    for (std::uint32_t i = 0; i < old_.num_pos(); ++i) {
      fresh_.create_po(remap(old_.po_at(i)), old_.po_name(i));
    }
    return std::move(fresh_);
  }

  [[nodiscard]] Mig& fresh() { return fresh_; }

private:
  const Mig& old_;
  Mig fresh_;
  std::vector<Signal> map_;
  std::vector<bool> mapped_;
};

/// Trivial Ω.M simplification oracle for a candidate triple (no graph access).
bool triple_simplifies(Signal a, Signal b, Signal c) {
  return a == b || a == !b || a == c || a == !c || b == c || b == !c;
}

/// Complemented fanins among a candidate triple, constants excluded.
int noncost_complements(std::span<const Signal> fanins) {
  int count = 0;
  for (const auto f : fanins) {
    if (!f.is_constant() && f.is_complemented()) {
      ++count;
    }
  }
  return count;
}

}  // namespace

PassResult pass_majority(const Mig& mig) {
  const auto reachable = mig.reachable_from_pos();
  Rebuilder rebuild(mig);
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (reachable[gate]) {
      rebuild.rebuild_default(gate);
    }
  }
  auto fresh = rebuild.finish();
  const auto removed = mig.num_gates() >= fresh.num_gates()
                           ? mig.num_gates() - fresh.num_gates()
                           : 0;
  return PassResult{std::move(fresh), removed};
}

PassResult pass_distributivity_rl(const Mig& mig) {
  const auto reachable = mig.reachable_from_pos();
  const auto fanouts = mig.fanout_counts();

  struct Plan {
    Signal x, y, u, v, z;
  };
  std::vector<std::optional<Plan>> plans(mig.num_nodes());
  std::vector<bool> used(mig.num_nodes(), false);
  std::vector<bool> absorbed(mig.num_nodes(), false);
  std::size_t applications = 0;

  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || used[gate]) {
      continue;
    }
    const auto& fanin = mig.fanins(gate);
    for (int i = 0; i < 3 && !plans[gate]; ++i) {
      for (int j = i + 1; j < 3 && !plans[gate]; ++j) {
        const auto si = fanin[i];
        const auto sj = fanin[j];
        const auto gi = si.index();
        const auto gj = sj.index();
        if (!mig.is_gate(gi) || !mig.is_gate(gj) || gi == gj) {
          continue;
        }
        if (si.is_complemented() != sj.is_complemented()) {
          continue;
        }
        if (fanouts[gi] != 1 || fanouts[gj] != 1 || used[gi] || used[gj]) {
          continue;
        }
        const bool flip = si.is_complemented();
        std::array<Signal, 3> effective_i{};
        std::array<Signal, 3> effective_j{};
        for (int k = 0; k < 3; ++k) {
          effective_i[k] = mig.fanins(gi)[k] ^ flip;
          effective_j[k] = mig.fanins(gj)[k] ^ flip;
        }
        // Intersect the effective fanin sets (each holds 3 distinct signals).
        std::vector<Signal> common;
        std::optional<Signal> only_i;
        std::optional<Signal> only_j;
        for (const auto s : effective_i) {
          if (std::find(effective_j.begin(), effective_j.end(), s) != effective_j.end()) {
            common.push_back(s);
          } else {
            only_i = s;
          }
        }
        if (common.size() != 2 || !only_i) {
          continue;
        }
        for (const auto s : effective_j) {
          if (std::find(effective_i.begin(), effective_i.end(), s) == effective_i.end()) {
            only_j = s;
          }
        }
        assert(only_j);
        const auto z = fanin[3 - i - j];
        plans[gate] = Plan{common[0], common[1], *only_i, *only_j, z};
        used[gate] = used[gi] = used[gj] = true;
        absorbed[gi] = absorbed[gj] = true;
        ++applications;
      }
    }
  }

  Rebuilder rebuild(mig);
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || absorbed[gate]) {
      continue;
    }
    if (const auto& plan = plans[gate]) {
      auto& fresh = rebuild.fresh();
      const auto inner = fresh.create_maj(rebuild.remap(plan->u), rebuild.remap(plan->v),
                                          rebuild.remap(plan->z));
      rebuild.set_map(gate, fresh.create_maj(rebuild.remap(plan->x),
                                             rebuild.remap(plan->y), inner));
    } else {
      rebuild.rebuild_default(gate);
    }
  }
  return PassResult{rebuild.finish(), applications};
}

PassResult pass_associativity(const Mig& mig) {
  const auto reachable = mig.reachable_from_pos();
  const auto fanouts = mig.fanout_counts();

  struct Plan {
    Signal y, u, x, z;  // new inner = ⟨y u x⟩, new outer = ⟨z u inner⟩
  };
  std::vector<std::optional<Plan>> plans(mig.num_nodes());
  std::vector<bool> used(mig.num_nodes(), false);
  std::vector<bool> absorbed(mig.num_nodes(), false);
  std::size_t applications = 0;

  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || used[gate]) {
      continue;
    }
    const auto& fanin = mig.fanins(gate);
    for (int k = 0; k < 3 && !plans[gate]; ++k) {
      const auto child_ref = fanin[k];
      const auto child = child_ref.index();
      if (!mig.is_gate(child) || child_ref.is_complemented() ||
          fanouts[child] != 1 || used[child]) {
        continue;
      }
      const std::array<Signal, 2> outer_rest{fanin[(k + 1) % 3], fanin[(k + 2) % 3]};
      const auto& inner = mig.fanins(child);
      for (int uo = 0; uo < 2 && !plans[gate]; ++uo) {
        const auto u = outer_rest[uo];
        const auto x = outer_rest[1 - uo];
        const auto u_pos = std::find(inner.begin(), inner.end(), u);
        if (u_pos == inner.end()) {
          continue;
        }
        std::vector<Signal> inner_rest;
        for (const auto s : inner) {
          if (s != u) {
            inner_rest.push_back(s);
          }
        }
        if (inner_rest.size() != 2) {
          continue;  // u appears more than once (cannot happen after Ω.M)
        }
        for (int zo = 0; zo < 2 && !plans[gate]; ++zo) {
          const auto z = inner_rest[zo];   // moved out
          const auto y = inner_rest[1 - zo];
          // A strash hit only helps when it shares an *existing* gate — a hit
          // on the inner gate being rewritten is a degenerate no-op match.
          const auto hit = mig.find_maj(y, u, x);
          const bool shares = hit && hit->index() != child;
          if (triple_simplifies(y, u, x) || shares) {
            plans[gate] = Plan{y, u, x, z};
            used[gate] = used[child] = true;
            absorbed[child] = true;
            ++applications;
          }
        }
      }
    }
  }

  Rebuilder rebuild(mig);
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || absorbed[gate]) {
      continue;
    }
    if (const auto& plan = plans[gate]) {
      auto& fresh = rebuild.fresh();
      const auto inner = fresh.create_maj(rebuild.remap(plan->y), rebuild.remap(plan->u),
                                          rebuild.remap(plan->x));
      rebuild.set_map(gate, fresh.create_maj(rebuild.remap(plan->z),
                                             rebuild.remap(plan->u), inner));
    } else {
      rebuild.rebuild_default(gate);
    }
  }
  return PassResult{rebuild.finish(), applications};
}

PassResult pass_comp_assoc(const Mig& mig) {
  const auto reachable = mig.reachable_from_pos();
  const auto fanouts = mig.fanout_counts();

  struct Plan {
    Signal x, u;                  // outer fanins kept
    std::array<Signal, 3> inner;  // new inner fanins (x̄ replaced by u)
  };
  std::vector<std::optional<Plan>> plans(mig.num_nodes());
  std::vector<bool> used(mig.num_nodes(), false);
  std::vector<bool> absorbed(mig.num_nodes(), false);
  std::size_t applications = 0;

  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || used[gate]) {
      continue;
    }
    const auto& fanin = mig.fanins(gate);
    for (int k = 0; k < 3 && !plans[gate]; ++k) {
      const auto child_ref = fanin[k];
      const auto child = child_ref.index();
      if (!mig.is_gate(child) || child_ref.is_complemented() ||
          fanouts[child] != 1 || used[child]) {
        continue;
      }
      const std::array<Signal, 2> outer_rest{fanin[(k + 1) % 3], fanin[(k + 2) % 3]};
      const auto& inner = mig.fanins(child);
      for (int xo = 0; xo < 2 && !plans[gate]; ++xo) {
        const auto x = outer_rest[xo];
        const auto u = outer_rest[1 - xo];
        const auto match = std::find(inner.begin(), inner.end(), !x);
        if (match == inner.end()) {
          continue;
        }
        std::array<Signal, 3> replaced = inner;
        replaced[static_cast<std::size_t>(match - inner.begin())] = u;
        const auto hit = mig.find_maj(replaced[0], replaced[1], replaced[2]);
        const bool exists = hit && hit->index() != child;
        const bool fewer_complements =
            noncost_complements(replaced) < noncost_complements(inner);
        if (exists || fewer_complements) {
          plans[gate] = Plan{x, u, replaced};
          used[gate] = used[child] = true;
          absorbed[child] = true;
          ++applications;
        }
      }
    }
  }

  Rebuilder rebuild(mig);
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || absorbed[gate]) {
      continue;
    }
    if (const auto& plan = plans[gate]) {
      auto& fresh = rebuild.fresh();
      const auto inner =
          fresh.create_maj(rebuild.remap(plan->inner[0]), rebuild.remap(plan->inner[1]),
                           rebuild.remap(plan->inner[2]));
      rebuild.set_map(gate, fresh.create_maj(rebuild.remap(plan->x),
                                             rebuild.remap(plan->u), inner));
    } else {
      rebuild.rebuild_default(gate);
    }
  }
  return PassResult{rebuild.finish(), applications};
}

namespace {

PassResult flip_pass(const Mig& mig, int min_complements) {
  const auto reachable = mig.reachable_from_pos();
  Rebuilder rebuild(mig);
  std::size_t applications = 0;
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate]) {
      continue;
    }
    const auto& fanin = mig.fanins(gate);
    const std::array<Signal, 3> mapped{rebuild.remap(fanin[0]), rebuild.remap(fanin[1]),
                                       rebuild.remap(fanin[2])};
    if (noncost_complements(mapped) >= min_complements) {
      // ⟨x̄ȳz̄⟩ = ¬⟨xyz⟩ — flip all three fanins, complement the output; the
      // complement cascades to fanouts through the rebuild map.
      const auto flipped =
          rebuild.fresh().create_maj(!mapped[0], !mapped[1], !mapped[2]);
      rebuild.set_map(gate, !flipped);
      ++applications;
    } else {
      rebuild.set_map(gate,
                      rebuild.fresh().create_maj(mapped[0], mapped[1], mapped[2]));
    }
  }
  return PassResult{rebuild.finish(), applications};
}

}  // namespace

PassResult pass_inv_reduce(const Mig& mig) { return flip_pass(mig, 2); }

PassResult pass_inv_three(const Mig& mig) { return flip_pass(mig, 3); }

PassResult pass_level_balance(const Mig& mig) {
  const auto reachable = mig.reachable_from_pos();
  const auto fanouts = mig.fanout_counts();
  const auto levels = mig.levels();

  struct Plan {
    Signal y, u, x, z;  // new inner = ⟨y u x⟩, new outer = ⟨z u inner⟩
  };
  std::vector<std::optional<Plan>> plans(mig.num_nodes());
  std::vector<bool> used(mig.num_nodes(), false);
  std::vector<bool> absorbed(mig.num_nodes(), false);
  std::size_t applications = 0;

  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || used[gate]) {
      continue;
    }
    const auto& fanin = mig.fanins(gate);
    for (int k = 0; k < 3 && !plans[gate]; ++k) {
      const auto child_ref = fanin[k];
      const auto child = child_ref.index();
      if (!mig.is_gate(child) || child_ref.is_complemented() ||
          fanouts[child] != 1 || used[child]) {
        continue;
      }
      const std::array<Signal, 2> outer_rest{fanin[(k + 1) % 3], fanin[(k + 2) % 3]};
      const auto& inner = mig.fanins(child);
      for (int uo = 0; uo < 2 && !plans[gate]; ++uo) {
        const auto u = outer_rest[uo];
        const auto x = outer_rest[1 - uo];
        if (std::find(inner.begin(), inner.end(), u) == inner.end()) {
          continue;
        }
        std::vector<Signal> inner_rest;
        for (const auto s : inner) {
          if (s != u) {
            inner_rest.push_back(s);
          }
        }
        if (inner_rest.size() != 2) {
          continue;
        }
        // Move the deeper inner operand out when it beats the outer one:
        // its path through this cone shortens by one level.
        const auto deeper =
            levels[inner_rest[0].index()] >= levels[inner_rest[1].index()] ? 0 : 1;
        const auto z = inner_rest[deeper];
        const auto y = inner_rest[1 - deeper];
        if (levels[z.index()] > levels[x.index()]) {
          plans[gate] = Plan{y, u, x, z};
          used[gate] = used[child] = true;
          absorbed[child] = true;
          ++applications;
        }
      }
    }
  }

  Rebuilder rebuild(mig);
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    if (!reachable[gate] || absorbed[gate]) {
      continue;
    }
    if (const auto& plan = plans[gate]) {
      auto& fresh = rebuild.fresh();
      const auto inner = fresh.create_maj(rebuild.remap(plan->y), rebuild.remap(plan->u),
                                          rebuild.remap(plan->x));
      rebuild.set_map(gate, fresh.create_maj(rebuild.remap(plan->z),
                                             rebuild.remap(plan->u), inner));
    } else {
      rebuild.rebuild_default(gate);
    }
  }
  return PassResult{rebuild.finish(), applications};
}

}  // namespace rlim::mig
