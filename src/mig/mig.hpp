#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mig/signal.hpp"

namespace rlim::mig {

/// Majority-Inverter Graph [18], [20].
///
/// Node 0 is the constant-0 node; primary inputs follow (they must all be
/// created before the first gate); majority gates come last. Because gates
/// can only reference already-existing nodes and are never mutated in place,
/// the node array is always topologically sorted — every rewriting pass
/// produces a fresh graph.
///
/// `create_maj` applies the trivial Ω.M rules (duplicate or complementary
/// fanin pairs, which also covers constant folding) and structural hashing
/// over *sorted* fanins (Ω.C, commutativity, is free). Complement placement
/// is deliberately NOT canonicalized: the distribution of inverters over
/// edges is the degree of freedom that the endurance-aware Ω.I passes and
/// the RM3 cost model operate on.
class Mig {
public:
  Mig();

  // ---- construction -------------------------------------------------------

  /// Signal referencing the constant node with the given value.
  [[nodiscard]] static Signal get_constant(bool value) { return Signal::constant(value); }

  /// Creates a primary input. All PIs must be created before the first gate.
  Signal create_pi(std::string name = {});

  /// Creates (or strash-finds) a majority gate `⟨a b c⟩`.
  Signal create_maj(Signal a, Signal b, Signal c);

  // Derived operators, expressed over majority gates.
  Signal create_and(Signal a, Signal b) { return create_maj(get_constant(false), a, b); }
  Signal create_or(Signal a, Signal b) { return create_maj(get_constant(true), a, b); }
  Signal create_xor(Signal a, Signal b);
  /// `sel ? then_ : else_`
  Signal create_mux(Signal sel, Signal then_, Signal else_);

  /// Registers a primary output.
  void create_po(Signal s, std::string name = {});

  // ---- structure -----------------------------------------------------------

  [[nodiscard]] std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(nodes_.size()); }
  [[nodiscard]] std::uint32_t num_pis() const { return num_pis_; }
  [[nodiscard]] std::uint32_t num_pos() const { return static_cast<std::uint32_t>(pos_.size()); }
  [[nodiscard]] std::uint32_t num_gates() const { return num_nodes() - 1 - num_pis_; }

  [[nodiscard]] bool is_constant(std::uint32_t node) const { return node == 0; }
  [[nodiscard]] bool is_pi(std::uint32_t node) const { return node >= 1 && node <= num_pis_; }
  [[nodiscard]] bool is_gate(std::uint32_t node) const {
    return node > num_pis_ && node < num_nodes();
  }
  /// Index of the first gate node (== 1 + num_pis()).
  [[nodiscard]] std::uint32_t first_gate() const { return num_pis_ + 1; }

  /// Fanins of a gate node.
  [[nodiscard]] const std::array<Signal, 3>& fanins(std::uint32_t gate) const;

  [[nodiscard]] std::span<const Signal> pos() const { return pos_; }
  [[nodiscard]] Signal po_at(std::uint32_t i) const { return pos_.at(i); }

  [[nodiscard]] const std::string& pi_name(std::uint32_t i) const { return pi_names_.at(i); }
  [[nodiscard]] const std::string& po_name(std::uint32_t i) const { return po_names_.at(i); }

  /// Strash lookup without node creation. Returns the existing signal for
  /// `⟨a b c⟩` after trivial simplification / sorting, or nullopt.
  [[nodiscard]] std::optional<Signal> find_maj(Signal a, Signal b, Signal c) const;

  // ---- analysis ------------------------------------------------------------

  /// Per-node reference count: fanin references from gates plus PO references.
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Per-node list of referencing gate indices (PO references not included).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> fanout_lists() const;

  /// Topological levels: constant and PIs are level 0; a gate is
  /// 1 + max(level of fanins).
  [[nodiscard]] std::vector<std::uint32_t> levels() const;

  /// Depth = maximum level over PO-driving nodes.
  [[nodiscard]] std::uint32_t depth() const;

  /// Number of complemented fanins of a gate, not counting constants
  /// (constants are free for RM3 in either polarity).
  [[nodiscard]] int complement_count(std::uint32_t gate) const;

  /// Total complemented gate-fanin edges on non-constant fanins.
  [[nodiscard]] std::size_t complement_edge_count() const;

  /// Gate nodes reachable from the POs (dead gates excluded).
  [[nodiscard]] std::vector<bool> reachable_from_pos() const;

  /// Rebuilds the graph keeping only PO-reachable logic (re-strashed and
  /// re-simplified; PI/PO profile and names preserved).
  [[nodiscard]] Mig cleanup() const;

  /// Stable 64-bit content hash of the graph *structure*: PI count, gate
  /// fanins in topological order, and PO signals. PI/PO names are excluded,
  /// so two graphs describing the same netlist hash equal regardless of
  /// labeling. Byte-order independent; suitable as a cache key (FNV-1a, not
  /// cryptographic).
  [[nodiscard]] std::uint64_t fingerprint() const;

private:
  struct Node {
    std::array<Signal, 3> fanin{};
  };

  struct StrashKey {
    std::array<std::uint32_t, 3> raws;
    bool operator==(const StrashKey&) const = default;
  };
  struct StrashHash {
    std::size_t operator()(const StrashKey& key) const;
  };

  std::vector<Node> nodes_;
  std::uint32_t num_pis_ = 0;
  std::vector<Signal> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<StrashKey, std::uint32_t, StrashHash> strash_;
};

}  // namespace rlim::mig
