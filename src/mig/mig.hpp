#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mig/signal.hpp"

namespace rlim::mig {

/// Shared string pool: names stored back-to-back in one buffer with a
/// monotone exclusive-end offset table, so N names cost two allocations
/// total instead of N. Views are stable under append only up to the pool's
/// reallocation — callers hold indices, not views, across mutation.
class NamePool {
public:
  NamePool() = default;

  /// Wraps decoded sections (the store's bulk-read path). Validates that
  /// `ends` is monotone and consistent with `pool`'s size.
  static NamePool adopt(std::string pool, std::vector<std::uint32_t> ends);

  void append(std::string_view name) {
    pool_.append(name);
    ends_.push_back(static_cast<std::uint32_t>(pool_.size()));
  }

  [[nodiscard]] std::string_view view(std::size_t i) const {
    const auto end = ends_.at(i);
    const auto begin = i == 0 ? 0u : ends_[i - 1];
    return std::string_view(pool_).substr(begin, end - begin);
  }

  [[nodiscard]] std::size_t size() const { return ends_.size(); }

  void reserve(std::size_t names, std::size_t bytes) {
    ends_.reserve(names);
    pool_.reserve(bytes);
  }

  // Raw sections, for the store encoder.
  [[nodiscard]] const std::string& pool() const { return pool_; }
  [[nodiscard]] std::span<const std::uint32_t> ends() const { return ends_; }

private:
  std::string pool_;
  std::vector<std::uint32_t> ends_;
};

/// Majority-Inverter Graph [18], [20].
///
/// Node 0 is the constant-0 node; primary inputs follow (they must all be
/// created before the first gate); majority gates come last. Because gates
/// can only reference already-existing nodes and are never mutated in place,
/// the node array is always topologically sorted — every rewriting pass
/// produces a fresh graph.
///
/// `create_maj` applies the trivial Ω.M rules (duplicate or complementary
/// fanin pairs, which also covers constant folding) and structural hashing
/// over *sorted* fanins (Ω.C, commutativity, is free). Complement placement
/// is deliberately NOT canonicalized: the distribution of inverters over
/// edges is the degree of freedom that the endurance-aware Ω.I passes and
/// the RM3 cost model operate on.
///
/// Storage is arena/SoA: gate fanin triples live in one contiguous array
/// indexed by `gate - first_gate()`, names in shared string pools, and the
/// level / fanout-count / complement metadata in separate contiguous arrays
/// maintained incrementally as nodes are appended — so `levels()`,
/// `fanout_counts()`, `depth()` and `complement_edge_count()` are reads,
/// not traversals, and serialization is a handful of bulk copies.
class Mig {
public:
  Mig();

  // ---- construction -------------------------------------------------------

  /// Signal referencing the constant node with the given value.
  [[nodiscard]] static Signal get_constant(bool value) { return Signal::constant(value); }

  /// Creates a primary input. All PIs must be created before the first gate.
  Signal create_pi(std::string_view name = {});

  /// Creates (or strash-finds) a majority gate `⟨a b c⟩`.
  Signal create_maj(Signal a, Signal b, Signal c);

  // Derived operators, expressed over majority gates.
  Signal create_and(Signal a, Signal b) { return create_maj(get_constant(false), a, b); }
  Signal create_or(Signal a, Signal b) { return create_maj(get_constant(true), a, b); }
  Signal create_xor(Signal a, Signal b);
  /// `sel ? then_ : else_`
  Signal create_mux(Signal sel, Signal then_, Signal else_);

  /// Registers a primary output.
  void create_po(Signal s, std::string_view name = {});

  /// Pre-sizes the arenas (and the strash table) for a graph of known shape.
  void reserve(std::uint32_t pis, std::uint32_t gates, std::uint32_t pos);

  /// Everything needed to reconstitute a graph from bulk storage.
  struct RawGraph {
    std::uint32_t num_pis = 0;
    std::vector<std::array<Signal, 3>> fanins;  ///< per gate, topological
    std::vector<Signal> pos;
    NamePool pi_names;  ///< one name per PI
    NamePool po_names;  ///< one name per PO
  };

  /// Builds a graph directly from decoded sections — the store's zero-copy
  /// load path. Validates everything `create_maj`/`create_po` would have
  /// enforced on a replay (sorted non-trivial fanins, topological
  /// references, no duplicate gates, name counts) and throws rlim::Error on
  /// violation, then derives the metadata arrays in one pass. The strash
  /// table is built eagerly (reserved up front) so `find_maj` behaves
  /// identically on adopted and incrementally-built graphs.
  [[nodiscard]] static Mig adopt_raw(RawGraph&& raw);

  // ---- structure -----------------------------------------------------------

  [[nodiscard]] std::uint32_t num_nodes() const {
    return 1 + num_pis_ + static_cast<std::uint32_t>(fanins_.size());
  }
  [[nodiscard]] std::uint32_t num_pis() const { return num_pis_; }
  [[nodiscard]] std::uint32_t num_pos() const { return static_cast<std::uint32_t>(pos_.size()); }
  [[nodiscard]] std::uint32_t num_gates() const { return static_cast<std::uint32_t>(fanins_.size()); }

  [[nodiscard]] bool is_constant(std::uint32_t node) const { return node == 0; }
  [[nodiscard]] bool is_pi(std::uint32_t node) const { return node >= 1 && node <= num_pis_; }
  [[nodiscard]] bool is_gate(std::uint32_t node) const {
    return node > num_pis_ && node < num_nodes();
  }
  /// Index of the first gate node (== 1 + num_pis()).
  [[nodiscard]] std::uint32_t first_gate() const { return num_pis_ + 1; }

  /// Fanins of a gate node.
  [[nodiscard]] const std::array<Signal, 3>& fanins(std::uint32_t gate) const;

  [[nodiscard]] std::span<const Signal> pos() const { return pos_; }
  [[nodiscard]] Signal po_at(std::uint32_t i) const { return pos_.at(i); }

  [[nodiscard]] std::string_view pi_name(std::uint32_t i) const { return pi_names_.view(i); }
  [[nodiscard]] std::string_view po_name(std::uint32_t i) const { return po_names_.view(i); }

  // Raw arena sections, for the store encoder (and tests).
  [[nodiscard]] std::span<const std::array<Signal, 3>> gate_fanins() const { return fanins_; }
  [[nodiscard]] const NamePool& pi_names() const { return pi_names_; }
  [[nodiscard]] const NamePool& po_names() const { return po_names_; }

  /// Strash lookup without node creation. Returns the existing signal for
  /// `⟨a b c⟩` after trivial simplification / sorting, or nullopt.
  [[nodiscard]] std::optional<Signal> find_maj(Signal a, Signal b, Signal c) const;

  // ---- analysis ------------------------------------------------------------

  /// Per-node reference count: fanin references from gates plus PO references.
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const { return fanout_counts_; }

  /// Per-node list of referencing gate indices (PO references not included).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> fanout_lists() const;

  /// Topological levels: constant and PIs are level 0; a gate is
  /// 1 + max(level of fanins).
  [[nodiscard]] std::vector<std::uint32_t> levels() const { return levels_; }

  /// Depth = maximum level over PO-driving nodes.
  [[nodiscard]] std::uint32_t depth() const;

  /// Number of complemented fanins of a gate, not counting constants
  /// (constants are free for RM3 in either polarity).
  [[nodiscard]] int complement_count(std::uint32_t gate) const;

  /// Total complemented gate-fanin edges on non-constant fanins.
  [[nodiscard]] std::size_t complement_edge_count() const { return complement_edges_; }

  /// Gate nodes reachable from the POs (dead gates excluded).
  [[nodiscard]] std::vector<bool> reachable_from_pos() const;

  /// Rebuilds the graph keeping only PO-reachable logic (re-strashed and
  /// re-simplified; PI/PO profile and names preserved).
  [[nodiscard]] Mig cleanup() const;

  /// Stable 64-bit content hash of the graph *structure*: PI count, gate
  /// fanins in topological order, and PO signals. PI/PO names are excluded,
  /// so two graphs describing the same netlist hash equal regardless of
  /// labeling. Byte-order independent; suitable as a cache key (FNV-1a, not
  /// cryptographic).
  [[nodiscard]] std::uint64_t fingerprint() const;

private:
  /// Appends a validated, sorted, non-trivial gate and maintains the
  /// metadata arrays. Returns the new node index.
  std::uint32_t append_gate(const std::array<Signal, 3>& fanin);

  // Flat open-addressing strash index over the fanin arena: each slot holds
  // a gate index (0 = empty — node 0 is the constant, never a gate), and
  // the key is read back from fanins_, so the table is a bare u32 array.
  // Power-of-two sized, linear probing, grown at 50% load. An insert is a
  // hash + a handful of contiguous probes, which is what makes the eager
  // rebuild in adopt_raw affordable on the hot load path.
  [[nodiscard]] static std::uint64_t strash_hash(
      const std::array<Signal, 3>& fanin);
  /// Slot holding `fanin`'s gate, or the empty slot where it would insert.
  [[nodiscard]] std::uint32_t* strash_locate(
      const std::array<Signal, 3>& fanin);
  [[nodiscard]] const std::uint32_t* strash_locate(
      const std::array<Signal, 3>& fanin) const;
  /// Ensures capacity for one more entry (rehashes from fanins_ on growth).
  void strash_reserve_one();
  void strash_rebuild(std::size_t capacity);

  std::vector<std::array<Signal, 3>> fanins_;  ///< per gate: node first_gate()+i
  std::uint32_t num_pis_ = 0;
  std::vector<Signal> pos_;
  NamePool pi_names_;
  NamePool po_names_;

  // Derived metadata, maintained incrementally (append-only graph).
  std::vector<std::uint32_t> levels_;          ///< per node
  std::vector<std::uint32_t> fanout_counts_;   ///< per node (incl. PO refs)
  std::vector<std::uint8_t> complement_counts_;  ///< per gate
  std::size_t complement_edges_ = 0;

  std::vector<std::uint32_t> strash_slots_;  ///< power-of-two table, 0 = empty
  std::size_t strash_entries_ = 0;
};

}  // namespace rlim::mig
