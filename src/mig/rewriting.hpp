#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mig/mig.hpp"
#include "util/registry.hpp"
#include "util/spec.hpp"

namespace rlim::mig {

/// Telemetry of one pipeline position in a rewriting run. `name` is the pass
/// key shared with the rlim::pass registry ("maj", "dist", ...); the deltas
/// are signed after-minus-before differences summed over every cycle the
/// pass executed, so a shrinking pass accumulates a negative gate_delta.
/// `wall_ns` is wall-clock measurement — everything else is deterministic
/// for a given input graph and sequence.
struct PassStats {
  std::string name;
  std::uint64_t runs = 0;             ///< times the pass executed
  std::uint64_t applications = 0;     ///< rule firings, summed over runs
  std::int64_t gate_delta = 0;        ///< gate-count delta, summed
  std::int64_t complement_delta = 0;  ///< complemented-fanin-edge delta
  std::int64_t depth_delta = 0;       ///< graph-depth (level) delta
  std::uint64_t wall_ns = 0;          ///< accumulated wall time

  bool operator==(const PassStats&) const = default;
};

/// Telemetry of one rewriting run (per cycle and total). `per_pass` holds
/// one entry per pipeline position, in execution order — filled by both the
/// enum-era flows below and pass::PassManager, so `rlim compile` verbose
/// output and the ablation drivers see the same breakdown either way.
struct RewriteStats {
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  std::size_t initial_complement_edges = 0;
  std::size_t final_complement_edges = 0;
  int cycles_run = 0;
  std::size_t total_applications = 0;
  std::vector<PassStats> per_pass;
};

/// Which rewriting flow to run before compilation.
enum class RewriteKind {
  None,           ///< naive: compile the MIG as constructed (cleanup only)
  Plim21,         ///< paper Algorithm 1 — the original PLiM compiler flow [21]
  Endurance,      ///< paper Algorithm 2 — endurance-aware rewriting
  LevelBalanced,  ///< §III-B.4 experimental flow (rewrite_level_balanced)
};

/// Every RewriteKind enumerator, in declaration order. The static_assert
/// below pins each table position to its enumerator value, so extending the
/// enum without extending the table fails to compile instead of silently
/// desynchronizing the count.
inline constexpr std::array kRewriteKinds{
    RewriteKind::None,
    RewriteKind::Plim21,
    RewriteKind::Endurance,
    RewriteKind::LevelBalanced,
};
inline constexpr std::size_t kRewriteKindCount = kRewriteKinds.size();
static_assert(
    [] {
      for (std::size_t i = 0; i < kRewriteKinds.size(); ++i) {
        if (static_cast<std::size_t>(kRewriteKinds[i]) != i) {
          return false;
        }
      }
      return true;
    }(),
    "kRewriteKinds must list every RewriteKind enumerator in declaration "
    "order — extend the table when extending the enum");

[[nodiscard]] std::string to_string(RewriteKind kind);
/// Inverse of to_string over every enumerator (throws rlim::Error).
[[nodiscard]] RewriteKind parse_rewrite_kind(std::string_view name);

/// A rewriting flow instantiated from a registry spec: graph in, rewritten
/// graph out, telemetry into the optional stats sink.
using RewriteFn = std::function<Mig(const Mig&, RewriteStats*)>;
using RewriteFactory = std::function<RewriteFn(const util::Params&)>;

/// Registry of rewriting flows, keyed for PipelineConfig specs. Built-ins:
/// `none`, `plim21`, `endurance`, `level_balanced` (all but `none` declare an
/// `effort` parameter, default 5). Open for downstream registration.
[[nodiscard]] util::Registry<RewriteFactory>& rewrites();

/// Normalizes `spec` against rewrites() and constructs the flow — the
/// string-keyed equivalent of rewrite(kind, effort).
[[nodiscard]] RewriteFn make_rewrite(const util::PolicySpec& spec);

/// Registry key of an enum-backed flow ("none", "plim21", "endurance",
/// "level_balanced").
[[nodiscard]] std::string_view rewrite_key(RewriteKind kind);

/// The named pass sequence an enum flow runs each cycle, as pass-registry
/// keys ("maj", "dist", ...). None maps to the empty sequence. This is the
/// single source of the `rewrite=seq:` alias pass lists (pass/seq.cpp joins
/// it), so the enum flows and their seq spellings cannot drift apart.
[[nodiscard]] std::span<const std::string_view> flow_pass_keys(
    RewriteKind kind);

/// Paper Algorithm 1 — MIG rewriting of the PLiM compiler [21]:
///   Ω.M; Ω.D(R→L); Ω.A; Ψ.C; Ω.M; Ω.D(R→L); Ω.I(R→L)(1–3); Ω.I(R→L)
/// repeated `effort` times (paper default 5), with early exit when a full
/// cycle neither fires a rule nor shrinks the graph.
Mig rewrite_plim21(const Mig& mig, int effort = 5, RewriteStats* stats = nullptr);

/// Paper Algorithm 2 — endurance-aware MIG rewriting:
///   Ω.M; Ω.D(R→L); Ω.I(R→L)(1–3); Ω.I(R→L); Ω.A; Ω.I(R→L)(1–3); Ω.I(R→L);
///   Ω.M; Ω.D(R→L); Ω.I(R→L)
/// Ψ.C is dropped (it destroys the RM3-ideal single-complemented-edge
/// pattern) and Ω.A is sandwiched between inverter-propagation passes.
Mig rewrite_endurance(const Mig& mig, int effort = 5, RewriteStats* stats = nullptr);

/// Dispatch on RewriteKind (None returns a cleaned-up copy).
Mig rewrite(const Mig& mig, RewriteKind kind, int effort = 5,
            RewriteStats* stats = nullptr);

/// Experimental flow for the paper's §III-B.4 future-work direction:
/// Algorithm 2 extended with Ω.A level balancing, keeping level differences
/// between connected nodes low to shorten storage durations (at a possible
/// instruction-count cost — see bench/ablation_level_rewriting).
Mig rewrite_level_balanced(const Mig& mig, int effort = 5,
                           RewriteStats* stats = nullptr);

}  // namespace rlim::mig
