#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mig/mig.hpp"
#include "util/registry.hpp"
#include "util/spec.hpp"

namespace rlim::mig {

/// Telemetry of one rewriting run (per cycle and total).
struct RewriteStats {
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  std::size_t initial_complement_edges = 0;
  std::size_t final_complement_edges = 0;
  int cycles_run = 0;
  std::size_t total_applications = 0;
};

/// Which rewriting flow to run before compilation.
enum class RewriteKind {
  None,           ///< naive: compile the MIG as constructed (cleanup only)
  Plim21,         ///< paper Algorithm 1 — the original PLiM compiler flow [21]
  Endurance,      ///< paper Algorithm 2 — endurance-aware rewriting
  LevelBalanced,  ///< §III-B.4 experimental flow (rewrite_level_balanced)
};

/// Number of RewriteKind enumerators — keep in sync when extending the enum.
inline constexpr std::size_t kRewriteKindCount = 4;

[[nodiscard]] std::string to_string(RewriteKind kind);
/// Inverse of to_string over every enumerator (throws rlim::Error).
[[nodiscard]] RewriteKind parse_rewrite_kind(std::string_view name);

/// A rewriting flow instantiated from a registry spec: graph in, rewritten
/// graph out, telemetry into the optional stats sink.
using RewriteFn = std::function<Mig(const Mig&, RewriteStats*)>;
using RewriteFactory = std::function<RewriteFn(const util::Params&)>;

/// Registry of rewriting flows, keyed for PipelineConfig specs. Built-ins:
/// `none`, `plim21`, `endurance`, `level_balanced` (all but `none` declare an
/// `effort` parameter, default 5). Open for downstream registration.
[[nodiscard]] util::Registry<RewriteFactory>& rewrites();

/// Normalizes `spec` against rewrites() and constructs the flow — the
/// string-keyed equivalent of rewrite(kind, effort).
[[nodiscard]] RewriteFn make_rewrite(const util::PolicySpec& spec);

/// Registry key of an enum-backed flow ("none", "plim21", "endurance",
/// "level_balanced").
[[nodiscard]] std::string_view rewrite_key(RewriteKind kind);

/// Paper Algorithm 1 — MIG rewriting of the PLiM compiler [21]:
///   Ω.M; Ω.D(R→L); Ω.A; Ψ.C; Ω.M; Ω.D(R→L); Ω.I(R→L)(1–3); Ω.I(R→L)
/// repeated `effort` times (paper default 5), with early exit when a full
/// cycle neither fires a rule nor shrinks the graph.
Mig rewrite_plim21(const Mig& mig, int effort = 5, RewriteStats* stats = nullptr);

/// Paper Algorithm 2 — endurance-aware MIG rewriting:
///   Ω.M; Ω.D(R→L); Ω.I(R→L)(1–3); Ω.I(R→L); Ω.A; Ω.I(R→L)(1–3); Ω.I(R→L);
///   Ω.M; Ω.D(R→L); Ω.I(R→L)
/// Ψ.C is dropped (it destroys the RM3-ideal single-complemented-edge
/// pattern) and Ω.A is sandwiched between inverter-propagation passes.
Mig rewrite_endurance(const Mig& mig, int effort = 5, RewriteStats* stats = nullptr);

/// Dispatch on RewriteKind (None returns a cleaned-up copy).
Mig rewrite(const Mig& mig, RewriteKind kind, int effort = 5,
            RewriteStats* stats = nullptr);

/// Experimental flow for the paper's §III-B.4 future-work direction:
/// Algorithm 2 extended with Ω.A level balancing, keeping level differences
/// between connected nodes low to shorten storage durations (at a possible
/// instruction-count cost — see bench/ablation_level_rewriting).
Mig rewrite_level_balanced(const Mig& mig, int effort = 5,
                           RewriteStats* stats = nullptr);

}  // namespace rlim::mig
