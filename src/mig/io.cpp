#include "mig/io.hpp"

#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace rlim::mig {

// ---- .mig text format -------------------------------------------------------

void write_mig(const Mig& mig, std::ostream& os) {
  os << "# rlim MIG text format; raw signal = 2*node_index + complement\n";
  os << ".mig " << mig.num_pis() << ' ' << mig.num_pos() << ' ' << mig.num_gates()
     << '\n';
  for (std::uint32_t pi = 0; pi < mig.num_pis(); ++pi) {
    os << ".pi " << mig.pi_name(pi) << '\n';
  }
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    const auto& fanin = mig.fanins(gate);
    os << ".gate " << fanin[0].raw() << ' ' << fanin[1].raw() << ' '
       << fanin[2].raw() << '\n';
  }
  for (std::uint32_t po = 0; po < mig.num_pos(); ++po) {
    os << ".po " << mig.po_at(po).raw() << ' ' << mig.po_name(po) << '\n';
  }
  os << ".end\n";
}

Mig read_mig(std::istream& is) {
  Mig mig;
  std::string line;
  std::size_t line_no = 0;
  bool seen_header = false;
  std::uint32_t expect_pis = 0;
  std::uint32_t expect_pos = 0;
  std::uint32_t expect_gates = 0;
  std::vector<Signal> node_of;  // node index -> signal in the new graph
  node_of.push_back(Signal::constant(false));

  const auto fail = [&](const std::string& message) {
    throw Error("read_mig: line " + std::to_string(line_no) + ": " + message);
  };
  const auto decode = [&](std::uint32_t raw) {
    const auto index = raw >> 1;
    if (index >= node_of.size()) {
      fail("signal references node " + std::to_string(index) + " before definition");
    }
    return node_of[index] ^ ((raw & 1u) != 0);
  };

  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string token;
    if (!(ss >> token) || token[0] == '#') {
      continue;
    }
    if (token == ".mig") {
      if (!(ss >> expect_pis >> expect_pos >> expect_gates)) {
        fail("malformed .mig header");
      }
      seen_header = true;
    } else if (token == ".pi") {
      if (!seen_header) fail(".pi before .mig header");
      std::string name;
      ss >> name;
      node_of.push_back(mig.create_pi(name));
    } else if (token == ".gate") {
      if (!seen_header) fail(".gate before .mig header");
      std::uint32_t raw0 = 0;
      std::uint32_t raw1 = 0;
      std::uint32_t raw2 = 0;
      if (!(ss >> raw0 >> raw1 >> raw2)) {
        fail("malformed .gate");
      }
      node_of.push_back(mig.create_maj(decode(raw0), decode(raw1), decode(raw2)));
    } else if (token == ".po") {
      std::uint32_t raw = 0;
      std::string name;
      if (!(ss >> raw)) {
        fail("malformed .po");
      }
      ss >> name;
      mig.create_po(decode(raw), name);
    } else if (token == ".end") {
      break;
    } else {
      fail("unknown directive '" + token + "'");
    }
  }
  require(seen_header, "read_mig: missing .mig header");
  require(mig.num_pis() == expect_pis, "read_mig: PI count mismatch");
  require(mig.num_pos() == expect_pos, "read_mig: PO count mismatch");
  // Gate count can legitimately shrink: strashing may merge declared gates.
  require(mig.num_gates() <= expect_gates, "read_mig: more gates than declared");
  return mig;
}

void write_mig_file(const Mig& mig, const std::string& path) {
  std::ofstream os(path);
  require(os.good(), "write_mig_file: cannot open " + path);
  write_mig(mig, os);
}

Mig read_mig_file(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "read_mig_file: cannot open " + path);
  return read_mig(is);
}

// ---- BLIF ------------------------------------------------------------------

namespace {

std::string blif_node_name(const Mig& mig, std::uint32_t node) {
  if (mig.is_pi(node)) {
    return std::string(mig.pi_name(node - 1));
  }
  // Built in two steps to sidestep GCC bug 105651 (-Wrestrict false positive
  // on `"literal" + std::to_string(...)`).
  std::string name(1, 'n');
  name += std::to_string(node);
  return name;
}

}  // namespace

void write_blif(const Mig& mig, std::ostream& os, const std::string& model_name) {
  os << ".model " << model_name << '\n';
  os << ".inputs";
  for (std::uint32_t pi = 0; pi < mig.num_pis(); ++pi) {
    os << ' ' << mig.pi_name(pi);
  }
  os << "\n.outputs";
  for (std::uint32_t po = 0; po < mig.num_pos(); ++po) {
    os << ' ' << mig.po_name(po);
  }
  os << '\n';

  bool need_const0 = false;
  bool need_const1 = false;
  for (const auto po : mig.pos()) {
    if (po.is_constant()) {
      (po.constant_value() ? need_const1 : need_const0) = true;
    }
  }
  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    for (const auto f : mig.fanins(gate)) {
      if (f.is_constant()) {
        (f.constant_value() ? need_const1 : need_const0) = true;
      }
    }
  }
  if (need_const0) {
    os << ".names const0\n";  // empty cover == constant 0
  }
  if (need_const1) {
    os << ".names const1\n1\n";
  }

  const auto signal_name = [&](Signal s) {
    if (s.is_constant()) {
      return std::string(s.constant_value() ? "const1" : "const0");
    }
    return blif_node_name(mig, s.index());
  };
  // Constant nets already carry their value in the net name, so the edge
  // complement must not be applied a second time in the cubes.
  const auto effective_complement = [](Signal s) {
    return s.is_complemented() && !s.is_constant();
  };

  for (std::uint32_t gate = mig.first_gate(); gate < mig.num_nodes(); ++gate) {
    const auto& fanin = mig.fanins(gate);
    os << ".names " << signal_name(fanin[0]) << ' ' << signal_name(fanin[1]) << ' '
       << signal_name(fanin[2]) << ' ' << blif_node_name(mig, gate) << '\n';
    // Minterms of maj(a^c0, b^c1, c^c2).
    for (unsigned row = 0; row < 8; ++row) {
      int ones = 0;
      for (int bit = 0; bit < 3; ++bit) {
        const bool value = ((row >> bit) & 1u) != 0;
        if (value != effective_complement(fanin[bit])) {
          ++ones;
        }
      }
      if (ones >= 2) {
        for (int bit = 0; bit < 3; ++bit) {
          os << (((row >> bit) & 1u) != 0 ? '1' : '0');
        }
        os << " 1\n";
      }
    }
  }

  for (std::uint32_t po = 0; po < mig.num_pos(); ++po) {
    const auto signal = mig.po_at(po);
    os << ".names " << signal_name(signal) << ' ' << mig.po_name(po) << '\n'
       << (effective_complement(signal) ? "0 1\n" : "1 1\n");
  }
  os << ".end\n";
}

namespace {

struct BlifCover {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> cubes;  // "<pattern> <value>"
};

/// Evaluates a cover on a row assignment (bit i of `row` = value of input i).
bool cover_value(const BlifCover& cover, unsigned row) {
  bool has_on_rows = false;
  bool has_off_rows = false;
  bool matched_on = false;
  bool matched_off = false;
  for (const auto& cube : cover.cubes) {
    std::istringstream ss(cube);
    std::string pattern;
    std::string value;
    if (cover.inputs.empty()) {
      ss >> value;
      pattern.clear();
    } else {
      ss >> pattern >> value;
    }
    require(value == "0" || value == "1", "read_blif: bad cube output value");
    const bool on_set = value == "1";
    (on_set ? has_on_rows : has_off_rows) = true;
    require(pattern.size() == cover.inputs.size(), "read_blif: cube arity mismatch");
    bool match = true;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      const bool bit = ((row >> i) & 1u) != 0;
      if (pattern[i] == '-') {
        continue;
      }
      if ((pattern[i] == '1') != bit) {
        match = false;
        break;
      }
    }
    if (match) {
      (on_set ? matched_on : matched_off) = true;
    }
  }
  require(!(has_on_rows && has_off_rows),
          "read_blif: mixed on-set/off-set cover");
  if (has_off_rows) {
    return !matched_off;
  }
  return matched_on;  // empty cover (constant 0) falls out naturally
}

/// Shannon synthesis of a <=8-row truth table over `vars`.
Signal synth_tt(Mig& mig, unsigned tt, std::span<const Signal> vars) {
  const auto k = static_cast<unsigned>(vars.size());
  const unsigned rows = 1u << k;
  const unsigned mask = (1u << rows) - 1u;
  tt &= mask;
  if (tt == 0) {
    return Mig::get_constant(false);
  }
  if (tt == mask) {
    return Mig::get_constant(true);
  }
  if (k == 3) {
    // Recognize (possibly input-complemented) majority covers so BLIF
    // round-trips reproduce single gates.
    for (unsigned pol = 0; pol < 8; ++pol) {
      unsigned maj_tt = 0;
      for (unsigned row = 0; row < 8; ++row) {
        int ones = 0;
        for (unsigned bit = 0; bit < 3; ++bit) {
          const bool value = ((row >> bit) & 1u) != 0;
          if (value != (((pol >> bit) & 1u) != 0)) {
            ++ones;
          }
        }
        if (ones >= 2) {
          maj_tt |= 1u << row;
        }
      }
      if (maj_tt == tt) {
        return mig.create_maj(vars[0] ^ ((pol & 1u) != 0), vars[1] ^ ((pol & 2u) != 0),
                              vars[2] ^ ((pol & 4u) != 0));
      }
    }
  }
  if (k == 1) {
    return tt == 0b10 ? vars[0] : !vars[0];
  }
  // Cofactor on the last variable.
  const unsigned half = rows / 2;
  unsigned tt0 = 0;
  unsigned tt1 = 0;
  for (unsigned row = 0; row < half; ++row) {
    if ((tt >> row) & 1u) {
      tt0 |= 1u << row;
    }
    if ((tt >> (row + half)) & 1u) {
      tt1 |= 1u << row;
    }
  }
  const auto sub = vars.first(k - 1);
  const auto low = synth_tt(mig, tt0, sub);
  const auto high = synth_tt(mig, tt1, sub);
  return mig.create_mux(vars[k - 1], high, low);
}

}  // namespace

Mig read_blif(std::istream& is) {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<BlifCover> covers;
  std::string line;
  std::string pending;

  const auto read_logical_line = [&](std::string& out) {
    out.clear();
    while (std::getline(is, line)) {
      if (!line.empty() && line.back() == '\\') {
        out += line.substr(0, line.size() - 1);
        continue;
      }
      out += line;
      return true;
    }
    return !out.empty();
  };

  BlifCover* current = nullptr;
  while (read_logical_line(pending)) {
    std::istringstream ss(pending);
    std::string token;
    if (!(ss >> token) || token[0] == '#') {
      continue;
    }
    if (token == ".model") {
      continue;
    }
    if (token == ".inputs") {
      std::string name;
      while (ss >> name) {
        inputs.push_back(name);
      }
      current = nullptr;
    } else if (token == ".outputs") {
      std::string name;
      while (ss >> name) {
        outputs.push_back(name);
      }
      current = nullptr;
    } else if (token == ".names") {
      std::vector<std::string> names;
      std::string name;
      while (ss >> name) {
        names.push_back(name);
      }
      require(!names.empty(), "read_blif: .names without signals");
      require(names.size() <= 4, "read_blif: covers with >3 inputs unsupported");
      BlifCover cover;
      cover.output = names.back();
      names.pop_back();
      cover.inputs = std::move(names);
      covers.push_back(std::move(cover));
      current = &covers.back();
    } else if (token == ".end") {
      break;
    } else if (token == ".latch" || token == ".subckt" || token == ".gate") {
      throw Error("read_blif: unsupported construct " + token);
    } else if (token[0] == '.') {
      current = nullptr;  // ignore other dot-directives
    } else {
      require(current != nullptr, "read_blif: cube outside .names");
      current->cubes.push_back(pending);
    }
  }

  Mig mig;
  std::map<std::string, Signal> signal_of;
  for (const auto& name : inputs) {
    signal_of[name] = mig.create_pi(name);
  }

  // Resolve covers in dependency order (BLIF allows any order).
  std::vector<bool> done(covers.size(), false);
  std::size_t remaining = covers.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < covers.size(); ++i) {
      if (done[i]) {
        continue;
      }
      const auto& cover = covers[i];
      bool ready = true;
      for (const auto& input : cover.inputs) {
        if (!signal_of.contains(input)) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      std::vector<Signal> vars;
      vars.reserve(cover.inputs.size());
      for (const auto& input : cover.inputs) {
        vars.push_back(signal_of.at(input));
      }
      unsigned tt = 0;
      for (unsigned row = 0; row < (1u << vars.size()); ++row) {
        if (cover_value(cover, row)) {
          tt |= 1u << row;
        }
      }
      signal_of[cover.output] = synth_tt(mig, tt, vars);
      done[i] = true;
      --remaining;
      progress = true;
    }
    require(progress, "read_blif: cyclic or underdefined .names dependencies");
  }

  for (const auto& name : outputs) {
    require(signal_of.contains(name), "read_blif: undefined output " + name);
    mig.create_po(signal_of.at(name), name);
  }
  return mig;
}

void write_blif_file(const Mig& mig, const std::string& path,
                     const std::string& model_name) {
  std::ofstream os(path);
  require(os.good(), "write_blif_file: cannot open " + path);
  write_blif(mig, os, model_name);
}

Mig read_blif_file(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "read_blif_file: cannot open " + path);
  return read_blif(is);
}

}  // namespace rlim::mig
