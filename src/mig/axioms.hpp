#pragma once

#include <cstddef>

#include "mig/mig.hpp"

namespace rlim::mig {

/// Result of one axiom pass. Every pass rebuilds the graph (dropping dead
/// logic) and is functionally equivalence-preserving by construction; the
/// property test suite re-verifies this by simulation.
struct PassResult {
  Mig mig;
  std::size_t applications = 0;  ///< number of rule firings (pass-specific)
};

/// Ω.M — majority / complementary-fanin simplification plus re-strashing.
/// `applications` = number of gates eliminated.
PassResult pass_majority(const Mig& mig);

/// Ω.D (right→left) — ⟨⟨xyu⟩⟨xyv⟩z⟩ → ⟨xy⟨uvz⟩⟩ when the two child gates
/// share exactly two (effective) fanins and are both single-fanout; saves one
/// gate per firing. The both-children-complemented variant is matched through
/// the Ω.I flip of the childrens' effective fanins.
PassResult pass_distributivity_rl(const Mig& mig);

/// Ω.A — ⟨xu⟨yuz⟩⟩ = ⟨zu⟨yux⟩⟩, applied when the swapped inner gate
/// simplifies trivially or already exists (sharing); reshapes the graph and
/// exposes further Ω.M / Ω.D reductions.
PassResult pass_associativity(const Mig& mig);

/// Ψ.C (complementary associativity) — ⟨x u ⟨y x̄ z⟩⟩ = ⟨x u ⟨y u z⟩⟩,
/// applied when the new inner gate already exists or when it lowers the
/// inner gate's complemented-fanin count. Part of the original PLiM flow
/// (Algorithm 1) only — the endurance-aware flow drops it because removing a
/// *single* complemented edge destroys the RM3-ideal pattern.
PassResult pass_comp_assoc(const Mig& mig);

/// Ω.I (right→left, variants 1–3) [19] — gates with two or three
/// complemented non-constant fanins are flipped (⟨x̄ȳz̄⟩ = ¬⟨xyz⟩ and the
/// 2-complement corollaries), pushing the complement to the fanout edges and
/// normalizing toward the RM3-ideal of at most one complemented fanin.
PassResult pass_inv_reduce(const Mig& mig);

/// Ω.I (right→left) — only the fully complemented case ⟨x̄ȳz̄⟩ → ¬⟨xyz⟩
/// ("costly nodes with three inverted children", paper Algorithm 2 step 9).
PassResult pass_inv_three(const Mig& mig);

/// Level balancing via Ω.A — the paper's closing §III-B.4 suggestion
/// ("the issue of blocked RRAMs could be considered as an objective during
/// MIG rewriting to keep the level differences between connected nodes
/// low"): ⟨xu⟨yuz⟩⟩ → ⟨zu⟨yux⟩⟩ whenever the displaced inner operand z sits
/// deeper than the outer operand x, pulling deep operands up and shrinking
/// fanout level gaps. The paper predicts (and bench/ablation_level_rewriting
/// measures) that this trades instruction count for shorter storage
/// durations.
PassResult pass_level_balance(const Mig& mig);

}  // namespace rlim::mig
