#pragma once

#include <iosfwd>
#include <string>

#include "mig/mig.hpp"

namespace rlim::mig {

/// Plain-text MIG exchange format:
/// ```
/// # comment
/// .mig <num_pis> <num_pos> <num_gates>
/// .pi <name>                  (one line per PI, in order)
/// .gate <raw0> <raw1> <raw2>  (one line per gate, topological order;
///                              raw = 2*node_index + complement)
/// .po <raw> <name>
/// .end
/// ```
void write_mig(const Mig& mig, std::ostream& os);
[[nodiscard]] Mig read_mig(std::istream& is);
void write_mig_file(const Mig& mig, const std::string& path);
[[nodiscard]] Mig read_mig_file(const std::string& path);

/// BLIF export: every gate becomes a 3-input `.names` cover of its majority
/// function (complement flags folded into the cubes); complemented, constant
/// or pass-through POs get an explicit buffer/inverter cover.
void write_blif(const Mig& mig, std::ostream& os,
                const std::string& model_name = "rlim");

/// BLIF import (combinational subset): `.model`, `.inputs`, `.outputs` and
/// `.names` with at most 3 inputs (on-set/off-set covers with `-`
/// wildcards). Covers are re-synthesized into majority gates; 3-input covers
/// matching a (possibly complemented) majority are recognized structurally.
/// Out-of-order `.names` sections are resolved; combinational cycles and
/// latches raise rlim::Error.
[[nodiscard]] Mig read_blif(std::istream& is);
void write_blif_file(const Mig& mig, const std::string& path,
                     const std::string& model_name = "rlim");
[[nodiscard]] Mig read_blif_file(const std::string& path);

}  // namespace rlim::mig
