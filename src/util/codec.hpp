#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace rlim::util {

/// Append-only binary encoder used by the rlim::store on-disk format.
/// Everything is little-endian and fixed-width, independent of host byte
/// order, so entries written on one machine decode on any other.
///
/// The buffer is recyclable: construct with a moved-in string to reuse its
/// capacity (the pooled-worker write path), and take() hands it back.
class ByteWriter {
public:
  ByteWriter() = default;
  /// Adopts `recycle`'s storage (contents cleared, capacity kept) so
  /// steady-state encoders allocate nothing per frame.
  explicit ByteWriter(std::string&& recycle) : buffer_(std::move(recycle)) {
    buffer_.clear();
  }

  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  ByteWriter& u8(std::uint8_t value) {
    buffer_.push_back(static_cast<char>(value));
    return *this;
  }

  ByteWriter& u32(std::uint32_t value) {
    char bytes[4];
    store_le32(bytes, value);
    buffer_.append(bytes, sizeof bytes);
    return *this;
  }

  ByteWriter& u64(std::uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>(static_cast<std::uint8_t>(value >> (8 * i)));
    }
    buffer_.append(bytes, sizeof bytes);
    return *this;
  }

  /// IEEE-754 bit pattern, via the u64 path.
  ByteWriter& f64(double value) {
    return u64(std::bit_cast<std::uint64_t>(value));
  }

  /// Contiguous little-endian u32 section; one memcpy on little-endian
  /// hosts. `values` may point at any trivially-copyable 4-byte integral
  /// wrapper storage (the MIG signal arena) via its uint32 alias.
  ByteWriter& u32_array(const std::uint32_t* values, std::size_t count) {
    if constexpr (std::endian::native == std::endian::little) {
      buffer_.append(reinterpret_cast<const char*>(values), 4 * count);
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        u32(values[i]);
      }
    }
    return *this;
  }

  /// Length-prefixed (u32) byte string.
  ByteWriter& str(std::string_view text) {
    u32(static_cast<std::uint32_t>(text.size()));
    buffer_.append(text);
    return *this;
  }

  /// Raw bytes, no length prefix (caller encodes the framing).
  ByteWriter& raw(std::string_view bytes) {
    buffer_.append(bytes);
    return *this;
  }

  /// Overwrites the 4 bytes at `offset` with `value` (little-endian) —
  /// for length fields framed before their payload is encoded, so a frame
  /// builds in one buffer without an intermediate payload string.
  void patch_u32(std::size_t offset, std::uint32_t value) {
    require(offset + 4 <= buffer_.size(), "codec: patch_u32 out of range");
    store_le32(buffer_.data() + offset, value);
  }

  [[nodiscard]] const std::string& bytes() const { return buffer_; }
  [[nodiscard]] std::string take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

private:
  static void store_le32(char* dst, std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      dst[i] = static_cast<char>(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  std::string buffer_;
};

/// Bounds-checked decoder over a byte view. Every read validates against
/// remaining() first and throws rlim::Error (with the offset and shortfall
/// spelled out) on underflow — truncated or bit-flipped store entries are
/// rejected cleanly however they were damaged, never read past the end.
/// The view is borrowed: with an mmap-backed source, str_view()/view()
/// decode zero-copy straight out of the mapping.
class ByteReader {
public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(bytes_[position_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4, "u32");
    const auto value = load_le32(bytes_.data() + position_);
    position_ += 4;
    return value;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                   bytes_[position_ + static_cast<std::size_t>(i)]))
               << (8 * i);
    }
    position_ += 8;
    return value;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  /// Borrows the next `count` bytes without copying.
  [[nodiscard]] std::string_view view(std::size_t count) {
    need(count, "view");
    const auto result = bytes_.substr(position_, count);
    position_ += count;
    return result;
  }

  /// Length-prefixed string, borrowed (valid while the source bytes live).
  [[nodiscard]] std::string_view str_view() { return view(u32()); }

  /// Length-prefixed string, copied out.
  [[nodiscard]] std::string str() { return std::string(str_view()); }

  /// Bulk little-endian u32 section into caller storage; one memcpy on
  /// little-endian hosts. Bounds-checked as a whole before any byte moves.
  void u32_array(std::uint32_t* dst, std::size_t count) {
    // remaining()/4 sidesteps any 4*count overflow on absurd counts.
    if (count > remaining() / 4) {
      throw Error("codec: truncated input: u32_array needs " +
                  std::to_string(count) + " elements (4 bytes each), " +
                  std::to_string(remaining()) + " bytes remaining at offset " +
                  std::to_string(position_));
    }
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, bytes_.data() + position_, 4 * count);
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        dst[i] = load_le32(bytes_.data() + position_ + 4 * i);
      }
    }
    position_ += 4 * count;
  }

  /// Skips `count` bytes (bounds-checked like any read).
  void skip(std::size_t count) {
    need(count, "skip");
    position_ += count;
  }

  [[nodiscard]] std::size_t position() const { return position_; }
  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - position_;
  }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  /// Decoders call this after the last field: trailing garbage is corruption
  /// too, not padding.
  void expect_end() const {
    require(exhausted(), "codec: " + std::to_string(remaining()) +
                             " trailing bytes after decoded value");
  }

private:
  [[nodiscard]] std::string underflow_message(std::size_t count,
                                              const char* what) const {
    return "codec: truncated input: " + std::string(what) + " needs " +
           std::to_string(count) + " bytes, " + std::to_string(remaining()) +
           " remaining at offset " + std::to_string(position_);
  }

  void need(std::size_t count, const char* what) const {
    if (count > remaining()) {
      throw Error(underflow_message(count, what));
    }
  }

  static std::uint32_t load_le32(const char* src) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(src[i]))
               << (8 * i);
    }
    return value;
  }

  std::string_view bytes_;
  std::size_t position_ = 0;
};

}  // namespace rlim::util
