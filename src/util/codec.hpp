#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace rlim::util {

/// Append-only binary encoder used by the rlim::store on-disk format.
/// Everything is little-endian and fixed-width, independent of host byte
/// order, so entries written on one machine decode on any other.
class ByteWriter {
public:
  ByteWriter& u8(std::uint8_t value) {
    buffer_.push_back(static_cast<char>(value));
    return *this;
  }

  ByteWriter& u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      u8(static_cast<std::uint8_t>(value >> shift));
    }
    return *this;
  }

  ByteWriter& u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      u8(static_cast<std::uint8_t>(value >> shift));
    }
    return *this;
  }

  /// IEEE-754 bit pattern, via the u64 path.
  ByteWriter& f64(double value) {
    return u64(std::bit_cast<std::uint64_t>(value));
  }

  /// Length-prefixed (u32) byte string.
  ByteWriter& str(std::string_view text) {
    u32(static_cast<std::uint32_t>(text.size()));
    buffer_.append(text);
    return *this;
  }

  /// Raw bytes, no length prefix (caller encodes the framing).
  ByteWriter& raw(std::string_view bytes) {
    buffer_.append(bytes);
    return *this;
  }

  [[nodiscard]] const std::string& bytes() const { return buffer_; }
  [[nodiscard]] std::string take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

private:
  std::string buffer_;
};

/// Bounds-checked decoder over a byte view. Every read throws rlim::Error on
/// truncation instead of reading past the end, so corrupt store entries are
/// rejected cleanly however they were damaged.
class ByteReader {
public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[position_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(u8()) << shift;
    }
    return value;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(u8()) << shift;
    }
    return value;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str() {
    const auto size = u32();
    need(size);
    std::string value(bytes_.substr(position_, size));
    position_ += size;
    return value;
  }

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - position_;
  }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  /// Decoders call this after the last field: trailing garbage is corruption
  /// too, not padding.
  void expect_end() const {
    require(exhausted(), "codec: trailing bytes after decoded value");
  }

private:
  void need(std::size_t count) const {
    require(count <= remaining(), "codec: truncated input");
  }

  std::string_view bytes_;
  std::size_t position_ = 0;
};

}  // namespace rlim::util
