#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace rlim::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table: row arity does not match header");
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string Table::percent(double value, int digits) {
  return fixed(value, digits) + "%";
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto is_numeric = [](const std::string& s) {
    if (s.empty()) {
      return false;
    }
    for (const char ch : s) {
      if ((ch < '0' || ch > '9') && ch != '.' && ch != '-' && ch != '%' &&
          ch != '+' && ch != '/') {
        return false;
      }
    }
    return true;
  };

  std::ostringstream os;
  const auto emit_line = [&] {
    for (const auto w : widths) {
      os << '+' << std::string(w + 2, '-');
    }
    os << "+\n";
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| ";
      if (is_numeric(cells[c])) {
        os << std::setw(static_cast<int>(widths[c])) << std::right << cells[c];
      } else {
        os << std::setw(static_cast<int>(widths[c])) << std::left << cells[c];
      }
      os << ' ';
    }
    os << "|\n";
  };

  emit_line();
  emit_row(header_);
  emit_line();
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_line();
    } else {
      emit_row(row.cells);
    }
  }
  emit_line();
  return os.str();
}

}  // namespace rlim::util
