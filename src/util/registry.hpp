#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/spec.hpp"

namespace rlim::util {

/// One declared parameter of a registered policy. Normalization fills the
/// default when the spec omits the parameter, so factories always see a
/// complete parameter set.
struct ParamInfo {
  std::string name;
  std::string default_value;
  std::string summary;
};

/// Self-description of a registered policy — what `rlim policies` prints.
struct PolicyInfo {
  std::string key;
  std::string summary;
  std::vector<ParamInfo> params;
};

/// String-keyed policy registry: maps a key to a description and a factory.
/// Registration is open — downstream code can add policies next to the
/// built-ins (see examples/custom_alu.cpp) — but is not thread-safe; register
/// before handing configurations to worker threads.
template <typename Factory>
class Registry {
public:
  explicit Registry(std::string what) : what_(std::move(what)) {}

  void add(PolicyInfo info, Factory factory) {
    require(valid_identifier(info.key),
            what_ + " key '" + info.key +
                "' must be a lowercase [a-z0-9_]+ identifier");
    require(find(info.key) == nullptr,
            what_ + " '" + info.key + "' is already registered");
    entries_.push_back({std::move(info), std::move(factory)});
  }

  [[nodiscard]] const PolicyInfo* find(std::string_view key) const {
    for (const auto& entry : entries_) {
      if (entry.info.key == key) {
        return &entry.info;
      }
    }
    return nullptr;
  }

  [[nodiscard]] const PolicyInfo& describe(std::string_view key) const {
    const auto* info = find(key);
    if (info == nullptr) {
      throw Error(unknown_message(key));
    }
    return *info;
  }

  /// Every registered policy, sorted by key for stable listings.
  [[nodiscard]] std::vector<PolicyInfo> list() const {
    std::vector<PolicyInfo> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_) {
      out.push_back(entry.info);
    }
    std::sort(out.begin(), out.end(),
              [](const PolicyInfo& a, const PolicyInfo& b) {
                return a.key < b.key;
              });
    return out;
  }

  /// Fills parameter defaults and rejects parameters the policy does not
  /// declare; the result is the canonical form of `spec`.
  [[nodiscard]] PolicySpec normalize(const PolicySpec& spec) const {
    const auto& info = describe(spec.key);
    PolicySpec out;
    out.key = spec.key;
    for (const auto& param : info.params) {
      out.params[param.name] = param.default_value;
    }
    for (const auto& [name, value] : spec.params) {
      require(out.params.count(name) != 0,
              what_ + " '" + spec.key + "' has no parameter '" + name + "'");
      out.params[name] = value;
    }
    return out;
  }

  /// Factory for `key`; call it with normalized parameters.
  [[nodiscard]] const Factory& factory(std::string_view key) const {
    for (const auto& entry : entries_) {
      if (entry.info.key == key) {
        return entry.factory;
      }
    }
    throw Error(unknown_message(key));
  }

  /// Normalize + construct in one step — the registry's `make`.
  [[nodiscard]] auto make(const PolicySpec& spec) const {
    const auto normalized = normalize(spec);
    return factory(normalized.key)(normalized.params);
  }

private:
  struct Entry {
    PolicyInfo info;
    Factory factory;
  };

  [[nodiscard]] std::string unknown_message(std::string_view key) const {
    std::string keys;
    for (const auto& info : list()) {
      if (!keys.empty()) {
        keys += ", ";
      }
      keys += info.key;
    }
    return "unknown " + what_ + " '" + std::string(key) +
           "' (registered: " + keys + ")";
  }

  std::string what_;
  std::vector<Entry> entries_;
};

}  // namespace rlim::util
