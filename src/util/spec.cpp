#include "util/spec.hpp"

#include <charconv>
#include <cmath>

#include "util/error.hpp"

namespace rlim::util {

bool valid_identifier(std::string_view text) {
  if (text.empty()) {
    return false;
  }
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string PolicySpec::canonical() const {
  std::string out = key;
  for (const auto& [name, value] : params) {
    out += ':';
    out += name;
    out += '=';
    out += value;
  }
  return out;
}

PolicySpec PolicySpec::parse(std::string_view text) {
  PolicySpec spec;
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    auto end = text.find(':', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const auto token = text.substr(start, end - start);
    if (first) {
      require(valid_identifier(token),
              "policy spec '" + std::string(text) +
                  "': key must be a lowercase [a-z0-9_]+ identifier");
      spec.key = std::string(token);
      first = false;
    } else {
      const auto eq = token.find('=');
      require(eq != std::string_view::npos,
              "policy spec '" + std::string(text) + "': parameter '" +
                  std::string(token) + "' is not of the form name=value");
      const auto name = token.substr(0, eq);
      require(valid_identifier(name),
              "policy spec '" + std::string(text) + "': parameter name '" +
                  std::string(name) + "' must be lowercase [a-z0-9_]+");
      require(spec.params.count(std::string(name)) == 0,
              "policy spec '" + std::string(text) + "': duplicate parameter '" +
                  std::string(name) + "'");
      spec.params[std::string(name)] = std::string(token.substr(eq + 1));
    }
    if (end == text.size()) {
      break;
    }
    start = end + 1;
  }
  return spec;
}

namespace {

const std::string& find_param(const Params& params, const std::string& name) {
  const auto it = params.find(name);
  require(it != params.end(), "missing policy parameter '" + name + "'");
  return it->second;
}

}  // namespace

std::uint64_t param_u64(const Params& params, const std::string& name) {
  const auto& text = find_param(params, name);
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc() && ptr == end,
          "policy parameter " + name + "='" + text +
              "' is not an unsigned integer");
  return value;
}

double param_double(const Params& params, const std::string& name) {
  const auto& text = find_param(params, name);
  double value = 0.0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc() && ptr == end && std::isfinite(value),
          "policy parameter " + name + "='" + text +
              "' is not a finite number");
  return value;
}

double param_probability(const Params& params, const std::string& name) {
  const double value = param_double(params, name);
  require(value >= 0.0 && value <= 1.0,
          "policy parameter " + name + "='" + find_param(params, name) +
              "' must be a probability in [0, 1]");
  return value;
}

int param_int(const Params& params, const std::string& name) {
  const auto& text = find_param(params, name);
  int value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc() && ptr == end,
          "policy parameter " + name + "='" + text + "' is not an integer");
  return value;
}

}  // namespace rlim::util
