#pragma once

#include <stdexcept>
#include <string>

namespace rlim {

/// Exception thrown on violated API contracts (bad arguments, malformed
/// input files, out-of-range references). Internal invariants use assert.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  explicit Error(const char* what) : std::runtime_error(what) {}
};

/// Throws rlim::Error with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw Error(message);
  }
}

/// Literal-message overload: the common hot-path spelling
/// `require(cond, "...")` must not materialize a std::string (a heap
/// allocation) on the success path — per-gate validation in the decode
/// loops calls this millions of times.
inline void require(bool condition, const char* message) {
  if (!condition) {
    throw Error(message);
  }
}

}  // namespace rlim
