#pragma once

#include <stdexcept>
#include <string>

namespace rlim {

/// Exception thrown on violated API contracts (bad arguments, malformed
/// input files, out-of-range references). Internal invariants use assert.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws rlim::Error with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw Error(message);
  }
}

}  // namespace rlim
