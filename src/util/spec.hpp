#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace rlim::util {

/// Policy parameters as canonical text, name -> value. std::map keeps the
/// names sorted, so the canonical encoding of a parameter set is unique.
using Params = std::map<std::string, std::string>;

/// One string-keyed policy choice: a registry key plus its parameters.
/// Canonical text form: `key` or `key:p=v:q=w` (parameters sorted by name).
/// Registry normalization (util/registry.hpp) fills every declared parameter
/// with its default, so two normalized specs are equal iff they configure
/// the same policy the same way.
struct PolicySpec {
  std::string key;
  Params params;

  /// `key[:param=value...]`, parameters in sorted order — the exact inverse
  /// of parse().
  [[nodiscard]] std::string canonical() const;

  /// Parses the canonical form. Accepts any parameter order; rejects empty
  /// keys, empty parameter names, and malformed `param=value` pairs. Keys
  /// and parameter names are lowercase [a-z0-9_]+.
  [[nodiscard]] static PolicySpec parse(std::string_view text);

  bool operator==(const PolicySpec&) const = default;
};

/// The shared key / parameter-name grammar: lowercase [a-z0-9_]+. Used by
/// both PolicySpec::parse and Registry::add so a spec that parses always
/// names something a registry could hold.
[[nodiscard]] bool valid_identifier(std::string_view text);

/// Typed parameter accessors. Registry normalization fills defaults before
/// factories run, so a missing name is a programming error and throws, as
/// does a value that fails to parse completely.
[[nodiscard]] std::uint64_t param_u64(const Params& params,
                                      const std::string& name);
[[nodiscard]] int param_int(const Params& params, const std::string& name);
/// Finite double (accepts scientific notation, e.g. `rate=1e-4`).
[[nodiscard]] double param_double(const Params& params, const std::string& name);
/// param_double constrained to [0, 1] — fault rates and probabilities.
[[nodiscard]] double param_probability(const Params& params,
                                       const std::string& name);

}  // namespace rlim::util
