#pragma once

#include <array>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace rlim::util {

/// One name<->value binding of an EnumTable row. A value may appear in
/// several rows (aliases); the first row is the canonical name, every row
/// parses.
template <typename Enum>
struct EnumName {
  Enum value;
  std::string_view name;
};

/// The single name<->value table behind an enum's `to_string` / `parse_*`
/// pair. Replaces the hand-written switch helpers that used to be duplicated
/// per enum; keeping both directions in one table makes them impossible to
/// drift apart.
template <typename Enum, std::size_t N>
class EnumTable {
public:
  constexpr EnumTable(std::string_view what,
                      std::array<EnumName<Enum>, N> rows)
      : what_(what), rows_(rows) {}

  /// Canonical name of `value` ("?" for a value outside the table, matching
  /// the old switch helpers' fallback).
  [[nodiscard]] constexpr std::string_view name(Enum value) const {
    for (const auto& row : rows_) {
      if (row.value == value) {
        return row.name;
      }
    }
    return "?";
  }

  /// Inverse lookup over every row, aliases included.
  [[nodiscard]] Enum parse(std::string_view name) const {
    for (const auto& row : rows_) {
      if (row.name == name) {
        return row.value;
      }
    }
    throw Error("unknown " + std::string(what_) + " '" + std::string(name) +
                "' (expected " + choices() + ")");
  }

  /// Comma-separated list of every accepted name, for error messages.
  [[nodiscard]] std::string choices() const {
    std::string out;
    for (const auto& row : rows_) {
      if (!out.empty()) {
        out += ", ";
      }
      out += row.name;
    }
    return out;
  }

  [[nodiscard]] constexpr const std::array<EnumName<Enum>, N>& rows() const {
    return rows_;
  }

private:
  std::string_view what_;
  std::array<EnumName<Enum>, N> rows_;
};

}  // namespace rlim::util
