#pragma once

#include <cmath>
#include <cstdint>

namespace rlim::util {

/// splitmix64: used to seed Xoshiro and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Decorrelated per-instance seed: hashes (base, instance) so that nearby
/// base seeds never alias nearby instances the way `base + instance` does
/// (job seed 5 / trial 1 vs job seed 6 / trial 0 must not share a draw).
/// Use this wherever a batch derives many RNG streams from one job seed.
constexpr std::uint64_t mix_seed(std::uint64_t base, std::uint64_t instance) {
  std::uint64_t state = base;
  std::uint64_t mixed = splitmix64(state);  // advances state past `base`
  state += instance;
  mixed ^= splitmix64(state);
  return mixed;
}

/// xoshiro256** — fast, high-quality deterministic PRNG.
/// All randomness in rlim is seeded explicitly; there are no global RNGs.
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 1) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Bernoulli draw with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Standard normal draw (Box–Muller; one sample per call, simple over fast).
inline double normal(Xoshiro256& rng) {
  double u1 = rng.uniform01();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace rlim::util
