#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rlim::util {

WriteStats compute_stats(std::span<const std::uint64_t> writes) {
  WriteStats stats;
  stats.count = writes.size();
  if (writes.empty()) {
    return stats;
  }
  stats.min = *std::min_element(writes.begin(), writes.end());
  stats.max = *std::max_element(writes.begin(), writes.end());
  for (const auto w : writes) {
    stats.total += w;
  }
  stats.mean = static_cast<double>(stats.total) / static_cast<double>(stats.count);
  double sum_sq = 0.0;
  for (const auto w : writes) {
    const double d = static_cast<double>(w) - stats.mean;
    sum_sq += d * d;
  }
  stats.stdev = std::sqrt(sum_sq / static_cast<double>(stats.count));
  return stats;
}

double improvement_percent(double baseline, double ours) {
  if (baseline == 0.0) {
    return 0.0;
  }
  return 100.0 * (baseline - ours) / baseline;
}

std::vector<std::size_t> histogram(std::span<const std::uint64_t> writes,
                                   std::size_t buckets) {
  std::vector<std::size_t> bins(buckets, 0);
  if (writes.empty() || buckets == 0) {
    return bins;
  }
  const auto max = *std::max_element(writes.begin(), writes.end());
  const double width = max == 0 ? 1.0 : static_cast<double>(max + 1) / static_cast<double>(buckets);
  for (const auto w : writes) {
    auto idx = static_cast<std::size_t>(static_cast<double>(w) / width);
    if (idx >= buckets) {
      idx = buckets - 1;
    }
    ++bins[idx];
  }
  return bins;
}

}  // namespace rlim::util
