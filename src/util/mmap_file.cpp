#include "util/mmap_file.hpp"

#include <cstdlib>
#include <fstream>
#include <system_error>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define RLIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rlim::util {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    mapping_ = std::exchange(other.mapping_, nullptr);
    mapping_size_ = std::exchange(other.mapping_size_, 0);
    const bool views_owned = other.view_.data() == other.owned_.data();
    owned_ = std::move(other.owned_);
    // A fallback view into the owned buffer must follow the buffer's move;
    // mapped or scratch-backed views are stable.
    view_ = views_owned ? std::string_view(owned_)
                        : std::exchange(other.view_, {});
    other.view_ = {};
    open_ = std::exchange(other.open_, false);
  }
  return *this;
}

bool MmapFile::mmap_enabled() {
#ifdef RLIM_HAVE_MMAP
  static const bool enabled = [] {
    const char* forced = std::getenv("RLIM_NO_MMAP");
    return forced == nullptr || std::string_view(forced) == "0";
  }();
  return enabled;
#else
  return false;
#endif
}

void MmapFile::close() {
#ifdef RLIM_HAVE_MMAP
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapping_size_);
  }
#endif
  mapping_ = nullptr;
  mapping_size_ = 0;
  owned_.clear();
  view_ = {};
  open_ = false;
}

bool MmapFile::open(const std::filesystem::path& path, std::string* scratch) {
  close();
#ifdef RLIM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  struct ::stat info {};
  if (::fstat(fd, &info) != 0 || !S_ISREG(info.st_mode)) {
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(info.st_size);
  if (size == 0) {
    ::close(fd);
    open_ = true;  // empty file: a valid, empty view
    return true;
  }
  if (mmap_enabled()) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the inode alive
    if (base == MAP_FAILED) {
      return false;
    }
    mapping_ = base;
    mapping_size_ = size;
    view_ = std::string_view(static_cast<const char*>(base), size);
    open_ = true;
    return true;
  }
  // Plain-read fallback: one sized read into a recyclable buffer.
  std::string& buffer = scratch != nullptr ? *scratch : owned_;
  buffer.resize(size);
  std::size_t done = 0;
  while (done < size) {
    const auto got = ::read(fd, buffer.data() + done, size - done);
    if (got <= 0) {
      break;  // EOF early (file shrank underneath us) or read error
    }
    done += static_cast<std::size_t>(got);
  }
  ::close(fd);
  if (done != size) {
    buffer.clear();
    return false;
  }
  view_ = std::string_view(buffer.data(), size);
  open_ = true;
  return true;
#else
  // No mmap on this platform: portable ifstream read into the recyclable
  // buffer — same contract, just never zero-copy.
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return false;
  }
  std::string& buffer = scratch != nullptr ? *scratch : owned_;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return false;
  }
  buffer.resize(static_cast<std::size_t>(size));
  is.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (static_cast<std::size_t>(is.gcount()) != buffer.size()) {
    buffer.clear();
    return false;
  }
  view_ = std::string_view(buffer.data(), buffer.size());
  open_ = true;
  return true;
#endif
}

}  // namespace rlim::util
