#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rlim::util {

/// Summary statistics of a write-count distribution over RRAM cells.
/// The paper reports min, max and the (population) standard deviation.
struct WriteStats {
  std::size_t count = 0;       ///< number of cells
  std::uint64_t min = 0;       ///< smallest write count
  std::uint64_t max = 0;       ///< largest write count
  std::uint64_t total = 0;     ///< sum of all writes
  double mean = 0.0;
  double stdev = 0.0;          ///< population standard deviation
};

/// Computes WriteStats over `writes`. Empty input yields all-zero stats.
WriteStats compute_stats(std::span<const std::uint64_t> writes);

/// Percentage improvement of `ours` over `baseline` (paper's "impr." column):
/// 100 * (baseline - ours) / baseline. Negative when `ours` is worse.
/// Returns 0 when baseline == 0.
double improvement_percent(double baseline, double ours);

/// Histogram of write counts with `buckets` equal-width bins over [0, max].
std::vector<std::size_t> histogram(std::span<const std::uint64_t> writes,
                                   std::size_t buckets);

}  // namespace rlim::util
