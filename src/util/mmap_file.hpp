#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace rlim::util {

/// Read-only view of one whole file, mmap-backed where the platform allows
/// (mio-style: map the entire file, close the descriptor immediately), with
/// a plain-read fallback for platforms without mmap and for tests
/// (`RLIM_NO_MMAP=1` forces the fallback process-wide).
///
/// The view's lifetime is the MmapFile's: store readers keep the object
/// alive while decoding straight out of the mapping, so a load is
/// map + validate + bulk copy with no intermediate buffer.
///
/// Files written under the store's tmp+rename discipline are never mutated
/// in place, so a mapping observes a stable frame; a concurrently *replaced*
/// entry keeps the old inode alive until unmap. Movable, not copyable.
class MmapFile {
public:
  MmapFile() = default;
  ~MmapFile() { close(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Opens and maps `path` read-only. Returns false (leaving *this empty)
  /// when the file cannot be opened, stat'ed, or read — a missing entry is
  /// the caller's plain cache miss, not an error. When the fallback read
  /// path is taken and `scratch` is non-null, the bytes land in *scratch
  /// (capacity recycled across calls — the pooled-worker case); the view
  /// then aliases the scratch buffer, which must outlive this object.
  bool open(const std::filesystem::path& path, std::string* scratch = nullptr);

  /// Unmaps / releases; the object returns to the empty state.
  void close();

  /// The file's bytes. Empty view when nothing is open (or the file is
  /// empty — distinguish with is_open()).
  [[nodiscard]] std::string_view bytes() const { return view_; }
  [[nodiscard]] bool is_open() const { return open_; }
  /// True when bytes() aliases a live memory mapping (false on the
  /// plain-read fallback).
  [[nodiscard]] bool is_mapped() const { return mapping_ != nullptr; }

  /// False when this process forces the plain-read path (RLIM_NO_MMAP set
  /// to anything but "0", or no platform support).
  [[nodiscard]] static bool mmap_enabled();

private:
  void* mapping_ = nullptr;  ///< live mmap base (page-aligned), or null
  std::size_t mapping_size_ = 0;
  std::string owned_;  ///< fallback storage when no scratch was provided
  std::string_view view_;
  bool open_ = false;
};

}  // namespace rlim::util
