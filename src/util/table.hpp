#pragma once

#include <string>
#include <vector>

namespace rlim::util {

/// Minimal ASCII table printer used by the bench harness to render the
/// paper's tables. Columns are sized to their widest cell; numeric cells
/// are right-aligned, text cells left-aligned.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table, including a header separator.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` decimals ("12.60" style).
  static std::string fixed(double value, int digits = 2);
  /// Formats a percentage with trailing '%' (paper's "impr." column).
  static std::string percent(double value, int digits = 2);

private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace rlim::util
