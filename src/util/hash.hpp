#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rlim::util {

/// Streaming FNV-1a 64-bit hasher. Used wherever the code base needs a
/// stable, platform-independent content hash (e.g. the MIG fingerprints that
/// key the flow layer's rewrite cache). Not cryptographic.
class Fnv1a64 {
public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

  constexpr Fnv1a64& byte(std::uint8_t value) {
    state_ = (state_ ^ value) * kPrime;
    return *this;
  }

  constexpr Fnv1a64& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      byte(p[i]);
    }
    return *this;
  }

  /// Hashes the value little-endian, independent of host byte order.
  constexpr Fnv1a64& u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      byte(static_cast<std::uint8_t>(value >> shift));
    }
    return *this;
  }

  constexpr Fnv1a64& u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      byte(static_cast<std::uint8_t>(value >> shift));
    }
    return *this;
  }

  constexpr Fnv1a64& str(std::string_view text) {
    for (const char c : text) {
      byte(static_cast<std::uint8_t>(c));
    }
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t digest() const { return state_; }

private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience over a byte range.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) {
  return Fnv1a64().str(text).digest();
}

}  // namespace rlim::util
