#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rlim::util {

/// Streaming FNV-1a 64-bit hasher. Used wherever the code base needs a
/// stable, platform-independent content hash (e.g. the MIG fingerprints that
/// key the flow layer's rewrite cache). Not cryptographic.
class Fnv1a64 {
public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

  constexpr Fnv1a64& byte(std::uint8_t value) {
    state_ = (state_ ^ value) * kPrime;
    return *this;
  }

  constexpr Fnv1a64& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      byte(p[i]);
    }
    return *this;
  }

  /// Hashes the value little-endian, independent of host byte order.
  constexpr Fnv1a64& u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      byte(static_cast<std::uint8_t>(value >> shift));
    }
    return *this;
  }

  constexpr Fnv1a64& u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      byte(static_cast<std::uint8_t>(value >> shift));
    }
    return *this;
  }

  constexpr Fnv1a64& str(std::string_view text) {
    for (const char c : text) {
      byte(static_cast<std::uint8_t>(c));
    }
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t digest() const { return state_; }

private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience over a byte range.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) {
  return Fnv1a64().str(text).digest();
}

/// FNV-1a over 8-byte little-endian lanes (length folded into the basis, a
/// byte-wise tail) — one multiply per 8 bytes instead of per byte, so
/// whole-frame integrity checks on multi-KiB store entries cost ~1/8th of
/// the byte-wise walk. Platform-independent, NOT interchangeable with
/// byte-wise fnv1a64 digests; used for the store's frame trailer (v2).
[[nodiscard]] constexpr std::uint64_t fnv1a64_lanes(std::string_view bytes) {
  std::uint64_t state = Fnv1a64::kOffsetBasis ^ bytes.size();
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t lane = 0;
    for (int b = 0; b < 8; ++b) {
      lane |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                  bytes[i + static_cast<std::size_t>(b)]))
              << (8 * b);
    }
    state = (state ^ lane) * Fnv1a64::kPrime;
  }
  for (; i < bytes.size(); ++i) {
    state = (state ^ static_cast<unsigned char>(bytes[i])) * Fnv1a64::kPrime;
  }
  return state;
}

/// Continues an FNV-1a-style digest over a u32 sequence, two words per
/// 8-byte lane (low word first) with a single-word tail. Reads *values*,
/// not memory bytes, so the digest is endian-independent without a
/// byte-swap pass. Used by the MIG fingerprint, whose content is exactly
/// flat u32 arenas. NOT interchangeable with byte-wise fnv1a64 digests.
[[nodiscard]] constexpr std::uint64_t fnv1a64_words(std::uint64_t state,
                                                    const std::uint32_t* words,
                                                    std::size_t count) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const auto lane =
        words[i] | (static_cast<std::uint64_t>(words[i + 1]) << 32);
    state = (state ^ lane) * Fnv1a64::kPrime;
  }
  if (i < count) {
    state = (state ^ words[i]) * Fnv1a64::kPrime;
  }
  return state;
}

}  // namespace rlim::util
