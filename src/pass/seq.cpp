#include "pass/seq.hpp"

#include <memory>
#include <utility>

#include "pass/pass.hpp"
#include "util/error.hpp"

namespace rlim::pass {

namespace {

std::string join_flow_keys(mig::RewriteKind kind) {
  std::string out;
  for (const auto key : mig::flow_pass_keys(kind)) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
  }
  return out;
}

}  // namespace

std::vector<std::string> split_pass_list(std::string_view list) {
  require(!list.empty(), "pass list is empty");
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    auto end = list.find(',', start);
    if (end == std::string_view::npos) {
      end = list.size();
    }
    const auto element = list.substr(start, end - start);
    require(!element.empty(), "pass list '" + std::string(list) +
                                  "' has an empty element");
    out.emplace_back(element);
    if (end == list.size()) {
      break;
    }
    start = end + 1;
  }
  return out;
}

PassManager make_manager(std::string_view list, std::string_view until) {
  PassManager manager;
  for (const auto& key : split_pass_list(list)) {
    manager.add(make_pass(util::PolicySpec{key, {}}));
  }
  if (!until.empty()) {
    bool found = false;
    for (const auto& pass : manager.sequence()) {
      if (pass->name() == until) {
        found = true;
        break;
      }
    }
    require(found, "pass list '" + std::string(list) + "': until='" +
                       std::string(until) + "' names no pass in the list");
    manager.until(std::string(until));
  }
  return manager;
}

std::string_view alias_passes(mig::RewriteKind kind) {
  require(kind != mig::RewriteKind::None,
          "alias_passes: the 'none' flow runs no passes");
  // One joined string per kind, built on first use and immutable after.
  static const std::string plim21 = join_flow_keys(mig::RewriteKind::Plim21);
  static const std::string endurance =
      join_flow_keys(mig::RewriteKind::Endurance);
  static const std::string level_balanced =
      join_flow_keys(mig::RewriteKind::LevelBalanced);
  switch (kind) {
    case mig::RewriteKind::Plim21: return plim21;
    case mig::RewriteKind::Endurance: return endurance;
    case mig::RewriteKind::LevelBalanced: return level_balanced;
    case mig::RewriteKind::None: break;
  }
  throw Error("alias_passes: unknown kind");
}

void register_seq_rewrite() {
  mig::rewrites().add(
      {"seq",
       "ordered pass sequence — the pass-manager flow (`rlim policies` "
       "lists the passes)",
       {{"passes", std::string(alias_passes(mig::RewriteKind::Endurance)),
         "comma-separated pass keys, run in order each cycle"},
        {"effort", "5", "rewriting cycles before the fixpoint check"},
        {"until", "",
         "limit every cycle to the prefix ending at this pass (empty: run "
         "the whole sequence)"}}},
      [](const util::Params& params) -> mig::RewriteFn {
        const int effort = util::param_int(params, "effort");
        require(effort >= 0, "rewrite flow 'seq': effort must be non-negative");
        auto manager = std::make_shared<const PassManager>(
            make_manager(params.at("passes"), params.at("until")));
        return [manager, effort](const mig::Mig& graph,
                                 mig::RewriteStats* stats) {
          return manager->run(graph, effort, stats);
        };
      });
}

}  // namespace rlim::pass
