#pragma once

#include <iosfwd>
#include <string>

#include "pass/manager.hpp"

namespace rlim::pass {

/// GraphDumper-style annotated textual dump: a `#`-prefixed summary header
/// (PI/PO/gate counts, depth, complemented edges), then one line per PI,
/// gate (fanins with `'` complement marks, level, fanout count), and PO.
/// Byte-deterministic for equal graphs — the dump-determinism tests and the
/// alias byte-identity tests diff this output directly.
void dump_graph(const mig::Mig& graph, std::ostream& os);

/// Dump hook streaming to `os`: an `== cycle C step S: pass ==` banner, then
/// dump_graph. `os` must outlive the returned hook.
[[nodiscard]] DumpHook dump_to_stream(std::ostream& os);

/// Dump hook writing one file per executed pass into `directory` (created,
/// with parents, on first dump): `cycle<C>_step<S>_<pass>.txt`, zero-padded
/// to two digits so shell globs sort in execution order.
[[nodiscard]] DumpHook dump_to_directory(std::string directory);

}  // namespace rlim::pass
