#include "pass/pass.hpp"

#include <mutex>
#include <string>
#include <utility>

#include "mig/axioms.hpp"
#include "pass/seq.hpp"
#include "util/error.hpp"

namespace rlim::pass {

namespace {

/// Built-in passes wrap the mig axiom functions: every axiom pass rebuilds
/// the graph and reports its rule firings, which is exactly the Pass
/// contract.
class AxiomPass final : public Pass {
public:
  AxiomPass(std::string_view name, mig::PassResult (*fn)(const mig::Mig&),
            util::Params params)
      : name_(name), fn_(fn), params_(std::move(params)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const util::Params& params() const override { return params_; }

  void run(mig::Mig& graph, PassStats& stats) const override {
    auto result = fn_(graph);
    stats.applications += result.applications;
    graph = std::move(result.mig);
  }

private:
  std::string_view name_;
  mig::PassResult (*fn_)(const mig::Mig&);
  util::Params params_;
};

/// Dead-node elimination + re-strash; `applications` = gates removed.
class CleanupPass final : public Pass {
public:
  explicit CleanupPass(util::Params params) : params_(std::move(params)) {}

  [[nodiscard]] std::string_view name() const override { return "cleanup"; }
  [[nodiscard]] const util::Params& params() const override { return params_; }

  void run(mig::Mig& graph, PassStats& stats) const override {
    const auto before = graph.num_gates();
    graph = graph.cleanup();
    if (graph.num_gates() < before) {
      stats.applications += before - graph.num_gates();
    }
  }

private:
  util::Params params_;
};

PassFactory axiom_factory(std::string_view name,
                          mig::PassResult (*fn)(const mig::Mig&)) {
  return [name, fn](const util::Params& params) -> PassPtr {
    return std::make_shared<AxiomPass>(name, fn, params);
  };
}

}  // namespace

util::Registry<PassFactory>& passes() {
  static auto* registry = [] {
    auto* reg = new util::Registry<PassFactory>("rewriting pass");
    reg->add({"maj", "Ω.M — majority-axiom local rules + re-strashing", {}},
             axiom_factory("maj", mig::pass_majority));
    reg->add({"dist", "Ω.D (R→L) — distributivity, merges shared child gates",
              {}},
             axiom_factory("dist", mig::pass_distributivity_rl));
    reg->add({"assoc",
              "Ω.A — associativity-rebalance, applied when the swap "
              "simplifies or shares",
              {}},
             axiom_factory("assoc", mig::pass_associativity));
    reg->add({"comp",
              "Ψ.C — complement-canonicalize (complementary associativity; "
              "Algorithm 1 only)",
              {}},
             axiom_factory("comp", mig::pass_comp_assoc));
    reg->add({"inv",
              "Ω.I (R→L, variants 1–3) — inverter-propagate toward ≤1 "
              "complemented fanin",
              {}},
             axiom_factory("inv", mig::pass_inv_reduce));
    reg->add({"inv3",
              "Ω.I (R→L) — flip only fully-complemented gates ⟨x̄ȳz̄⟩",
              {}},
             axiom_factory("inv3", mig::pass_inv_three));
    reg->add({"relief",
              "Ω.A wear-target relief — level balancing, the paper's "
              "§III-B.4 objective",
              {}},
             axiom_factory("relief", mig::pass_level_balance));
    reg->add({"cleanup", "dead-node elimination + re-strash", {}},
             [](const util::Params& params) -> PassPtr {
               return std::make_shared<CleanupPass>(params);
             });
    return reg;
  }();
  return *registry;
}

PassPtr make_pass(const util::PolicySpec& spec) { return passes().make(spec); }

void ensure_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    (void)passes();          // force built-in pass registration
    register_seq_rewrite();  // pass/seq.cpp: the `seq` flow + aliases
  });
}

}  // namespace rlim::pass
