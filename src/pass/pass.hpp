#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "mig/mig.hpp"
#include "mig/rewriting.hpp"
#include "util/registry.hpp"
#include "util/spec.hpp"

namespace rlim::pass {

/// Per-pass telemetry record, shared with the enum-era flows
/// (mig::RewriteStats::per_pass) so both report the same breakdown.
using PassStats = mig::PassStats;

/// One small, equivalence-preserving MIG rewriting step — the paper's
/// Algorithms 1 and 2 are ordered sequences of these. A Pass is immutable
/// after construction and holds no per-run state, so one instance can run on
/// any number of graphs (and threads) concurrently.
class Pass {
public:
  virtual ~Pass() = default;

  /// Registry key of the pass ("maj", "dist", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// The normalized parameters the pass was constructed with (every declared
  /// parameter present — registry normalization fills defaults).
  [[nodiscard]] virtual const util::Params& params() const = 0;

  /// Rewrites `graph` in place (replacing it with the rewritten copy) and
  /// adds this run's rule firings to `stats.applications`. The surrounding
  /// telemetry — run counts, size/level/complement deltas, wall time — is
  /// owned by the PassManager, so a Pass only reports what it alone knows.
  virtual void run(mig::Mig& graph, PassStats& stats) const = 0;
};

using PassPtr = std::shared_ptr<const Pass>;
using PassFactory = std::function<PassPtr(const util::Params&)>;

/// Registry of rewriting passes, keyed like every other policy registry
/// (`rlim policies` lists it as the `pass` kind). Built-ins:
///   maj      Ω.M majority-axiom local rules
///   dist     Ω.D (R→L) distributivity
///   assoc    Ω.A associativity-rebalance
///   comp     Ψ.C complement-canonicalize (complementary associativity)
///   inv      Ω.I (R→L, variants 1–3) inverter-propagate
///   inv3     Ω.I (R→L) fully-complemented inverter-propagate
///   relief   Ω.A wear-target relief (level balancing, §III-B.4)
///   cleanup  dead-node elimination + re-strash
/// Open for downstream registration (see examples/pass_pipeline.cpp).
[[nodiscard]] util::Registry<PassFactory>& passes();

/// Normalize `spec` against passes() and construct the pass.
[[nodiscard]] PassPtr make_pass(const util::PolicySpec& spec);

/// Registers the built-in passes above and the `seq` rewriting flow into
/// mig::rewrites() (idempotent, thread-safe). core::PipelineConfig and the
/// registry facade call this on every normalize/list, so config specs can
/// always say `rewrite=seq:passes=...`; call it yourself before touching
/// passes() or mig::rewrites() without going through core.
void ensure_registered();

}  // namespace rlim::pass
