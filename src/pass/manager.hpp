#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "pass/pass.hpp"

namespace rlim::pass {

/// Where in a run a dump hook fires: after pass `step` (0-based position in
/// the executed sequence) of cycle `cycle` (0-based).
struct DumpContext {
  int cycle = 0;
  std::size_t step = 0;
  std::string_view pass;
};

/// Observer invoked with the graph state after every executed pass — the
/// dump-after-pass hook (see pass/dump.hpp for ready-made sinks).
using DumpHook = std::function<void(const mig::Mig&, const DumpContext&)>;

/// Runs an ordered pass sequence with the exact loop shape of the enum-era
/// flows (mig/rewriting.cpp run_flow): one initial cleanup, then up to
/// `effort` cycles over the sequence with an early exit once a full cycle
/// neither fires a rule nor changes the gate count. Running the `plim21`
/// sequence through a PassManager is therefore byte-identical to
/// mig::rewrite_plim21 — the alias tests pin this down.
///
/// Configuration (add/until/on_dump) is not thread-safe; configure first,
/// then run() is const and can execute on any number of threads.
class PassManager {
public:
  /// Appends a pass to the sequence (builder style).
  PassManager& add(PassPtr pass);

  /// Limits every cycle to the prefix ending at the first pass named `name`
  /// (inclusive) — running until pass k is equivalent to running the
  /// k-prefix sequence. Empty clears the limit. run() throws if the name
  /// matches no pass in the sequence.
  PassManager& until(std::string name);

  /// Installs the dump-after-pass observer (empty hook disables dumping).
  PassManager& on_dump(DumpHook hook);

  [[nodiscard]] const std::vector<PassPtr>& sequence() const {
    return sequence_;
  }

  /// Rewrites `graph`, filling `stats` (totals and the per-pass breakdown,
  /// one entry per executed pipeline position) when non-null.
  [[nodiscard]] mig::Mig run(const mig::Mig& graph, int effort,
                             mig::RewriteStats* stats = nullptr) const;

private:
  std::vector<PassPtr> sequence_;
  std::string until_;
  DumpHook dump_;
};

}  // namespace rlim::pass
