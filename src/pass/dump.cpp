#include "pass/dump.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <utility>

#include "util/error.hpp"

namespace rlim::pass {

namespace {

void print_signal(std::ostream& os, mig::Signal signal) {
  if (signal.is_constant()) {
    os << (signal.constant_value() ? '1' : '0');
    return;
  }
  os << 'n' << signal.index();
  if (signal.is_complemented()) {
    os << '\'';
  }
}

std::string pad2(std::size_t value) {
  std::string text = std::to_string(value);
  return text.size() < 2 ? "0" + text : text;
}

}  // namespace

void dump_graph(const mig::Mig& graph, std::ostream& os) {
  os << "# MIG: " << graph.num_pis() << " PIs, " << graph.num_pos()
     << " POs, " << graph.num_gates() << " gates, depth " << graph.depth()
     << ", complemented edges " << graph.complement_edge_count() << '\n';
  const auto levels = graph.levels();
  const auto fanouts = graph.fanout_counts();
  for (std::uint32_t pi = 0; pi < graph.num_pis(); ++pi) {
    os << "pi n" << (pi + 1) << ' ' << graph.pi_name(pi) << " fanout="
       << fanouts[pi + 1] << '\n';
  }
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes();
       ++gate) {
    const auto& fanin = graph.fanins(gate);
    os << "gate n" << gate << " = MAJ(";
    print_signal(os, fanin[0]);
    os << ", ";
    print_signal(os, fanin[1]);
    os << ", ";
    print_signal(os, fanin[2]);
    os << ") level=" << levels[gate] << " fanout=" << fanouts[gate] << '\n';
  }
  for (std::uint32_t po = 0; po < graph.num_pos(); ++po) {
    os << "po " << graph.po_name(po) << " = ";
    print_signal(os, graph.pos()[po]);
    os << '\n';
  }
}

DumpHook dump_to_stream(std::ostream& os) {
  return [&os](const mig::Mig& graph, const DumpContext& where) {
    os << "== cycle " << where.cycle << " step " << where.step << ": "
       << where.pass << " ==\n";
    dump_graph(graph, os);
  };
}

DumpHook dump_to_directory(std::string directory) {
  return [directory = std::move(directory)](const mig::Mig& graph,
                                            const DumpContext& where) {
    std::filesystem::create_directories(directory);
    const auto path = std::filesystem::path(directory) /
                      ("cycle" + pad2(static_cast<std::size_t>(where.cycle)) +
                       "_step" + pad2(where.step) + "_" +
                       std::string(where.pass) + ".txt");
    std::ofstream os(path, std::ios::trunc);
    require(os.good(), "dump_to_directory: cannot open " + path.string());
    dump_graph(graph, os);
    require(os.good(), "dump_to_directory: write failed for " + path.string());
  };
}

}  // namespace rlim::pass
