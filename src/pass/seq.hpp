#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pass/manager.hpp"

namespace rlim::pass {

/// Splits a comma-separated pass list ("maj,dist,inv3") into its elements.
/// Rejects empty lists and empty elements; element validity against the
/// registry is checked by make_manager.
[[nodiscard]] std::vector<std::string> split_pass_list(std::string_view list);

/// Builds a PassManager from a `seq` parameter set: `list` as accepted by
/// split_pass_list (each element a bare pass key — `:` already separates
/// spec parameters, so passes run with their declared defaults), `until` an
/// optional pass key limiting every cycle to the prefix ending at its first
/// occurrence. Throws rlim::Error for unknown passes or an `until` key
/// absent from the list.
[[nodiscard]] PassManager make_manager(std::string_view list,
                                       std::string_view until = {});

/// The comma-joined pass list equivalent to an enum flow — e.g. Plim21 →
/// "maj,dist,assoc,comp,maj,dist,inv,inv3". Joined from
/// mig::flow_pass_keys(), so it cannot drift from what the enum flow runs.
/// Throws for RewriteKind::None (the empty flow has no pass spelling).
[[nodiscard]] std::string_view alias_passes(mig::RewriteKind kind);

/// Registers the `seq` rewriting flow into mig::rewrites():
///   rewrite=seq:passes=maj,dist,...[:effort=N][:until=KEY]
/// The canonical key keeps the comma-separated value verbatim, so seq specs
/// flow unchanged through the pipeline cache, disk store, wire format, and
/// cluster CLI. Called once by ensure_registered() — use that instead.
void register_seq_rewrite();

}  // namespace rlim::pass
