#include "pass/manager.hpp"

#include <chrono>
#include <utility>

#include "util/error.hpp"

namespace rlim::pass {

PassManager& PassManager::add(PassPtr pass) {
  require(pass != nullptr, "PassManager::add: null pass");
  sequence_.push_back(std::move(pass));
  return *this;
}

PassManager& PassManager::until(std::string name) {
  until_ = std::move(name);
  return *this;
}

PassManager& PassManager::on_dump(DumpHook hook) {
  dump_ = std::move(hook);
  return *this;
}

mig::Mig PassManager::run(const mig::Mig& graph, int effort,
                          mig::RewriteStats* stats) const {
  require(effort >= 0, "PassManager::run: effort must be non-negative");

  // Resolve the --until limit to a prefix length up front, so the loop below
  // is literally the k-prefix run the equivalence tests compare against.
  std::size_t length = sequence_.size();
  if (!until_.empty()) {
    length = 0;
    while (length < sequence_.size() &&
           sequence_[length]->name() != until_) {
      ++length;
    }
    require(length < sequence_.size(),
            "PassManager::run: until='" + until_ +
                "' matches no pass in the sequence");
    ++length;  // inclusive: the named pass still runs
  }

  mig::RewriteStats local;
  local.initial_gates = graph.num_gates();
  local.initial_complement_edges = graph.complement_edge_count();
  local.per_pass.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    local.per_pass[i].name = sequence_[i]->name();
  }

  mig::Mig current = graph.cleanup();
  for (int cycle = 0; cycle < effort; ++cycle) {
    std::size_t cycle_applications = 0;
    const auto gates_before = current.num_gates();
    for (std::size_t i = 0; i < length; ++i) {
      auto& slot = local.per_pass[i];
      const auto pass_gates = current.num_gates();
      const auto pass_edges = current.complement_edge_count();
      const auto pass_depth = current.depth();
      const auto apps_before = slot.applications;
      const auto started = std::chrono::steady_clock::now();
      sequence_[i]->run(current, slot);
      const auto finished = std::chrono::steady_clock::now();
      cycle_applications += slot.applications - apps_before;
      ++slot.runs;
      slot.gate_delta += static_cast<std::int64_t>(current.num_gates()) -
                         static_cast<std::int64_t>(pass_gates);
      slot.complement_delta +=
          static_cast<std::int64_t>(current.complement_edge_count()) -
          static_cast<std::int64_t>(pass_edges);
      slot.depth_delta += static_cast<std::int64_t>(current.depth()) -
                          static_cast<std::int64_t>(pass_depth);
      slot.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(finished -
                                                               started)
              .count());
      if (dump_) {
        dump_(current, DumpContext{cycle, i, sequence_[i]->name()});
      }
    }
    ++local.cycles_run;
    local.total_applications += cycle_applications;
    if (cycle_applications == 0 && current.num_gates() == gates_before) {
      break;  // fixpoint: further cycles cannot change the graph
    }
  }

  local.final_gates = current.num_gates();
  local.final_complement_edges = current.complement_edge_count();
  if (stats != nullptr) {
    *stats = std::move(local);
  }
  return current;
}

}  // namespace rlim::pass
