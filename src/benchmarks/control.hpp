#pragma once

#include <cstdint>
#include <string>

#include "mig/mig.hpp"

namespace rlim::bench {

/// Structural re-creations of the EPFL "random/control" benchmarks.
/// Exact functions are built for the specified ones (decoder, priority
/// encoder, int2float, voter); the remaining control blocks (cavlc, ctrl,
/// i2c, router, mem_ctrl) are seeded pseudo-random control netlists with the
/// paper's PI/PO profile and size class (see DESIGN.md §4).

/// Full binary decoder: sel_bits PIs → 2^sel_bits one-hot POs
/// (paper: 8 → 8/256).
[[nodiscard]] mig::Mig make_decoder(unsigned sel_bits);

/// Priority encoder over `width` request lines: index of the
/// highest-numbered active line plus a valid flag
/// (paper: 128 → 128/8 = 7 index bits + valid).
[[nodiscard]] mig::Mig make_priority_encoder(unsigned width);

/// 11-bit unsigned integer to a tiny float: 4-bit exponent (leading-one
/// position) and 3-bit mantissa (paper: 11/7).
[[nodiscard]] mig::Mig make_int2float();
[[nodiscard]] std::uint64_t reference_int2float(std::uint64_t x);

/// Majority voter over an odd number of inputs: popcount ≥ (n+1)/2
/// (paper: 1001/1).
[[nodiscard]] mig::Mig make_voter(unsigned inputs);

/// Seeded pseudo-random control netlist: AND/OR/XOR/MUX layers with recency
/// bias plus occasional comparator blocks — the shallow-wide irregular
/// structure of real control logic. Deterministic for a given seed.
[[nodiscard]] mig::Mig make_random_control(unsigned pis, unsigned pos,
                                           std::size_t target_gates,
                                           std::uint64_t seed);

}  // namespace rlim::bench
