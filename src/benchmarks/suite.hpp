#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mig/mig.hpp"

namespace rlim::bench {

/// One benchmark function of the evaluation suite.
struct BenchmarkSpec {
  std::string name;
  unsigned pis = 0;   ///< expected primary input count (paper profile)
  unsigned pos = 0;   ///< expected primary output count
  bool arithmetic = false;
  std::function<mig::Mig()> build;
};

/// The 18-function suite with exactly the paper's PI/PO profile
/// (adder 256/129 ... voter 1001/1). Building the large entries takes a
/// moment; callers should cache the graphs.
[[nodiscard]] const std::vector<BenchmarkSpec>& paper_suite();

/// Scaled-down instances of the same generators for fast tests and smoke
/// benches (identical code paths, small widths).
[[nodiscard]] const std::vector<BenchmarkSpec>& mini_suite();

/// Looks a benchmark up by name in `paper_suite()`; throws rlim::Error for
/// unknown names.
[[nodiscard]] const BenchmarkSpec& find_benchmark(const std::string& name);

}  // namespace rlim::bench
