#pragma once

#include "mig/mig.hpp"

namespace rlim::bench {

/// Structural re-creations of the EPFL arithmetic benchmarks (the originals
/// are not redistributable offline; see DESIGN.md §4). Widths are
/// parameterized so tests can exercise small instances exhaustively; the
/// paper-profile instances are listed in suite.hpp.

/// Ripple-carry adder: 2n PIs, n+1 POs (paper: n=128 → 256/129).
[[nodiscard]] mig::Mig make_adder(unsigned bits);

/// Logarithmic barrel left-shifter: n + log2(n) PIs, n POs
/// (paper: n=128 → 135/128).
[[nodiscard]] mig::Mig make_barrel_shifter(unsigned bits);

/// Restoring divider: quotient and remainder, 2n PIs, 2n POs
/// (paper: n=64 → 128/128). Semantics for d > 0: q = n/d, r = n%d.
[[nodiscard]] mig::Mig make_divider(unsigned bits);

/// Fixed-point log2: n PIs, n POs (paper: n=32 → 32/32).
/// out = integer part (leading-one position) concatenated with a fractional
/// approximation log2(1+f) ≈ f + f²·(f-1)/2 evaluated in fixed point.
[[nodiscard]] mig::Mig make_log2(unsigned bits);

/// Max of `words` n-bit operands plus the index of the maximum:
/// words*n PIs, n + log2(words) POs (paper: 4×128 → 512/130).
[[nodiscard]] mig::Mig make_max(unsigned words, unsigned bits);

/// Array multiplier: 2n PIs, 2n POs (paper: n=64 → 128/128).
[[nodiscard]] mig::Mig make_multiplier(unsigned bits);

/// Polynomial sine over quarter-wave fixed point: n PIs, n+1 POs
/// (paper: n=24 → 24/25). out = c1·x − c3·x³ + c5·x⁵ with shift-add constant
/// multipliers (c1 ≈ π/2, c3 ≈ π³/48, c5 ≈ π⁵/3840); exact bit-level
/// semantics are mirrored by `reference_sin` below. Width 4..24.
[[nodiscard]] mig::Mig make_sin(unsigned bits);

/// Non-restoring integer square root: 2n PIs, n POs
/// (paper: n=64 → 128/64). out = floor(sqrt(input)).
[[nodiscard]] mig::Mig make_sqrt(unsigned output_bits);

/// Squarer: n PIs, 2n POs (paper: n=64 → 64/128).
[[nodiscard]] mig::Mig make_square(unsigned bits);

/// Bit-exact software references for the approximate generators (used by the
/// test suite to pin the circuits' semantics).
[[nodiscard]] std::uint64_t reference_sin(std::uint64_t x, unsigned bits);
[[nodiscard]] std::uint64_t reference_log2(std::uint64_t x, unsigned bits);

}  // namespace rlim::bench
