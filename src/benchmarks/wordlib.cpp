#include "benchmarks/wordlib.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rlim::bench {

using mig::Mig;
using mig::Signal;

bool WordBuilder::variant() {
  return redundancy_.has_value() && redundancy_->chance(1, 2);
}

Signal WordBuilder::land(Signal a, Signal b) {
  if (variant()) {
    return !mig_->create_or(!a, !b);  // DeMorgan dual: ¬(¬a ∨ ¬b)
  }
  return mig_->create_and(a, b);
}

Signal WordBuilder::lor(Signal a, Signal b) {
  if (variant()) {
    return !mig_->create_and(!a, !b);  // ¬(¬a ∧ ¬b)
  }
  return mig_->create_or(a, b);
}

Signal WordBuilder::lxor(Signal a, Signal b) {
  if (variant()) {
    // ¬XNOR: ¬((a∧b) ∨ (¬a∧¬b))
    return !lor(land(a, b), land(!a, !b));
  }
  return lor(land(a, !b), land(!a, b));
}

Signal WordBuilder::lmux(Signal sel, Signal t, Signal e) {
  if (variant()) {
    // NAND-NAND form: ¬(¬(sel∧t) ∧ ¬(¬sel∧e))
    return !land(!land(sel, t), !land(!sel, e));
  }
  return lor(land(sel, t), land(!sel, e));
}

Word WordBuilder::input(unsigned bits, const std::string& prefix) {
  Word word;
  word.reserve(bits);
  for (unsigned i = 0; i < bits; ++i) {
    word.push_back(mig_->create_pi(prefix + "[" + std::to_string(i) + "]"));
  }
  return word;
}

void WordBuilder::output(const Word& word, const std::string& prefix) {
  for (unsigned i = 0; i < word.size(); ++i) {
    mig_->create_po(word[i], prefix + "[" + std::to_string(i) + "]");
  }
}

Word WordBuilder::constant_word(std::uint64_t value, unsigned bits) const {
  Word word;
  word.reserve(bits);
  for (unsigned i = 0; i < bits; ++i) {
    word.push_back(Mig::get_constant(i < 64 && ((value >> i) & 1u) != 0));
  }
  return word;
}

Word WordBuilder::resize(const Word& word, unsigned bits) const {
  Word result = word;
  result.resize(bits, Mig::get_constant(false));
  return result;
}

Word WordBuilder::shift_right_const(const Word& word, unsigned amount) const {
  Word result(word.size(), Mig::get_constant(false));
  for (std::size_t i = 0; i + amount < word.size(); ++i) {
    result[i] = word[i + amount];
  }
  return result;
}

Word WordBuilder::shift_left_const(const Word& word, unsigned amount) const {
  Word result(word.size(), Mig::get_constant(false));
  for (std::size_t i = amount; i < word.size(); ++i) {
    result[i] = word[i - amount];
  }
  return result;
}

Word WordBuilder::bitwise_and(const Word& a, const Word& b) {
  require(a.size() == b.size(), "WordBuilder: width mismatch");
  Word result;
  result.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    result.push_back(land(a[i], b[i]));
  }
  return result;
}

Word WordBuilder::bitwise_xor(const Word& a, const Word& b) {
  require(a.size() == b.size(), "WordBuilder: width mismatch");
  Word result;
  result.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    result.push_back(lxor(a[i], b[i]));
  }
  return result;
}

Word WordBuilder::bitwise_not(const Word& a) const {
  Word result;
  result.reserve(a.size());
  for (const auto bit : a) {
    result.push_back(!bit);
  }
  return result;
}

Signal WordBuilder::reduce_or(const Word& word) {
  auto acc = Mig::get_constant(false);
  for (const auto bit : word) {
    acc = lor(acc, bit);
  }
  return acc;
}

Signal WordBuilder::reduce_and(const Word& word) {
  auto acc = Mig::get_constant(true);
  for (const auto bit : word) {
    acc = land(acc, bit);
  }
  return acc;
}

Signal WordBuilder::full_adder(Signal a, Signal b, Signal c, Signal& carry_out) {
  const auto sum = lxor(lxor(a, b), c);
  carry_out = lor(lor(land(a, b), land(a, c)), land(b, c));
  return sum;
}

Word WordBuilder::add(const Word& a, const Word& b, Signal carry_in,
                      Signal* carry_out) {
  require(a.size() == b.size(), "WordBuilder::add: width mismatch");
  Word sum;
  sum.reserve(a.size());
  auto carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    Signal next_carry = Mig::get_constant(false);
    sum.push_back(full_adder(a[i], b[i], carry, next_carry));
    carry = next_carry;
  }
  if (carry_out != nullptr) {
    *carry_out = carry;
  }
  return sum;
}

Word WordBuilder::sub(const Word& a, const Word& b, Signal* borrow_out) {
  Signal carry = Mig::get_constant(false);
  const auto diff = add(a, bitwise_not(b), Mig::get_constant(true), &carry);
  if (borrow_out != nullptr) {
    *borrow_out = !carry;  // no carry out of a + ~b + 1 means a < b
  }
  return diff;
}

Signal WordBuilder::ult(const Word& a, const Word& b) {
  Signal borrow = Mig::get_constant(false);
  sub(a, b, &borrow);
  return borrow;
}

Signal WordBuilder::eq(const Word& a, const Word& b) {
  require(a.size() == b.size(), "WordBuilder::eq: width mismatch");
  Word diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diffs.push_back(lxor(a[i], b[i]));
  }
  return !reduce_or(diffs);
}

Word WordBuilder::mux_word(Signal sel, const Word& t, const Word& e) {
  require(t.size() == e.size(), "WordBuilder::mux_word: width mismatch");
  Word result;
  result.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    result.push_back(lmux(sel, t[i], e[i]));
  }
  return result;
}

Word WordBuilder::shift_left_var(const Word& word, const Word& amount) {
  Word current = word;
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const unsigned distance = 1u << stage;
    if (distance >= current.size()) {
      // Shifting by the full width zeroes the word when the bit is set.
      const auto keep = !amount[stage];
      for (auto& bit : current) {
        bit = land(keep, bit);
      }
      continue;
    }
    current = mux_word(amount[stage], shift_left_const(current, distance), current);
  }
  return current;
}

Word WordBuilder::shift_right_var(const Word& word, const Word& amount) {
  Word current = word;
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const unsigned distance = 1u << stage;
    if (distance >= current.size()) {
      const auto keep = !amount[stage];
      for (auto& bit : current) {
        bit = land(keep, bit);
      }
      continue;
    }
    current = mux_word(amount[stage], shift_right_const(current, distance), current);
  }
  return current;
}

Word WordBuilder::mul(const Word& a, const Word& b) {
  const auto product_bits = static_cast<unsigned>(a.size() + b.size());
  // Row-by-row array multiplier: accumulate partial products.
  Word acc = constant_word(0, product_bits);
  for (std::size_t i = 0; i < b.size(); ++i) {
    Word partial(product_bits, Mig::get_constant(false));
    for (std::size_t j = 0; j < a.size(); ++j) {
      partial[i + j] = land(a[j], b[i]);
    }
    acc = add(acc, partial, Mig::get_constant(false));
  }
  return acc;
}

Word WordBuilder::popcount(const Word& bits) {
  // Column compression: weight w columns feed 3:2 compressors until at most
  // two summands remain, then one ripple add.
  std::vector<std::vector<Signal>> columns(1);
  columns[0].assign(bits.begin(), bits.end());
  std::size_t weight = 0;
  while (weight < columns.size()) {
    while (columns[weight].size() >= 3) {
      const auto a = columns[weight][columns[weight].size() - 1];
      const auto b = columns[weight][columns[weight].size() - 2];
      const auto c = columns[weight][columns[weight].size() - 3];
      columns[weight].resize(columns[weight].size() - 3);
      Signal carry = Mig::get_constant(false);
      const auto sum = full_adder(a, b, c, carry);
      columns[weight].push_back(sum);
      if (weight + 1 >= columns.size()) {
        columns.emplace_back();
      }
      columns[weight + 1].push_back(carry);
    }
    ++weight;
  }
  // At most two signals per column: assemble two words and add them; the
  // final carry is a real result bit (e.g. popcount(33 ones) needs 6 bits).
  Word first;
  Word second;
  for (const auto& column : columns) {
    first.push_back(column.size() > 0 ? column[0] : Mig::get_constant(false));
    second.push_back(column.size() > 1 ? column[1] : Mig::get_constant(false));
  }
  Signal carry = Mig::get_constant(false);
  auto total = add(first, second, Mig::get_constant(false), &carry);
  total.push_back(carry);
  return total;
}

Word WordBuilder::leading_one_position(const Word& word, Signal* any_set) {
  unsigned position_bits = 1;
  while ((1u << position_bits) < word.size()) {
    ++position_bits;
  }
  Word position = constant_word(0, position_bits);
  auto found = Mig::get_constant(false);
  // Scan from LSB to MSB; later (more significant) hits override.
  for (std::size_t i = 0; i < word.size(); ++i) {
    const auto here = constant_word(static_cast<std::uint64_t>(i), position_bits);
    position = mux_word(word[i], here, position);
    found = lor(found, word[i]);
  }
  if (any_set != nullptr) {
    *any_set = found;
  }
  return position;
}

}  // namespace rlim::bench
