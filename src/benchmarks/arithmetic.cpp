#include "benchmarks/arithmetic.hpp"

#include "benchmarks/wordlib.hpp"
#include "util/error.hpp"

namespace rlim::bench {

using mig::Mig;
using mig::Signal;

namespace {

unsigned log2_ceil(unsigned value) {
  unsigned bits = 0;
  while ((1u << bits) < value) {
    ++bits;
  }
  return bits;
}

}  // namespace

Mig make_adder(unsigned bits) {
  require(bits >= 1, "make_adder: bits must be positive");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 1u);
  const auto a = builder.input(bits, "a");
  const auto b = builder.input(bits, "b");
  Signal carry = Mig::get_constant(false);
  auto sum = builder.add(a, b, Mig::get_constant(false), &carry);
  sum.push_back(carry);
  builder.output(sum, "s");
  return graph;
}

Mig make_barrel_shifter(unsigned bits) {
  require(bits >= 2 && (bits & (bits - 1)) == 0,
          "make_barrel_shifter: bits must be a power of two");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 2u);
  const auto data = builder.input(bits, "d");
  const auto amount = builder.input(log2_ceil(bits), "sh");
  builder.output(builder.shift_left_var(data, amount), "q");
  return graph;
}

Mig make_divider(unsigned bits) {
  require(bits >= 1, "make_divider: bits must be positive");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 3u);
  const auto n = builder.input(bits, "n");
  const auto d = builder.input(bits, "d");

  // Restoring long division, MSB first. The remainder register needs one
  // extra bit to hold (rem << 1 | n_i) before the trial subtraction.
  const auto d_ext = builder.resize(d, bits + 1);
  Word rem = builder.constant_word(0, bits + 1);
  Word quotient(bits, Mig::get_constant(false));
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    rem = builder.shift_left_const(rem, 1);
    rem[0] = n[static_cast<std::size_t>(i)];
    Signal borrow = Mig::get_constant(false);
    const auto diff = builder.sub(rem, d_ext, &borrow);
    quotient[static_cast<std::size_t>(i)] = !borrow;
    rem = builder.mux_word(!borrow, diff, rem);
  }
  builder.output(quotient, "q");
  builder.output(builder.resize(rem, bits), "r");
  return graph;
}

Mig make_log2(unsigned bits) {
  require(bits >= 4, "make_log2: bits must be at least 4");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 4u);
  const auto x = builder.input(bits, "x");
  const unsigned pos_bits = log2_ceil(bits);
  const unsigned frac_bits = bits - 1;

  Signal any = Mig::get_constant(false);
  const auto pos = builder.leading_one_position(x, &any);

  // Normalize so the leading one lands on the MSB, then drop it: the
  // remaining bits are the fraction f with log2(x) = pos + log2(1 + f).
  const auto max_pos = builder.constant_word(bits - 1, pos_bits);
  Signal ignored = Mig::get_constant(false);
  const auto shift = builder.sub(max_pos, pos, &ignored);
  const auto normalized = builder.shift_left_var(x, shift);
  Word f(normalized.begin(), normalized.end() - 1);  // frac_bits wide

  // log2(1+f) ≈ f + 0.34375·(f − f²)   (0.34375 = 2⁻² + 2⁻⁴ + 2⁻⁵)
  const auto f_squared_full = builder.mul(f, f);
  Word f_squared(f_squared_full.begin() + frac_bits, f_squared_full.end());
  const auto correction = builder.sub(f, f_squared, &ignored);
  auto frac = builder.add(f, builder.shift_right_const(correction, 2),
                          Mig::get_constant(false));
  frac = builder.add(frac, builder.shift_right_const(correction, 4),
                     Mig::get_constant(false));
  frac = builder.add(frac, builder.shift_right_const(correction, 5),
                     Mig::get_constant(false));

  // Output layout: [ pos | top bits of frac ], zero when x == 0.
  Word out(bits, Mig::get_constant(false));
  const unsigned out_frac_bits = bits - pos_bits;
  for (unsigned i = 0; i < out_frac_bits; ++i) {
    out[i] = frac[frac_bits - out_frac_bits + i];
  }
  for (unsigned i = 0; i < pos_bits; ++i) {
    out[out_frac_bits + i] = pos[i];
  }
  out = builder.mux_word(any, out, builder.constant_word(0, bits));
  builder.output(out, "y");
  return graph;
}

std::uint64_t reference_log2(std::uint64_t x, unsigned bits) {
  require(bits >= 4 && bits <= 32, "reference_log2: supported width 4..32");
  if (x == 0) {
    return 0;
  }
  const unsigned pos_bits = log2_ceil(bits);
  const unsigned frac_bits = bits - 1;
  unsigned pos = 0;
  for (unsigned i = 0; i < bits; ++i) {
    if ((x >> i) & 1u) {
      pos = i;
    }
  }
  const auto pos_mask = (1ULL << pos_bits) - 1;
  const auto shift = ((bits - 1) - pos) & pos_mask;
  const auto normalized = (x << shift) & ((1ULL << bits) - 1);
  const auto f = normalized & ((1ULL << frac_bits) - 1);
  const auto f_squared = (f * f) >> frac_bits;
  const auto correction = (f - f_squared) & ((1ULL << frac_bits) - 1);
  const auto frac_mask = (1ULL << frac_bits) - 1;
  std::uint64_t frac = f;
  frac = (frac + (correction >> 2)) & frac_mask;
  frac = (frac + (correction >> 4)) & frac_mask;
  frac = (frac + (correction >> 5)) & frac_mask;
  const unsigned out_frac_bits = bits - pos_bits;
  return (static_cast<std::uint64_t>(pos) << out_frac_bits) |
         (frac >> (frac_bits - out_frac_bits));
}

Mig make_max(unsigned words, unsigned bits) {
  require(words >= 2 && (words & (words - 1)) == 0,
          "make_max: words must be a power of two");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 5u);
  const unsigned index_bits = log2_ceil(words);

  struct Entry {
    Word value;
    Word index;
  };
  std::vector<Entry> entries;
  for (unsigned w = 0; w < words; ++w) {
    Entry entry;
    entry.value = builder.input(bits, "w" + std::to_string(w));
    entry.index = builder.constant_word(w, index_bits);
    entries.push_back(std::move(entry));
  }
  while (entries.size() > 1) {
    std::vector<Entry> next;
    for (std::size_t i = 0; i + 1 < entries.size(); i += 2) {
      const auto right_wins = builder.ult(entries[i].value, entries[i + 1].value);
      Entry merged;
      merged.value =
          builder.mux_word(right_wins, entries[i + 1].value, entries[i].value);
      merged.index =
          builder.mux_word(right_wins, entries[i + 1].index, entries[i].index);
      next.push_back(std::move(merged));
    }
    entries = std::move(next);
  }
  builder.output(entries[0].value, "max");
  builder.output(entries[0].index, "idx");
  return graph;
}

Mig make_multiplier(unsigned bits) {
  require(bits >= 1, "make_multiplier: bits must be positive");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 6u);
  const auto a = builder.input(bits, "a");
  const auto b = builder.input(bits, "b");
  builder.output(builder.mul(a, b), "p");
  return graph;
}

Mig make_sin(unsigned bits) {
  require(bits >= 4 && bits <= 24, "make_sin: supported width 4..24");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 7u);
  const auto x = builder.input(bits, "x");

  // x is a fraction of the quarter wave; out ≈ sin(x·π/2) in bits+1 bits via
  // the odd polynomial c1·x − c3·x³ + c5·x⁵ with shift-add coefficients:
  //   c1 ≈ π/2     ≈ 1.5703125  = 1 + 2⁻¹ + 2⁻⁴ + 2⁻⁷
  //   c3 ≈ π³/48   ≈ 0.6455078  = 2⁻¹ + 2⁻³ + 2⁻⁶ + 2⁻⁸ + 2⁻¹⁰
  //   c5 ≈ π⁵/3840 ≈ 0.0800781  = 2⁻⁴ + 2⁻⁶ + 2⁻⁹
  const auto square_full = builder.mul(x, x);
  Word square(square_full.begin() + bits, square_full.end());
  const auto cube_full = builder.mul(square, x);
  Word cube(cube_full.begin() + bits, cube_full.end());
  const auto quint_full = builder.mul(cube, square);
  Word quint(quint_full.begin() + bits, quint_full.end());

  const auto ext = [&](const Word& word) { return builder.resize(word, bits + 1); };
  const auto zero = Mig::get_constant(false);
  auto positive = ext(x);
  for (const unsigned shift : {1u, 4u, 7u}) {
    positive = builder.add(positive, builder.shift_right_const(ext(x), shift), zero);
  }
  for (const unsigned shift : {4u, 6u, 9u}) {
    positive =
        builder.add(positive, builder.shift_right_const(ext(quint), shift), zero);
  }
  auto c3cube = builder.shift_right_const(ext(cube), 1);
  for (const unsigned shift : {3u, 6u, 8u, 10u}) {
    c3cube = builder.add(c3cube, builder.shift_right_const(ext(cube), shift), zero);
  }
  const auto out = builder.sub(positive, c3cube);
  builder.output(out, "y");
  return graph;
}

std::uint64_t reference_sin(std::uint64_t x, unsigned bits) {
  require(bits >= 4 && bits <= 24, "reference_sin: supported width 4..24");
  const auto mask = (1ULL << (bits + 1)) - 1;
  const auto square = (x * x) >> bits;
  const auto cube = (square * x) >> bits;
  const auto quint = (cube * square) >> bits;
  std::uint64_t positive = x;
  for (const unsigned shift : {1u, 4u, 7u}) {
    positive = (positive + (x >> shift)) & mask;
  }
  for (const unsigned shift : {4u, 6u, 9u}) {
    positive = (positive + (quint >> shift)) & mask;
  }
  std::uint64_t c3cube = cube >> 1;
  for (const unsigned shift : {3u, 6u, 8u, 10u}) {
    c3cube = (c3cube + (cube >> shift)) & mask;
  }
  return (positive - c3cube) & mask;
}

Mig make_sqrt(unsigned output_bits) {
  require(output_bits >= 1, "make_sqrt: output_bits must be positive");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 8u);
  const unsigned input_bits = 2 * output_bits;
  const auto n = builder.input(input_bits, "n");

  // Digit-by-digit (restoring) square root, two radicand bits per step.
  const unsigned rem_bits = output_bits + 4;
  Word rem = builder.constant_word(0, rem_bits);
  Word root = builder.constant_word(0, output_bits);
  for (int i = static_cast<int>(output_bits) - 1; i >= 0; --i) {
    rem = builder.shift_left_const(rem, 2);
    rem[1] = n[static_cast<std::size_t>(2 * i + 1)];
    rem[0] = n[static_cast<std::size_t>(2 * i)];
    auto trial = builder.shift_left_const(builder.resize(root, rem_bits), 2);
    trial[0] = Mig::get_constant(true);  // (root << 2) | 1
    Signal borrow = Mig::get_constant(false);
    const auto diff = builder.sub(rem, trial, &borrow);
    const auto fits = !borrow;
    rem = builder.mux_word(fits, diff, rem);
    root = builder.shift_left_const(root, 1);
    root[0] = fits;
  }
  builder.output(root, "r");
  return graph;
}

Mig make_square(unsigned bits) {
  require(bits >= 1, "make_square: bits must be positive");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 9u);
  const auto a = builder.input(bits, "a");
  builder.output(builder.mul(a, a), "p");
  return graph;
}

}  // namespace rlim::bench
