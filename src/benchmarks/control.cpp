#include "benchmarks/control.hpp"

#include <vector>

#include "benchmarks/wordlib.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::bench {

using mig::Mig;
using mig::Signal;

namespace {

std::vector<Signal> decode_recursive(WordBuilder& builder,
                                     std::span<const Signal> sel) {
  if (sel.size() == 1) {
    return {!sel[0], sel[0]};
  }
  const auto half = sel.size() / 2;
  const auto low = decode_recursive(builder, sel.first(half));
  const auto high = decode_recursive(builder, sel.subspan(half));
  std::vector<Signal> out;
  out.reserve(low.size() * high.size());
  for (const auto hi : high) {
    for (const auto lo : low) {
      out.push_back(builder.land(hi, lo));
    }
  }
  return out;
}

}  // namespace

Mig make_decoder(unsigned sel_bits) {
  require(sel_bits >= 1 && sel_bits <= 16, "make_decoder: 1..16 select bits");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 5u);
  std::vector<Signal> sel;
  for (unsigned i = 0; i < sel_bits; ++i) {
    sel.push_back(graph.create_pi("s" + std::to_string(i)));
  }
  const auto outputs = decode_recursive(builder, sel);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    graph.create_po(outputs[i], "d" + std::to_string(i));
  }
  return graph;
}

Mig make_priority_encoder(unsigned width) {
  require(width >= 2, "make_priority_encoder: width must be at least 2");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 1u);
  const auto requests = builder.input(width, "r");
  Signal valid = Mig::get_constant(false);
  auto index = builder.leading_one_position(requests, &valid);
  index.push_back(valid);
  builder.output(index, "g");
  return graph;
}

Mig make_int2float() {
  constexpr unsigned kBits = 11;
  constexpr unsigned kMantissa = 3;
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 2u);
  const auto x = builder.input(kBits, "x");

  Signal any = Mig::get_constant(false);
  const auto pos = builder.leading_one_position(x, &any);  // 4 bits (0..10)

  // Normalize the leading one to bit kBits-1, mantissa = next 3 bits.
  const auto max_pos = builder.constant_word(kBits - 1, pos.size());
  mig::Signal ignored = Mig::get_constant(false);
  const auto shift = builder.sub(max_pos, pos, &ignored);
  const auto normalized = builder.shift_left_var(x, shift);
  Word mantissa(normalized.end() - 1 - kMantissa, normalized.end() - 1);

  Word out;
  out.insert(out.end(), mantissa.begin(), mantissa.end());
  out.insert(out.end(), pos.begin(), pos.end());
  out = builder.mux_word(any, out, builder.constant_word(0, out.size()));
  builder.output(out, "f");
  return graph;
}

std::uint64_t reference_int2float(std::uint64_t x) {
  constexpr unsigned kBits = 11;
  constexpr unsigned kMantissa = 3;
  x &= (1ULL << kBits) - 1;
  if (x == 0) {
    return 0;
  }
  unsigned pos = 0;
  for (unsigned i = 0; i < kBits; ++i) {
    if ((x >> i) & 1u) {
      pos = i;
    }
  }
  const auto normalized = x << ((kBits - 1) - pos);
  const auto mantissa = (normalized >> (kBits - 1 - kMantissa)) & ((1u << kMantissa) - 1);
  return (static_cast<std::uint64_t>(pos) << kMantissa) | mantissa;
}

Mig make_voter(unsigned inputs) {
  require(inputs >= 3 && inputs % 2 == 1, "make_voter: odd input count >= 3");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 3u);
  const auto votes = builder.input(inputs, "v");
  const auto count = builder.popcount(votes);
  const auto threshold = builder.constant_word((inputs + 1) / 2, count.size());
  // majority ⇔ count >= threshold ⇔ NOT (count < threshold)
  graph.create_po(!builder.ult(count, threshold), "maj");
  return graph;
}

Mig make_random_control(unsigned pis, unsigned pos, std::size_t target_gates,
                        std::uint64_t seed) {
  require(pis >= 2 && pos >= 1, "make_random_control: need >= 2 PIs, >= 1 PO");
  Mig graph;
  WordBuilder builder(graph);
  builder.enable_redundancy(0x5eed0000u + 4u);
  util::Xoshiro256 rng(seed);

  std::vector<Signal> pool;
  for (unsigned i = 0; i < pis; ++i) {
    pool.push_back(graph.create_pi());
  }

  const auto pick = [&]() -> Signal {
    // Recency bias: half the picks come from the most recent window, which
    // yields the depth profile of sequentialized control logic.
    std::size_t index;
    if (rng.chance(1, 2) && pool.size() > 32) {
      index = pool.size() - 1 - rng.below(32);
    } else {
      index = rng.below(pool.size());
    }
    return pool[index] ^ rng.chance(1, 4);
  };

  std::size_t guard = 0;
  while (graph.num_gates() < target_gates && guard < 16 * target_gates + 256) {
    ++guard;
    const auto kind = rng.below(100);
    Signal out;
    if (kind < 30) {
      out = builder.land(pick(), pick());
    } else if (kind < 55) {
      out = builder.lor(pick(), pick());
    } else if (kind < 72) {
      out = builder.lxor(pick(), pick());
    } else if (kind < 94) {
      out = builder.lmux(pick(), pick(), pick());
    } else {
      // Comparator block: a small equality against a random constant —
      // control logic is full of these.
      const auto width = 3 + rng.below(4);
      Word word;
      for (std::size_t i = 0; i < width; ++i) {
        word.push_back(pick());
      }
      out = builder.eq(word, builder.constant_word(rng(), static_cast<unsigned>(width)));
    }
    if (!out.is_constant()) {
      pool.push_back(out);
    }
  }

  for (unsigned i = 0; i < pos; ++i) {
    // Outputs come from the deep end of the pool.
    const auto index = pool.size() - 1 - rng.below((pool.size() + 3) / 4);
    graph.create_po(pool[index] ^ rng.chance(1, 5));
  }
  return graph;
}

}  // namespace rlim::bench
