#include "benchmarks/suite.hpp"

#include "benchmarks/arithmetic.hpp"
#include "benchmarks/control.hpp"
#include "util/error.hpp"

namespace rlim::bench {

const std::vector<BenchmarkSpec>& paper_suite() {
  static const std::vector<BenchmarkSpec> suite = {
      {"adder", 256, 129, true, [] { return make_adder(128); }},
      {"bar", 135, 128, true, [] { return make_barrel_shifter(128); }},
      {"div", 128, 128, true, [] { return make_divider(64); }},
      {"log2", 32, 32, true, [] { return make_log2(32); }},
      {"max", 512, 130, true, [] { return make_max(4, 128); }},
      {"multiplier", 128, 128, true, [] { return make_multiplier(64); }},
      {"sin", 24, 25, true, [] { return make_sin(24); }},
      {"sqrt", 128, 64, true, [] { return make_sqrt(64); }},
      {"square", 64, 128, true, [] { return make_square(64); }},
      {"cavlc", 10, 11, false,
       [] { return make_random_control(10, 11, 1000, 0xCA71Cu); }},
      {"ctrl", 7, 26, false,
       [] { return make_random_control(7, 26, 260, 0xC791u); }},
      {"dec", 8, 256, false, [] { return make_decoder(8); }},
      {"i2c", 147, 142, false,
       [] { return make_random_control(147, 142, 1700, 0x12Cu); }},
      {"int2float", 11, 7, false, [] { return make_int2float(); }},
      {"mem_ctrl", 1204, 1231, false,
       [] { return make_random_control(1204, 1231, 46000, 0x3E3C791u); }},
      {"priority", 128, 8, false, [] { return make_priority_encoder(128); }},
      {"router", 60, 30, false,
       [] { return make_random_control(60, 30, 270, 0x907E9u); }},
      {"voter", 1001, 1, false, [] { return make_voter(1001); }},
  };
  return suite;
}

const std::vector<BenchmarkSpec>& mini_suite() {
  static const std::vector<BenchmarkSpec> suite = {
      {"adder", 16, 9, true, [] { return make_adder(8); }},
      {"bar", 11, 8, true, [] { return make_barrel_shifter(8); }},
      {"div", 12, 12, true, [] { return make_divider(6); }},
      {"log2", 8, 8, true, [] { return make_log2(8); }},
      {"max", 16, 6, true, [] { return make_max(4, 4); }},
      {"multiplier", 12, 12, true, [] { return make_multiplier(6); }},
      {"sin", 8, 9, true, [] { return make_sin(8); }},
      {"sqrt", 12, 6, true, [] { return make_sqrt(6); }},
      {"square", 6, 12, true, [] { return make_square(6); }},
      {"cavlc", 10, 11, false,
       [] { return make_random_control(10, 11, 120, 0xCA71Cu); }},
      {"ctrl", 7, 26, false,
       [] { return make_random_control(7, 26, 60, 0xC791u); }},
      {"dec", 4, 16, false, [] { return make_decoder(4); }},
      {"i2c", 20, 18, false,
       [] { return make_random_control(20, 18, 150, 0x12Cu); }},
      {"int2float", 11, 7, false, [] { return make_int2float(); }},
      {"mem_ctrl", 32, 28, false,
       [] { return make_random_control(32, 28, 400, 0x3E3C791u); }},
      {"priority", 16, 5, false, [] { return make_priority_encoder(16); }},
      {"router", 12, 8, false,
       [] { return make_random_control(12, 8, 70, 0x907E9u); }},
      {"voter", 31, 1, false, [] { return make_voter(31); }},
  };
  return suite;
}

const BenchmarkSpec& find_benchmark(const std::string& name) {
  for (const auto& spec : paper_suite()) {
    if (spec.name == name) {
      return spec;
    }
  }
  throw Error("find_benchmark: unknown benchmark '" + name + "'");
}

}  // namespace rlim::bench
