#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mig/mig.hpp"
#include "util/rng.hpp"

namespace rlim::bench {

/// A little-endian word of signals (bit 0 first).
using Word = std::vector<mig::Signal>;

/// Word-level netlist construction helpers.
///
/// All arithmetic is deliberately built from AND/OR/XOR/MUX expansions (the
/// structure AIG-derived benchmark suites such as EPFL have), NOT from native
/// majority gates: discovering the majority structure is exactly the job of
/// the MIG rewriting flows under test.
class WordBuilder {
public:
  explicit WordBuilder(mig::Mig& mig) : mig_(&mig) {}

  [[nodiscard]] mig::Mig& graph() { return *mig_; }

  /// Enables seeded structural-variant redundancy: the logic helpers below
  /// randomly emit DeMorgan-dual / NAND-NAND equivalents of their canonical
  /// forms. This reproduces the inverter-heavy redundancy of unoptimized
  /// synthesis netlists (the EPFL suite is distributed unoptimized), which
  /// is precisely what the MIG rewriting flows under test clean up: the Ω.I
  /// passes re-normalize the complements and structural hashing then merges
  /// the dual forms.
  void enable_redundancy(std::uint64_t seed) { redundancy_.emplace(seed); }

  /// Logic AND / OR / XOR / MUX with optional variant forms (canonical when
  /// redundancy is off).
  mig::Signal land(mig::Signal a, mig::Signal b);
  mig::Signal lor(mig::Signal a, mig::Signal b);
  mig::Signal lxor(mig::Signal a, mig::Signal b);
  mig::Signal lmux(mig::Signal sel, mig::Signal t, mig::Signal e);

  // ---- I/O -----------------------------------------------------------------
  Word input(unsigned bits, const std::string& prefix);
  void output(const Word& word, const std::string& prefix);

  // ---- constants / wiring ----------------------------------------------------
  [[nodiscard]] Word constant_word(std::uint64_t value, unsigned bits) const;
  /// Truncates or zero-extends to `bits`.
  [[nodiscard]] Word resize(const Word& word, unsigned bits) const;
  /// word >> amount (constant), zero fill.
  [[nodiscard]] Word shift_right_const(const Word& word, unsigned amount) const;
  /// word << amount (constant), zero fill, width preserved.
  [[nodiscard]] Word shift_left_const(const Word& word, unsigned amount) const;

  // ---- bitwise ----------------------------------------------------------------
  Word bitwise_and(const Word& a, const Word& b);
  Word bitwise_xor(const Word& a, const Word& b);
  [[nodiscard]] Word bitwise_not(const Word& a) const;
  mig::Signal reduce_or(const Word& word);
  mig::Signal reduce_and(const Word& word);

  // ---- arithmetic --------------------------------------------------------------
  /// Full adder in sum-of-products netlist style: sum = (a⊕b)⊕c,
  /// carry = (a∧b) ∨ (a∧c) ∨ (b∧c) — the redundant form synthesis
  /// front-ends emit, which Ω.D can fuse toward the majority carry.
  mig::Signal full_adder(mig::Signal a, mig::Signal b, mig::Signal c,
                         mig::Signal& carry_out);
  /// Ripple-carry addition; widths must match. carry_out may be null.
  Word add(const Word& a, const Word& b, mig::Signal carry_in,
           mig::Signal* carry_out = nullptr);
  /// a - b (two's complement); borrow_out = 1 when a < b.
  Word sub(const Word& a, const Word& b, mig::Signal* borrow_out = nullptr);
  /// Unsigned comparison a < b.
  mig::Signal ult(const Word& a, const Word& b);
  mig::Signal eq(const Word& a, const Word& b);

  /// sel ? t : e, bitwise.
  Word mux_word(mig::Signal sel, const Word& t, const Word& e);

  /// Logarithmic barrel shifter by a variable amount (zero filling).
  Word shift_left_var(const Word& word, const Word& amount);
  Word shift_right_var(const Word& word, const Word& amount);

  /// Array multiplier (unsigned), product has a.size() + b.size() bits.
  Word mul(const Word& a, const Word& b);

  /// Population count (3:2 compressor tree + final ripple add).
  Word popcount(const Word& bits);

  /// Position of the most significant set bit (0 when none) and a valid flag.
  Word leading_one_position(const Word& word, mig::Signal* any_set);

private:
  [[nodiscard]] bool variant();

  mig::Mig* mig_;
  std::optional<util::Xoshiro256> redundancy_;
};

}  // namespace rlim::bench
