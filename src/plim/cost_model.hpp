#pragma once

#include <cstdint>

#include "plim/program.hpp"

namespace rlim::plim {

/// First-order latency/energy model of sequential PLiM execution [11]:
/// one RM3 per cycle (the controller performs the majority during the write
/// pulse), operand reads from cells cost read energy, constants are applied
/// directly to the wordlines for free.
///
/// Defaults are HfOx-class ballpark figures (≈1 pJ/write, ≈0.1 pJ/read,
/// 10 ns write pulse); all parameters are caller-tunable — the model's role
/// is comparing compilation flows, not predicting absolute silicon numbers.
struct CostParams {
  double write_energy_pj = 1.0;
  double read_energy_pj = 0.1;
  double cycle_ns = 10.0;
};

struct CostReport {
  std::uint64_t cycles = 0;        ///< == instruction count (paper's latency proxy)
  std::uint64_t cell_reads = 0;    ///< non-constant A/B operands
  std::uint64_t cell_writes = 0;   ///< one per instruction
  double energy_pj = 0.0;
  double latency_ns = 0.0;
};

/// Statically accounts a program's execution cost (writes and reads are
/// data-independent in the RM3 ISA).
[[nodiscard]] CostReport estimate_cost(const Program& program,
                                       const CostParams& params = {});

}  // namespace rlim::plim
