#include "plim/program.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace rlim::plim {

void Program::append(const Instruction& instruction) {
  instructions_.push_back(instruction);
  Cell top = instruction.z;
  if (!instruction.a.is_constant()) {
    top = std::max(top, instruction.a.cell_index());
  }
  if (!instruction.b.is_constant()) {
    top = std::max(top, instruction.b.cell_index());
  }
  num_cells_ = std::max(num_cells_, top + 1);
}

void Program::set_num_cells(Cell count) {
  require(count >= num_cells_, "Program::set_num_cells: cannot shrink below references");
  num_cells_ = count;
}

void Program::bind_pi(Cell cell) {
  pi_cells_.push_back(cell);
  num_cells_ = std::max(num_cells_, cell + 1);
}

void Program::bind_po(Cell cell) {
  po_cells_.push_back(cell);
  num_cells_ = std::max(num_cells_, cell + 1);
}

Program Program::adopt_raw(RawProgram&& raw) {
  const auto in_range = [&raw](Operand operand) {
    return operand.is_constant() || operand.cell_index() < raw.num_cells;
  };
  for (const auto& instruction : raw.instructions) {
    require(instruction.a.is_canonical() && instruction.b.is_canonical(),
            "Program::adopt_raw: non-canonical operand word");
    require(instruction.z < raw.num_cells,
            "Program::adopt_raw: destination out of range");
    require(in_range(instruction.a) && in_range(instruction.b),
            "Program::adopt_raw: operand out of range");
  }
  for (const auto cell : raw.pi_cells) {
    require(cell < raw.num_cells, "Program::adopt_raw: PI binding out of range");
  }
  for (const auto cell : raw.po_cells) {
    require(cell < raw.num_cells, "Program::adopt_raw: PO binding out of range");
  }
  Program program;
  program.instructions_ = std::move(raw.instructions);
  program.pi_cells_ = std::move(raw.pi_cells);
  program.po_cells_ = std::move(raw.po_cells);
  program.num_cells_ = raw.num_cells;
  return program;
}

std::vector<std::uint64_t> Program::static_write_counts() const {
  std::vector<std::uint64_t> counts(num_cells_, 0);
  for (const auto& instruction : instructions_) {
    ++counts[instruction.z];
  }
  return counts;
}

namespace {

std::string operand_to_string(Operand operand, bool negated) {
  std::string text = negated ? "!" : "";
  if (operand.is_constant()) {
    return text + (operand.constant_value() ? "1" : "0");
  }
  return text + "c[" + std::to_string(operand.cell_index()) + "]";
}

}  // namespace

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "# PLiM program: " << instructions_.size() << " instructions, "
     << num_cells_ << " cells\n";
  for (std::size_t i = 0; i < pi_cells_.size(); ++i) {
    os << "# pi " << i << " -> c[" << pi_cells_[i] << "]\n";
  }
  std::size_t pc = 0;
  for (const auto& instruction : instructions_) {
    os << std::to_string(pc++) << ": RM3(" << operand_to_string(instruction.a, false)
       << ", " << operand_to_string(instruction.b, true) << ", c["
       << instruction.z << "])\n";
  }
  for (std::size_t i = 0; i < po_cells_.size(); ++i) {
    os << "# po " << i << " <- c[" << po_cells_[i] << "]\n";
  }
  return os.str();
}

namespace {

std::string serialize_operand(Operand operand) {
  if (operand.is_constant()) {
    return operand.constant_value() ? "1" : "0";
  }
  // Two-step build: GCC bug 105651 (-Wrestrict false positive).
  std::string text(1, 'c');
  text += std::to_string(operand.cell_index());
  return text;
}

Operand parse_operand(const std::string& token, std::size_t line_no) {
  if (token == "0" || token == "1") {
    return Operand::constant(token == "1");
  }
  require(token.size() >= 2 && token[0] == 'c',
          "Program::read: line " + std::to_string(line_no) + ": bad operand '" +
              token + "'");
  return Operand::cell(static_cast<Cell>(std::stoul(token.substr(1))));
}

}  // namespace

void Program::write(std::ostream& os) const {
  os << ".plim " << instructions_.size() << ' ' << num_cells_ << '\n';
  for (const auto cell : pi_cells_) {
    os << ".pi " << cell << '\n';
  }
  for (const auto& instruction : instructions_) {
    os << ".rm3 " << serialize_operand(instruction.a) << ' '
       << serialize_operand(instruction.b) << ' ' << instruction.z << '\n';
  }
  for (const auto cell : po_cells_) {
    os << ".po " << cell << '\n';
  }
  os << ".end\n";
}

Program Program::read(std::istream& is) {
  Program program;
  std::string line;
  std::size_t line_no = 0;
  bool seen_header = false;
  Cell declared_cells = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string token;
    if (!(ss >> token) || token[0] == '#') {
      continue;
    }
    const auto fail = [&](const std::string& message) {
      throw Error("Program::read: line " + std::to_string(line_no) + ": " + message);
    };
    if (token == ".plim") {
      std::size_t instruction_count = 0;
      if (!(ss >> instruction_count >> declared_cells)) {
        fail("malformed .plim header");
      }
      seen_header = true;
    } else if (token == ".pi") {
      Cell cell = 0;
      if (!(ss >> cell)) {
        fail("malformed .pi");
      }
      program.bind_pi(cell);
    } else if (token == ".rm3") {
      std::string a;
      std::string b;
      Cell z = 0;
      if (!(ss >> a >> b >> z)) {
        fail("malformed .rm3");
      }
      program.append(
          Instruction{parse_operand(a, line_no), parse_operand(b, line_no), z});
    } else if (token == ".po") {
      Cell cell = 0;
      if (!(ss >> cell)) {
        fail("malformed .po");
      }
      program.bind_po(cell);
    } else if (token == ".end") {
      break;
    } else {
      fail("unknown directive '" + token + "'");
    }
  }
  require(seen_header, "Program::read: missing .plim header");
  program.set_num_cells(std::max(program.num_cells(), declared_cells));
  program.validate();
  return program;
}

void Program::validate() const {
  for (const auto& instruction : instructions_) {
    require(instruction.z < num_cells_, "Program: destination out of range");
    require(instruction.a.is_constant() || instruction.a.cell_index() < num_cells_,
            "Program: operand A out of range");
    require(instruction.b.is_constant() || instruction.b.cell_index() < num_cells_,
            "Program: operand B out of range");
  }
  for (const auto cell : pi_cells_) {
    require(cell < num_cells_, "Program: PI binding out of range");
  }
  for (const auto cell : po_cells_) {
    require(cell < num_cells_, "Program: PO binding out of range");
  }
}

}  // namespace rlim::plim
