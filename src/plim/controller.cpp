#include "plim/controller.hpp"

#include "mig/simulate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::plim {

void PlimController::start(const Program& program) {
  program.validate();
  require(program.num_cells() <= array_->size(),
          "PlimController: program does not fit the array");
  program_ = &program;
  pc_ = 0;
  state_ = program.size() == 0 ? State::Done : State::Running;
}

void PlimController::execute(RramArray& array, const Instruction& instruction) {
  const auto resolve = [&](Operand operand) -> std::uint64_t {
    if (operand.is_constant()) {
      return operand.constant_value() ? ~0ULL : 0ULL;
    }
    return array.read(operand.cell_index());
  };
  const auto a = resolve(instruction.a);
  const auto not_b = ~resolve(instruction.b);
  const auto z = array.read(instruction.z);
  // Z ← ⟨A B̄ Z⟩
  array.write(instruction.z, (a & not_b) | (a & z) | (not_b & z));
}

bool PlimController::step() {
  require(state_ == State::Running, "PlimController::step: not running");
  execute(*array_, program_->instructions()[pc_]);
  ++pc_;
  if (pc_ == program_->size()) {
    state_ = State::Done;
    return false;
  }
  return true;
}

std::size_t PlimController::run() {
  require(program_ != nullptr, "PlimController::run: no program latched");
  std::size_t executed = 0;
  while (state_ == State::Running) {
    ++executed;
    step();
  }
  return executed;
}

std::size_t PlimController::run(const Program& program) {
  start(program);
  return run();
}

std::vector<std::uint64_t> evaluate(const Program& program,
                                    std::span<const std::uint64_t> pi_values,
                                    RramArray* array) {
  require(pi_values.size() == program.pi_cells().size(),
          "evaluate: PI value count mismatch");
  RramArray local(program.num_cells());
  RramArray& target = array != nullptr ? *array : local;
  if (array != nullptr) {
    require(target.size() >= program.num_cells(), "evaluate: array too small");
    target.reset_values();
  }
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    target.preload(program.pi_cells()[i], pi_values[i]);
  }
  PlimController controller(target);
  controller.run(program);
  std::vector<std::uint64_t> result;
  result.reserve(program.po_cells().size());
  for (const auto cell : program.po_cells()) {
    result.push_back(target.read(cell));
  }
  return result;
}

bool program_matches_mig(const Program& program, const mig::Mig& mig,
                         unsigned rounds, std::uint64_t seed) {
  if (program.pi_cells().size() != mig.num_pis() ||
      program.po_cells().size() != mig.num_pos()) {
    return false;
  }
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> pi_values(mig.num_pis());
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& word : pi_values) {
      word = rng();
    }
    if (evaluate(program, pi_values) != mig::simulate(mig, pi_values)) {
      return false;
    }
  }
  return true;
}

}  // namespace rlim::plim
