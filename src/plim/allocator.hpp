#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plim/instruction.hpp"

namespace rlim::plim {

/// How the compiler picks a cell from the free set when it requests one.
enum class AllocPolicy {
  Lifo,        ///< naive: most recently freed first (maximizes reuse locality — and wear)
  Fifo,        ///< oldest freed first
  RoundRobin,  ///< cycle through free cells by index
  MinWrite,    ///< the paper's *minimum write count strategy*
};

[[nodiscard]] std::string to_string(AllocPolicy policy);

/// Compile-time RRAM cell allocator with write accounting.
///
/// Implements both direct endurance-management techniques of the paper:
///  * **minimum write count strategy** — `AllocPolicy::MinWrite` returns the
///    free cell with the smallest write count;
///  * **maximum write count strategy** — with `max_writes` set, a cell whose
///    write count reaches the cap is *quarantined*: it is never returned to
///    the free set and `writable()` rejects it as an in-place destination,
///    forcing the compiler to allocate fresh cells (area/latency cost).
///
/// Write counts are maintained by the compiler calling `note_write` once per
/// emitted instruction (writes are statically known — every RM3 writes its
/// destination exactly once).
class CellAllocator {
public:
  struct Options {
    AllocPolicy policy = AllocPolicy::Lifo;
    std::optional<std::uint64_t> max_writes;  ///< paper's cap W (>= 3 required)
  };

  explicit CellAllocator(Options options);
  ~CellAllocator();
  CellAllocator(CellAllocator&&) noexcept;
  CellAllocator& operator=(CellAllocator&&) noexcept;
  CellAllocator(const CellAllocator&) = delete;
  CellAllocator& operator=(const CellAllocator&) = delete;

  /// Registers a pre-existing live cell (a primary input resident in the
  /// array). It starts in-use with zero writes.
  Cell add_live_cell();

  /// Returns a cell that can absorb at least `headroom` further writes,
  /// taking from the free set per policy or growing the array. `headroom`
  /// covers multi-write idioms (init + copy + destination = up to 3).
  Cell acquire(std::uint64_t headroom = 1);

  /// Returns a dead cell to the free set (quarantined cells are retired
  /// instead and never come back).
  void release(Cell cell);

  /// Accounts one write; quarantines the cell when it reaches the cap.
  void note_write(Cell cell);

  /// True when the cell can absorb one more write under the cap.
  [[nodiscard]] bool writable(Cell cell) const;

  [[nodiscard]] std::uint64_t write_count(Cell cell) const;
  /// Snapshot over the full cell space (the paper's write distribution).
  [[nodiscard]] std::vector<std::uint64_t> write_counts() const;

  /// Total cells ever allocated — the paper's #R.
  [[nodiscard]] Cell num_cells() const;
  [[nodiscard]] std::size_t free_count() const;
  [[nodiscard]] std::size_t quarantined_count() const;

private:
  class FreeList;

  [[nodiscard]] bool has_headroom(Cell cell, std::uint64_t headroom) const;

  Options options_;
  std::vector<std::uint64_t> writes_;
  std::vector<bool> quarantined_;
  std::unique_ptr<FreeList> free_list_;
};

}  // namespace rlim::plim
