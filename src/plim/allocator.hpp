#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "plim/instruction.hpp"
#include "util/registry.hpp"
#include "util/spec.hpp"

namespace rlim::plim {

/// How the compiler picks a cell from the free set when it requests one.
/// The enum covers the closed set of unparameterized disciplines;
/// parameterized policies register into allocators() instead.
enum class AllocPolicy {
  Lifo,        ///< naive: most recently freed first (maximizes reuse locality — and wear)
  Fifo,        ///< oldest freed first
  RoundRobin,  ///< cycle through free cells by index
  MinWrite,    ///< the paper's *minimum write count strategy*
};

[[nodiscard]] std::string to_string(AllocPolicy policy);
/// Inverse of to_string over every enumerator (throws rlim::Error).
[[nodiscard]] AllocPolicy parse_alloc_policy(std::string_view name);

/// Free-set discipline: orders dead cells for reuse. `push` receives the
/// cell's write count at release time; counts cannot change while a cell is
/// free, so ordering decisions made at push time stay valid. One instance
/// per compilation (factory-constructed); implementations may keep state.
class Allocator {
public:
  virtual ~Allocator() = default;

  virtual void push(Cell cell, std::uint64_t writes) = 0;
  virtual std::optional<Cell> pop() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
};

using AllocatorPtr = std::unique_ptr<Allocator>;
using AllocatorFactory = std::function<AllocatorPtr(const util::Params&)>;

/// Registry of allocation policies. Built-ins: `lifo`, `fifo`, `round_robin`,
/// `min_write` (the enum-backed disciplines) and `start_gap` (parameter
/// `interval`, default 16): a Start-Gap-style rotating allocator — free
/// cells are served from a roving start pointer that advances on a fixed
/// allocation schedule (core/startgap.hpp models the memory-level original),
/// rotating reuse pressure across the array instead of following the last
/// allocation the way round_robin does.
[[nodiscard]] util::Registry<AllocatorFactory>& allocators();

/// Normalizes `spec` against allocators() and constructs the policy object.
[[nodiscard]] AllocatorPtr make_allocator(const util::PolicySpec& spec);
/// The enum-backed built-ins, by value.
[[nodiscard]] AllocatorPtr make_allocator(AllocPolicy policy);
/// Registry key of an enum-backed policy ("lifo", "fifo", "round_robin",
/// "min_write").
[[nodiscard]] std::string_view allocation_key(AllocPolicy policy);

/// Compile-time RRAM cell allocator with write accounting.
///
/// Implements both direct endurance-management techniques of the paper:
///  * **minimum write count strategy** — the `min_write` policy returns the
///    free cell with the smallest write count;
///  * **maximum write count strategy** — with `max_writes` set, a cell whose
///    write count reaches the cap is *quarantined*: it is never returned to
///    the free set and `writable()` rejects it as an in-place destination,
///    forcing the compiler to allocate fresh cells (area/latency cost).
///
/// The free-set ordering itself is delegated to a policy object (Allocator);
/// write counts are maintained by the compiler calling `note_write` once per
/// emitted instruction (writes are statically known — every RM3 writes its
/// destination exactly once).
class CellAllocator {
public:
  struct Options {
    AllocPolicy policy = AllocPolicy::Lifo;
    std::optional<std::uint64_t> max_writes;  ///< paper's cap W (>= 3 enforced)
  };

  /// Enum-backed shorthand over the policy-object constructor.
  explicit CellAllocator(Options options);
  /// Factory-constructed policy. `max_writes` below 3 is rejected with a
  /// clear error: the copy idioms need up to 3 writes on one fresh cell, so
  /// smaller caps make compilation infeasible.
  CellAllocator(AllocatorPtr policy, std::optional<std::uint64_t> max_writes);
  ~CellAllocator();
  CellAllocator(CellAllocator&&) noexcept;
  CellAllocator& operator=(CellAllocator&&) noexcept;
  CellAllocator(const CellAllocator&) = delete;
  CellAllocator& operator=(const CellAllocator&) = delete;

  /// Registers a pre-existing live cell (a primary input resident in the
  /// array). It starts in-use with zero writes.
  Cell add_live_cell();

  /// Returns a cell that can absorb at least `headroom` further writes,
  /// taking from the free set per policy or growing the array. `headroom`
  /// covers multi-write idioms (init + copy + destination = up to 3).
  Cell acquire(std::uint64_t headroom = 1);

  /// Returns a dead cell to the free set (quarantined cells are retired
  /// instead and never come back).
  void release(Cell cell);

  /// Accounts one write; quarantines the cell when it reaches the cap.
  void note_write(Cell cell);

  /// True when the cell can absorb one more write under the cap.
  [[nodiscard]] bool writable(Cell cell) const;

  [[nodiscard]] std::uint64_t write_count(Cell cell) const;
  /// Snapshot over the full cell space (the paper's write distribution).
  [[nodiscard]] std::vector<std::uint64_t> write_counts() const;

  /// Total cells ever allocated — the paper's #R.
  [[nodiscard]] Cell num_cells() const;
  [[nodiscard]] std::size_t free_count() const;
  [[nodiscard]] std::size_t quarantined_count() const;

private:
  [[nodiscard]] bool has_headroom(Cell cell, std::uint64_t headroom) const;

  std::optional<std::uint64_t> max_writes_;
  std::vector<std::uint64_t> writes_;
  std::vector<bool> quarantined_;
  AllocatorPtr free_list_;
};

}  // namespace rlim::plim
