#pragma once

#include <cstdint>

namespace rlim::plim {

/// Index of an RRAM cell in the crossbar array.
using Cell = std::uint32_t;

/// An RM3 source operand: either a constant (0/1) applied directly to the
/// crossbar line, or a value read from a cell by the PLiM controller [11].
class Operand {
public:
  constexpr Operand() = default;

  static constexpr Operand constant(bool value) {
    return Operand(kConstantFlag | (value ? 1u : 0u));
  }
  static constexpr Operand cell(Cell index) { return Operand(index); }

  [[nodiscard]] constexpr bool is_constant() const {
    return (data_ & kConstantFlag) != 0;
  }
  [[nodiscard]] constexpr bool constant_value() const { return (data_ & 1u) != 0; }
  [[nodiscard]] constexpr Cell cell_index() const { return data_; }

  /// The operand as its single storage word — the store's bulk-section
  /// representation. `is_canonical()` distinguishes the two words that
  /// encode real operands from raw()s a damaged entry could carry: a
  /// constant must have no stray bits, a cell index must stay below the
  /// constant flag.
  [[nodiscard]] constexpr std::uint32_t raw() const { return data_; }
  [[nodiscard]] static constexpr Operand from_raw(std::uint32_t data) {
    return Operand(data);
  }
  [[nodiscard]] constexpr bool is_canonical() const {
    return !is_constant() || (data_ & ~(kConstantFlag | 1u)) == 0;
  }

  friend constexpr bool operator==(Operand, Operand) = default;

private:
  explicit constexpr Operand(std::uint32_t data) : data_(data) {}

  static constexpr std::uint32_t kConstantFlag = 0x8000'0000u;
  std::uint32_t data_ = kConstantFlag;  // defaults to constant 0
};

/// The single PLiM instruction: 3-input resistive majority
///
///   RM3(A, B, Z):  Z ← ⟨A B̄ Z⟩ = maj(A, NOT B, Z)
///
/// A and B are read (or constants); the destination cell Z contributes its
/// old value and is overwritten — exactly one cell write per instruction.
struct Instruction {
  Operand a;
  Operand b;
  Cell z = 0;

  friend constexpr bool operator==(const Instruction&, const Instruction&) = default;
};

/// RM3(v, v̄, Z) = ⟨v v Z⟩ = v — writes constant `value` into Z.
constexpr Instruction make_write_const(bool value, Cell z) {
  return Instruction{Operand::constant(value), Operand::constant(!value), z};
}

/// Step 2 of the copy idiom (Z must already hold 0):
/// RM3(src, 0, Z) = ⟨src 1 0⟩ = src.
constexpr Instruction make_copy_step(Cell src, Cell z) {
  return Instruction{Operand::cell(src), Operand::constant(false), z};
}

/// Step 2 of the complement-copy idiom (Z must already hold 1):
/// RM3(0, src, Z) = ⟨0 src̄ 1⟩ = src̄.
constexpr Instruction make_complement_copy_step(Cell src, Cell z) {
  return Instruction{Operand::constant(false), Operand::cell(src), z};
}

}  // namespace rlim::plim
