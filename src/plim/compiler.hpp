#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "mig/mig.hpp"
#include "plim/allocator.hpp"
#include "plim/program.hpp"
#include "plim/selector.hpp"
#include "util/stats.hpp"

namespace rlim::plim {

/// Compiler policies as factories: compile() constructs one fresh Selector /
/// Allocator pair per compilation, so stateful policy objects never leak
/// state across graphs. Built from enums (the shorthand constructor), from
/// registry specs (core::PipelineConfig), or from any user-supplied factory.
struct CompilerOptions {
  std::function<SelectorPtr()> selector = [] {
    return make_selector(SelectionPolicy::Plim21);
  };
  std::function<AllocatorPtr()> allocator = [] {
    return make_allocator(AllocPolicy::Lifo);
  };
  /// Maximum write count strategy (paper Table III caps: 10/20/50/100).
  std::optional<std::uint64_t> max_writes;

  CompilerOptions() = default;
  /// Enum-backed shorthand for the built-in policies.
  CompilerOptions(SelectionPolicy selection, AllocPolicy allocation,
                  std::optional<std::uint64_t> max_writes = std::nullopt);
};

/// Outcome of compiling one MIG.
struct CompileResult {
  Program program;
  Cell num_cells = 0;                    ///< the paper's #R
  util::WriteStats write_stats;          ///< min/max/STDEV of per-cell writes
  std::size_t gate_instructions = 0;     ///< one closing RM3 per compiled gate
  std::size_t overhead_instructions = 0; ///< const loads, copies, PO materialization
  std::size_t quarantined_cells = 0;     ///< retired by the max-write strategy

  [[nodiscard]] std::size_t num_instructions() const { return program.size(); }
};

/// MIG → RM3 compiler for the PLiM architecture, re-implemented from [21]
/// §III with the endurance extensions of this paper.
///
/// Node translation assigns the three fanins of ⟨f₀f₁f₂⟩ to the RM3 roles
/// (A, B, Z) at minimum cost over all six permutations:
///   * complemented fanin → B is free (RM3 inverts B); A or Z costs a
///     2-instruction complement copy into one extra cell;
///   * plain fanin → A is free; Z is free only when this node is the
///     fanin's last use *and* the cell passes the write cap, else a
///     2-instruction copy into one extra cell;
///   * constant fanin → A/B are free; Z costs one constant-write into a
///     fresh cell.
/// This reproduces the "two additional instructions and one RRAM" cost of
/// every fanout/complement conflict described in the paper.
class PlimCompiler {
public:
  explicit PlimCompiler(CompilerOptions options = {});

  /// Compiles the PO-reachable logic of `mig`. PIs are bound to cells in PI
  /// order and assumed pre-resident (zero program writes); every PO ends in
  /// a plain cell (complemented/constant POs are materialized).
  [[nodiscard]] CompileResult compile(const mig::Mig& mig) const;

  [[nodiscard]] const CompilerOptions& options() const { return options_; }

private:
  CompilerOptions options_;
};

}  // namespace rlim::plim
