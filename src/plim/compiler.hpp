#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mig/mig.hpp"
#include "plim/allocator.hpp"
#include "plim/program.hpp"
#include "util/stats.hpp"

namespace rlim::plim {

/// Node selection policy — the order in which computable MIG nodes are
/// translated to RM3 instructions.
enum class SelectionPolicy {
  /// No selection: nodes are compiled in construction (topological index)
  /// order. The paper's "naive" configurations use this.
  NaiveOrder,
  /// [21]: maximize the number of RRAMs released by the node; ties broken by
  /// the smaller fanout level index. Greedy for area.
  Plim21,
  /// Paper Algorithm 3: *smallest fanout level index first* (shortest
  /// storage duration ⇒ cells cycle through the free list with similar
  /// frequency); ties broken by the larger number of releasing RRAMs.
  EnduranceAware,
};

[[nodiscard]] std::string to_string(SelectionPolicy policy);

struct CompilerOptions {
  SelectionPolicy selection = SelectionPolicy::Plim21;
  AllocPolicy allocation = AllocPolicy::Lifo;
  /// Maximum write count strategy (paper Table III caps: 10/20/50/100).
  std::optional<std::uint64_t> max_writes;
};

/// Outcome of compiling one MIG.
struct CompileResult {
  Program program;
  Cell num_cells = 0;                    ///< the paper's #R
  util::WriteStats write_stats;          ///< min/max/STDEV of per-cell writes
  std::size_t gate_instructions = 0;     ///< one closing RM3 per compiled gate
  std::size_t overhead_instructions = 0; ///< const loads, copies, PO materialization
  std::size_t quarantined_cells = 0;     ///< retired by the max-write strategy

  [[nodiscard]] std::size_t num_instructions() const { return program.size(); }
};

/// MIG → RM3 compiler for the PLiM architecture, re-implemented from [21]
/// §III with the endurance extensions of this paper.
///
/// Node translation assigns the three fanins of ⟨f₀f₁f₂⟩ to the RM3 roles
/// (A, B, Z) at minimum cost over all six permutations:
///   * complemented fanin → B is free (RM3 inverts B); A or Z costs a
///     2-instruction complement copy into one extra cell;
///   * plain fanin → A is free; Z is free only when this node is the
///     fanin's last use *and* the cell passes the write cap, else a
///     2-instruction copy into one extra cell;
///   * constant fanin → A/B are free; Z costs one constant-write into a
///     fresh cell.
/// This reproduces the "two additional instructions and one RRAM" cost of
/// every fanout/complement conflict described in the paper.
class PlimCompiler {
public:
  explicit PlimCompiler(CompilerOptions options = {});

  /// Compiles the PO-reachable logic of `mig`. PIs are bound to cells in PI
  /// order and assumed pre-resident (zero program writes); every PO ends in
  /// a plain cell (complemented/constant POs are materialized).
  [[nodiscard]] CompileResult compile(const mig::Mig& mig) const;

  [[nodiscard]] const CompilerOptions& options() const { return options_; }

private:
  CompilerOptions options_;
};

}  // namespace rlim::plim
