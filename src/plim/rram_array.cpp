#include "plim/rram_array.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::plim {

RramArray::RramArray(Cell num_cells, RramConfig config)
    : cells_(num_cells), config_(config) {
  require(config_.endurance_sigma >= 0.0,
          "RramArray: endurance_sigma must be non-negative");
  if (config_.endurance_limit == 0) {
    return;
  }
  util::Xoshiro256 rng(config_.variation_seed);
  for (auto& state : cells_) {
    if (config_.endurance_sigma == 0.0) {
      state.limit = config_.endurance_limit;
    } else {
      const double factor = std::exp(config_.endurance_sigma * util::normal(rng));
      state.limit = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(config_.endurance_limit) * factor));
    }
  }
}

void RramArray::check(Cell cell) const {
  require(cell < cells_.size(), "RramArray: cell index out of range");
}

std::uint64_t RramArray::read(Cell cell) const {
  check(cell);
  return cells_[cell].value;
}

void RramArray::write(Cell cell, std::uint64_t value) {
  check(cell);
  auto& state = cells_[cell];
  if (hard_failed(state)) {
    return;  // stuck at last value; wear counter also saturates
  }
  state.value = value;
  ++state.writes;
}

void RramArray::preload(Cell cell, std::uint64_t value) {
  check(cell);
  auto& state = cells_[cell];
  if (hard_failed(state)) {
    return;  // stuck cells ignore uncounted writes too
  }
  state.value = value;
}

std::uint64_t RramArray::write_count(Cell cell) const {
  check(cell);
  return cells_[cell].writes;
}

std::vector<std::uint64_t> RramArray::write_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(cells_.size());
  for (const auto& state : cells_) {
    counts.push_back(state.writes);
  }
  return counts;
}

bool RramArray::is_failed(Cell cell) const {
  check(cell);
  return hard_failed(cells_[cell]);
}

std::optional<std::uint64_t> RramArray::endurance_of(Cell cell) const {
  check(cell);
  if (cells_[cell].limit == 0) {
    return std::nullopt;
  }
  return cells_[cell].limit;
}

std::size_t RramArray::failed_cell_count() const {
  std::size_t failed = 0;
  for (const auto& state : cells_) {
    if (hard_failed(state)) {
      ++failed;
    }
  }
  return failed;
}

void RramArray::reset_values() {
  for (auto& state : cells_) {
    if (hard_failed(state)) {
      continue;  // a stuck cell cannot be externally rewritten either
    }
    state.value = 0;
  }
}

util::WriteStats RramArray::stats() const { return util::compute_stats(write_counts()); }

}  // namespace rlim::plim
