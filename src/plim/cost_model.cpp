#include "plim/cost_model.hpp"

namespace rlim::plim {

CostReport estimate_cost(const Program& program, const CostParams& params) {
  CostReport report;
  report.cycles = program.size();
  report.cell_writes = program.size();
  for (const auto& instruction : program.instructions()) {
    if (!instruction.a.is_constant()) {
      ++report.cell_reads;
    }
    if (!instruction.b.is_constant()) {
      ++report.cell_reads;
    }
  }
  report.energy_pj =
      static_cast<double>(report.cell_writes) * params.write_energy_pj +
      static_cast<double>(report.cell_reads) * params.read_energy_pj;
  report.latency_ns = static_cast<double>(report.cycles) * params.cycle_ns;
  return report;
}

}  // namespace rlim::plim
