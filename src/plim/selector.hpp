#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/registry.hpp"
#include "util/spec.hpp"

namespace rlim::plim {

/// Node selection policy — the order in which computable MIG nodes are
/// translated to RM3 instructions. The enum covers the paper's three
/// orderings; parameterized policies register into selectors() instead.
enum class SelectionPolicy {
  /// No selection: nodes are compiled in construction (topological index)
  /// order. The paper's "naive" configurations use this.
  NaiveOrder,
  /// [21]: maximize the number of RRAMs released by the node; ties broken by
  /// the smaller fanout level index. Greedy for area.
  Plim21,
  /// Paper Algorithm 3: *smallest fanout level index first* (shortest
  /// storage duration ⇒ cells cycle through the free list with similar
  /// frequency); ties broken by the larger number of releasing RRAMs.
  EnduranceAware,
};

[[nodiscard]] std::string to_string(SelectionPolicy policy);
/// Inverse of to_string over every enumerator (throws rlim::Error).
[[nodiscard]] SelectionPolicy parse_selection_policy(std::string_view name);

/// Context the compiler exposes when ranking a candidate node.
struct CandidateInfo {
  std::uint32_t gate = 0;          ///< topological node index
  std::uint32_t releasing = 0;     ///< RRAMs freed by computing it (0..3)
  std::uint32_t fanout_level = 0;  ///< farthest consumer's level index
};

/// Priority returned by a Selector: the candidate with the smallest key
/// (lexicographic) compiles next. The compiler appends the node index as a
/// final tiebreaker, so equal keys still resolve deterministically.
using SelectionKey = std::array<std::uint32_t, 3>;

/// Node-selection policy object. The compiler constructs one fresh instance
/// per compilation (factory-constructed), so implementations may keep
/// arbitrary state across priority() calls.
class Selector {
public:
  virtual ~Selector() = default;

  [[nodiscard]] virtual SelectionKey priority(const CandidateInfo& info) = 0;

  /// Called once after `info` has been translated. Return true to make the
  /// compiler recompute every pending candidate's key — for stateful
  /// policies whose ranking just shifted globally (see WearQuotaSelector).
  virtual bool on_compiled(const CandidateInfo& info) {
    (void)info;
    return false;
  }
};

using SelectorPtr = std::unique_ptr<Selector>;
using SelectorFactory = std::function<SelectorPtr(const util::Params&)>;

/// Registry of node-selection policies. Built-ins: `naive`, `plim21`,
/// `endurance` (the enum-backed orderings) and `wear_quota` (parameter
/// `quota`, default 8): endurance-aware ordering under a per-level quota —
/// a fanout level that has charged `quota` compiled nodes is demoted behind
/// every fresher level, rotating selection pressure across levels instead of
/// draining one level's long-lived cells at a time.
[[nodiscard]] util::Registry<SelectorFactory>& selectors();

/// Normalizes `spec` against selectors() and constructs the policy object.
[[nodiscard]] SelectorPtr make_selector(const util::PolicySpec& spec);
/// The enum-backed built-ins, by value.
[[nodiscard]] SelectorPtr make_selector(SelectionPolicy policy);
/// Registry key of an enum-backed policy ("naive", "plim21", "endurance").
[[nodiscard]] std::string_view selection_key(SelectionPolicy policy);

}  // namespace rlim::plim
