#include "plim/selector.hpp"

#include <vector>

#include "util/enum_names.hpp"
#include "util/error.hpp"

namespace rlim::plim {

namespace {

constexpr util::EnumTable kSelectionPolicyNames{
    std::string_view("selection policy"),
    std::array{
        util::EnumName<SelectionPolicy>{SelectionPolicy::NaiveOrder,
                                        "naive-order"},
        util::EnumName<SelectionPolicy>{SelectionPolicy::Plim21, "plim21"},
        util::EnumName<SelectionPolicy>{SelectionPolicy::EnduranceAware,
                                        "endurance-aware"},
        // Registry-key spellings accepted as parse aliases.
        util::EnumName<SelectionPolicy>{SelectionPolicy::NaiveOrder, "naive"},
        util::EnumName<SelectionPolicy>{SelectionPolicy::EnduranceAware,
                                        "endurance"},
    }};

/// Construction order — the paper's naive configurations.
class NaiveOrderSelector final : public Selector {
public:
  SelectionKey priority(const CandidateInfo& info) override {
    return {info.gate, 0, 0};
  }
};

/// [21]: most releasing RRAMs first (stored inverted so smaller = better),
/// then smallest fanout level index.
class Plim21Selector final : public Selector {
public:
  SelectionKey priority(const CandidateInfo& info) override {
    return {3u - info.releasing, info.fanout_level, 0};
  }
};

/// Paper Algorithm 3: smallest fanout level index first, then most
/// releasing RRAMs.
class EnduranceAwareSelector final : public Selector {
public:
  SelectionKey priority(const CandidateInfo& info) override {
    return {info.fanout_level, 3u - info.releasing, 0};
  }
};

/// Endurance-aware ordering under a per-level wear quota: every compiled
/// node charges its fanout level; a level that has consumed a full quota
/// moves into the next "epoch" and sorts behind every level still in an
/// earlier one. The effect is a rotation across fanout levels (bounded
/// bursts per level) instead of Algorithm 3's strict level ascent.
class WearQuotaSelector final : public Selector {
public:
  explicit WearQuotaSelector(std::uint64_t quota) : quota_(quota) {}

  SelectionKey priority(const CandidateInfo& info) override {
    return {epoch(info.fanout_level), info.fanout_level, 3u - info.releasing};
  }

  bool on_compiled(const CandidateInfo& info) override {
    auto& charge = charge_at(info.fanout_level);
    ++charge;
    // Crossing an epoch boundary reorders the whole candidate set — ask the
    // compiler for a global key refresh so the rotation stays exact.
    return charge % quota_ == 0;
  }

private:
  [[nodiscard]] std::uint32_t epoch(std::uint32_t level) {
    return static_cast<std::uint32_t>(charge_at(level) / quota_);
  }

  std::uint64_t& charge_at(std::uint32_t level) {
    if (level >= charge_.size()) {
      charge_.resize(level + 1, 0);
    }
    return charge_[level];
  }

  std::uint64_t quota_;
  std::vector<std::uint64_t> charge_;
};

}  // namespace

std::string to_string(SelectionPolicy policy) {
  return std::string(kSelectionPolicyNames.name(policy));
}

SelectionPolicy parse_selection_policy(std::string_view name) {
  return kSelectionPolicyNames.parse(name);
}

util::Registry<SelectorFactory>& selectors() {
  static auto* registry = [] {
    auto* reg = new util::Registry<SelectorFactory>("selection policy");
    reg->add({"naive", "construction (topological index) order", {}},
             [](const util::Params&) -> SelectorPtr {
               return std::make_unique<NaiveOrderSelector>();
             });
    reg->add({"plim21",
              "[21]: most releasing RRAMs first, then smallest fanout level",
              {}},
             [](const util::Params&) -> SelectorPtr {
               return std::make_unique<Plim21Selector>();
             });
    reg->add({"endurance",
              "paper Algorithm 3: smallest fanout level first, then most "
              "releasing RRAMs",
              {}},
             [](const util::Params&) -> SelectorPtr {
               return std::make_unique<EnduranceAwareSelector>();
             });
    reg->add({"wear_quota",
              "endurance ordering with a per-level compile quota — rotates "
              "selection pressure across fanout levels",
              {{"quota", "8", "nodes a level may charge before demotion"}}},
             [](const util::Params& params) -> SelectorPtr {
               const auto quota = util::param_u64(params, "quota");
               require(quota >= 1,
                       "selection policy 'wear_quota': quota must be >= 1");
               return std::make_unique<WearQuotaSelector>(quota);
             });
    return reg;
  }();
  return *registry;
}

SelectorPtr make_selector(const util::PolicySpec& spec) {
  return selectors().make(spec);
}

SelectorPtr make_selector(SelectionPolicy policy) {
  return make_selector(util::PolicySpec{std::string(selection_key(policy)), {}});
}

std::string_view selection_key(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::NaiveOrder: return "naive";
    case SelectionPolicy::Plim21: return "plim21";
    case SelectionPolicy::EnduranceAware: return "endurance";
  }
  throw Error("selection_key: unknown policy");
}

}  // namespace rlim::plim
