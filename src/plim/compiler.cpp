#include "plim/compiler.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "util/error.hpp"

namespace rlim::plim {

CompilerOptions::CompilerOptions(SelectionPolicy selection,
                                 AllocPolicy allocation,
                                 std::optional<std::uint64_t> max_writes)
    : selector([selection] { return make_selector(selection); }),
      allocator([allocation] { return make_allocator(allocation); }),
      max_writes(max_writes) {}

namespace {

using mig::Mig;
using mig::Signal;

constexpr std::uint32_t kInfLevel = 0xffffffffu;

/// One in-flight compilation. Owns all mutable state; `run()` drives the
/// select → translate → release loop of [21] §III with the endurance hooks.
class Compilation {
public:
  Compilation(const Mig& graph, const CompilerOptions& options)
      : mig_(graph),
        selector_(options.selector()),
        allocator_(options.allocator(), options.max_writes),
        reachable_(graph.reachable_from_pos()),
        use_count_(graph.num_nodes(), 0),
        cell_of_(graph.num_nodes()),
        parents_(graph.num_nodes()),
        pending_(graph.num_nodes(), 0),
        fanout_level_(graph.num_nodes(), 0),
        key_of_(graph.num_nodes()) {
    require(selector_ != nullptr, "PlimCompiler: selector factory returned null");
  }

  CompileResult run() {
    analyze();
    bind_inputs();
    seed_candidates();
    while (!candidates_.empty()) {
      const auto gate = pop_candidate();
      // Snapshot before translation: compute_gate consumes the fanins'
      // use counts, which would skew info.releasing for the notification.
      const auto info = candidate_info(gate);
      compute_gate(gate);
      if (selector_->on_compiled(info)) {
        refresh_all_candidates();
      }
    }
    materialize_outputs();
    return finish();
  }

private:
  // ---- static analysis ------------------------------------------------------

  void analyze() {
    const auto levels = mig_.levels();
    const auto graph_depth = mig_.depth();
    for (std::uint32_t gate = mig_.first_gate(); gate < mig_.num_nodes(); ++gate) {
      if (!reachable_[gate]) {
        continue;
      }
      for (const auto fanin : mig_.fanins(gate)) {
        if (fanin.is_constant()) {
          continue;
        }
        ++use_count_[fanin.index()];
        parents_[fanin.index()].push_back(gate);
        fanout_level_[fanin.index()] =
            std::max(fanout_level_[fanin.index()], levels[gate]);
        if (mig_.is_gate(fanin.index())) {
          ++pending_[gate];
        }
      }
    }
    for (const auto po : mig_.pos()) {
      if (po.is_constant()) {
        continue;
      }
      ++use_count_[po.index()];
      // PO-driven cells stay blocked until the program ends — the farthest
      // possible fanout level (paper Fig. 2: "blocked RRAMs").
      fanout_level_[po.index()] = graph_depth + 1;
    }
    // pending_ counted fanin edges; convert to distinct gate-fanin count.
    // (Fanins of a gate are distinct nodes, so the edge count is already the
    // node count — nothing to do; kept as an invariant note.)
  }

  void bind_inputs() {
    for (std::uint32_t pi = 1; pi <= mig_.num_pis(); ++pi) {
      const auto cell = allocator_.add_live_cell();
      program_.bind_pi(cell);
      cell_of_[pi] = cell;
    }
    // Inputs whose data is never consumed are dead on arrival: their cells
    // join the free set immediately (in-memory operands are consumable).
    for (std::uint32_t pi = 1; pi <= mig_.num_pis(); ++pi) {
      if (use_count_[pi] == 0) {
        allocator_.release(*cell_of_[pi]);
        cell_of_[pi].reset();
      }
    }
  }

  // ---- candidate management -------------------------------------------------

  /// A Selector's 3-component priority plus the node index as the final
  /// tiebreaker — equal priorities resolve by construction order.
  using Key = std::array<std::uint32_t, 4>;

  /// RRAMs released by computing `gate`: distinct non-constant fanins whose
  /// value dies with this use (the in-place destination counts — its cell is
  /// recycled into the result).
  [[nodiscard]] std::uint32_t releasing_count(std::uint32_t gate) const {
    std::uint32_t count = 0;
    for (const auto fanin : mig_.fanins(gate)) {
      if (!fanin.is_constant() && use_count_[fanin.index()] == 1) {
        ++count;
      }
    }
    return count;
  }

  [[nodiscard]] CandidateInfo candidate_info(std::uint32_t gate) const {
    return {gate, releasing_count(gate), fanout_level_[gate]};
  }

  [[nodiscard]] Key make_key(std::uint32_t gate) {
    const auto priority = selector_->priority(candidate_info(gate));
    return {priority[0], priority[1], priority[2], gate};
  }

  void seed_candidates() {
    for (std::uint32_t gate = mig_.first_gate(); gate < mig_.num_nodes(); ++gate) {
      if (reachable_[gate] && pending_[gate] == 0) {
        insert_candidate(gate);
      }
    }
  }

  void insert_candidate(std::uint32_t gate) {
    const auto key = make_key(gate);
    candidates_.insert(key);
    key_of_[gate] = key;
  }

  void refresh_candidate(std::uint32_t gate) {
    if (!key_of_[gate]) {
      return;
    }
    candidates_.erase(*key_of_[gate]);
    insert_candidate(gate);
  }

  /// Recomputes every pending candidate's key — requested by stateful
  /// selectors whose ranking shifted globally.
  void refresh_all_candidates() {
    candidates_.clear();
    for (std::uint32_t gate = mig_.first_gate(); gate < mig_.num_nodes();
         ++gate) {
      if (key_of_[gate]) {
        insert_candidate(gate);
      }
    }
  }

  std::uint32_t pop_candidate() {
    assert(!candidates_.empty());
    const auto key = *candidates_.begin();
    candidates_.erase(candidates_.begin());
    const auto gate = key[3];
    key_of_[gate].reset();
    return gate;
  }

  // ---- emission helpers -----------------------------------------------------

  void emit(const Instruction& instruction, bool is_gate_closer) {
    program_.append(instruction);
    allocator_.note_write(instruction.z);
    if (is_gate_closer) {
      ++gate_instructions_;
    } else {
      ++overhead_instructions_;
    }
  }

  [[nodiscard]] Cell cell_of(std::uint32_t node) const {
    assert(cell_of_[node] && "value of node is not resident");
    return *cell_of_[node];
  }

  /// Two-instruction idiom: fresh cell ← ¬value(node).
  /// `as_destination` reserves a third write for the closing RM3.
  Cell make_complement_copy(std::uint32_t node, bool as_destination) {
    const auto temp = allocator_.acquire(as_destination ? 3 : 2);
    emit(make_write_const(true, temp), false);
    emit(make_complement_copy_step(cell_of(node), temp), false);
    return temp;
  }

  /// Two-instruction idiom: fresh cell ← value(node) (always a destination).
  Cell make_copy(std::uint32_t node) {
    const auto temp = allocator_.acquire(3);
    emit(make_write_const(false, temp), false);
    emit(make_copy_step(cell_of(node), temp), false);
    return temp;
  }

  // ---- node translation ([21] with the endurance cost hooks) -----------------

  struct RoleCost {
    std::uint32_t instructions = 0;
    std::uint32_t cells = 0;
  };

  [[nodiscard]] RoleCost cost_as_a(Signal s) const {
    if (s.is_constant() || !s.is_complemented()) {
      return {};
    }
    return {2, 1};  // complement copy
  }

  [[nodiscard]] RoleCost cost_as_b(Signal s) const {
    if (s.is_constant() || s.is_complemented()) {
      return {};  // RM3 inverts B: a complemented fanin rides for free
    }
    return {2, 1};  // complement copy so that ¬B yields the plain literal
  }

  [[nodiscard]] bool in_place_destination_ok(Signal s) const {
    if (s.is_constant() || s.is_complemented()) {
      return false;
    }
    const auto node = s.index();
    // Last use of the value, and the cell still has write budget (the
    // maximum write count strategy rejects saturated cells here).
    return use_count_[node] == 1 && cell_of_[node] &&
           allocator_.writable(*cell_of_[node]);
  }

  [[nodiscard]] RoleCost cost_as_z(Signal s) const {
    if (s.is_constant()) {
      return {1, 1};  // write the constant into a fresh cell
    }
    if (s.is_complemented()) {
      return {2, 1};  // complement copy becomes the destination
    }
    if (in_place_destination_ok(s)) {
      return {};
    }
    return {2, 1};  // plain copy preserves the multi-fanout value
  }

  void compute_gate(std::uint32_t gate) {
    const auto& fanin = mig_.fanins(gate);

    // Choose the cheapest (instructions, cells) role assignment.
    static constexpr std::array<std::array<int, 3>, 6> kPermutations{{
        {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}};
    int best = -1;
    std::uint64_t best_cost = ~0ULL;
    for (int p = 0; p < 6; ++p) {
      const auto [ai, bi, zi] = std::tuple(kPermutations[p][0], kPermutations[p][1],
                                           kPermutations[p][2]);
      const auto ca = cost_as_a(fanin[ai]);
      const auto cb = cost_as_b(fanin[bi]);
      const auto cz = cost_as_z(fanin[zi]);
      const std::uint64_t cost =
          (static_cast<std::uint64_t>(ca.instructions + cb.instructions +
                                      cz.instructions)
           << 32) |
          ((ca.cells + cb.cells + cz.cells) << 8) | static_cast<std::uint32_t>(p);
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
      }
    }
    const auto [ai, bi, zi] =
        std::tuple(kPermutations[best][0], kPermutations[best][1],
                   kPermutations[best][2]);

    std::vector<Cell> temps;

    // Operand A — read as-is.
    Operand op_a;
    {
      const auto s = fanin[ai];
      if (s.is_constant()) {
        op_a = Operand::constant(s.constant_value());
      } else if (!s.is_complemented()) {
        op_a = Operand::cell(cell_of(s.index()));
      } else {
        const auto temp = make_complement_copy(s.index(), false);
        temps.push_back(temp);
        op_a = Operand::cell(temp);
      }
    }

    // Operand B — RM3 applies ¬B.
    Operand op_b;
    {
      const auto s = fanin[bi];
      if (s.is_constant()) {
        op_b = Operand::constant(!s.constant_value());
      } else if (s.is_complemented()) {
        op_b = Operand::cell(cell_of(s.index()));
      } else {
        const auto temp = make_complement_copy(s.index(), false);
        temps.push_back(temp);
        op_b = Operand::cell(temp);
      }
    }

    // Destination Z — must start out holding the literal's value.
    Cell dest = 0;
    std::optional<std::uint32_t> consumed_node;
    {
      const auto s = fanin[zi];
      if (s.is_constant()) {
        dest = allocator_.acquire(2);
        emit(make_write_const(s.constant_value(), dest), false);
      } else if (s.is_complemented()) {
        dest = make_complement_copy(s.index(), true);
      } else if (in_place_destination_ok(s)) {
        dest = cell_of(s.index());
        consumed_node = s.index();
      } else {
        dest = make_copy(s.index());
      }
    }

    emit(Instruction{op_a, op_b, dest}, true);
    cell_of_[gate] = dest;
    computed_[gate] = true;

    for (const auto temp : temps) {
      allocator_.release(temp);
    }

    // Consume fanin references; release dead values; propagate the
    // releasing-count change to candidate keys (paper: the free set and the
    // node priorities evolve together).
    for (const auto s : fanin) {
      if (s.is_constant()) {
        continue;
      }
      const auto node = s.index();
      assert(use_count_[node] > 0);
      --use_count_[node];
      if (use_count_[node] == 0) {
        if (consumed_node && *consumed_node == node) {
          cell_of_[node].reset();  // ownership moved into the result
        } else if (cell_of_[node]) {
          allocator_.release(*cell_of_[node]);
          cell_of_[node].reset();
        }
      } else if (use_count_[node] == 1) {
        for (const auto parent : parents_[node]) {
          refresh_candidate(parent);
        }
      }
    }

    // Newly computable parents join the candidate set.
    for (const auto parent : parents_[gate]) {
      assert(pending_[parent] > 0);
      if (--pending_[parent] == 0) {
        insert_candidate(parent);
      }
    }
  }

  // ---- primary outputs ------------------------------------------------------

  void materialize_outputs() {
    std::map<std::uint32_t, Cell> inverted_cell;
    for (const auto po : mig_.pos()) {
      if (po.is_constant()) {
        const auto cell = allocator_.acquire(1);
        emit(make_write_const(po.constant_value(), cell), false);
        program_.bind_po(cell);
        continue;
      }
      const auto node = po.index();
      if (!po.is_complemented()) {
        program_.bind_po(cell_of(node));
        continue;
      }
      const auto it = inverted_cell.find(node);
      if (it != inverted_cell.end()) {
        program_.bind_po(it->second);
        continue;
      }
      const auto cell = make_complement_copy(node, false);
      inverted_cell.emplace(node, cell);
      program_.bind_po(cell);
    }
  }

  CompileResult finish() {
    program_.set_num_cells(allocator_.num_cells());
    program_.validate();
    CompileResult result;
    result.num_cells = allocator_.num_cells();
    result.write_stats = util::compute_stats(allocator_.write_counts());
    result.gate_instructions = gate_instructions_;
    result.overhead_instructions = overhead_instructions_;
    result.quarantined_cells = allocator_.quarantined_count();
    result.program = std::move(program_);
    return result;
  }

  // ---- state ---------------------------------------------------------------

  const Mig& mig_;
  SelectorPtr selector_;
  CellAllocator allocator_;
  Program program_;
  std::vector<bool> reachable_;
  std::vector<std::uint32_t> use_count_;
  std::vector<std::optional<Cell>> cell_of_;
  std::vector<std::vector<std::uint32_t>> parents_;
  std::vector<std::uint32_t> pending_;
  std::vector<std::uint32_t> fanout_level_;
  std::vector<std::optional<Key>> key_of_;
  std::vector<bool> computed_ = std::vector<bool>(mig_.num_nodes(), false);
  std::set<Key> candidates_;
  std::size_t gate_instructions_ = 0;
  std::size_t overhead_instructions_ = 0;
};

}  // namespace

PlimCompiler::PlimCompiler(CompilerOptions options)
    : options_(std::move(options)) {
  require(options_.selector != nullptr && options_.allocator != nullptr,
          "PlimCompiler: options need selector and allocator factories");
}

CompileResult PlimCompiler::compile(const mig::Mig& graph) const {
  Compilation compilation(graph, options_);
  return compilation.run();
}

}  // namespace rlim::plim
