#pragma once

#include <cstdint>
#include <vector>

#include "plim/instruction.hpp"
#include "util/stats.hpp"

namespace rlim::plim {

/// Endurance model of the crossbar.
struct RramConfig {
  /// Writes a cell can absorb before it hard-fails; 0 disables the model.
  /// (Real RRAM: ~1e10 [5] to ~1e11 [6]; tests use tiny values.)
  std::uint64_t endurance_limit = 0;
  /// Cell-to-cell variability: per-cell limits are drawn log-normally,
  /// limit_i = endurance_limit · exp(σ·N(0,1)). 0 = uniform limits.
  double endurance_sigma = 0.0;
  /// Seed of the per-cell variability draw (deterministic per array).
  std::uint64_t variation_seed = 1;
};

/// Functional model of the RRAM crossbar array underneath PLiM.
///
/// Values are 64-bit words so 64 input patterns evaluate in parallel.
/// Every `write` increments the cell's wear counter; a cell that has reached
/// the endurance limit becomes *stuck at its last value* (the common RRAM
/// hard-failure mode) — further writes are silently dropped, which makes
/// failure observable as wrong program outputs rather than a crash.
class RramArray {
public:
  explicit RramArray(Cell num_cells, RramConfig config = {});

  [[nodiscard]] Cell size() const { return static_cast<Cell>(cells_.size()); }

  [[nodiscard]] std::uint64_t read(Cell cell) const;

  /// Counted write (wears the cell; dropped once the cell has failed).
  void write(Cell cell, std::uint64_t value);

  /// Uncounted write: models data that is already resident (primary inputs)
  /// or an external initialization outside the program's write traffic.
  void preload(Cell cell, std::uint64_t value);

  [[nodiscard]] std::uint64_t write_count(Cell cell) const;
  [[nodiscard]] std::vector<std::uint64_t> write_counts() const;

  [[nodiscard]] bool is_failed(Cell cell) const;
  [[nodiscard]] std::size_t failed_cell_count() const;

  /// Effective endurance limit of a cell under the variability model
  /// (0 when the endurance model is disabled).
  [[nodiscard]] std::uint64_t endurance_of(Cell cell) const;

  /// Clears values but keeps accumulated wear (a fresh execution on an aged
  /// array).
  void reset_values();

  [[nodiscard]] util::WriteStats stats() const;

private:
  struct CellState {
    std::uint64_t value = 0;
    std::uint64_t writes = 0;
    std::uint64_t limit = 0;  // 0 = unlimited
  };

  void check(Cell cell) const;

  std::vector<CellState> cells_;
  RramConfig config_;
};

}  // namespace rlim::plim
