#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "plim/instruction.hpp"
#include "util/stats.hpp"

namespace rlim::plim {

/// Endurance model of the crossbar.
struct RramConfig {
  /// Writes a cell can absorb before it hard-fails; 0 disables the model.
  /// (Real RRAM: ~1e10 [5] to ~1e11 [6]; tests use tiny values.)
  std::uint64_t endurance_limit = 0;
  /// Cell-to-cell variability: per-cell limits are drawn log-normally,
  /// limit_i = endurance_limit · exp(σ·N(0,1)). 0 = uniform limits.
  double endurance_sigma = 0.0;
  /// Seed of the per-cell variability draw. NOTE: every array built from the
  /// same config shares one draw — batch code that instantiates many arrays
  /// must derive a distinct seed per instance (util::mix_seed(job_seed,
  /// instance)) or every trial silently replays the same weak cells.
  std::uint64_t variation_seed = 1;
};

/// Functional model of the RRAM crossbar array underneath PLiM.
///
/// Values are 64-bit words so 64 input patterns evaluate in parallel.
/// Every `write` increments the cell's wear counter; a cell that has reached
/// the endurance limit becomes *stuck at its last value* (the common RRAM
/// hard-failure mode) — further writes (counted or not) are silently
/// dropped, which makes failure observable as wrong program outputs rather
/// than a crash.
///
/// The mutating entry points and the failure predicate are virtual so fault
/// models (fault::FaultArray) can overlay stuck-at cells, read disturbance,
/// write variability, and spare-cell remapping while remaining a drop-in
/// array for the controller and `plim::evaluate`.
class RramArray {
public:
  explicit RramArray(Cell num_cells, RramConfig config = {});
  virtual ~RramArray() = default;

  [[nodiscard]] Cell size() const { return static_cast<Cell>(cells_.size()); }

  [[nodiscard]] virtual std::uint64_t read(Cell cell) const;

  /// Counted write (wears the cell; dropped once the cell has failed).
  virtual void write(Cell cell, std::uint64_t value);

  /// Uncounted write: models data that is already resident (primary inputs)
  /// or an external initialization outside the program's write traffic.
  /// A failed cell is stuck for uncounted writes too — the preload is
  /// dropped and the cell keeps its last value.
  virtual void preload(Cell cell, std::uint64_t value);

  [[nodiscard]] std::uint64_t write_count(Cell cell) const;
  [[nodiscard]] std::vector<std::uint64_t> write_counts() const;

  [[nodiscard]] virtual bool is_failed(Cell cell) const;
  [[nodiscard]] virtual std::size_t failed_cell_count() const;

  /// Effective endurance limit of a cell under the variability model;
  /// nullopt when the endurance model is disabled (the cell is unlimited).
  /// Distinct from a genuinely zero budget, which the variability draw
  /// clamps to 1 — an engaged model never yields a 0 limit.
  [[nodiscard]] std::optional<std::uint64_t> endurance_of(Cell cell) const;
  /// True when construction drew per-cell limits (endurance_limit != 0).
  [[nodiscard]] bool has_endurance_model() const {
    return config_.endurance_limit != 0;
  }

  /// Clears values but keeps accumulated wear (a fresh execution on an aged
  /// array). Failed cells are stuck and keep their last value even here.
  virtual void reset_values();

  [[nodiscard]] util::WriteStats stats() const;

protected:
  struct CellState {
    std::uint64_t value = 0;
    std::uint64_t writes = 0;
    std::uint64_t limit = 0;  // 0 = unlimited
  };

  void check(Cell cell) const;

  /// Direct cell-state access for fault-model subclasses, which keep their
  /// own logical→physical mapping and must not bounce through the virtual
  /// public API with already-translated indices.
  [[nodiscard]] CellState& state(Cell cell) { return cells_[cell]; }
  [[nodiscard]] const CellState& state(Cell cell) const { return cells_[cell]; }

  /// The base hard-failure criterion on raw state (wear >= drawn limit).
  [[nodiscard]] static bool hard_failed(const CellState& state) {
    return state.limit != 0 && state.writes >= state.limit;
  }

private:
  std::vector<CellState> cells_;
  RramConfig config_;
};

}  // namespace rlim::plim
