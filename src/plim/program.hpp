#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "plim/instruction.hpp"

namespace rlim::plim {

/// A compiled PLiM program: a straight-line RM3 instruction sequence plus
/// the binding of primary inputs and outputs to crossbar cells.
///
/// Convention (documented write-accounting model): primary inputs are
/// pre-resident in their bound cells before execution starts (loading them is
/// the data's ambient traffic, not the program's); every instruction then
/// performs exactly one write to its destination cell.
class Program {
public:
  /// Appends an instruction; grows the cell space to cover its references.
  void append(const Instruction& instruction);

  [[nodiscard]] std::span<const Instruction> instructions() const {
    return instructions_;
  }
  [[nodiscard]] std::size_t size() const { return instructions_.size(); }

  /// Number of RRAM cells the program touches (the paper's #R).
  [[nodiscard]] Cell num_cells() const { return num_cells_; }
  /// Explicitly widen the cell space (e.g. cells allocated but never written).
  void set_num_cells(Cell count);

  /// Binds the next primary input (in MIG PI order) to `cell`.
  void bind_pi(Cell cell);
  /// Binds the next primary output (in MIG PO order) to `cell`.
  void bind_po(Cell cell);

  /// Everything needed to reconstitute a program from bulk storage.
  struct RawProgram {
    std::vector<Instruction> instructions;
    std::vector<Cell> pi_cells;
    std::vector<Cell> po_cells;
    Cell num_cells = 0;  ///< declared cell space (may exceed the references)
  };

  /// Builds a program directly from decoded sections — the store's bulk
  /// load path. Validates what append/bind/set_num_cells would have
  /// enforced on a replay (canonical operand words, every reference inside
  /// the declared cell space) in one pass and throws rlim::Error on
  /// violation.
  [[nodiscard]] static Program adopt_raw(RawProgram&& raw);

  [[nodiscard]] std::span<const Cell> pi_cells() const { return pi_cells_; }
  [[nodiscard]] std::span<const Cell> po_cells() const { return po_cells_; }

  /// Per-cell destination-write counts — the statically known write traffic
  /// (writes are data-independent: every instruction writes its destination).
  [[nodiscard]] std::vector<std::uint64_t> static_write_counts() const;

  /// Human-readable listing, e.g. `0003: RM3(c[5], !c[2], c[7])`.
  [[nodiscard]] std::string disassemble() const;

  /// Checks internal consistency (bindings within the cell space).
  void validate() const;

  /// Plain-text serialization:
  /// ```
  /// .plim <instructions> <cells>
  /// .pi <cell>
  /// .rm3 <a> <b> <z>     (operands: c<idx> or constant 0/1)
  /// .po <cell>
  /// .end
  /// ```
  void write(std::ostream& os) const;
  [[nodiscard]] static Program read(std::istream& is);

private:
  std::vector<Instruction> instructions_;
  std::vector<Cell> pi_cells_;
  std::vector<Cell> po_cells_;
  Cell num_cells_ = 0;
};

}  // namespace rlim::plim
