#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mig/mig.hpp"
#include "plim/program.hpp"
#include "plim/rram_array.hpp"

namespace rlim::plim {

/// The PLiM controller [11]: a wrapper around the RRAM array with a program
/// counter and a small FSM. When the control signal is off the array behaves
/// as a plain RAM; when on, the controller fetches RM3 instructions and
/// performs them as write cycles on the array.
class PlimController {
public:
  enum class State { Idle, Running, Done };

  explicit PlimController(RramArray& array) : array_(&array) {}

  /// Latches a program and raises the control signal.
  void start(const Program& program);

  /// Executes one RM3 instruction; returns false when the program is done.
  bool step();

  /// Runs the latched program to completion; returns #instructions executed.
  std::size_t run();

  /// Convenience: start + run.
  std::size_t run(const Program& program);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::size_t program_counter() const { return pc_; }

  /// Executes a single RM3 on the array (usable without a latched program).
  static void execute(RramArray& array, const Instruction& instruction);

private:
  RramArray* array_;
  const Program* program_ = nullptr;
  std::size_t pc_ = 0;
  State state_ = State::Idle;
};

/// Evaluates a program as a combinational function: binds `pi_values`
/// (64 patterns per word) to the PI cells, runs the program on a fresh array
/// (or `array` if given, to accumulate wear across executions) and returns
/// the PO words.
std::vector<std::uint64_t> evaluate(const Program& program,
                                    std::span<const std::uint64_t> pi_values,
                                    RramArray* array = nullptr);

/// Monte-Carlo check that the program computes the same function as `mig`
/// (PI/PO correspondence by order). This is the compiler's end-to-end oracle.
bool program_matches_mig(const Program& program, const mig::Mig& mig,
                         unsigned rounds, std::uint64_t seed);

}  // namespace rlim::plim
