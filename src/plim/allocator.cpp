#include "plim/allocator.hpp"

#include <deque>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace rlim::plim {

std::string to_string(AllocPolicy policy) {
  switch (policy) {
    case AllocPolicy::Lifo: return "lifo";
    case AllocPolicy::Fifo: return "fifo";
    case AllocPolicy::RoundRobin: return "round-robin";
    case AllocPolicy::MinWrite: return "min-write";
  }
  return "?";
}

/// Policy-specific container for the free set. `push` receives the cell's
/// write count at release time; counts cannot change while a cell is free,
/// so MinWrite ordering stays valid without rebalancing.
class CellAllocator::FreeList {
public:
  explicit FreeList(AllocPolicy policy) : policy_(policy) {}

  void push(Cell cell, std::uint64_t writes) {
    switch (policy_) {
      case AllocPolicy::Lifo:
      case AllocPolicy::Fifo:
        queue_.push_back(cell);
        break;
      case AllocPolicy::RoundRobin:
        by_index_.insert(cell);
        break;
      case AllocPolicy::MinWrite:
        by_writes_.emplace(writes, cell);
        break;
    }
  }

  std::optional<Cell> pop() {
    switch (policy_) {
      case AllocPolicy::Lifo: {
        if (queue_.empty()) return std::nullopt;
        const auto cell = queue_.back();
        queue_.pop_back();
        return cell;
      }
      case AllocPolicy::Fifo: {
        if (queue_.empty()) return std::nullopt;
        const auto cell = queue_.front();
        queue_.pop_front();
        return cell;
      }
      case AllocPolicy::RoundRobin: {
        if (by_index_.empty()) return std::nullopt;
        auto it = by_index_.lower_bound(cursor_);
        if (it == by_index_.end()) {
          it = by_index_.begin();  // wrap around
        }
        const auto cell = *it;
        by_index_.erase(it);
        cursor_ = cell + 1;
        return cell;
      }
      case AllocPolicy::MinWrite: {
        if (by_writes_.empty()) return std::nullopt;
        const auto [writes, cell] = *by_writes_.begin();
        by_writes_.erase(by_writes_.begin());
        return cell;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const {
    return queue_.size() + by_index_.size() + by_writes_.size();
  }

private:
  AllocPolicy policy_;
  std::deque<Cell> queue_;                              // Lifo / Fifo
  std::set<Cell> by_index_;                             // RoundRobin
  std::set<std::pair<std::uint64_t, Cell>> by_writes_;  // MinWrite
  Cell cursor_ = 0;                                     // RoundRobin position
};

CellAllocator::CellAllocator(Options options)
    : options_(options), free_list_(std::make_unique<FreeList>(options.policy)) {
  if (options_.max_writes) {
    // The copy idioms need up to 3 writes on one fresh cell; smaller caps
    // would make compilation infeasible.
    require(*options_.max_writes >= 3,
            "CellAllocator: max_writes must be at least 3");
  }
}

CellAllocator::~CellAllocator() = default;
CellAllocator::CellAllocator(CellAllocator&&) noexcept = default;
CellAllocator& CellAllocator::operator=(CellAllocator&&) noexcept = default;

Cell CellAllocator::add_live_cell() {
  const auto cell = static_cast<Cell>(writes_.size());
  writes_.push_back(0);
  quarantined_.push_back(false);
  return cell;
}

bool CellAllocator::has_headroom(Cell cell, std::uint64_t headroom) const {
  if (!options_.max_writes) {
    return true;
  }
  return writes_[cell] + headroom <= *options_.max_writes;
}

Cell CellAllocator::acquire(std::uint64_t headroom) {
  // Pop until a cell with sufficient headroom appears; set rejects aside and
  // restore them afterwards (free cells always satisfy headroom 1 by the
  // quarantine invariant, but multi-write idioms may need more).
  std::vector<Cell> rejected;
  std::optional<Cell> found;
  while (const auto cell = free_list_->pop()) {
    if (has_headroom(*cell, headroom)) {
      found = cell;
      break;
    }
    rejected.push_back(*cell);
  }
  for (const auto cell : rejected) {
    free_list_->push(cell, writes_[cell]);
  }
  if (found) {
    return *found;
  }
  return add_live_cell();  // grow the array (+1 to the paper's #R)
}

void CellAllocator::release(Cell cell) {
  require(cell < writes_.size(), "CellAllocator::release: unknown cell");
  if (quarantined_[cell]) {
    return;  // retired for good — the maximum write count strategy
  }
  free_list_->push(cell, writes_[cell]);
}

void CellAllocator::note_write(Cell cell) {
  require(cell < writes_.size(), "CellAllocator::note_write: unknown cell");
  ++writes_[cell];
  if (options_.max_writes && writes_[cell] >= *options_.max_writes) {
    quarantined_[cell] = true;
  }
}

bool CellAllocator::writable(Cell cell) const {
  require(cell < writes_.size(), "CellAllocator::writable: unknown cell");
  return has_headroom(cell, 1);
}

std::uint64_t CellAllocator::write_count(Cell cell) const {
  require(cell < writes_.size(), "CellAllocator::write_count: unknown cell");
  return writes_[cell];
}

std::vector<std::uint64_t> CellAllocator::write_counts() const { return writes_; }

Cell CellAllocator::num_cells() const { return static_cast<Cell>(writes_.size()); }

std::size_t CellAllocator::free_count() const { return free_list_->size(); }

std::size_t CellAllocator::quarantined_count() const {
  std::size_t count = 0;
  for (const auto flag : quarantined_) {
    if (flag) {
      ++count;
    }
  }
  return count;
}

}  // namespace rlim::plim
